//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset used by `crates/bench`: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Instead of criterion's
//! statistical machinery it runs a short warm-up, then a fixed number of
//! timed batches, and prints the median ns/iter — enough to compare orders
//! of magnitude between runs of `cargo bench` offline.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level bench driver handed to every bench function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only identifier.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples_wanted: self.sample_size,
            median_ns: 0.0,
        };
        f(&mut bencher, input);
        println!(
            "bench {:<40} {:>12.1} ns/iter",
            format!("{}/{}", self.name, id.label),
            bencher.median_ns
        );
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        self.bench_with_input(id, &(), |b, ()| f(b));
    }

    /// Ends the group (upstream renders summaries here; a no-op for us).
    pub fn finish(self) {}
}

/// Timing loop handle passed to every benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    samples_wanted: usize,
    median_ns: f64,
}

impl Bencher {
    /// Times `routine`, storing the median over several batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up + batch sizing: aim for batches of at least ~1 ms.
        let started = Instant::now();
        black_box(routine());
        let once = started.elapsed().max(Duration::from_nanos(1));
        let per_batch = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000);

        let mut samples: Vec<f64> = (0..self.samples_wanted)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..per_batch {
                    black_box(routine());
                }
                t.elapsed().as_nanos() as f64 / per_batch as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = samples[samples.len() / 2];
    }
}

/// Opaque value sink preventing the optimizer from deleting benchmarked work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles bench functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `fn main()` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_addition(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("add", 4), &4u64, |b, &n| {
            b.iter(|| n + 1);
        });
        group.bench_function(BenchmarkId::from_parameter("plain"), |b| b.iter(|| 2 + 2));
        group.finish();
    }

    criterion_group!(benches, bench_addition);

    #[test]
    fn harness_runs_and_times() {
        benches();
    }
}
