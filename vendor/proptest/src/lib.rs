//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API used by the workspace's
//! property tests: the [`proptest!`] macro (with optional
//! `#![proptest_config(...)]` header), integer-range / tuple / `prop_map`
//! strategies, `any::<T>()`, `prop::collection::{vec, btree_set}`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` assertion macros.
//!
//! Unlike upstream proptest there is **no shrinking**: a failing case panics
//! with the test name, case number and assertion message. Generation is
//! fully deterministic — the seed is a hash of the test name and the case
//! index — so failures reproduce across runs and machines.

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator backing all strategies (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Builds a generator from a 64-bit seed.
    pub fn new(seed: u64) -> TestRng {
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty bound");
        self.next_u64() % bound
    }
}

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed — discard the case and try another.
    Reject(String),
    /// An assertion failed — the property is falsified.
    Fail(String),
}

/// Result type of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let width = (self.end as u128 - self.start as u128) as u64;
                self.start + rng.below(width) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let width = (hi as u128 - lo as u128 + 1) as u64;
                lo + rng.below(width) as $t
            }
        }
    )*};
}
impl_int_strategies!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Sampling helpers, mirroring `proptest::sample`.
pub mod sample {
    use super::*;

    /// An index into a collection whose length is only known at test time.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Maps this draw onto `0..len`.
        ///
        /// # Panics
        /// Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on an empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }
}

/// Strategy over the whole domain of `T` (from [`any`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection-size specification: an exact size or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.min + rng.below((self.max - self.min) as u64) as usize
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::*;

    /// Strategy for `Vec<S::Value>` (from [`vec`]).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` (from [`btree_set`]).
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates sets whose cardinality is drawn from `size`.
    ///
    /// The element strategy's domain must be large enough to reach the
    /// minimum cardinality; generation retries duplicates a bounded number
    /// of times and panics if the minimum is unreachable.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let want = self.size.pick(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < want {
                out.insert(self.element.generate(rng));
                attempts += 1;
                if attempts > 64 * (want + 1) {
                    panic!(
                        "btree_set strategy could not reach cardinality {want} \
                         (element domain too small?)"
                    );
                }
            }
            out
        }
    }
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01B3;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Drives one property: runs `config.cases` successful cases of `case`,
/// retrying rejected cases (bounded) and panicking on the first failure.
///
/// Invoked by the [`proptest!`] macro; not intended for direct use.
pub fn run_proptest<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let base = fnv1a(name.as_bytes());
    let max_rejects = config.cases as u64 * 64 + 1024;
    let mut rejects = 0u64;
    let mut stream = 0u64;
    let mut passed = 0u32;
    while passed < config.cases {
        let mut mix = stream;
        let mut rng = TestRng::new(base ^ splitmix64(&mut mix));
        stream += 1;
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(why)) => {
                rejects += 1;
                if rejects > max_rejects {
                    panic!(
                        "property {name}: too many rejected cases \
                         ({rejects}); last: {why}"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property {name} falsified at case {passed} \
                     (deterministic stream {}): {msg}",
                    stream - 1
                );
            }
        }
    }
}

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };

    /// Namespace alias so `prop::collection::vec(...)` works as upstream.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines deterministic property tests.
///
/// Supports the upstream form:
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u64..100, ys in prop::collection::vec(0u32..9, 1..20)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($pat:pat in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_proptest(config, stringify!($name), |__rng| {
                    $(let $pat = $crate::Strategy::generate(&($strat), __rng);)+
                    #[allow(unreachable_code)]
                    let mut __case = || -> $crate::TestCaseResult {
                        $body
                        Ok(())
                    };
                    __case()
                });
            }
        )*
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                __l,
                __r
            )));
        }
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

/// Discards the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_owned(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 1usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn collections_respect_sizes(
            xs in prop::collection::vec(0u32..100, 2..9),
            exact in prop::collection::vec(any::<u64>(), 5),
            set in prop::collection::btree_set(0usize..64, 3..7),
        ) {
            prop_assert!((2..9).contains(&xs.len()));
            prop_assert_eq!(exact.len(), 5);
            prop_assert!((3..7).contains(&set.len()));
        }

        #[test]
        fn prop_map_and_assume_work(
            (a, b) in (0u32..50, 0u32..50).prop_map(|(x, y)| (x.min(y), x.max(y))),
        ) {
            prop_assume!(a != b);
            prop_assert!(a < b);
        }
    }

    #[test]
    fn failing_property_panics_with_message() {
        let caught = std::panic::catch_unwind(|| {
            crate::run_proptest(ProptestConfig::with_cases(4), "always_fails", |_| {
                Err(TestCaseError::Fail("boom".to_owned()))
            });
        });
        let err = caught.expect_err("must panic");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(
            msg.contains("always_fails") && msg.contains("boom"),
            "{msg}"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = crate::collection::vec(0u64..1000, 10);
        let mut a = crate::TestRng::new(42);
        let mut b = crate::TestRng::new(42);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }
}
