//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so the
//! workspace vendors the *subset* of the `rand 0.8` API it actually uses:
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] and [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64. Streams are
//! deterministic for a given seed but intentionally **not** bit-compatible
//! with upstream `rand`; nothing in the workspace depends on upstream
//! streams, only on per-seed reproducibility.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that the [`Standard`] distribution can produce.
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, width: u128) -> u128 {
    debug_assert!(width > 0);
    // Modulo is slightly biased; irrelevant for simulation workloads.
    rng.next_u64() as u128 % width
}

/// Element types that ranges can sample uniformly.
///
/// A single blanket `SampleRange` impl over `T: SampleUniform` (mirroring
/// upstream `rand`) lets integer-literal ranges unify with the target type
/// during inference — per-type `SampleRange` impls would force an `i32`
/// fallback in expressions like `rng.gen_range(0..200) + some_u64`.
pub trait SampleUniform: Sized {
    /// Draws uniformly from `[lo, hi)`, or `[lo, hi]` when `inclusive`.
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                let width = (hi as u128) - (lo as u128) + inclusive as u128;
                lo + uniform_below(rng, width) as $t
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_sint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                let width = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                (lo as i128 + uniform_below(rng, width) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_sint!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(lo: f64, hi: f64, _inclusive: bool, rng: &mut R) -> f64 {
        lo + f64::standard_sample(rng) * (hi - lo)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_between(lo, hi, true, rng)
    }
}

/// User-facing random-value methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from integer seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand`'s `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Random-order helpers on slices (stand-in for `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_reproducible_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u64 = rng.gen_range(1..=3);
            assert!((1..=3).contains(&w));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_and_choose_work_through_unsized_rng() {
        fn go<R: Rng + ?Sized>(rng: &mut R) -> Vec<u32> {
            let mut v: Vec<u32> = (0..16).collect();
            v.shuffle(rng);
            let _ = v.as_slice().choose(rng);
            v
        }
        let mut rng = StdRng::seed_from_u64(3);
        let v = go(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<u32>>());
    }
}
