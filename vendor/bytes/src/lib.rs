//! Offline stand-in for the `bytes` crate.
//!
//! Provides the subset used by the D-GMC wire codecs: [`BytesMut`] as a
//! growable big-endian writer, [`Bytes`] as a consuming big-endian reader,
//! and the [`Buf`]/[`BufMut`] traits. Unlike upstream `bytes` there is no
//! shared-ownership machinery — [`Bytes`] owns its storage and tracks a read
//! cursor, which is all the codecs need.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};

/// Read side: a cursor over bytes, consumed front-to-back in big-endian order.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `cnt` bytes.
    ///
    /// # Panics
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_be_bytes(raw)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(raw)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(raw)
    }
}

/// Write side: appends big-endian integers to a growable buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// An owned, immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Unread length (same as `remaining`).
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when fully consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies a sub-range of the unread bytes into a new buffer.
    ///
    /// Upstream `bytes` shares storage here; this stand-in copies, which is
    /// fine for the codec tests that use it.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes::from(&self[range.start..range.end])
    }

    /// Builds a buffer from a static byte slice (copied, not borrowed).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::from(data)
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(data: &[u8; N]) -> Bytes {
        Bytes::from(data.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        **self == **other
    }
}
impl Eq for Bytes {}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end of Bytes");
        self.pos += cnt;
    }
}

/// A growable byte buffer for encoding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes into an immutable reader positioned at the start.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl From<&[u8]> for BytesMut {
    fn from(data: &[u8]) -> BytesMut {
        BytesMut {
            data: data.to_vec(),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_is_big_endian() {
        let mut out = BytesMut::new();
        out.put_u8(0xAB);
        out.put_u16(0x1234);
        out.put_u32(0xDEAD_BEEF);
        out.put_u64(0x0102_0304_0506_0708);
        assert_eq!(out[1..3], [0x12, 0x34]);
        let mut buf = out.freeze();
        assert_eq!(buf.remaining(), 15);
        assert_eq!(buf.get_u8(), 0xAB);
        assert_eq!(buf.get_u16(), 0x1234);
        assert_eq!(buf.get_u32(), 0xDEAD_BEEF);
        assert_eq!(buf.get_u64(), 0x0102_0304_0506_0708);
        assert!(buf.is_empty());
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        let mut b = Bytes::from(vec![1, 2]);
        b.advance(3);
    }
}
