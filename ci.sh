#!/bin/sh
# Offline CI gate: formatting, lints and the full test suite.
# Run from the repository root. Fails fast on the first broken step.
set -eu

cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (warnings are errors) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test =="
cargo test --workspace --offline -q

echo "CI OK"
