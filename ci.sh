#!/bin/sh
# Offline CI gate: formatting, lints and the full test suite.
# Run from the repository root. Fails fast on the first broken step.
set -eu

cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (warnings are errors) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test =="
cargo test --workspace --offline -q

echo "== explorer smoke (fixed seeds, fault-injected invariant check) =="
cargo run --offline -q --release -p dgmc-experiments --bin explore -- --seeds 25 --fail-fast

echo "CI OK"
