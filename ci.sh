#!/bin/sh
# Offline CI gate: formatting, lints and the full test suite.
# Run from the repository root. Fails fast on the first broken step.
#
#   ./ci.sh            the full gate
#   ./ci.sh coverage   per-crate line coverage via cargo-llvm-cov
#                      (gracefully skipped when the tool is not installed)
set -eu

cd "$(dirname "$0")"

if [ "${1:-}" = "coverage" ]; then
    echo "== per-crate coverage (cargo llvm-cov) =="
    if cargo llvm-cov --version >/dev/null 2>&1; then
        # Per-crate numbers: one summary row per workspace crate (the
        # table README.md points at). --offline keeps this hermetic.
        cargo llvm-cov --workspace --offline --summary-only
    else
        echo "cargo-llvm-cov is not installed; skipping coverage."
        echo "Install it on a networked machine with:"
        echo "    cargo install cargo-llvm-cov"
        echo "then re-run: ./ci.sh coverage"
    fi
    exit 0
fi

echo "== cast-ratchet lint: no unchecked 'as u32' in core/mctree sources =="
# Truncating id/count casts were swept in PR9 (use u32::try_from instead);
# this keeps new ones from creeping back into the protocol crates.
if grep -rn ' as u32' crates/core/src crates/mctree/src; then
    echo "unchecked ' as u32' cast in crates/core or crates/mctree; use u32::try_from"
    exit 1
fi

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (warnings are errors) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test (with backtraces, so panics in threaded tests are diagnosable) =="
RUST_BACKTRACE=1 cargo test --workspace --offline -q

echo "== node e2e (multi-process localhost mesh, ignored tests) =="
cargo build -q --offline --release -p dgmc-node
RUST_BACKTRACE=1 DGMC_NODE_BIN="$PWD/target/release/dgmc-node" \
    cargo test --offline -q --test node_e2e -- --ignored

echo "== localhost mesh smoke (5-node teleconference to convergence) =="
rm -rf results/mesh-smoke
DGMC_NODE_BIN="$PWD/target/release/dgmc-node" \
    cargo run --offline -q --release -p dgmc-node --bin node_e2e -- \
    scenarios/teleconference_mesh.dgmc --out results/mesh-smoke \
    --name mesh_smoke --deadline-secs 60 >results/mesh-smoke.json
grep -q '"invariant_violations":0' results/mesh-smoke.json || {
    echo "mesh smoke reported invariant violations"
    exit 1
}
cost=$(sed -n 's/.*"mc\.1\.tree_cost":\([0-9]*\).*/\1/p' results/mesh-smoke.json)
[ "${cost:-0}" -gt 0 ] || {
    echo "mc.1.tree_cost gauge missing or zero in results/mesh-smoke.json"
    exit 1
}
if command -v pgrep >/dev/null 2>&1; then
    if pgrep -f 'dgmc-node --id' >/dev/null 2>&1; then
        echo "orphan dgmc-node processes left running after the mesh smoke"
        exit 1
    fi
fi

echo "== explorer smoke (fixed seeds, fault-injected invariant check) =="
cargo run --offline -q --release -p dgmc-experiments --bin explore -- --seeds 25 --fail-fast

echo "== parallel explorer smoke (4 workers over the same seeds) =="
cargo run --offline -q --release -p dgmc-experiments --bin explore -- \
    --seeds 25 --jobs 4 --report results/explore-par.json

echo "== serial-vs-parallel report diff gate =="
cargo run --offline -q --release -p dgmc-experiments --bin explore -- \
    --seeds 25 --jobs 1 --report results/explore-serial.json >/dev/null
cmp results/explore-serial.json results/explore-par.json || {
    echo "explorer reports differ between --jobs 1 and --jobs 4"
    exit 1
}

echo "== systematic exploration smoke (4-node ring, 2 concurrent joins) =="
cargo run --offline -q --release -p dgmc-experiments --bin explore -- \
    --systematic --report results/systematic.json
grep -q '"complete":true' results/systematic.json || {
    echo "systematic exploration did not exhaust the 4-node/2-join state space"
    exit 1
}
grep -q '"passed":true' results/systematic.json || {
    echo "systematic exploration found a violation in the clean engine"
    exit 1
}

echo "== systematic serial-vs-parallel report diff gate =="
cargo run --offline -q --release -p dgmc-experiments --bin explore -- \
    --systematic --jobs 4 --report results/systematic-par.json >/dev/null
cmp results/systematic.json results/systematic-par.json || {
    echo "systematic reports differ between default jobs and --jobs 4"
    exit 1
}

echo "== seeded withdrawal bug is caught with a minimized repro bundle =="
rm -rf results/systematic-mutation
if cargo run --offline -q --release -p dgmc-experiments --bin explore -- \
    --systematic --mutate skip-withdrawal --out results/systematic-mutation \
    >/dev/null 2>&1; then
    echo "the skip-withdrawal mutation escaped the systematic checker"
    exit 1
fi
ls results/systematic-mutation/repro-seed-*.json >/dev/null 2>&1 || {
    echo "no minimized repro bundle written for the seeded mutation"
    exit 1
}

echo "== repaired teardown-race scenario explores to exhaustion, clean =="
cargo run --offline -q --release -p dgmc-experiments --bin explore -- \
    --systematic --nodes 3 --joins 1 --leaves 1 \
    --report results/systematic-teardown.json
grep -q '"complete":true' results/systematic-teardown.json || {
    echo "the repaired teardown scenario was not exhausted"
    exit 1
}
grep -q '"passed":true' results/systematic-teardown.json || {
    echo "the repaired engine still violates the teardown scenario"
    exit 1
}

echo "== backward search reaches the seeded violation state (jobs-identical) =="
cargo run --offline -q --release -p dgmc-experiments --bin explore -- \
    --systematic --nodes 3 --joins 1 --leaves 1 --mutate unfenced-teardown \
    --backward --jobs 1 --report results/backward-serial.json >/dev/null 2>&1 || {
    echo "backward search did not reach the seeded violation state"
    exit 1
}
grep -q '"found":true' results/backward-serial.json || {
    echo "backward report does not record the seeded state as found"
    exit 1
}
cargo run --offline -q --release -p dgmc-experiments --bin explore -- \
    --systematic --nodes 3 --joins 1 --leaves 1 --mutate unfenced-teardown \
    --backward --jobs 4 --report results/backward-par.json >/dev/null 2>&1 || {
    echo "parallel backward search did not reach the seeded violation state"
    exit 1
}
cmp results/backward-serial.json results/backward-par.json || {
    echo "backward reports differ between --jobs 1 and --jobs 4"
    exit 1
}

echo "== SPF cache smoke bench (emits BENCH_pr3.json) =="
DGMC_BENCH_SMOKE=1 cargo bench --offline -q -p dgmc-bench --bench cache
test -s BENCH_pr3.json || { echo "BENCH_pr3.json missing or empty"; exit 1; }

echo "== parallel sweep smoke bench (emits BENCH_pr4.json) =="
DGMC_BENCH_SMOKE=1 cargo bench --offline -q -p dgmc-bench --bench sweep
test -s BENCH_pr4.json || { echo "BENCH_pr4.json missing or empty"; exit 1; }

echo "== incremental-SPF smoke bench (emits BENCH_pr8.json, jobs-identical) =="
DGMC_BENCH_SMOKE=1 cargo bench --offline -q -p dgmc-bench --bench incremental -- --jobs 1
test -s BENCH_pr8.json || { echo "BENCH_pr8.json missing or empty"; exit 1; }
grep -q '"churn_gate_ok": true' BENCH_pr8.json || {
    echo "incremental SPF below the 1.5x churn-regime bar"
    exit 1
}
grep -q '"no_pessimization": true' BENCH_pr8.json || {
    echo "a cached scenario ran slower than from-scratch recompute"
    exit 1
}
eq=$(sed -n 's/.*"equivalence_events": \([0-9]*\).*/\1/p' BENCH_pr8.json)
[ "${eq:-0}" -gt 0 ] || {
    echo "no cached-vs-uncached equivalence events were verified"
    exit 1
}
cp results/bench_pr8.report.json results/bench_pr8.report.serial.json
DGMC_BENCH_SMOKE=1 cargo bench --offline -q -p dgmc-bench --bench incremental -- --jobs 4
cmp results/bench_pr8.report.serial.json results/bench_pr8.report.json || {
    echo "bench_pr8 reports differ between --jobs 1 and --jobs 4"
    exit 1
}

echo "== many-MC smoke bench (emits BENCH_pr9.json, jobs-identical) =="
DGMC_BENCH_SMOKE=1 cargo bench --offline -q -p dgmc-bench --bench many_mc -- --jobs 1
test -s BENCH_pr9.json || { echo "BENCH_pr9.json missing or empty"; exit 1; }
grep -q '"many_mc_gate_ok": true' BENCH_pr9.json || {
    echo "arena event path below the 2x many-MC bar"
    exit 1
}
grep -q '"no_pessimization": true' BENCH_pr9.json || {
    echo "an arena scenario ran slower than the pre-arena scan path"
    exit 1
}
cp results/bench_pr9.report.json results/bench_pr9.report.serial.json
DGMC_BENCH_SMOKE=1 cargo bench --offline -q -p dgmc-bench --bench many_mc -- --jobs 4
cmp results/bench_pr9.report.serial.json results/bench_pr9.report.json || {
    echo "bench_pr9 reports differ between --jobs 1 and --jobs 4"
    exit 1
}

echo "== fig6 preset exposes the cache hit-rate counter =="
cargo run --offline -q --release -p dgmc-experiments --bin exp1 -- --quick >/dev/null
grep -q '"spf_cache.hits":' results/exp1.metrics.json || {
    echo "spf_cache.hits counter absent from results/exp1.metrics.json"
    exit 1
}
hits=$(sed -n 's/.*"spf_cache.hits":\([0-9]*\).*/\1/p' results/exp1.metrics.json)
[ "${hits:-0}" -gt 0 ] || { echo "spf_cache.hits is zero for the fig6 preset"; exit 1; }

echo "== exp1 trace export is schema-valid and jobs-independent =="
cargo run --offline -q --release -p dgmc-experiments --bin exp1 -- \
    --quick --jobs 1 >/dev/null
cp results/exp1.trace.json results/exp1.trace.serial.json
cargo run --offline -q --release -p dgmc-experiments --bin exp1 -- \
    --quick --jobs 4 >/dev/null
cmp results/exp1.trace.serial.json results/exp1.trace.json || {
    echo "exp1 trace files differ between --jobs 1 and --jobs 4"
    exit 1
}
cargo run --offline -q --release -p dgmc-experiments --bin trace_check -- \
    results/exp1.trace.json || {
    echo "results/exp1.trace.json failed Chrome trace-event validation"
    exit 1
}

echo "CI OK"
