//! # dgmc — facade crate of the D-GMC reproduction
//!
//! Reproduction of Huang & McKinley, *A Lightweight Protocol for Multipoint
//! Connections under Link-State Routing* (ICDCS 1996). This crate re-exports
//! the whole workspace under one roof; see the individual crates for the
//! full APIs:
//!
//! * [`topology`] — network graphs, generators, shortest paths,
//! * [`des`] — the discrete-event simulation kernel,
//! * [`lsr`] — the OSPF-lite link-state routing substrate,
//! * [`mctree`] — Steiner/source-tree topology algorithms,
//! * [`obs`] — the dependency-free observability layer (decision log,
//!   metrics registry, JSONL export),
//! * [`protocol`] — the D-GMC protocol itself (timestamps, engine, switch),
//! * [`baselines`] — brute-force LSR multicast, MOSPF and CBT comparators,
//! * [`experiments`] — the harness regenerating the paper's Figures 6-8,
//! * [`hierarchy`] — the two-level hierarchical extension (the paper's
//!   stated ongoing work),
//! * [`node`] — the sans-IO real-socket node (`dgmc-node` binary), its UDP
//!   datagram framing and the multi-process localhost launcher.
//!
//! # Examples
//!
//! ```
//! use dgmc::prelude::*;
//! use std::rc::Rc;
//!
//! let net = dgmc::topology::generate::ring(5);
//! let mut sim = build_dgmc_sim(&net, DgmcConfig::computation_dominated(), Rc::new(SphStrategy::new()));
//! sim.inject(ActorId(0), SimDuration::ZERO, SwitchMsg::HostJoin {
//!     mc: McId(1), mc_type: McType::Symmetric, role: Role::SenderReceiver,
//! });
//! sim.run_to_quiescence();
//! assert!(check_consensus(&sim, McId(1)).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dgmc_baselines as baselines;
pub use dgmc_core as protocol;
pub use dgmc_des as des;
pub use dgmc_experiments as experiments;
pub use dgmc_hierarchy as hierarchy;
pub use dgmc_lsr as lsr;
pub use dgmc_mctree as mctree;
pub use dgmc_node as node;
pub use dgmc_obs as obs;
pub use dgmc_topology as topology;

/// Everything needed to build and drive a D-GMC simulation.
pub mod prelude {
    pub use dgmc_core::convergence::check_consensus;
    pub use dgmc_core::switch::{
        build_dgmc_sim, inject_link_event, DgmcConfig, DgmcSwitch, SwitchMsg,
    };
    pub use dgmc_core::{
        DgmcEngine, McEventKind, McId, McLsa, McTopology, McType, Role, Timestamp,
    };
    pub use dgmc_des::{ActorId, SimDuration, SimTime, Simulation};
    pub use dgmc_mctree::{KmbStrategy, McAlgorithm, SphStrategy};
    pub use dgmc_topology::{Network, NetworkBuilder, NodeId};
}
