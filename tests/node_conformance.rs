//! DES-vs-socket conformance: one scripted scenario replayed through both
//! drivers — the discrete-event simulation and a multi-process localhost
//! mesh of `dgmc-node` processes — must produce identical final engine
//! state (R/E/C stamps, epochs, members, installed trees, tombstones) and
//! identical ordered per-switch decision logs modulo timestamps.
//!
//! Both runs are *stepped*: each scenario directive is injected alone and
//! the network drains to quiescence before the next one (the launcher polls
//! `status` for the socket equivalent of `run_to_quiescence`). Stepping
//! pins down cross-switch message interleavings so the decision logs are
//! comparable event for event; within a step the protocol itself is
//! deterministic per switch.

use dgmc::des::RunOutcome;
use dgmc::experiments::scenario::{self, Step};
use dgmc::node::launcher::{run_scenario_mesh, MeshOptions};
use dgmc::node::snapshot::{engine_snapshot, per_switch_logs};
use dgmc::prelude::*;
use std::collections::BTreeMap;
use std::rc::Rc;

/// 4 switches in a ring, two connections, a link flap, a membership flap,
/// one data packet and a full teardown of connection 2 (tombstones on every
/// switch). The `@ms` offsets order the steps; both drivers run stepped.
const SCENARIO: &str = "\
net ring 4
join 0 @0ms mc=1
join 2 @10ms mc=1
join 1 @20ms mc=2
join 3 @30ms mc=2
cut 0 1 @40ms
repair 0 1 @50ms
leave 2 @60ms mc=1
join 2 @70ms mc=1
send 0 @80ms id=7 mc=1
leave 1 @90ms mc=2
leave 3 @100ms mc=2
";

/// Runs the scenario through the DES one step at a time and returns each
/// switch's canonical engine snapshot plus the per-switch canonical logs.
fn des_reference(text: &str) -> (Vec<String>, BTreeMap<u64, Vec<String>>) {
    let parsed = scenario::parse(text).expect("scenario parses");
    let mut sim = build_dgmc_sim(
        &parsed.net,
        DgmcConfig::computation_dominated(),
        Rc::new(SphStrategy::new()),
    );
    let log = sim.observer().attach_log(65_536);
    let mut net_state = parsed.net.clone();
    for step in &parsed.steps {
        match *step {
            Step::Join { node, mc, .. } => sim.inject(
                ActorId(node.0),
                SimDuration::ZERO,
                SwitchMsg::HostJoin {
                    mc,
                    mc_type: McType::Symmetric,
                    role: Role::SenderReceiver,
                },
            ),
            Step::Leave { node, mc, .. } => {
                sim.inject(
                    ActorId(node.0),
                    SimDuration::ZERO,
                    SwitchMsg::HostLeave { mc },
                );
            }
            Step::Link { a, b, up, .. } => {
                let link = net_state.link_between(a, b).expect("validated link").id;
                inject_link_event(&mut sim, &net_state, link, up, SimDuration::ZERO);
                let state = if up {
                    dgmc::topology::LinkState::Up
                } else {
                    dgmc::topology::LinkState::Down
                };
                let _ = net_state.set_link_state(link, state);
            }
            Step::Node { node, up, .. } => {
                dgmc::protocol::switch::inject_node_event(
                    &mut sim,
                    &net_state,
                    node,
                    up,
                    SimDuration::ZERO,
                );
            }
            Step::Send {
                node,
                packet_id,
                mc,
                ..
            } => sim.inject(
                ActorId(node.0),
                SimDuration::ZERO,
                SwitchMsg::SendData { mc, packet_id },
            ),
        }
        assert_eq!(
            sim.run_to_quiescence(),
            RunOutcome::Quiescent,
            "DES step must drain"
        );
    }
    let engines = (0..parsed.net.len())
        .map(|id| {
            let switch = sim
                .actor_as::<DgmcSwitch>(ActorId(u32::try_from(id).expect("small id")))
                .expect("actor is a DgmcSwitch");
            engine_snapshot(switch.engine(), switch.image()).to_json()
        })
        .collect();
    let logs = per_switch_logs(&log.borrow().to_jsonl()).expect("DES log lines parse");
    (engines, logs)
}

#[test]
fn socket_mesh_matches_des_state_and_decision_log() {
    let (des_engines, des_logs) = des_reference(SCENARIO);

    let out_dir = std::env::temp_dir().join(format!("dgmc-conformance-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&out_dir);
    let mut opts = MeshOptions::new(&out_dir);
    opts.deadline = std::time::Duration::from_secs(60);
    let report = run_scenario_mesh(SCENARIO, &opts).expect("mesh run succeeds");

    assert!(
        report.violations.is_empty(),
        "cross-node violations: {:?}",
        report.violations
    );
    assert_eq!(report.nodes, des_engines.len());

    // Identical final engine state, switch by switch.
    for (id, des_engine) in des_engines.iter().enumerate() {
        let mesh_engine = report.states[id]
            .get("engine")
            .unwrap_or_else(|| panic!("node {id} state has no engine snapshot"))
            .to_json();
        assert_eq!(
            &mesh_engine, des_engine,
            "node {id}: socket engine state diverges from DES"
        );
    }

    // The run exercised a real teardown: connection 2 is tombstoned.
    assert!(
        des_engines[0].contains("\"tombstones\":{\"2\""),
        "scenario must tear down mc 2: {}",
        des_engines[0]
    );

    // Identical ordered decision logs modulo timestamps, per switch.
    let mesh_logs = report.canonical_logs().expect("mesh logs parse");
    assert_eq!(
        mesh_logs.keys().collect::<Vec<_>>(),
        des_logs.keys().collect::<Vec<_>>(),
        "same set of switches made decisions"
    );
    for (switch, des_lines) in &des_logs {
        let mesh_lines = &mesh_logs[switch];
        assert_eq!(
            mesh_lines, des_lines,
            "switch {switch}: socket decision log diverges from DES"
        );
    }

    let _ = std::fs::remove_dir_all(&out_dir);
}
