//! End-to-end fault-injection coverage: the chaos explorer holds the
//! invariant suite under the default (recovered) fault plan, genuine loss
//! is caught and replays deterministically, and crossing proposals under
//! reordering always resolve to a single winner.

use dgmc::des::explorer::ExploreConfig;
use dgmc::des::{FaultPlan, FaultyNet, LinkFaults, RunOutcome};
use dgmc::experiments::explore::{self, ExploreParams};
use dgmc::obs::DecisionKind;
use dgmc::prelude::*;
use std::collections::BTreeSet;
use std::rc::Rc;

fn quick_params() -> ExploreParams {
    ExploreParams {
        nodes: 12,
        ..ExploreParams::default()
    }
}

#[test]
fn default_chaos_plan_holds_invariants_across_twenty_seeds() {
    let config = ExploreConfig {
        start_seed: 100,
        seeds: 20,
        ..ExploreConfig::default()
    };
    let report = explore::explore_run(&config, &quick_params());
    assert_eq!(report.checked, 20);
    assert!(
        report.passed(),
        "loss/duplication/jitter/flap/crash chaos must stay invariant-clean: {:?}",
        report.failures
    );
}

#[test]
fn hard_loss_is_caught_and_the_bundle_replays() {
    let params = ExploreParams {
        hard_loss: 0.3,
        ..quick_params()
    };
    let config = ExploreConfig {
        start_seed: 0,
        seeds: 10,
        fail_fast: true,
        ..ExploreConfig::default()
    };
    let report = explore::explore_run(&config, &params);
    let seed = report
        .first_failing_seed()
        .expect("genuine loss breaks the reliable-flooding assumption");

    // The violation is a pure function of the seed.
    let a = explore::run_seed(seed, &params);
    let b = explore::run_seed(seed, &params);
    assert!(!a.violations.is_empty());
    assert_eq!(a.violations, b.violations);

    // The bundle round-trips to disk with plan, timeline and replay line.
    let bundle = explore::repro_bundle(seed, &params);
    assert_eq!(bundle.violations, a.violations);
    assert!(!bundle.timeline.is_empty());
    let dir = std::env::temp_dir().join(format!("dgmc-fault-injection-{}", std::process::id()));
    let path = bundle.write(&dir).unwrap();
    let json = std::fs::read_to_string(&path).unwrap();
    assert!(json.contains(&format!("\"seed\":{seed}")));
    assert!(json.contains("hard_loss"));
    assert!(json.contains(&format!("--seed {seed}")));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Simultaneous joins whose proposals cross in flight: every switch that
/// arbitrates the resulting conflict must pick the same winner, and the
/// network must still converge to consensus.
fn crossing_joins(seed: u64) -> (usize, BTreeSet<u32>) {
    let net = dgmc::topology::generate::ring(6);
    let mut sim = build_dgmc_sim(
        &net,
        DgmcConfig::computation_dominated(),
        Rc::new(SphStrategy::new()),
    );
    let log = sim.observer().attach_log(4096);
    // Jitter-only plan: no loss, no duplication — pure reordering of the
    // crossing LSAs across paths. The jitter ceiling exceeds `Tc` (300us),
    // so equal-stamp proposals can meet inside one mailbox drain.
    sim.set_net_model(FaultyNet::new(
        FaultPlan::uniform(LinkFaults {
            loss: 0.0,
            hard_loss: 0.0,
            duplicate: 0.0,
            jitter: SimDuration::micros(400),
        }),
        seed,
    ));
    for node in [0u32, 2, 4] {
        sim.inject(
            ActorId(node),
            SimDuration::ZERO,
            SwitchMsg::HostJoin {
                mc: McId(1),
                mc_type: McType::Symmetric,
                role: Role::SenderReceiver,
            },
        );
    }
    assert_eq!(sim.run_to_quiescence(), RunOutcome::Quiescent);
    check_consensus(&sim, McId(1)).expect("conflict resolution must preserve consensus");
    let log = log.borrow();
    let mut winners = BTreeSet::new();
    let mut conflicts = 0usize;
    for event in log.iter() {
        if let DecisionKind::ConflictResolved { winner, .. } = event.kind {
            winners.insert(winner);
            conflicts += 1;
        }
    }
    (conflicts, winners)
}

#[test]
fn crossing_joins_resolve_to_a_single_winner_on_every_switch() {
    let mut saw_conflict = false;
    // Seeds 4 and 6 are known conflicting schedules; scanning a small range
    // keeps the regression alive if the delivery order ever shifts.
    for seed in 0..10u64 {
        let (conflicts, winners) = crossing_joins(seed);
        if conflicts > 0 {
            saw_conflict = true;
            assert_eq!(
                winners.len(),
                1,
                "seed {seed}: switches disagreed on the conflict winner: {winners:?}"
            );
        }
    }
    assert!(
        saw_conflict,
        "no explored schedule made the crossing proposals conflict"
    );
}
