//! Integration tests asserting the paper's headline evaluation claims at
//! reduced scale (the full sweeps live in `dgmc-experiments` binaries).

use dgmc::experiments::workload::{self, BurstParams, SparseParams};
use dgmc::experiments::{compare, presets, runner};
use dgmc::prelude::*;

#[test]
fn claim_normal_traffic_has_minimal_overhead() {
    // "In normal periods ... both ratios are very close to [the minimum],
    // demonstrating the minimal overhead imposed by the protocol."
    for seed in 0..5 {
        let m = runner::run_seeded(40, seed, DgmcConfig::computation_dominated(), |rng, net| {
            workload::sparse(rng, net, &SparseParams::default())
        })
        .unwrap();
        assert_eq!(m.proposals_per_event(), 1.0, "seed {seed}");
        assert_eq!(m.floodings_per_event(), 1.0, "seed {seed}");
    }
}

#[test]
fn claim_bursty_overhead_stays_bounded() {
    // "The D-GMC protocol generates fewer than 5 topology computations
    // [per event] during the bursty period for all cases" and "fewer than
    // 5 advertisements per event" (Experiment 1 regime).
    for seed in 10..15 {
        let m = runner::run_seeded(60, seed, DgmcConfig::computation_dominated(), |rng, net| {
            workload::bursty(rng, net, &BurstParams::default())
        })
        .unwrap();
        assert!(
            m.proposals_per_event() < 5.0,
            "seed {seed}: {}",
            m.proposals_per_event()
        );
        assert!(
            m.floodings_per_event() < 5.0,
            "seed {seed}: {}",
            m.floodings_per_event()
        );
    }
}

#[test]
fn claim_wan_regime_computes_more_but_converges_faster_in_rounds() {
    // Experiment 2 vs Experiment 1: "this combination of parameter values
    // incurs more topology computations per event ... The convergence time
    // is slightly better" (rounds are longer in the WAN regime).
    let mut lan_props = 0.0;
    let mut wan_props = 0.0;
    let mut lan_rounds = 0.0;
    let mut wan_rounds = 0.0;
    let runs = 5;
    for seed in 0..runs {
        let lan = runner::run_seeded(60, seed, DgmcConfig::computation_dominated(), |rng, net| {
            workload::bursty(rng, net, &BurstParams::default())
        })
        .unwrap();
        let wan = runner::run_seeded(
            60,
            seed,
            DgmcConfig::communication_dominated(),
            |rng, net| workload::bursty(rng, net, &BurstParams::default()),
        )
        .unwrap();
        lan_props += lan.proposals_per_event();
        wan_props += wan.proposals_per_event();
        lan_rounds += lan.convergence_rounds.unwrap_or(0.0);
        wan_rounds += wan.convergence_rounds.unwrap_or(0.0);
    }
    assert!(
        wan_props > lan_props,
        "WAN regime must compute more: {wan_props} vs {lan_props}"
    );
    assert!(
        wan_rounds < lan_rounds,
        "WAN regime converges in fewer (longer) rounds: {wan_rounds} vs {lan_rounds}"
    );
}

#[test]
fn claim_dgmc_beats_brute_force_and_mospf() {
    // Section 4: "In most situations, there is only one topology
    // computation and one flooding operation per event. This compares very
    // favorably with the MOSPF protocol, which requires a topology
    // computation at every switch involved in the MC" — and Section 2's
    // brute force costs ~n computations per event.
    let rows = compare::compare_protocols(&[30], 3, 99);
    let r = &rows[0];
    assert!((r.dgmc_computations.mean() - 1.0).abs() < 0.01);
    assert!(
        (r.bf_computations.mean() - 30.0).abs() < 0.01,
        "brute force = n"
    );
    assert!(r.mospf_computations.mean() > 2.0, "MOSPF = on-tree routers");
    assert!(r.dgmc_computations.mean() < r.mospf_computations.mean());
    assert!(r.mospf_computations.mean() < r.bf_computations.mean());
}

#[test]
fn claim_cbt_core_placement_matters_but_dgmc_has_no_core() {
    // Section 5: CBT's "selection of a good core node may be impossible";
    // D-GMC trees need none. Quantify the placement penalty.
    let rows = compare::compare_cbt(&[40], 5, 123);
    assert!(
        rows[0].core_delay_ratio.mean() > 1.2,
        "a bad core costs real delay: {}",
        rows[0].core_delay_ratio.mean()
    );
}

#[test]
fn quick_experiment_sweeps_have_zero_failures() {
    for spec in [
        presets::quick(presets::experiment1()),
        presets::quick(presets::experiment2()),
        presets::quick(presets::experiment3()),
    ] {
        let mut small = spec.clone();
        small.sizes = vec![20, 40];
        small.graphs_per_size = 2;
        let results = presets::run_experiment(&small);
        for row in &results.rows {
            assert_eq!(row.failures, 0, "{} n={}", results.name, row.n);
            assert!(row.proposals.mean() >= 1.0);
        }
    }
}
