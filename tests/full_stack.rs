//! Cross-crate integration tests: multiple concurrent MCs, mixed types,
//! protocol-versus-baseline tree equivalence, and failures mid-burst.

use dgmc::baselines::brute_force::{self, BfMsg, BfSwitch};
use dgmc::prelude::*;
use dgmc::protocol::convergence;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::rc::Rc;

fn join_msg(mc: McId, mc_type: McType, role: Role) -> SwitchMsg {
    SwitchMsg::HostJoin { mc, mc_type, role }
}

#[test]
fn three_concurrent_connections_of_different_types() {
    let net = dgmc::topology::generate::grid(5, 5);
    let mut sim = build_dgmc_sim(
        &net,
        DgmcConfig::computation_dominated(),
        Rc::new(SphStrategy::new()),
    );
    let conference = McId(1);
    let feed = McId(2);
    let logsvc = McId(3);
    // All three MCs see interleaved joins at overlapping times.
    for (i, n) in [0u32, 4, 20, 24].into_iter().enumerate() {
        sim.inject(
            ActorId(n),
            SimDuration::micros(7 * i as u64),
            join_msg(conference, McType::Symmetric, Role::SenderReceiver),
        );
    }
    sim.inject(
        ActorId(12),
        SimDuration::micros(3),
        join_msg(feed, McType::Asymmetric, Role::Sender),
    );
    for (i, n) in [2u32, 10, 22].into_iter().enumerate() {
        sim.inject(
            ActorId(n),
            SimDuration::micros(11 * i as u64),
            join_msg(feed, McType::Asymmetric, Role::Receiver),
        );
    }
    for (i, n) in [6u32, 18].into_iter().enumerate() {
        sim.inject(
            ActorId(n),
            SimDuration::micros(5 * i as u64),
            join_msg(logsvc, McType::ReceiverOnly, Role::Receiver),
        );
    }
    sim.run_to_quiescence();
    // Each MC independently reaches consensus with a valid tree.
    for (mc, members) in [(conference, 4), (feed, 4), (logsvc, 2)] {
        let c = convergence::check_consensus(&sim, mc).unwrap_or_else(|e| panic!("{mc}: {e}"));
        assert_eq!(c.members.len(), members, "{mc}");
        let tree = c.topology.expect("tree installed");
        assert_eq!(tree.validate(&net, tree.terminals()), Ok(()), "{mc}");
    }
    // Per-MC protocol activity proceeds independently: a packet in one MC
    // does not reach members of another.
    sim.inject(
        ActorId(0),
        SimDuration::millis(5),
        SwitchMsg::SendData {
            mc: conference,
            packet_id: 9,
        },
    );
    sim.run_to_quiescence();
    assert_eq!(convergence::total_deliveries(&sim, conference, 9), 4);
    assert_eq!(convergence::total_deliveries(&sim, feed, 9), 0);
}

#[test]
fn dgmc_and_brute_force_install_comparable_trees() {
    // Same members, same network: D-GMC's sequentially grown tree and the
    // brute-force from-scratch tree both validly span the members; the
    // incremental tree's cost stays within the known competitiveness band.
    let mut rng = StdRng::seed_from_u64(5);
    let net = dgmc::topology::generate::waxman(
        &mut rng,
        40,
        &dgmc::topology::generate::WaxmanParams::default(),
    );
    let members = dgmc::topology::generate::sample_nodes(&mut rng, &net, 6);
    let mc = McId(1);

    let mut sim = build_dgmc_sim(
        &net,
        DgmcConfig::computation_dominated(),
        Rc::new(SphStrategy::new()),
    );
    let mut bf = brute_force::build_bf_sim(
        &net,
        SimDuration::micros(300),
        SimDuration::micros(10),
        Rc::new(SphStrategy::new()),
    );
    for (i, m) in members.iter().enumerate() {
        sim.inject(
            ActorId(m.0),
            SimDuration::millis(i as u64),
            join_msg(mc, McType::Symmetric, Role::SenderReceiver),
        );
        bf.inject(
            ActorId(m.0),
            SimDuration::millis(i as u64),
            BfMsg::HostJoin {
                mc,
                role: Role::SenderReceiver,
            },
        );
    }
    sim.run_to_quiescence();
    bf.run_to_quiescence();

    let dgmc_tree = convergence::check_consensus(&sim, mc)
        .unwrap()
        .topology
        .unwrap();
    let bf_tree = bf
        .actor_as::<BfSwitch>(ActorId(0))
        .unwrap()
        .installed(mc)
        .cloned()
        .unwrap();
    let want: std::collections::BTreeSet<NodeId> = members.iter().copied().collect();
    assert_eq!(dgmc_tree.validate(&net, &want), Ok(()));
    assert_eq!(bf_tree.validate(&net, &want), Ok(()));
    let dc = dgmc_tree.total_cost(&net).unwrap() as f64;
    let bc = bf_tree.total_cost(&net).unwrap() as f64;
    assert!(dc / bc < 2.0, "incremental tree within 2x: {dc} vs {bc}");
}

#[test]
fn link_failure_in_the_middle_of_a_burst() {
    // The nastiest interleaving: membership burst and a tree-link failure
    // overlap. The protocol must still converge to a valid tree on the
    // degraded network.
    let net = dgmc::topology::generate::grid(4, 4);
    let mut sim = build_dgmc_sim(
        &net,
        DgmcConfig::computation_dominated(),
        Rc::new(SphStrategy::new()),
    );
    let mc = McId(1);
    // Establish a tree along the top row.
    for (i, n) in [0u32, 1, 2, 3].into_iter().enumerate() {
        sim.inject(
            ActorId(n),
            SimDuration::millis(i as u64),
            join_msg(mc, McType::Symmetric, Role::SenderReceiver),
        );
    }
    sim.run_to_quiescence();
    // Burst: two joins + cut the 1-2 link, all within 50us.
    sim.inject(
        ActorId(12),
        SimDuration::micros(10),
        join_msg(mc, McType::Symmetric, Role::SenderReceiver),
    );
    let link = net.link_between(NodeId(1), NodeId(2)).unwrap().id;
    inject_link_event(&mut sim, &net, link, false, SimDuration::micros(20));
    sim.inject(
        ActorId(15),
        SimDuration::micros(30),
        join_msg(mc, McType::Symmetric, Role::SenderReceiver),
    );
    sim.run_to_quiescence();

    let mut degraded = net.clone();
    degraded
        .set_link_state(link, dgmc::topology::LinkState::Down)
        .unwrap();
    let c = convergence::check_consensus(&sim, mc).unwrap();
    assert_eq!(c.members.len(), 6);
    let tree = c.topology.unwrap();
    assert_eq!(tree.validate(&degraded, tree.terminals()), Ok(()));
    assert!(!tree.contains_edge(NodeId(1), NodeId(2)));
}

#[test]
fn rapid_rejoin_of_the_same_connection_id() {
    // Destroy an MC completely, then recreate it under the same id: the
    // fresh state must not be confused by the old incarnation.
    let net = dgmc::topology::generate::ring(6);
    let mut sim = build_dgmc_sim(
        &net,
        DgmcConfig::computation_dominated(),
        Rc::new(SphStrategy::new()),
    );
    let mc = McId(4);
    sim.inject(
        ActorId(0),
        SimDuration::ZERO,
        join_msg(mc, McType::Symmetric, Role::SenderReceiver),
    );
    sim.inject(
        ActorId(3),
        SimDuration::millis(1),
        join_msg(mc, McType::Symmetric, Role::SenderReceiver),
    );
    sim.run_to_quiescence();
    sim.inject(
        ActorId(0),
        SimDuration::millis(2),
        SwitchMsg::HostLeave { mc },
    );
    sim.inject(
        ActorId(3),
        SimDuration::millis(3),
        SwitchMsg::HostLeave { mc },
    );
    sim.run_to_quiescence();
    let destroyed = convergence::check_consensus(&sim, mc).unwrap();
    assert!(destroyed.members.is_empty());
    // Recreate with different members.
    sim.inject(
        ActorId(1),
        SimDuration::millis(10),
        join_msg(mc, McType::Symmetric, Role::SenderReceiver),
    );
    sim.inject(
        ActorId(4),
        SimDuration::millis(11),
        join_msg(mc, McType::Symmetric, Role::SenderReceiver),
    );
    sim.run_to_quiescence();
    let recreated = convergence::check_consensus(&sim, mc).unwrap();
    assert_eq!(
        recreated.members.keys().copied().collect::<Vec<_>>(),
        vec![NodeId(1), NodeId(4)]
    );
    let tree = recreated.topology.unwrap();
    assert_eq!(tree.validate(&net, tree.terminals()), Ok(()));
}

#[test]
fn facade_prelude_is_sufficient_for_the_readme_snippet() {
    // The README quickstart compiles and runs through the prelude alone.
    let net = dgmc::topology::generate::ring(5);
    let mut sim = build_dgmc_sim(
        &net,
        DgmcConfig::computation_dominated(),
        Rc::new(SphStrategy::new()),
    );
    sim.inject(
        ActorId(0),
        SimDuration::ZERO,
        SwitchMsg::HostJoin {
            mc: McId(1),
            mc_type: McType::Symmetric,
            role: Role::SenderReceiver,
        },
    );
    sim.run_to_quiescence();
    assert!(check_consensus(&sim, McId(1)).is_ok());
}
