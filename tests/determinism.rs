//! Reproducibility: identical seeds produce identical simulations — the
//! foundation of every table in EXPERIMENTS.md.

use dgmc::experiments::workload::{self, BurstParams};
use dgmc::experiments::{presets, runner};
use dgmc::prelude::*;
use std::collections::BTreeMap;

fn run_once(seed: u64) -> (BTreeMap<String, u64>, Option<McTopology>) {
    use dgmc::protocol::convergence;
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let net = dgmc::topology::generate::waxman(
        &mut rng,
        40,
        &dgmc::topology::generate::WaxmanParams::default(),
    );
    let wl = workload::bursty(&mut rng, &net, &BurstParams::default());
    let mut sim = build_dgmc_sim(
        &net,
        DgmcConfig::computation_dominated(),
        std::rc::Rc::new(SphStrategy::new()),
    );
    for (i, m) in wl.initial_members.iter().enumerate() {
        sim.inject(
            ActorId(m.0),
            SimDuration::millis(200) * i as u64,
            SwitchMsg::HostJoin {
                mc: McId(1),
                mc_type: McType::Symmetric,
                role: Role::SenderReceiver,
            },
        );
    }
    sim.run_to_quiescence();
    for e in &wl.events {
        let msg = if e.join {
            SwitchMsg::HostJoin {
                mc: McId(1),
                mc_type: McType::Symmetric,
                role: Role::SenderReceiver,
            }
        } else {
            SwitchMsg::HostLeave { mc: McId(1) }
        };
        sim.inject(ActorId(e.node.0), e.at, msg);
    }
    sim.run_to_quiescence();
    let topo = convergence::check_consensus(&sim, McId(1))
        .unwrap()
        .topology;
    (sim.counters(), topo)
}

#[test]
fn identical_seeds_reproduce_every_counter_and_tree() {
    let (c1, t1) = run_once(0xD5EE);
    let (c2, t2) = run_once(0xD5EE);
    assert_eq!(c1, c2, "counters must match bit-for-bit");
    assert_eq!(t1, t2, "installed topology must match");
    // And a different seed genuinely differs.
    let (c3, _) = run_once(0xD5EF);
    assert_ne!(c1, c3, "different seeds must explore different runs");
}

#[test]
fn run_seeded_is_reproducible() {
    let a = runner::run_seeded(30, 7, DgmcConfig::communication_dominated(), |rng, net| {
        workload::bursty(rng, net, &BurstParams::default())
    })
    .unwrap();
    let b = runner::run_seeded(30, 7, DgmcConfig::communication_dominated(), |rng, net| {
        workload::bursty(rng, net, &BurstParams::default())
    })
    .unwrap();
    assert_eq!(a, b);
}

#[test]
fn metrics_snapshots_are_byte_identical_across_same_seed_runs() {
    use dgmc::experiments::report;
    let base = std::env::temp_dir().join(format!("dgmc-determinism-{}", std::process::id()));
    let run = |sub: &str| {
        let m = runner::run_seeded(30, 7, DgmcConfig::computation_dominated(), |rng, net| {
            workload::bursty(rng, net, &BurstParams::default())
        })
        .unwrap();
        let rendered = report::metrics_snapshot("determinism", &m.registry);
        let path = report::write_metrics_snapshot(
            base.join(sub),
            "determinism",
            "determinism",
            &m.registry,
        )
        .unwrap();
        (rendered, std::fs::read(path).unwrap())
    };
    let (r1, bytes1) = run("a");
    let (r2, bytes2) = run("b");
    assert_eq!(r1, r2, "rendered snapshot must match exactly");
    assert_eq!(
        bytes1, bytes2,
        "written *.metrics.json files must be byte-identical"
    );
    assert_eq!(r1.into_bytes(), bytes1, "file content is the rendering");
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn cached_runs_write_byte_identical_metrics_and_match_uncached_protocol() {
    use dgmc::experiments::report;
    use dgmc::topology::SpfCache;
    let run = |cache: SpfCache| {
        let m = runner::run_seeded_with_cache(
            30,
            11,
            DgmcConfig::computation_dominated(),
            |rng, net| workload::bursty(rng, net, &BurstParams::default()),
            cache,
        )
        .unwrap();
        (
            report::metrics_snapshot("cache-determinism", &m.registry),
            m,
        )
    };
    // Two cached runs: byte-identical metrics.json despite the cache's own
    // wall-clock timings (those never enter the registry).
    let (snap1, m1) = run(SpfCache::new());
    let (snap2, m2) = run(SpfCache::new());
    assert_eq!(snap1, snap2, "cached snapshots must be byte-identical");
    assert_eq!(m1, m2);
    // An uncached run: every protocol-level counter identical; only the
    // spf_cache.* instrumentation itself differs.
    let (_, uncached) = run(SpfCache::disabled());
    assert_eq!(m1.events, uncached.events);
    assert_eq!(m1.computations, uncached.computations);
    assert_eq!(m1.floodings, uncached.floodings);
    assert_eq!(m1.withdrawn, uncached.withdrawn);
    assert_eq!(m1.convergence_rounds, uncached.convergence_rounds);
    for (name, value) in m1.registry.counters_map() {
        if name.starts_with("spf_cache.") {
            continue;
        }
        assert_eq!(
            value,
            uncached.registry.counter_value(&name),
            "{name} diverged under caching"
        );
    }
    assert!(
        m1.registry.counter_value("spf_cache.hits") > 0,
        "the shared cache must actually be hit during the measured phase"
    );
}

#[test]
fn experiment_sweeps_are_reproducible() {
    let mut spec = presets::quick(presets::experiment1());
    spec.sizes = vec![20];
    spec.graphs_per_size = 2;
    let r1 = presets::run_experiment(&spec);
    let r2 = presets::run_experiment(&spec);
    assert_eq!(r1.rows[0].proposals.mean(), r2.rows[0].proposals.mean());
    assert_eq!(r1.rows[0].floodings.mean(), r2.rows[0].floodings.mean());
    assert_eq!(r1.rows[0].convergence.mean(), r2.rows[0].convergence.mean());
}
