//! Multi-process end-to-end runs of the localhost mesh.
//!
//! The slow tests spawn five `dgmc-node` processes each and are `#[ignore]`d
//! so `cargo test` stays fast; `ci.sh` runs them with `--ignored`. The
//! deadline-guard test is cheap (it never starts a real node) and always
//! runs — it proves a hung child fails the suite instead of wedging it.

use dgmc::node::launcher::{run_scenario_mesh, Mesh, MeshOptions};
use dgmc::node::proto::node_counters;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn scenario_text() -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("scenarios/teleconference_mesh.dgmc");
    std::fs::read_to_string(&path).expect("teleconference scenario exists")
}

fn temp_out(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dgmc-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Five nodes on loopback, a join wave, data, a link flap: the mesh must
/// converge with zero cross-node violations and a priced multicast tree.
#[test]
#[ignore = "multi-process e2e; run via ci.sh (cargo test -- --ignored)"]
fn five_node_mesh_converges_on_the_teleconference() {
    let out_dir = temp_out("smoke");
    let mut opts = MeshOptions::new(&out_dir);
    opts.deadline = Duration::from_secs(60);
    let report = run_scenario_mesh(&scenario_text(), &opts).expect("mesh run succeeds");

    assert_eq!(report.nodes, 5);
    assert!(
        report.violations.is_empty(),
        "violations: {:?}",
        report.violations
    );
    let cost = report.tree_costs.get(&1).copied().unwrap_or(0);
    assert!(cost > 0, "connection 1 must converge to a priced tree");
    // All five members deliver all three packets: 15 tree deliveries show
    // up as engine counters merged across nodes.
    let deliveries = report
        .counters
        .get("dgmc.data_delivered")
        .copied()
        .unwrap_or(0);
    assert_eq!(deliveries, 15, "counters: {:?}", report.counters);
    assert!(report.counters[node_counters::RX_DATAGRAMS] > 0);

    let json = report.report_json("node_e2e_smoke");
    assert!(json.contains("\"schema\":\"dgmc.mesh/1\""));
    assert!(json.contains("\"invariant_violations\":0"));
    let _ = std::fs::remove_dir_all(&out_dir);
}

/// The same teleconference under a lossy UDP shim (the socket-world twin of
/// the DES `FaultyNet` recovered-loss regime): dropped datagrams are
/// retransmitted and the mesh still converges to the same invariants.
#[test]
#[ignore = "multi-process e2e; run via ci.sh (cargo test -- --ignored)"]
fn lossy_mesh_still_converges() {
    let out_dir = temp_out("loss");
    // Same shape as dgmc::des::FaultPlan::to_json: recovered loss only, so
    // every dropped datagram is eventually retransmitted.
    let plan = r#"{
        "default": {"loss": 0.25, "hard_loss": 0.0, "duplicate": 0.0, "jitter_ns": 50000},
        "overrides": [],
        "retransmit_after_ns": 2000000,
        "max_retries": 8,
        "flaps": [],
        "outages": []
    }"#;
    std::fs::create_dir_all(&out_dir).expect("create out dir");
    let plan_path = out_dir.join("fault_plan.json");
    std::fs::write(&plan_path, plan).expect("write fault plan");

    let mut opts = MeshOptions::new(&out_dir);
    opts.deadline = Duration::from_secs(120);
    opts.fault_plan = Some(plan_path);
    opts.seed = 0xD6_1996;
    let report = run_scenario_mesh(&scenario_text(), &opts).expect("lossy mesh run succeeds");

    assert!(
        report.violations.is_empty(),
        "violations under loss: {:?}",
        report.violations
    );
    assert!(report.tree_costs.get(&1).copied().unwrap_or(0) > 0);
    assert_eq!(
        report
            .counters
            .get("dgmc.data_delivered")
            .copied()
            .unwrap_or(0),
        15,
        "recovered loss must not lose deliveries: {:?}",
        report.counters
    );
    // With 25% loss across hundreds of datagrams the shim must have fired
    // retransmissions, and recovered loss never drops outright.
    assert!(
        report
            .counters
            .get(node_counters::SHIM_RETRANSMITS)
            .copied()
            .unwrap_or(0)
            > 0,
        "counters: {:?}",
        report.counters
    );
    assert_eq!(
        report
            .counters
            .get(node_counters::SHIM_DROPS)
            .copied()
            .unwrap_or(0),
        0
    );
    let _ = std::fs::remove_dir_all(&out_dir);
}

/// Harness hygiene: a child that never completes the `ready` handshake
/// fails the run within the deadline — it cannot wedge the test suite.
#[test]
fn hung_child_fails_within_the_deadline() {
    let scenario = dgmc::experiments::scenario::parse("net ring 3\njoin 0 @0ms mc=1\n")
        .expect("scenario parses");
    let out_dir = temp_out("hung");
    std::fs::create_dir_all(&out_dir).expect("create out dir");
    // A stand-in node that ignores its flags, prints nothing and sleeps
    // forever: the degenerate hung child. The launcher kills it on failure.
    let hung = out_dir.join("hung-node.sh");
    std::fs::write(&hung, "#!/bin/sh\nexec sleep 1000\n").expect("write script");
    {
        use std::os::unix::fs::PermissionsExt;
        std::fs::set_permissions(&hung, std::fs::Permissions::from_mode(0o755))
            .expect("make executable");
    }
    let mut opts = MeshOptions::new(&out_dir);
    opts.binary = Some(hung);
    opts.deadline = Duration::from_secs(2);
    let start = Instant::now();
    let result = Mesh::spawn(&scenario, &opts);
    assert!(result.is_err(), "a silent child must fail the spawn");
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "failure must be deadline-bounded, not a hang"
    );
    let _ = std::fs::remove_dir_all(&out_dir);
}
