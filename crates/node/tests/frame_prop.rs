//! Property tests of the outer datagram framing: round-trip, torn/garbage
//! totality, and the `frame_is_sane` gate that keeps structurally valid but
//! semantically poisonous frames away from the engine.

use dgmc_core::switch::DgmcPayload;
use dgmc_core::{McEventKind, McId, McLsa, Timestamp};
use dgmc_lsr::lsa::{FloodId, FloodPacket};
use dgmc_node::frame::{decode_datagram, encode_datagram, frame_is_sane, Frame, MAGIC};
use dgmc_topology::NodeId;
use proptest::prelude::*;

fn arb_mc_flood() -> impl Strategy<Value = Frame> {
    (
        (0u32..8, 0u64..100, 1u32..5),
        (0u64..4, proptest::collection::vec(0u64..50, 8)),
    )
        .prop_map(|((source, seq, mc), (epoch, stamp))| {
            Frame::Flood(FloodPacket {
                id: FloodId {
                    origin: NodeId(source),
                    seq,
                },
                payload: DgmcPayload::Mc(McLsa {
                    source: NodeId(source),
                    event: McEventKind::Leave,
                    mc: McId(mc),
                    mc_type: dgmc_mctree::McType::Symmetric,
                    epoch,
                    proposal: None,
                    stamp: Timestamp::from_components(stamp),
                }),
            })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encoding from any in-range sender and decoding restores the sender
    /// and a frame that re-encodes byte-identically.
    #[test]
    fn datagram_round_trips(from in 0u32..8, frame in arb_mc_flood()) {
        let bytes = encode_datagram(NodeId(from), &frame);
        let (sender, back) = decode_datagram(&bytes).expect("decode");
        prop_assert_eq!(sender, NodeId(from));
        prop_assert_eq!(encode_datagram(sender, &back), bytes);
        prop_assert!(frame_is_sane(sender, &back, 8));
    }

    /// Every truncated prefix of a valid datagram is rejected cleanly —
    /// the trailing-bytes check makes full-length the only accepted cut.
    #[test]
    fn truncated_datagrams_rejected(
        frame in arb_mc_flood(),
        cut in any::<prop::sample::Index>(),
    ) {
        let bytes = encode_datagram(NodeId(1), &frame);
        let cut = cut.index(bytes.len()); // strictly below full length
        prop_assert!(decode_datagram(&bytes[..cut]).is_err());
    }

    /// Arbitrary byte soup never panics the decoder; anything that decodes
    /// survives `frame_is_sane` without panicking either.
    #[test]
    fn garbage_never_panics(mut bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        if let Ok((from, frame)) = decode_datagram(&bytes) {
            let _ = frame_is_sane(from, &frame, 8);
        }
        // Bias towards the interesting prefix so decode goes deep.
        if bytes.len() >= 2 {
            bytes[0] = MAGIC;
            bytes[1] = 0x01;
            if let Ok((from, frame)) = decode_datagram(&bytes) {
                let _ = frame_is_sane(from, &frame, 8);
            }
        }
    }

    /// A single flipped byte either still decodes (and stays sane-checkable)
    /// or errors cleanly — never a panic, never an engine-visible width lie.
    #[test]
    fn torn_datagrams_stay_total(
        frame in arb_mc_flood(),
        at in any::<prop::sample::Index>(),
        xor in 1u8..=255,
    ) {
        let mut bytes = encode_datagram(NodeId(2), &frame);
        let at = at.index(bytes.len());
        bytes[at] ^= xor;
        if let Ok((from, back)) = decode_datagram(&bytes) {
            if frame_is_sane(from, &back, 8) {
                // Sane frames must carry engine-safe timestamps.
                if let Frame::Flood(packet) = &back {
                    if let DgmcPayload::Mc(lsa) = &packet.payload {
                        prop_assert_eq!(lsa.stamp.len(), 8);
                    }
                }
            }
        }
    }

    /// Senders outside the network are insane regardless of payload.
    #[test]
    fn out_of_range_sender_is_insane(frame in arb_mc_flood(), from in 8u32..100) {
        let bytes = encode_datagram(NodeId(from), &frame);
        let (sender, back) = decode_datagram(&bytes).expect("framing is still valid");
        prop_assert!(!frame_is_sane(sender, &back, 8));
    }
}
