//! Multi-process localhost harness: spawns N `dgmc-node` processes, drives
//! a scenario through their control sockets, and merges the per-node
//! artifacts into the DES report schema.
//!
//! The launcher is the socket-world twin of the DES scenario runner
//! (`dgmc_experiments::scenario::run`): it parses the same scenario
//! language, applies the same step decomposition (`cut`/`repair` become
//! per-endpoint link events with the lower endpoint as detector,
//! `fail-node`/`revive-node` become an admin event plus neighbor-detected
//! link events) and, between steps, waits for the mesh to go quiescent —
//! the real-time equivalent of `run_to_quiescence`. That stepping is what
//! makes per-node decision logs comparable with a stepped DES reference.
//!
//! Everything is deadline-guarded: a child that never prints its `ready`
//! handshake, never answers a control command, or never goes quiet fails
//! the run instead of hanging it, and children are killed on drop so a
//! failing test leaves no orphan processes behind.

use crate::snapshot::per_switch_logs;
use dgmc_experiments::scenario::{Scenario, Step};
use dgmc_obs::{JsonValue, MetricsRegistry};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Launcher configuration.
#[derive(Debug, Clone)]
pub struct MeshOptions {
    /// Path to the `dgmc-node` binary (`None` = discover via
    /// [`ensure_node_binary`]).
    pub binary: Option<PathBuf>,
    /// `Tc` in nanoseconds handed to every node.
    pub tc_nanos: u64,
    /// Directory for per-node artifacts.
    pub out_dir: PathBuf,
    /// Fault-plan JSON file handed to every node, if any.
    pub fault_plan: Option<PathBuf>,
    /// Loss shim seed.
    pub seed: u64,
    /// Deadline for each barrier (spawn handshake, per-step quiescence,
    /// teardown). A mesh that blows a deadline is killed and the run fails.
    pub deadline: Duration,
    /// Per-node decision log capacity.
    pub log_capacity: usize,
}

impl MeshOptions {
    /// Defaults: discovered binary, Tc = 300 µs, 30 s deadlines.
    pub fn new(out_dir: impl Into<PathBuf>) -> MeshOptions {
        MeshOptions {
            binary: None,
            tc_nanos: 300_000,
            out_dir: out_dir.into(),
            fault_plan: None,
            seed: 0,
            deadline: Duration::from_secs(30),
            log_capacity: 65_536,
        }
    }
}

/// A launcher failure (spawn, control protocol, deadline, or invariant).
#[derive(Debug)]
pub struct MeshError {
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for MeshError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for MeshError {}

fn mesh_err(message: impl Into<String>) -> MeshError {
    MeshError {
        message: message.into(),
    }
}

/// Locates the `dgmc-node` binary: the `DGMC_NODE_BIN` env var, then a
/// sibling of the current executable's target directory, then a nested
/// `cargo build` as a last resort (works from `cargo test` of any package).
///
/// # Errors
///
/// Fails when no binary can be found or built.
pub fn ensure_node_binary() -> Result<PathBuf, MeshError> {
    if let Some(p) = std::env::var_os("DGMC_NODE_BIN") {
        let p = PathBuf::from(p);
        if p.is_file() {
            return Ok(p);
        }
        return Err(mesh_err(format!(
            "DGMC_NODE_BIN={} does not exist",
            p.display()
        )));
    }
    if let Some(found) = find_near_current_exe() {
        return Ok(found);
    }
    let cargo = std::env::var_os("CARGO").unwrap_or_else(|| "cargo".into());
    let built = Command::new(cargo)
        .args([
            "build",
            "-q",
            "--offline",
            "-p",
            "dgmc-node",
            "--bin",
            "dgmc-node",
        ])
        .status();
    match built {
        Ok(status) if status.success() => find_near_current_exe()
            .ok_or_else(|| mesh_err("built dgmc-node but cannot locate it near current_exe")),
        Ok(status) => Err(mesh_err(format!(
            "cargo build -p dgmc-node failed: {status}"
        ))),
        Err(e) => Err(mesh_err(format!(
            "cannot run cargo to build dgmc-node: {e}"
        ))),
    }
}

/// Scans ancestors of `current_exe` (e.g. `target/debug/deps/test-…`) for a
/// `dgmc-node` sibling.
fn find_near_current_exe() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    for dir in exe.ancestors().skip(1).take(4) {
        let candidate = dir.join("dgmc-node");
        if candidate.is_file() {
            return Some(candidate);
        }
    }
    None
}

struct Node {
    child: Child,
    ctl: TcpStream,
    reader: BufReader<TcpStream>,
    udp_addr: String,
}

/// A running localhost mesh of `dgmc-node` processes.
pub struct Mesh {
    nodes: Vec<Node>,
    deadline: Duration,
    out_dir: PathBuf,
}

impl Drop for Mesh {
    fn drop(&mut self) {
        for node in &mut self.nodes {
            let _ = node.child.kill();
            let _ = node.child.wait();
        }
    }
}

impl Mesh {
    /// Spawns one node process per switch of `scenario.net` and wires the
    /// peer table. Links are serialized in `net.links()` order so every
    /// process reconstructs identical `LinkId`s.
    ///
    /// # Errors
    ///
    /// Fails when a child cannot be spawned, misses its `ready` handshake
    /// deadline, or rejects a control command.
    pub fn spawn(scenario: &Scenario, opts: &MeshOptions) -> Result<Mesh, MeshError> {
        let binary = match &opts.binary {
            Some(p) => p.clone(),
            None => ensure_node_binary()?,
        };
        let n = scenario.net.len();
        let links: Vec<String> = scenario
            .net
            .links()
            .map(|l| format!("{}-{}:{}", l.a.0, l.b.0, l.cost))
            .collect();
        let links_spec = links.join(",");
        std::fs::create_dir_all(&opts.out_dir)
            .map_err(|e| mesh_err(format!("cannot create {}: {e}", opts.out_dir.display())))?;

        // Children go straight into the mesh so an error later in the loop
        // still kills the ones already running (Drop).
        let mut mesh = Mesh {
            nodes: Vec::with_capacity(n),
            deadline: opts.deadline,
            out_dir: opts.out_dir.clone(),
        };
        for id in 0..n {
            let mut cmd = Command::new(&binary);
            cmd.arg("--id")
                .arg(id.to_string())
                .arg("--nodes")
                .arg(n.to_string())
                .arg("--links")
                .arg(&links_spec)
                .arg("--tc-ns")
                .arg(opts.tc_nanos.to_string())
                .arg("--out")
                .arg(&opts.out_dir)
                .arg("--seed")
                .arg(opts.seed.to_string())
                .arg("--log-capacity")
                .arg(opts.log_capacity.to_string())
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit());
            if let Some(plan) = &opts.fault_plan {
                cmd.arg("--fault-plan").arg(plan);
            }
            let mut child = cmd
                .spawn()
                .map_err(|e| mesh_err(format!("cannot spawn {}: {e}", binary.display())))?;
            let stdout = child.stdout.take().expect("stdout piped");
            // A reader thread turns the blocking pipe read into a
            // deadline-guarded handshake (and keeps draining afterwards so
            // the child can never block on a full stdout pipe).
            let (tx, rx) = mpsc::channel::<String>();
            std::thread::spawn(move || {
                let reader = BufReader::new(stdout);
                for line in reader.lines() {
                    match line {
                        Ok(l) => {
                            if tx.send(l).is_err() {
                                // Receiver gone: keep draining silently.
                            }
                        }
                        Err(_) => break,
                    }
                }
            });
            let handshake = (|| {
                let ready = rx.recv_timeout(opts.deadline).map_err(|_| {
                    mesh_err(format!("node {id}: no ready handshake within deadline"))
                })?;
                let (udp_addr, ctl_addr) = parse_ready(&ready)
                    .ok_or_else(|| mesh_err(format!("node {id}: bad handshake {ready:?}")))?;
                let ctl = TcpStream::connect(&ctl_addr)
                    .map_err(|e| mesh_err(format!("node {id}: cannot connect control: {e}")))?;
                ctl.set_read_timeout(Some(opts.deadline))
                    .map_err(|e| mesh_err(format!("node {id}: set_read_timeout: {e}")))?;
                let reader = BufReader::new(
                    ctl.try_clone()
                        .map_err(|e| mesh_err(format!("node {id}: clone control: {e}")))?,
                );
                Ok((ctl, reader, udp_addr))
            })();
            let (ctl, reader, udp_addr) = match handshake {
                Ok(parts) => parts,
                Err(e) => {
                    // Dropping a Child never kills it: do so explicitly, or
                    // a half-spawned node outlives the failed launch.
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err(e);
                }
            };
            mesh.nodes.push(Node {
                child,
                ctl,
                reader,
                udp_addr,
            });
        }

        let peers_spec: Vec<String> = mesh
            .nodes
            .iter()
            .enumerate()
            .map(|(id, node)| format!("{id}={}", node.udp_addr))
            .collect();
        let peers_cmd = format!("peers {}", peers_spec.join(";"));
        for id in 0..mesh.nodes.len() {
            mesh.expect_ok(id, &peers_cmd)?;
        }
        Ok(mesh)
    }

    /// Number of node processes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the mesh is empty (never the case after `spawn`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Sends one control command to node `id` and returns the reply line.
    ///
    /// # Errors
    ///
    /// Fails on a dead control connection or a blown read deadline.
    pub fn command(&mut self, id: usize, cmd: &str) -> Result<String, MeshError> {
        let node = self
            .nodes
            .get_mut(id)
            .ok_or_else(|| mesh_err(format!("no node {id}")))?;
        writeln!(node.ctl, "{cmd}")
            .map_err(|e| mesh_err(format!("node {id}: control write failed: {e}")))?;
        let mut reply = String::new();
        match node.reader.read_line(&mut reply) {
            Ok(0) => Err(mesh_err(format!("node {id}: control closed"))),
            Ok(_) => Ok(reply.trim_end().to_owned()),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => Err(
                mesh_err(format!("node {id}: control reply timed out on {cmd:?}")),
            ),
            Err(e) => Err(mesh_err(format!("node {id}: control read failed: {e}"))),
        }
    }

    fn expect_ok(&mut self, id: usize, cmd: &str) -> Result<(), MeshError> {
        let reply = self.command(id, cmd)?;
        if reply == "ok" {
            Ok(())
        } else {
            Err(mesh_err(format!("node {id}: {cmd:?} -> {reply:?}")))
        }
    }

    /// Applies one scenario step to the mesh (the socket-world mirror of
    /// the DES `inject_*` helpers), without waiting for quiescence.
    ///
    /// # Errors
    ///
    /// Fails when a control command is rejected or times out.
    pub fn apply_step(&mut self, scenario: &Scenario, step: &Step) -> Result<(), MeshError> {
        match *step {
            Step::Join { node, mc, .. } => self.expect_ok(node.index(), &format!("join {}", mc.0)),
            Step::Leave { node, mc, .. } => {
                self.expect_ok(node.index(), &format!("leave {}", mc.0))
            }
            Step::Link { a, b, up, .. } => {
                let link = scenario
                    .net
                    .link_between(a, b)
                    .ok_or_else(|| mesh_err(format!("no link between {a} and {b}")))?;
                let state = if up { "up" } else { "down" };
                // Same decomposition as `inject_link_event`: the stored
                // lower endpoint advertises (detector), the other only
                // updates local truth (and answers with a DbSync on up).
                let (det, other) = (link.a, link.b);
                self.expect_ok(
                    other.index(),
                    &format!("link {} {} {state} 0", link.a.0, link.b.0),
                )?;
                self.expect_ok(
                    det.index(),
                    &format!("link {} {} {state} 1", link.a.0, link.b.0),
                )
            }
            Step::Node { node, up, .. } => {
                let state = if up { "up" } else { "down" };
                self.expect_ok(node.index(), &format!("admin {state}"))?;
                // Neighbors detect each incident link transition and
                // advertise their side (`inject_node_event`).
                let neighbors: Vec<(u32, u32, usize)> = scenario
                    .net
                    .links()
                    .filter(|l| l.a == node || l.b == node)
                    .map(|l| (l.a.0, l.b.0, l.other(node).index()))
                    .collect();
                for (a, b, neighbor) in neighbors {
                    self.expect_ok(neighbor, &format!("link {a} {b} {state} 1"))?;
                }
                Ok(())
            }
            Step::Send {
                node,
                packet_id,
                mc,
                ..
            } => self.expect_ok(node.index(), &format!("send {} {packet_id}", mc.0)),
        }
    }

    /// Polls every node's `status` until the whole mesh is quiet — every
    /// engine idle, every timer wheel empty, and the global rx/tx datagram
    /// counts stable across two consecutive polls.
    ///
    /// # Errors
    ///
    /// Fails when the deadline passes first (a hung or diverging mesh).
    pub fn await_quiescence(&mut self) -> Result<(), MeshError> {
        let start = Instant::now();
        let mut last_traffic: Option<(u64, u64)> = None;
        loop {
            if start.elapsed() > self.deadline {
                return Err(mesh_err(format!(
                    "mesh not quiescent within {:?}",
                    self.deadline
                )));
            }
            let mut all_quiet = true;
            let mut rx_sum = 0u64;
            let mut tx_sum = 0u64;
            for id in 0..self.nodes.len() {
                let status = self.command(id, "status")?;
                let fields = parse_status(&status)
                    .ok_or_else(|| mesh_err(format!("node {id}: bad status {status:?}")))?;
                all_quiet &= fields.quiet && fields.timers == 0;
                rx_sum += fields.rx;
                tx_sum += fields.tx;
            }
            let traffic = (rx_sum, tx_sum);
            if all_quiet && last_traffic == Some(traffic) {
                return Ok(());
            }
            last_traffic = Some(traffic);
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Shuts every node down (`quit`), waits for clean exits, and merges
    /// the per-node artifacts into a [`MeshReport`].
    ///
    /// # Errors
    ///
    /// Fails on a blown teardown deadline or unreadable artifacts; children
    /// are killed regardless.
    pub fn collect(mut self) -> Result<MeshReport, MeshError> {
        let n = self.nodes.len();
        for id in 0..n {
            let reply = self.command(id, "quit")?;
            if reply != "bye" {
                return Err(mesh_err(format!("node {id}: quit -> {reply:?}")));
            }
        }
        let deadline = Instant::now() + self.deadline;
        for (id, node) in self.nodes.iter_mut().enumerate() {
            loop {
                match node.child.try_wait() {
                    Ok(Some(status)) => {
                        if !status.success() {
                            return Err(mesh_err(format!("node {id}: exit {status}")));
                        }
                        break;
                    }
                    Ok(None) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Ok(None) => {
                        let _ = node.child.kill();
                        return Err(mesh_err(format!("node {id}: no exit within deadline")));
                    }
                    Err(e) => return Err(mesh_err(format!("node {id}: wait failed: {e}"))),
                }
            }
        }

        let mut states = Vec::with_capacity(n);
        let mut logs = Vec::with_capacity(n);
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        for id in 0..n {
            let state_text = read_artifact(&self.out_dir, id, "state.json")?;
            states.push(
                JsonValue::parse(&state_text)
                    .map_err(|e| mesh_err(format!("node {id}: bad state.json: {e}")))?,
            );
            logs.push(read_artifact(&self.out_dir, id, "log.jsonl")?);
            let metrics = JsonValue::parse(&read_artifact(&self.out_dir, id, "metrics.json")?)
                .map_err(|e| mesh_err(format!("node {id}: bad metrics.json: {e}")))?;
            if let Some(JsonValue::Obj(pairs)) = metrics.get("counters") {
                for (name, value) in pairs {
                    if let JsonValue::U64(v) = value {
                        *counters.entry(name.clone()).or_insert(0) += v;
                    }
                }
            }
        }
        let violations = cross_node_violations(&states);
        let tree_costs = merged_tree_costs(&states);
        Ok(MeshReport {
            nodes: n,
            states,
            logs,
            counters,
            tree_costs,
            violations,
        })
    }
}

/// The merged outcome of a mesh run.
#[derive(Debug)]
pub struct MeshReport {
    /// Node process count.
    pub nodes: usize,
    /// Per-node `state` dumps (`{"node":…,"engine":…,"delivered":…}`).
    pub states: Vec<JsonValue>,
    /// Per-node decision logs, raw JSONL.
    pub logs: Vec<String>,
    /// Protocol counters summed across nodes.
    pub counters: BTreeMap<String, u64>,
    /// Converged tree cost per MC id.
    pub tree_costs: BTreeMap<u64, u64>,
    /// Cross-node state agreement violations (empty on a healthy run).
    pub violations: Vec<String>,
}

impl MeshReport {
    /// All nodes' decision logs re-keyed by switch id with `at_ns`
    /// stripped — directly comparable with the DES projection.
    ///
    /// # Errors
    ///
    /// Fails on malformed log lines.
    pub fn canonical_logs(&self) -> Result<BTreeMap<u64, Vec<String>>, MeshError> {
        let mut merged = BTreeMap::new();
        for log in &self.logs {
            for (switch, lines) in
                per_switch_logs(log).map_err(|e| mesh_err(format!("bad node log: {e}")))?
            {
                merged.insert(switch, lines);
            }
        }
        Ok(merged)
    }

    /// The merged metrics in the DES registry form: summed counters plus
    /// one `mc.<id>.tree_cost` gauge per converged connection.
    pub fn metrics_registry(&self) -> MetricsRegistry {
        let mut registry = MetricsRegistry::new();
        for (name, &value) in &self.counters {
            *registry.counter_slot(name) += value;
        }
        for (&mc, &cost) in &self.tree_costs {
            registry.gauge_set_named(&format!("mc.{mc}.tree_cost"), cost);
        }
        registry
    }

    /// The run report in the DES schema: a `dgmc.metrics/2` snapshot plus
    /// the mesh envelope (node count, invariant violation count).
    pub fn report_json(&self, experiment: &str) -> String {
        let metrics_line =
            dgmc_experiments::report::metrics_snapshot(experiment, &self.metrics_registry());
        let metrics =
            JsonValue::parse(metrics_line.trim()).expect("metrics snapshot is valid JSON");
        JsonValue::obj(vec![
            ("schema", JsonValue::Str("dgmc.mesh/1".to_owned())),
            ("experiment", JsonValue::Str(experiment.to_owned())),
            (
                "nodes",
                JsonValue::U64(u64::try_from(self.nodes).expect("node count fits u64")),
            ),
            (
                "invariant_violations",
                JsonValue::U64(u64::try_from(self.violations.len()).expect("count fits u64")),
            ),
            (
                "violations",
                JsonValue::Arr(
                    self.violations
                        .iter()
                        .map(|v| JsonValue::Str(v.clone()))
                        .collect(),
                ),
            ),
            ("report", metrics),
        ])
        .to_json()
    }
}

/// Runs a scenario through a mesh with a quiescence barrier after every
/// step (the socket-world `run_to_quiescence` between injections), then
/// collects the merged report.
///
/// # Errors
///
/// Fails on scenario parse errors and every launcher failure mode.
pub fn run_scenario_mesh(scenario_text: &str, opts: &MeshOptions) -> Result<MeshReport, MeshError> {
    let scenario = dgmc_experiments::scenario::parse(scenario_text)
        .map_err(|e| mesh_err(format!("scenario: {e}")))?;
    let mut mesh = Mesh::spawn(&scenario, opts)?;
    for step in &scenario.steps {
        mesh.apply_step(&scenario, step)?;
        mesh.await_quiescence()?;
    }
    mesh.collect()
}

fn parse_ready(line: &str) -> Option<(String, String)> {
    let rest = line.strip_prefix("ready ")?;
    let mut udp = None;
    let mut ctl = None;
    for tok in rest.split_whitespace() {
        if let Some(v) = tok.strip_prefix("udp=") {
            udp = Some(v.to_owned());
        } else if let Some(v) = tok.strip_prefix("ctl=") {
            ctl = Some(v.to_owned());
        }
    }
    Some((udp?, ctl?))
}

struct StatusFields {
    quiet: bool,
    timers: u64,
    rx: u64,
    tx: u64,
}

fn parse_status(line: &str) -> Option<StatusFields> {
    let mut quiet = None;
    let mut timers = None;
    let mut rx = None;
    let mut tx = None;
    for tok in line.split_whitespace() {
        let (key, value) = tok.split_once('=')?;
        let value: u64 = value.parse().ok()?;
        match key {
            "quiet" => quiet = Some(value == 1),
            "timers" => timers = Some(value),
            "rx" => rx = Some(value),
            "tx" => tx = Some(value),
            _ => {}
        }
    }
    Some(StatusFields {
        quiet: quiet?,
        timers: timers?,
        rx: rx?,
        tx: tx?,
    })
}

fn read_artifact(dir: &std::path::Path, id: usize, suffix: &str) -> Result<String, MeshError> {
    let path = dir.join(format!("node{id}.{suffix}"));
    std::fs::read_to_string(&path)
        .map_err(|e| mesh_err(format!("cannot read {}: {e}", path.display())))
}

/// Checks that every node's engine agrees with every other's — the mesh
/// mirror of the DES consensus checker: same live MCs, same epoch and
/// `R`/`E`/`C` stamps, same members and installed topology, `R == E`
/// (settled), and identical tombstones.
fn cross_node_violations(states: &[JsonValue]) -> Vec<String> {
    let mut violations = Vec::new();
    let engines: Vec<&JsonValue> = states.iter().filter_map(|s| s.get("engine")).collect();
    if engines.len() != states.len() {
        violations.push("some node state dumps lack an engine snapshot".to_owned());
        return violations;
    }
    let reference = engines[0];
    for (id, engine) in engines.iter().enumerate().skip(1) {
        if engine.to_json() != reference.to_json() {
            violations.push(format!(
                "node {id} disagrees with node 0 on final engine state"
            ));
        }
    }
    // Settledness: R == E per MC on the reference engine.
    if let Some(mcs) = reference.get("mcs").and_then(JsonValue::as_array) {
        for mc in mcs {
            let (Some(r), Some(e)) = (mc.get("r"), mc.get("e")) else {
                violations.push("mc snapshot lacks r/e stamps".to_owned());
                continue;
            };
            if r.to_json() != e.to_json() {
                violations.push(format!(
                    "mc {} unsettled: R {} != E {}",
                    mc.get("mc")
                        .map_or_else(|| "?".to_owned(), JsonValue::to_json),
                    r.to_json(),
                    e.to_json()
                ));
            }
        }
    }
    violations
}

/// The agreed tree cost per MC, from the per-node snapshots (any node's
/// value — disagreement is already a violation).
fn merged_tree_costs(states: &[JsonValue]) -> BTreeMap<u64, u64> {
    let mut costs = BTreeMap::new();
    for state in states {
        let Some(mcs) = state
            .get("engine")
            .and_then(|e| e.get("mcs"))
            .and_then(JsonValue::as_array)
        else {
            continue;
        };
        for mc in mcs {
            if let (Some(JsonValue::U64(id)), Some(JsonValue::U64(cost))) =
                (mc.get("mc"), mc.get("tree_cost"))
            {
                costs.insert(*id, *cost);
            }
        }
    }
    costs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_and_ready_lines_parse() {
        let s = parse_status("quiet=1 timers=0 rx=10 tx=12 log=5 mcs=2").unwrap();
        assert!(s.quiet);
        assert_eq!((s.timers, s.rx, s.tx), (0, 10, 12));
        let (udp, ctl) = parse_ready("ready udp=127.0.0.1:4000 ctl=127.0.0.1:4001").unwrap();
        assert_eq!(udp, "127.0.0.1:4000");
        assert_eq!(ctl, "127.0.0.1:4001");
        assert!(parse_ready("booting").is_none());
        assert!(parse_status("quiet=x").is_none());
    }

    #[test]
    fn identical_states_have_no_violations() {
        let state = JsonValue::parse(
            r#"{"node":0,"engine":{"mcs":[{"mc":1,"r":[1,0],"e":[1,0],"tree_cost":3}],"tombstones":{}},"delivered":[]}"#,
        )
        .unwrap();
        let states = vec![state.clone(), state];
        assert!(cross_node_violations(&states).is_empty());
        assert_eq!(merged_tree_costs(&states)[&1], 3);
    }

    #[test]
    fn disagreement_and_unsettledness_are_violations() {
        let a =
            JsonValue::parse(r#"{"engine":{"mcs":[{"mc":1,"r":[2],"e":[3]}],"tombstones":{}}}"#)
                .unwrap();
        let b =
            JsonValue::parse(r#"{"engine":{"mcs":[{"mc":1,"r":[1],"e":[1]}],"tombstones":{}}}"#)
                .unwrap();
        let violations = cross_node_violations(&[a, b]);
        assert_eq!(violations.len(), 2, "{violations:?}");
    }
}
