//! `node_e2e` — run a scenario file through a multi-process localhost mesh
//! and print the merged report (the launcher CLI used by `ci.sh`).
//!
//! ```text
//! node_e2e scenarios/teleconference_mesh.txt --out /tmp/mesh \
//!          [--bin target/release/dgmc-node] [--tc-ns 300000] \
//!          [--fault-plan plan.json] [--seed 42] [--deadline-secs 30] \
//!          [--name node_mesh]
//! ```
//!
//! Exits nonzero when the run fails or any cross-node invariant is
//! violated; the report JSON goes to stdout either way, so CI can gate on
//! `"invariant_violations":0` and nonzero `mc.*.tree_cost` gauges.

use dgmc_node::launcher::{run_scenario_mesh, MeshOptions};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

fn usage(message: &str) -> ExitCode {
    eprintln!("node_e2e: {message}");
    eprintln!(
        "usage: node_e2e SCENARIO --out DIR [--bin PATH] [--tc-ns N] \
         [--fault-plan FILE] [--seed N] [--deadline-secs N] [--name STR]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scenario_path = None;
    let mut opts = MeshOptions::new("mesh-out");
    let mut name = "node_mesh".to_owned();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        let result: Result<(), String> = (|| {
            match arg.as_str() {
                "--out" => opts.out_dir = PathBuf::from(value("--out")?),
                "--bin" => opts.binary = Some(PathBuf::from(value("--bin")?)),
                "--tc-ns" => {
                    opts.tc_nanos = value("--tc-ns")?
                        .parse()
                        .map_err(|e: std::num::ParseIntError| e.to_string())?;
                }
                "--fault-plan" => opts.fault_plan = Some(PathBuf::from(value("--fault-plan")?)),
                "--seed" => {
                    opts.seed = value("--seed")?
                        .parse()
                        .map_err(|e: std::num::ParseIntError| e.to_string())?;
                }
                "--deadline-secs" => {
                    opts.deadline = Duration::from_secs(
                        value("--deadline-secs")?
                            .parse()
                            .map_err(|e: std::num::ParseIntError| e.to_string())?,
                    );
                }
                "--name" => name = value("--name")?,
                flag if flag.starts_with("--") => return Err(format!("unknown flag {flag:?}")),
                path => {
                    if scenario_path.replace(PathBuf::from(path)).is_some() {
                        return Err("more than one scenario file given".to_owned());
                    }
                }
            }
            Ok(())
        })();
        if let Err(e) = result {
            return usage(&e);
        }
    }
    let Some(scenario_path) = scenario_path else {
        return usage("a scenario file is required");
    };
    let scenario_text = match std::fs::read_to_string(&scenario_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("node_e2e: cannot read {}: {e}", scenario_path.display());
            return ExitCode::FAILURE;
        }
    };
    match run_scenario_mesh(&scenario_text, &opts) {
        Ok(report) => {
            println!("{}", report.report_json(&name));
            if report.violations.is_empty() {
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "node_e2e: {} invariant violation(s): {:?}",
                    report.violations.len(),
                    report.violations
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("node_e2e: {e}");
            ExitCode::FAILURE
        }
    }
}
