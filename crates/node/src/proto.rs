//! The sans-IO protocol core of a real-socket D-GMC node.
//!
//! [`NodeCore`] owns exactly what the DES [`DgmcSwitch`] owns — the
//! [`DgmcEngine`], the flooder, the LSDB, the routing table and the local
//! incident-link truth — and mirrors its handler arm for arm. The only
//! difference is the boundary: where the switch calls `ctx.send` /
//! `ctx.schedule_self` on the simulator, the core returns [`Output`] values
//! for a driver to act on. No sockets, no clocks, no I/O: the core is a
//! pure function of its inputs, which is what lets the conformance suite
//! (`tests/node_conformance.rs`) assert that DES and UDP drivers produce
//! identical protocol state and decision logs.
//!
//! [`DgmcSwitch`]: dgmc_core::switch::DgmcSwitch

use crate::frame::Frame;
use dgmc_core::switch::{counters, histograms, DataKind, DataMsg, DgmcPayload};
use dgmc_core::{DgmcAction, DgmcEngine, McId};
use dgmc_lsr::flood::Flooder;
use dgmc_lsr::lsa::{FloodPacket, LinkAdv, RouterLsa};
use dgmc_lsr::{Lsdb, RoutingTable};
use dgmc_mctree::{McAlgorithm, McType, Role};
use dgmc_obs::{DecisionLogHandle, MetricsRegistry, SharedObserver};
use dgmc_topology::{LinkId, Network, NodeId, SpfCache, SpfCacheStats};
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

/// Counter names owned by the node driver layer (the protocol itself bumps
/// the `dgmc.*` names from [`dgmc_core::switch::counters`]).
pub mod node_counters {
    /// Datagrams received on the UDP socket.
    pub const RX_DATAGRAMS: &str = "node.rx_datagrams";
    /// Datagrams handed to the socket for sending.
    pub const TX_DATAGRAMS: &str = "node.tx_datagrams";
    /// Datagrams that failed to decode (truncated/garbage/bad tag).
    pub const DECODE_ERRORS: &str = "node.decode_errors";
    /// Datagrams that decoded but failed semantic validation
    /// ([`crate::frame::frame_is_sane`]).
    pub const INSANE_FRAMES: &str = "node.insane_frames";
    /// Frames from nodes that are not neighbors on any incident link.
    pub const UNKNOWN_SENDER: &str = "node.unknown_sender";
    /// Sends the loss shim converted into delayed retransmissions.
    pub const SHIM_RETRANSMITS: &str = "node.shim_retransmits";
    /// Sends the loss shim dropped for good (hard loss).
    pub const SHIM_DROPS: &str = "node.shim_drops";
}

/// What the core asks its driver to do.
#[derive(Debug, Clone)]
pub enum Output {
    /// Encode `frame` and send it to neighbor `to`.
    Send {
        /// Destination switch.
        to: NodeId,
        /// The frame to put on the wire.
        frame: Frame,
    },
    /// Arm the `Tc` computation timer for `mc`, `after_nanos` from now; on
    /// expiry feed [`NodeCore::on_computation_done`].
    StartTimer {
        /// The connection being recomputed.
        mc: McId,
        /// Delay in tick-domain nanoseconds.
        after_nanos: u64,
    },
}

/// The sans-IO protocol core (see the module docs).
pub struct NodeCore {
    me: NodeId,
    n: usize,
    tc_nanos: u64,
    flooder: Flooder,
    lsdb: Lsdb,
    routes: RoutingTable,
    /// Local ground truth about incident links: (link, neighbor, cost, up).
    incident: Vec<(LinkId, NodeId, u64, bool)>,
    next_router_seq: u64,
    engine: DgmcEngine,
    spf_cache: SpfCache,
    image: Network,
    /// (mc, packet_id) -> copies delivered to the local host.
    delivered: BTreeMap<(McId, u64), u32>,
    failed: bool,
    /// Tick-domain start instant of the in-flight computation per MC.
    computation_started: BTreeMap<McId, u64>,
    installed_edges: BTreeMap<McId, BTreeSet<(NodeId, NodeId)>>,
    withdrawn_since_event: u64,
    metrics: MetricsRegistry,
    observer: SharedObserver,
}

impl std::fmt::Debug for NodeCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeCore")
            .field("me", &self.me)
            .field("mcs", &self.engine.mc_ids())
            .finish()
    }
}

impl NodeCore {
    /// Creates the core warm-started on the ground-truth network `net`,
    /// exactly like [`dgmc_core::switch::DgmcSwitch::new`]. `tc_nanos` is
    /// the `Tc` computation time mapped onto real nanoseconds.
    pub fn new(
        me: NodeId,
        net: &Network,
        tc_nanos: u64,
        algorithm: Rc<dyn McAlgorithm>,
    ) -> NodeCore {
        let spf_cache = SpfCache::new();
        let mut lsdb = Lsdb::new(net.len());
        for n in net.nodes() {
            lsdb.install(RouterLsa::describe(net, n, 0));
        }
        let image = lsdb.local_image();
        let routes = RoutingTable::compute_with(&image, me, &spf_cache);
        let incident = net
            .links()
            .filter(|l| l.a == me || l.b == me)
            .map(|l| (l.id, l.other(me), l.cost, l.is_up()))
            .collect();
        let mut engine = DgmcEngine::new(me, net.len(), algorithm);
        engine.set_spf_cache(spf_cache.clone());
        let observer = SharedObserver::new();
        engine.set_observer(observer.clone());
        NodeCore {
            me,
            n: net.len(),
            tc_nanos,
            flooder: Flooder::new(me),
            lsdb,
            routes,
            incident,
            next_router_seq: 1,
            engine,
            spf_cache,
            image,
            delivered: BTreeMap::new(),
            failed: false,
            computation_started: BTreeMap::new(),
            installed_edges: BTreeMap::new(),
            withdrawn_since_event: 0,
            metrics: MetricsRegistry::new(),
            observer,
        }
    }

    /// The switch id.
    pub fn id(&self) -> NodeId {
        self.me
    }

    /// The network width the core was built for.
    pub fn width(&self) -> usize {
        self.n
    }

    /// Read access to the protocol engine.
    pub fn engine(&self) -> &DgmcEngine {
        &self.engine
    }

    /// The core's local image of the network.
    pub fn image(&self) -> &Network {
        &self.image
    }

    /// The unicast routing table.
    pub fn routes(&self) -> &RoutingTable {
        &self.routes
    }

    /// `true` while administratively failed (all traffic dropped).
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// The per-process metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Mutable metrics access for the driver's own counters.
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// The decision-event observer shared with the engine.
    pub fn observer(&self) -> &SharedObserver {
        &self.observer
    }

    /// Attaches a bounded in-memory decision log and returns its handle.
    pub fn attach_log(&self, capacity: usize) -> DecisionLogHandle {
        self.observer.attach_log(capacity)
    }

    /// `true` when the engine holds no pending protocol work (mailboxes,
    /// computations, unproposed flags). Driver-side timers are the driver's
    /// business.
    pub fn quiet(&self) -> bool {
        self.engine.is_quiet()
    }

    /// How many copies of `(mc, packet_id)` the local host received.
    pub fn delivered_copies(&self, mc: McId, packet_id: u64) -> u32 {
        self.delivered.get(&(mc, packet_id)).copied().unwrap_or(0)
    }

    /// All delivery counts, keyed by `(mc, packet_id)`.
    pub fn deliveries(&self) -> &BTreeMap<(McId, u64), u32> {
        &self.delivered
    }

    fn up_links(&self) -> Vec<(LinkId, NodeId)> {
        self.incident
            .iter()
            .filter(|(.., up)| *up)
            .map(|&(l, n, ..)| (l, n))
            .collect()
    }

    fn link_to(&self, neighbor: NodeId) -> Option<LinkId> {
        self.incident
            .iter()
            .find(|&&(_, n, _, up)| n == neighbor && up)
            .map(|&(l, ..)| l)
    }

    fn neighbor_of(&self, link: LinkId) -> Option<NodeId> {
        self.incident
            .iter()
            .find(|&&(l, ..)| l == link)
            .map(|&(_, n, ..)| n)
    }

    /// The incident link toward `from`, up or down (`via` resolution for
    /// received datagrams).
    fn link_from(&self, from: NodeId) -> Option<LinkId> {
        self.incident
            .iter()
            .find(|&&(_, n, ..)| n == from)
            .map(|&(l, ..)| l)
    }

    fn flood(&mut self, out: &mut Vec<Output>, payload: DgmcPayload, except: Option<LinkId>) {
        let packet = self.flooder.originate(payload);
        let mut fanout = 0u64;
        for (link, neighbor) in self.up_links() {
            if Some(link) == except {
                continue;
            }
            fanout += 1;
            out.push(Output::Send {
                to: neighbor,
                frame: Frame::Flood(packet.clone()),
            });
        }
        self.metrics.observe_named(histograms::FLOOD_FANOUT, fanout);
    }

    fn relay(&mut self, out: &mut Vec<Output>, packet: &FloodPacket<DgmcPayload>, via: LinkId) {
        for (link, neighbor) in self.up_links() {
            if link == via {
                continue;
            }
            out.push(Output::Send {
                to: neighbor,
                frame: Frame::Flood(packet.clone()),
            });
        }
    }

    fn execute(&mut self, out: &mut Vec<Output>, now_nanos: u64, actions: Vec<DgmcAction>) {
        for action in actions {
            match action {
                DgmcAction::Flood(lsa) => {
                    *self.metrics.counter_slot(counters::FLOODINGS) += 1;
                    self.flood(out, DgmcPayload::Mc(lsa), None);
                }
                DgmcAction::StartComputation { mc } => {
                    *self.metrics.counter_slot(counters::COMPUTATIONS) += 1;
                    self.computation_started.entry(mc).or_insert(now_nanos);
                    out.push(Output::StartTimer {
                        mc,
                        after_nanos: self.tc_nanos,
                    });
                }
                DgmcAction::Installed { mc } => {
                    *self.metrics.counter_slot(counters::INSTALLS) += 1;
                    if let Some(started) = self.computation_started.remove(&mc) {
                        let latency = now_nanos.saturating_sub(started);
                        self.metrics
                            .observe_named(histograms::INSTALL_LATENCY_US, latency / 1_000);
                    }
                    let edges: BTreeSet<(NodeId, NodeId)> = self
                        .engine
                        .installed(mc)
                        .map(|t| t.edges().collect())
                        .unwrap_or_default();
                    if let Some(previous) = self.installed_edges.insert(mc, edges) {
                        let disrupted = u64::try_from(
                            previous
                                .difference(self.installed_edges.get(&mc).expect("just inserted"))
                                .count(),
                        )
                        .expect("edge count fits u64");
                        *self.metrics.counter_slot(counters::DISRUPTED_EDGES) += disrupted;
                    }
                }
                DgmcAction::Withdrawn { mc: _ } => {
                    *self.metrics.counter_slot(counters::WITHDRAWN) += 1;
                    self.withdrawn_since_event += 1;
                }
            }
        }
    }

    fn close_event_episode(&mut self) {
        self.metrics.observe_named(
            histograms::WITHDRAWALS_PER_EVENT,
            self.withdrawn_since_event,
        );
        self.withdrawn_since_event = 0;
    }

    fn refresh_image(&mut self) {
        let before = self.spf_cache.stats();
        self.image = self.lsdb.local_image();
        self.routes = RoutingTable::compute_with(&self.image, self.me, &self.spf_cache);
        self.record_spf_delta(before);
    }

    fn record_spf_delta(&mut self, before: SpfCacheStats) {
        let after = self.spf_cache.stats();
        *self.metrics.counter_slot(counters::SPF_CACHE_HITS) += after.hits - before.hits;
        *self.metrics.counter_slot(counters::SPF_CACHE_MISSES) += after.misses - before.misses;
        *self.metrics.counter_slot(counters::SPF_CACHE_REPAIRS) += after.repairs - before.repairs;
        *self.metrics.counter_slot(counters::SPF_CACHE_INVALIDATIONS) +=
            after.invalidations - before.invalidations;
        if after.misses > before.misses {
            self.metrics.observe_named(
                histograms::SPF_SETTLED_PER_COMPUTE,
                after.settled_nodes - before.settled_nodes,
            );
        }
    }

    fn deliver_locally(&mut self, data: &DataMsg) {
        if self.engine.is_member(data.mc) {
            *self.metrics.counter_slot(counters::DATA_DELIVERED) += 1;
            *self.delivered.entry((data.mc, data.packet_id)).or_insert(0) += 1;
        }
    }

    fn forward_tree(&mut self, out: &mut Vec<Output>, data: DataMsg, via: Option<LinkId>) {
        self.deliver_locally(&data);
        let Some(topology) = self.engine.installed(data.mc) else {
            return;
        };
        let from = via.and_then(|l| self.neighbor_of(l));
        let next_hops: Vec<NodeId> = topology
            .neighbors_in(self.me)
            .into_iter()
            .filter(|&n| Some(n) != from)
            .collect();
        for n in next_hops {
            if let Some(link) = self.link_to(n) {
                out.push(Output::Send {
                    to: n,
                    frame: Frame::Data(DataMsg {
                        kind: DataKind::TreeFlood { via: Some(link) },
                        ..data.clone()
                    }),
                });
            }
        }
    }

    fn inject_data(&mut self, out: &mut Vec<Output>, mc: McId, packet_id: u64) {
        let data = DataMsg {
            mc,
            packet_id,
            origin: self.me,
            kind: DataKind::TreeFlood { via: None },
        };
        if self.engine.is_member(mc)
            || self
                .engine
                .installed(mc)
                .is_some_and(|t| t.touches(self.me))
        {
            self.forward_tree(out, data, None);
            return;
        }
        let Some(topology) = self.engine.installed(mc) else {
            return;
        };
        let contact = topology
            .nodes()
            .into_iter()
            .filter_map(|n| self.routes.cost(n).map(|c| (c, n)))
            .min();
        let Some((_, contact)) = contact else { return };
        let data = DataMsg {
            kind: DataKind::UnicastToContact { contact },
            ..data
        };
        if contact == self.me {
            self.forward_tree(out, data, None);
            return;
        }
        if let Some(next) = self.routes.next_hop(contact) {
            out.push(Output::Send {
                to: next,
                frame: Frame::Data(data),
            });
        }
    }

    fn on_data(&mut self, out: &mut Vec<Output>, data: DataMsg) {
        match data.kind {
            DataKind::TreeFlood { via } => {
                let d = DataMsg {
                    kind: DataKind::TreeFlood { via },
                    ..data
                };
                self.forward_tree(out, d, via);
            }
            DataKind::UnicastToContact { contact } => {
                if contact == self.me {
                    let d = DataMsg {
                        kind: DataKind::TreeFlood { via: None },
                        ..data
                    };
                    self.forward_tree(out, d, None);
                } else if let Some(next) = self.routes.next_hop(contact) {
                    out.push(Output::Send {
                        to: next,
                        frame: Frame::Data(data),
                    });
                }
            }
        }
    }

    /// Handles one decoded, validated frame from neighbor `from` (the DES
    /// `Packet`/`DbSync`/`Data` arms).
    pub fn on_frame(&mut self, now_nanos: u64, from: NodeId, frame: Frame) -> Vec<Output> {
        let mut out = Vec::new();
        self.observer.set_now(now_nanos);
        if self.failed {
            return out;
        }
        match frame {
            Frame::Flood(packet) => {
                let Some(via) = self.link_from(from) else {
                    *self.metrics.counter_slot(node_counters::UNKNOWN_SENDER) += 1;
                    return out;
                };
                if !self.flooder.accept(packet.id) {
                    *self.metrics.counter_slot(counters::DUPLICATES) += 1;
                    return out;
                }
                self.relay(&mut out, &packet, via);
                match packet.payload {
                    DgmcPayload::Router(lsa) => {
                        if self.lsdb.install(lsa) {
                            self.refresh_image();
                        }
                    }
                    DgmcPayload::Mc(lsa) => {
                        *self.metrics.counter_slot(counters::MC_LSAS) += 1;
                        let actions = self.engine.on_mc_lsa(lsa);
                        self.execute(&mut out, now_nanos, actions);
                    }
                }
            }
            Frame::DbSync {
                router_lsas,
                mc_states,
            } => {
                let mut changed = false;
                for lsa in router_lsas {
                    changed |= self.lsdb.install(lsa);
                }
                if changed {
                    self.refresh_image();
                }
                let actions = self.engine.import_sync(mc_states);
                self.execute(&mut out, now_nanos, actions);
            }
            Frame::Data(data) => {
                self.on_data(&mut out, data);
            }
        }
        out
    }

    /// A local host joins `mc` (the DES `HostJoin` arm).
    pub fn on_join(
        &mut self,
        now_nanos: u64,
        mc: McId,
        mc_type: McType,
        role: Role,
    ) -> Vec<Output> {
        let mut out = Vec::new();
        self.observer.set_now(now_nanos);
        if self.failed {
            return out;
        }
        let actions = self.engine.local_join(mc, mc_type, role);
        if !actions.is_empty() {
            *self.metrics.counter_slot(counters::MEMBER_EVENTS) += 1;
            self.close_event_episode();
        }
        self.execute(&mut out, now_nanos, actions);
        out
    }

    /// A local host leaves `mc` (the DES `HostLeave` arm).
    pub fn on_leave(&mut self, now_nanos: u64, mc: McId) -> Vec<Output> {
        let mut out = Vec::new();
        self.observer.set_now(now_nanos);
        if self.failed {
            return out;
        }
        let actions = self.engine.local_leave(mc);
        if !actions.is_empty() {
            *self.metrics.counter_slot(counters::MEMBER_EVENTS) += 1;
            self.close_event_episode();
        }
        self.execute(&mut out, now_nanos, actions);
        out
    }

    /// The incident link toward `neighbor` changed state (the DES
    /// `LinkEvent` arm). `detector` marks the advertising endpoint.
    ///
    /// Unknown neighbors are ignored (the DES switch panics here; a real
    /// node must shrug off a bad control command).
    pub fn on_link_event(
        &mut self,
        now_nanos: u64,
        neighbor: NodeId,
        up: bool,
        detector: bool,
    ) -> Vec<Output> {
        let mut out = Vec::new();
        self.observer.set_now(now_nanos);
        if self.failed {
            return out;
        }
        let Some(entry) = self.incident.iter_mut().find(|(_, n, ..)| *n == neighbor) else {
            return out;
        };
        entry.3 = up;
        if up {
            // Database exchange toward the (possibly just revived) far
            // endpoint, as OSPF does when an adjacency forms.
            let node_count = u32::try_from(self.lsdb.node_count()).expect("node ids fit u32");
            let router_lsas = (0..node_count)
                .filter_map(|i| self.lsdb.get(NodeId(i)).cloned())
                .collect();
            out.push(Output::Send {
                to: neighbor,
                frame: Frame::DbSync {
                    router_lsas,
                    mc_states: self.engine.export_sync(),
                },
            });
        }
        if detector {
            let links = self
                .incident
                .iter()
                .map(|&(l, n, cost, up)| LinkAdv {
                    link: l,
                    neighbor: n,
                    cost,
                    up,
                })
                .collect();
            let lsa = RouterLsa {
                origin: self.me,
                seq: self.next_router_seq,
                links,
            };
            self.next_router_seq += 1;
            self.lsdb.install(lsa.clone());
            self.refresh_image();
            *self.metrics.counter_slot(counters::ROUTER_FLOODS) += 1;
            self.flood(&mut out, DgmcPayload::Router(lsa), None);
            let actions = self.engine.local_link_event(self.me, neighbor);
            self.execute(&mut out, now_nanos, actions);
        }
        out
    }

    /// The `Tc` computation timer for `mc` fired (the DES `ComputationDone`
    /// arm).
    pub fn on_computation_done(&mut self, now_nanos: u64, mc: McId) -> Vec<Output> {
        let mut out = Vec::new();
        self.observer.set_now(now_nanos);
        if self.failed {
            return out;
        }
        let before = self.spf_cache.stats();
        let actions = self.engine.on_computation_done(mc, &self.image);
        self.record_spf_delta(before);
        self.execute(&mut out, now_nanos, actions);
        out
    }

    /// A local host injects a data packet (the DES `SendData` arm).
    pub fn on_send_data(&mut self, now_nanos: u64, mc: McId, packet_id: u64) -> Vec<Output> {
        let mut out = Vec::new();
        self.observer.set_now(now_nanos);
        if self.failed {
            return out;
        }
        self.inject_data(&mut out, mc, packet_id);
        out
    }

    /// Administrative failure/recovery (the DES `NodeAdmin` arm).
    pub fn on_admin(&mut self, now_nanos: u64, up: bool) -> Vec<Output> {
        self.observer.set_now(now_nanos);
        if self.failed {
            if up {
                self.failed = false;
                // Incident links come back with the node; neighbors
                // advertise and sync.
                for entry in &mut self.incident {
                    entry.3 = true;
                }
            }
        } else if !up {
            self.failed = true;
            for entry in &mut self.incident {
                entry.3 = false;
            }
        }
        Vec::new()
    }

    /// How many connections the engine currently tracks (status line).
    pub fn mc_count(&self) -> usize {
        self.engine.mc_count()
    }
}
