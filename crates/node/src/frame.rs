//! Outer UDP datagram framing and semantic validation.
//!
//! One datagram carries exactly one frame:
//!
//! ```text
//! Datagram := magic:u8(0xD6) version:u8(0x01) from:u32 kind:u8 body
//! kind     := 0x01 flood (FloodPacket) | 0x02 db-sync | 0x03 data
//! ```
//!
//! The inner encodings come from [`dgmc_core::codec`] — byte-identical to
//! what the DES size-accounting uses — so the node speaks exactly the wire
//! format the paper's packet-size numbers assume.
//!
//! Decoding is total (any byte soup yields a clean [`CodecError`]), but
//! totality is not enough: the protocol engine *asserts* structural
//! invariants such as "vector timestamps have one component per switch".
//! [`frame_is_sane`] therefore checks every decoded frame against the
//! network width before it may touch the engine; the driver drops and
//! counts frames that fail.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use dgmc_core::codec::{
    decode_data_msg, decode_db_sync, decode_flood_packet, encode_data_msg, encode_db_sync,
    encode_flood_packet,
};
use dgmc_core::switch::{DataKind, DataMsg, DgmcPayload};
use dgmc_core::{McSync, Timestamp};
use dgmc_lsr::codec::CodecError;
use dgmc_lsr::lsa::{FloodPacket, RouterLsa};
use dgmc_mctree::McTopology;
use dgmc_topology::NodeId;

/// First byte of every D-GMC datagram.
pub const MAGIC: u8 = 0xD6;
/// Wire format version.
pub const VERSION: u8 = 0x01;

/// Everything one datagram can carry — the socket-facing analog of the DES
/// network-visible [`dgmc_core::switch::SwitchMsg`] variants.
#[derive(Debug, Clone)]
pub enum Frame {
    /// A flood packet (router or MC LSA) relayed hop by hop.
    Flood(FloodPacket<DgmcPayload>),
    /// OSPF-style database exchange after a link came up.
    DbSync {
        /// The sender's router LSA database.
        router_lsas: Vec<RouterLsa>,
        /// The sender's per-MC state snapshots.
        mc_states: Vec<McSync>,
    },
    /// A data-plane packet.
    Data(DataMsg),
}

/// Encodes `frame` as one datagram from node `from`.
pub fn encode_datagram(from: NodeId, frame: &Frame) -> Vec<u8> {
    let mut out = BytesMut::new();
    out.put_u8(MAGIC);
    out.put_u8(VERSION);
    out.put_u32(from.0);
    match frame {
        Frame::Flood(packet) => {
            out.put_u8(0x01);
            encode_flood_packet(packet, &mut out);
        }
        Frame::DbSync {
            router_lsas,
            mc_states,
        } => {
            out.put_u8(0x02);
            encode_db_sync(router_lsas, mc_states, &mut out);
        }
        Frame::Data(data) => {
            out.put_u8(0x03);
            encode_data_msg(data, &mut out);
        }
    }
    out.to_vec()
}

/// Decodes one datagram into `(sender, frame)`.
///
/// # Errors
///
/// [`CodecError::BadTag`] on a wrong magic/version/kind byte,
/// [`CodecError::Truncated`] on short input, and whatever the inner codecs
/// report. Trailing bytes after the frame are rejected as [`CodecError::BadTag`]
/// so torn reassembly is caught rather than silently ignored.
pub fn decode_datagram(bytes: &[u8]) -> Result<(NodeId, Frame), CodecError> {
    let mut buf = Bytes::from(bytes);
    if buf.remaining() < 7 {
        return Err(CodecError::Truncated);
    }
    let magic = buf.get_u8();
    if magic != MAGIC {
        return Err(CodecError::BadTag(magic));
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(CodecError::BadTag(version));
    }
    let from = NodeId(buf.get_u32());
    let frame = match buf.get_u8() {
        0x01 => Frame::Flood(decode_flood_packet(&mut buf)?),
        0x02 => {
            let (router_lsas, mc_states) = decode_db_sync(&mut buf)?;
            Frame::DbSync {
                router_lsas,
                mc_states,
            }
        }
        0x03 => Frame::Data(decode_data_msg(&mut buf)?),
        t => return Err(CodecError::BadTag(t)),
    };
    if buf.remaining() > 0 {
        return Err(CodecError::BadTag(0xFF));
    }
    Ok((from, frame))
}

fn node_ok(node: NodeId, n: usize) -> bool {
    (node.0 as usize) < n
}

fn stamp_ok(stamp: &Timestamp, n: usize) -> bool {
    stamp.len() == n
}

fn topology_ok(t: &McTopology, n: usize) -> bool {
    t.terminals().iter().all(|&term| node_ok(term, n))
        && t.edges().all(|(a, b)| node_ok(a, n) && node_ok(b, n))
}

fn router_lsa_ok(lsa: &RouterLsa, n: usize) -> bool {
    node_ok(lsa.origin, n) && lsa.links.iter().all(|adv| node_ok(adv.neighbor, n))
}

fn mc_sync_ok(sync: &McSync, n: usize) -> bool {
    stamp_ok(&sync.r, n)
        && stamp_ok(&sync.e, n)
        && stamp_ok(&sync.c, n)
        && sync.c_source.is_none_or(|s| node_ok(s, n))
        && sync.members.keys().all(|&m| node_ok(m, n))
        && sync.installed.as_ref().is_none_or(|t| topology_ok(t, n))
}

/// Checks a decoded frame against the `n`-switch network: every node id in
/// range, every vector timestamp exactly `n` wide.
///
/// A frame that decodes but fails this check is *structurally* valid yet
/// *semantically* poisonous — e.g. a timestamp of the wrong width trips the
/// engine's `assert_eq!` on merge. The driver must drop such frames.
pub fn frame_is_sane(from: NodeId, frame: &Frame, n: usize) -> bool {
    if !node_ok(from, n) {
        return false;
    }
    match frame {
        Frame::Flood(packet) => {
            node_ok(packet.id.origin, n)
                && match &packet.payload {
                    DgmcPayload::Router(lsa) => router_lsa_ok(lsa, n),
                    DgmcPayload::Mc(lsa) => {
                        node_ok(lsa.source, n)
                            && stamp_ok(&lsa.stamp, n)
                            && lsa.proposal.as_ref().is_none_or(|t| topology_ok(t, n))
                    }
                }
        }
        Frame::DbSync {
            router_lsas,
            mc_states,
        } => {
            router_lsas.iter().all(|lsa| router_lsa_ok(lsa, n))
                && mc_states.iter().all(|sync| mc_sync_ok(sync, n))
        }
        Frame::Data(data) => match data.kind {
            DataKind::TreeFlood { .. } => true,
            DataKind::UnicastToContact { contact } => node_ok(contact, n),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgmc_core::{McEventKind, McId, McLsa};
    use dgmc_lsr::lsa::FloodId;

    fn mc_frame(width: usize) -> Frame {
        Frame::Flood(FloodPacket {
            id: FloodId {
                origin: NodeId(0),
                seq: 1,
            },
            payload: DgmcPayload::Mc(McLsa {
                source: NodeId(0),
                event: McEventKind::Leave,
                mc: McId(1),
                mc_type: dgmc_mctree::McType::Symmetric,
                epoch: 0,
                proposal: None,
                stamp: Timestamp::zero(width),
            }),
        })
    }

    #[test]
    fn datagram_round_trip() {
        let frame = mc_frame(4);
        let bytes = encode_datagram(NodeId(2), &frame);
        let (from, back) = decode_datagram(&bytes).unwrap();
        assert_eq!(from, NodeId(2));
        assert!(matches!(back, Frame::Flood(_)));
        assert!(frame_is_sane(from, &back, 4));
    }

    #[test]
    fn wrong_width_stamp_is_insane_not_a_panic() {
        let frame = mc_frame(9);
        let bytes = encode_datagram(NodeId(2), &frame);
        let (from, back) = decode_datagram(&bytes).unwrap();
        assert!(!frame_is_sane(from, &back, 4), "width 9 in a 4-node net");
    }

    #[test]
    fn bad_magic_and_trailing_bytes_rejected() {
        let mut bytes = encode_datagram(NodeId(0), &mc_frame(4));
        let mut corrupt = bytes.clone();
        corrupt[0] = 0x00;
        assert!(decode_datagram(&corrupt).is_err());
        bytes.push(0xAB);
        assert!(decode_datagram(&bytes).is_err(), "trailing byte");
    }
}
