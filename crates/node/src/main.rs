//! `dgmc-node` — one D-GMC switch on real UDP sockets.
//!
//! ```text
//! dgmc-node --id 0 --nodes 4 --links 0-1:1,1-2:1,2-3:1,3-0:1 \
//!           --tc-ns 300000 --out /tmp/mesh [--fault-plan plan.json] \
//!           [--seed 42] [--log-capacity 65536]
//! ```
//!
//! Binds UDP and control sockets on loopback ephemeral ports, prints the
//! `ready udp=… ctl=…` handshake on stdout and serves until `quit`. See
//! `dgmc_node::driver` for the control protocol.

use dgmc_node::driver::{run_node, NodeOptions};
use dgmc_node::fault::NodeFaultPlan;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage(message: &str) -> ExitCode {
    eprintln!("dgmc-node: {message}");
    eprintln!(
        "usage: dgmc-node --id N --nodes N --links a-b:cost[,...] \
         [--tc-ns N] [--out DIR] [--fault-plan FILE] [--seed N] [--log-capacity N]"
    );
    ExitCode::from(2)
}

fn parse_links(spec: &str) -> Result<Vec<(u32, u32, u64)>, String> {
    spec.split(',')
        .filter(|p| !p.is_empty())
        .map(|part| {
            let (endpoints, cost) = part
                .split_once(':')
                .ok_or_else(|| format!("bad link {part:?} (want a-b:cost)"))?;
            let (a, b) = endpoints
                .split_once('-')
                .ok_or_else(|| format!("bad link endpoints {endpoints:?}"))?;
            let a: u32 = a.parse().map_err(|_| format!("bad node id {a:?}"))?;
            let b: u32 = b.parse().map_err(|_| format!("bad node id {b:?}"))?;
            let cost: u64 = cost.parse().map_err(|_| format!("bad cost {cost:?}"))?;
            Ok((a, b, cost))
        })
        .collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut id = None;
    let mut nodes = None;
    let mut links = None;
    let mut tc_nanos = 300_000u64;
    let mut out_dir = PathBuf::from(".");
    let mut fault_plan = None;
    let mut seed = 0u64;
    let mut log_capacity = 65_536usize;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        let result: Result<(), String> = (|| {
            match flag.as_str() {
                "--id" => id = Some(value("--id")?.parse::<u32>().map_err(|e| e.to_string())?),
                "--nodes" => {
                    nodes = Some(
                        value("--nodes")?
                            .parse::<u32>()
                            .map_err(|e| e.to_string())?,
                    );
                }
                "--links" => links = Some(parse_links(&value("--links")?)?),
                "--tc-ns" => {
                    tc_nanos = value("--tc-ns")?
                        .parse()
                        .map_err(|e: std::num::ParseIntError| e.to_string())?;
                }
                "--out" => out_dir = PathBuf::from(value("--out")?),
                "--fault-plan" => {
                    let path = value("--fault-plan")?;
                    let text = std::fs::read_to_string(&path)
                        .map_err(|e| format!("cannot read {path}: {e}"))?;
                    fault_plan = Some(NodeFaultPlan::from_json(&text)?);
                }
                "--seed" => {
                    seed = value("--seed")?
                        .parse()
                        .map_err(|e: std::num::ParseIntError| e.to_string())?;
                }
                "--log-capacity" => {
                    log_capacity = value("--log-capacity")?
                        .parse()
                        .map_err(|e: std::num::ParseIntError| e.to_string())?;
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
            Ok(())
        })();
        if let Err(e) = result {
            return usage(&e);
        }
    }

    let (Some(id), Some(nodes), Some(links)) = (id, nodes, links) else {
        return usage("--id, --nodes and --links are required");
    };
    if id >= nodes {
        return usage("--id must be below --nodes");
    }
    let opts = NodeOptions {
        id,
        nodes,
        links,
        tc_nanos,
        out_dir,
        fault_plan,
        seed,
        log_capacity,
    };
    match run_node(opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dgmc-node: {e}");
            ExitCode::FAILURE
        }
    }
}
