//! A D-GMC node on real sockets.
//!
//! The DES validates the protocol under simulated time; this crate stands
//! the *same engine* up on real UDP datagrams so the checker guarantees
//! carry over to deployed code (ROADMAP item 1, DESIGN.md §14). The split
//! is sans-IO, lightway-style:
//!
//! * [`proto`] — [`proto::NodeCore`], a pure protocol core mirroring the
//!   DES [`dgmc_core::switch::DgmcSwitch`] handler arm for arm. It consumes
//!   decoded frames and control events and returns [`proto::Output`] values
//!   (datagrams to send, timers to arm) without ever touching a socket.
//! * [`frame`] — the outer datagram framing over the `dgmc-core`/`dgmc-lsr`
//!   wire codecs, plus semantic validation of decoded frames.
//! * [`clock`] — the monotonic wall clock mapped onto the engine's
//!   nanosecond tick domain, and the timer wheel for `Tc` computations.
//! * [`driver`] — the I/O loop: one UDP socket for protocol traffic, one
//!   line-oriented TCP control socket for scripting (join/leave/status).
//! * [`fault`] — a seeded `FaultyNet`-equivalent shim on the send path
//!   (recovered loss as delayed retransmission), replayable from the PR-2
//!   fault-plan JSON format.
//! * [`launcher`] — spawns N node processes on loopback from a scenario
//!   file, drives membership through control sockets, and merges each
//!   node's decision log and metrics into the DES report schema.
//! * [`snapshot`] — canonical JSON projections of engine state and
//!   decision logs, shared by the node's state dump and the DES-vs-socket
//!   conformance suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod driver;
pub mod fault;
pub mod frame;
pub mod launcher;
pub mod proto;
pub mod snapshot;
