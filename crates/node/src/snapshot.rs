//! Canonical JSON projections of engine state and decision logs.
//!
//! The conformance suite compares a DES run against a multi-process socket
//! run. Equality is asserted on two projections, shared by both sides so a
//! bug in the projection cannot hide a divergence asymmetrically:
//!
//! * [`engine_snapshot`] — the protocol-visible final state of one engine:
//!   per-MC `R`/`E`/`C` stamps, epoch, members, installed topology and its
//!   cost, plus teardown tombstones. Everything deterministic, nothing
//!   timing-dependent.
//! * [`canonical_log_lines`] — a decision log with the one timing-dependent
//!   field (`at_ns`) stripped from every event, so DES and wall-clock runs
//!   compare equal exactly when they made the same decisions in the same
//!   order.

use dgmc_core::{DgmcEngine, Timestamp};
use dgmc_mctree::{McType, Role};
use dgmc_obs::JsonValue;
use dgmc_topology::Network;

fn stamp_json(stamp: &Timestamp) -> JsonValue {
    JsonValue::Arr(stamp.iter().map(|(_, v)| JsonValue::U64(v)).collect())
}

fn mc_type_str(t: McType) -> &'static str {
    match t {
        McType::Symmetric => "symmetric",
        McType::ReceiverOnly => "receiver_only",
        McType::Asymmetric => "asymmetric",
    }
}

fn role_str(r: Role) -> &'static str {
    match r {
        Role::Sender => "sender",
        Role::Receiver => "receiver",
        Role::SenderReceiver => "sender_receiver",
    }
}

/// Projects one engine's protocol-visible state onto a canonical JSON
/// value. `image` is the switch's local network image, used to price the
/// installed topology (`tree_cost`).
pub fn engine_snapshot(engine: &DgmcEngine, image: &Network) -> JsonValue {
    let mut ids = engine.mc_ids();
    ids.sort();
    let mcs = ids
        .into_iter()
        .filter_map(|mc| engine.state(mc))
        .map(|st| {
            let mut pairs = vec![
                ("mc", JsonValue::U64(u64::from(st.mc.0))),
                ("type", JsonValue::Str(mc_type_str(st.mc_type).to_owned())),
                ("epoch", JsonValue::U64(st.epoch)),
                ("r", stamp_json(&st.r)),
                ("e", stamp_json(&st.e)),
                ("c", stamp_json(&st.c)),
                (
                    "c_source",
                    st.c_source
                        .map_or(JsonValue::Null, |s| JsonValue::U64(u64::from(s.0))),
                ),
                (
                    "members",
                    JsonValue::Arr(
                        st.members
                            .iter()
                            .map(|(&node, &role)| {
                                JsonValue::Arr(vec![
                                    JsonValue::U64(u64::from(node.0)),
                                    JsonValue::Str(role_str(role).to_owned()),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ];
            match &st.installed {
                Some(tree) => {
                    let mut edges: Vec<(u32, u32)> = tree
                        .edges()
                        .map(|(a, b)| (a.0.min(b.0), a.0.max(b.0)))
                        .collect();
                    edges.sort_unstable();
                    pairs.push((
                        "installed",
                        JsonValue::Arr(
                            edges
                                .into_iter()
                                .map(|(a, b)| {
                                    JsonValue::Arr(vec![
                                        JsonValue::U64(u64::from(a)),
                                        JsonValue::U64(u64::from(b)),
                                    ])
                                })
                                .collect(),
                        ),
                    ));
                    pairs.push((
                        "tree_cost",
                        dgmc_mctree::metrics::tree_cost(tree, image)
                            .map_or(JsonValue::Null, JsonValue::U64),
                    ));
                }
                None => {
                    pairs.push(("installed", JsonValue::Null));
                    pairs.push(("tree_cost", JsonValue::Null));
                }
            }
            JsonValue::obj(pairs)
        })
        .collect();
    let tombstones = engine
        .tombstones()
        .map(|(mc, t)| {
            (
                mc.0.to_string(),
                JsonValue::obj(vec![
                    ("epoch", JsonValue::U64(t.epoch)),
                    ("final_r", stamp_json(&t.final_r)),
                ]),
            )
        })
        .collect();
    JsonValue::obj(vec![
        ("mcs", JsonValue::Arr(mcs)),
        ("tombstones", JsonValue::Obj(tombstones)),
    ])
}

/// Strips the timing-dependent `at_ns` field from one decision-log JSONL
/// document, returning the canonical per-event lines in order.
///
/// # Errors
///
/// Returns the parse error of the first malformed line.
pub fn canonical_log_lines(jsonl: &str) -> Result<Vec<String>, String> {
    jsonl
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|line| {
            let value = JsonValue::parse(line)?;
            let JsonValue::Obj(pairs) = value else {
                return Err(format!("decision log line is not an object: {line}"));
            };
            let kept: Vec<(String, JsonValue)> =
                pairs.into_iter().filter(|(k, _)| k != "at_ns").collect();
            Ok(JsonValue::Obj(kept).to_json())
        })
        .collect()
}

/// [`canonical_log_lines`] grouped by the event's `switch` field — the
/// projection used to compare a DES run (one global log) against a mesh
/// run (one log per process).
///
/// # Errors
///
/// Returns the parse error of the first malformed line, or a description
/// of an event with no `switch` field.
pub fn per_switch_logs(
    jsonl: &str,
) -> Result<std::collections::BTreeMap<u64, Vec<String>>, String> {
    let mut out = std::collections::BTreeMap::new();
    for line in jsonl.lines().filter(|l| !l.trim().is_empty()) {
        let value = JsonValue::parse(line)?;
        let Some(JsonValue::U64(switch)) = value.get("switch") else {
            return Err(format!("decision log line has no `switch`: {line}"));
        };
        let switch = *switch;
        let JsonValue::Obj(pairs) = value else {
            return Err(format!("decision log line is not an object: {line}"));
        };
        let kept: Vec<(String, JsonValue)> =
            pairs.into_iter().filter(|(k, _)| k != "at_ns").collect();
        out.entry(switch)
            .or_insert_with(Vec::new)
            .push(JsonValue::Obj(kept).to_json());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalization_strips_only_at_ns() {
        let jsonl = "{\"at_ns\":123,\"mc\":1,\"switch\":0,\"kind\":\"join\"}\n\
                     {\"at_ns\":456,\"mc\":1,\"switch\":2,\"kind\":\"install\"}\n";
        let lines = canonical_log_lines(jsonl).unwrap();
        assert_eq!(
            lines,
            vec![
                "{\"mc\":1,\"switch\":0,\"kind\":\"join\"}",
                "{\"mc\":1,\"switch\":2,\"kind\":\"install\"}",
            ]
        );
        let by_switch = per_switch_logs(jsonl).unwrap();
        assert_eq!(
            by_switch[&0],
            vec!["{\"mc\":1,\"switch\":0,\"kind\":\"join\"}"]
        );
        assert_eq!(by_switch.len(), 2);
    }

    #[test]
    fn different_timestamps_same_canonical_form() {
        let a = canonical_log_lines("{\"at_ns\":1,\"switch\":0,\"kind\":\"x\"}").unwrap();
        let b = canonical_log_lines("{\"at_ns\":999,\"switch\":0,\"kind\":\"x\"}").unwrap();
        assert_eq!(a, b);
    }
}
