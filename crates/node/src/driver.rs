//! The node's I/O loop: one UDP socket for protocol traffic, one
//! line-oriented TCP control socket for scripting.
//!
//! The driver owns everything impure — sockets, the monotonic clock, the
//! timer wheel, the loss shim — and funnels it all through the sans-IO
//! [`NodeCore`]. On startup it prints one handshake line to stdout:
//!
//! ```text
//! ready udp=127.0.0.1:PORT ctl=127.0.0.1:PORT
//! ```
//!
//! and then serves control commands until `quit`:
//!
//! | command | effect |
//! |---|---|
//! | `peers 0=ADDR;1=ADDR;…` | learn every node's UDP address |
//! | `join MC [TYPE] [ROLE]` | local host joins `MC` |
//! | `leave MC` | local host leaves `MC` |
//! | `link A B up\|down 0\|1` | incident link event (last field: detector) |
//! | `admin up\|down` | administrative node failure / revival |
//! | `send MC ID` | inject data packet `ID` into `MC` |
//! | `status` | `quiet=… timers=… rx=… tx=… log=… mcs=…` |
//! | `state` | one-line JSON engine snapshot |
//! | `metrics` | one-line JSON metrics registry |
//! | `quit` | write artifacts to `--out`, reply `bye`, exit |
//!
//! Every command gets exactly one reply line, so a scripting harness can
//! treat the control socket as synchronous request/response.

use crate::clock::{TickClock, Timer, Timers};
use crate::fault::{NodeFaultPlan, SendShim};
use crate::frame::{decode_datagram, encode_datagram, frame_is_sane};
use crate::proto::{node_counters, NodeCore, Output};
use crate::snapshot::engine_snapshot;
use dgmc_core::McId;
use dgmc_mctree::{McType, Role, SphStrategy};
use dgmc_obs::{DecisionLogHandle, JsonValue};
use dgmc_topology::{NetworkBuilder, NodeId};
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::path::PathBuf;
use std::rc::Rc;
use std::time::Duration;

/// Configuration of one node process.
#[derive(Debug, Clone)]
pub struct NodeOptions {
    /// This node's switch id.
    pub id: u32,
    /// Network width (number of switches).
    pub nodes: u32,
    /// Ground-truth links as `(a, b, cost)`, in a fixed order shared by
    /// every process so `LinkId`s agree network-wide.
    pub links: Vec<(u32, u32, u64)>,
    /// `Tc` — the topology computation time, in nanoseconds of real time.
    pub tc_nanos: u64,
    /// Directory for end-of-run artifacts (decision log, metrics, state).
    pub out_dir: PathBuf,
    /// Loss shim plan (`None` = transparent).
    pub fault_plan: Option<NodeFaultPlan>,
    /// Loss shim seed.
    pub seed: u64,
    /// Decision log capacity (events kept in memory).
    pub log_capacity: usize,
}

impl NodeOptions {
    /// Defaults for node `id` in an `nodes`-switch network: Tc = 300 µs (the
    /// DES computation-dominated regime), no faults, 64k log events.
    pub fn new(id: u32, nodes: u32, links: Vec<(u32, u32, u64)>) -> NodeOptions {
        NodeOptions {
            id,
            nodes,
            links,
            tc_nanos: 300_000,
            out_dir: PathBuf::from("."),
            fault_plan: None,
            seed: 0,
            log_capacity: 65_536,
        }
    }
}

/// How long one poll iteration blocks on the UDP socket at most. Keeps
/// control-socket latency bounded without spinning.
const POLL: Duration = Duration::from_millis(2);
/// Smallest read timeout we hand the kernel (zero would disable it).
const MIN_WAIT: Duration = Duration::from_micros(50);

struct ControlConn {
    stream: TcpStream,
    buf: Vec<u8>,
    alive: bool,
}

struct Driver {
    core: NodeCore,
    log: DecisionLogHandle,
    clock: TickClock,
    timers: Timers,
    shim: SendShim,
    udp: UdpSocket,
    peers: HashMap<u32, SocketAddr>,
    /// Shim-delayed datagrams waiting on a `Resend` timer.
    pending: HashMap<u64, (SocketAddr, Vec<u8>)>,
    next_resend: u64,
    rx: u64,
    tx: u64,
    out_dir: PathBuf,
    id: u32,
}

/// Runs a node to completion (until a `quit` control command).
///
/// # Errors
///
/// Propagates socket and filesystem errors; protocol-level junk (undecodable
/// datagrams, unknown control commands) is counted and survived.
pub fn run_node(opts: NodeOptions) -> std::io::Result<()> {
    let mut builder = NetworkBuilder::new(opts.nodes as usize);
    for &(a, b, cost) in &opts.links {
        builder = builder.link(a, b, cost);
    }
    let net = builder.build();
    let core = NodeCore::new(
        NodeId(opts.id),
        &net,
        opts.tc_nanos,
        Rc::new(SphStrategy::new()),
    );
    let log = core.attach_log(opts.log_capacity);
    let udp = UdpSocket::bind("127.0.0.1:0")?;
    let ctl = TcpListener::bind("127.0.0.1:0")?;
    ctl.set_nonblocking(true)?;
    println!("ready udp={} ctl={}", udp.local_addr()?, ctl.local_addr()?);
    std::io::stdout().flush()?;

    let mut driver = Driver {
        shim: SendShim::new(
            opts.fault_plan.clone().unwrap_or_else(NodeFaultPlan::none),
            opts.seed,
            opts.id,
        ),
        core,
        log,
        clock: TickClock::new(),
        timers: Timers::new(),
        udp,
        peers: HashMap::new(),
        pending: HashMap::new(),
        next_resend: 0,
        rx: 0,
        tx: 0,
        out_dir: opts.out_dir.clone(),
        id: opts.id,
    };
    let mut conns: Vec<ControlConn> = Vec::new();
    let mut buf = vec![0u8; 65_536];
    loop {
        driver.fire_due_timers()?;

        // New control connections.
        loop {
            match ctl.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(true)?;
                    conns.push(ControlConn {
                        stream,
                        buf: Vec::new(),
                        alive: true,
                    });
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) => return Err(e),
            }
        }

        // Control commands.
        let mut quit = false;
        for conn in &mut conns {
            for line in read_lines(conn) {
                let (reply, done) = driver.handle_command(line.trim())?;
                // The harness may already be gone; a dead control pipe must
                // not kill the node mid-teardown.
                let _ = writeln!(conn.stream, "{reply}");
                quit |= done;
            }
        }
        conns.retain(|c| c.alive);
        if quit {
            return Ok(());
        }

        // Protocol datagrams, blocking until the next timer at most.
        let now = driver.clock.now_nanos();
        let wait = driver
            .timers
            .sleep_until_next(now)
            .unwrap_or(POLL)
            .clamp(MIN_WAIT, POLL);
        driver.udp.set_read_timeout(Some(wait))?;
        match driver.udp.recv_from(&mut buf) {
            Ok((len, _src)) => driver.on_datagram(&buf[..len])?,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(e) => return Err(e),
        }
    }
}

/// Drains available bytes from a control connection and returns the
/// complete lines received.
fn read_lines(conn: &mut ControlConn) -> Vec<String> {
    let mut chunk = [0u8; 4096];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.alive = false;
                break;
            }
            Ok(n) => conn.buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(_) => {
                conn.alive = false;
                break;
            }
        }
    }
    let mut lines = Vec::new();
    while let Some(pos) = conn.buf.iter().position(|&b| b == b'\n') {
        let line: Vec<u8> = conn.buf.drain(..=pos).collect();
        lines.push(String::from_utf8_lossy(&line).into_owned());
    }
    lines
}

impl Driver {
    fn now(&self) -> u64 {
        self.clock.now_nanos()
    }

    fn fire_due_timers(&mut self) -> std::io::Result<()> {
        let now = self.now();
        for timer in self.timers.pop_due(now) {
            match timer {
                Timer::Compute(mc) => {
                    let outs = self.core.on_computation_done(self.now(), mc);
                    self.apply(outs)?;
                }
                Timer::Resend(seq) => {
                    if let Some((addr, bytes)) = self.pending.remove(&seq) {
                        self.udp.send_to(&bytes, addr)?;
                        self.tx += 1;
                    }
                }
            }
        }
        Ok(())
    }

    fn on_datagram(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.rx += 1;
        *self
            .core
            .metrics_mut()
            .counter_slot(node_counters::RX_DATAGRAMS) += 1;
        let (from, frame) = match decode_datagram(bytes) {
            Ok(decoded) => decoded,
            Err(_) => {
                *self
                    .core
                    .metrics_mut()
                    .counter_slot(node_counters::DECODE_ERRORS) += 1;
                return Ok(());
            }
        };
        if !frame_is_sane(from, &frame, self.core.width()) {
            *self
                .core
                .metrics_mut()
                .counter_slot(node_counters::INSANE_FRAMES) += 1;
            return Ok(());
        }
        let outs = self.core.on_frame(self.now(), from, frame);
        self.apply(outs)
    }

    fn apply(&mut self, outputs: Vec<Output>) -> std::io::Result<()> {
        for output in outputs {
            match output {
                Output::StartTimer { mc, after_nanos } => {
                    self.timers
                        .arm(self.now() + after_nanos, Timer::Compute(mc));
                }
                Output::Send { to, frame } => {
                    let Some(&addr) = self.peers.get(&to.0) else {
                        continue;
                    };
                    let bytes = encode_datagram(NodeId(self.id), &frame);
                    let copies = self.shim.fate(to.0);
                    if copies.is_empty() {
                        *self
                            .core
                            .metrics_mut()
                            .counter_slot(node_counters::SHIM_DROPS) += 1;
                        continue;
                    }
                    for delay in copies {
                        if delay == 0 {
                            self.udp.send_to(&bytes, addr)?;
                            self.tx += 1;
                        } else {
                            *self
                                .core
                                .metrics_mut()
                                .counter_slot(node_counters::SHIM_RETRANSMITS) += 1;
                            let seq = self.next_resend;
                            self.next_resend += 1;
                            self.pending.insert(seq, (addr, bytes.clone()));
                            self.timers.arm(self.now() + delay, Timer::Resend(seq));
                        }
                    }
                    *self
                        .core
                        .metrics_mut()
                        .counter_slot(node_counters::TX_DATAGRAMS) += 1;
                }
            }
        }
        Ok(())
    }

    fn state_json(&self) -> String {
        let delivered = self
            .core
            .deliveries()
            .iter()
            .map(|(&(mc, pid), &copies)| {
                JsonValue::Arr(vec![
                    JsonValue::U64(u64::from(mc.0)),
                    JsonValue::U64(pid),
                    JsonValue::U64(u64::from(copies)),
                ])
            })
            .collect();
        JsonValue::obj(vec![
            ("node", JsonValue::U64(u64::from(self.id))),
            (
                "engine",
                engine_snapshot(self.core.engine(), self.core.image()),
            ),
            ("delivered", JsonValue::Arr(delivered)),
        ])
        .to_json()
    }

    fn write_artifacts(&self) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.out_dir)?;
        let id = self.id;
        std::fs::write(
            self.out_dir.join(format!("node{id}.log.jsonl")),
            self.log.borrow().to_jsonl(),
        )?;
        std::fs::write(
            self.out_dir.join(format!("node{id}.metrics.json")),
            self.core.metrics().to_json().to_json(),
        )?;
        std::fs::write(
            self.out_dir.join(format!("node{id}.state.json")),
            self.state_json(),
        )?;
        Ok(())
    }

    /// Executes one control command, returning `(reply, quit)`.
    fn handle_command(&mut self, line: &str) -> std::io::Result<(String, bool)> {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let reply = match tokens.as_slice() {
            [] => "ok".to_owned(),
            ["peers", spec] => match parse_peers(spec) {
                Ok(peers) => {
                    self.peers = peers;
                    "ok".to_owned()
                }
                Err(e) => format!("err {e}"),
            },
            ["join", mc, rest @ ..] => match parse_join(mc, rest) {
                Ok((mc, mc_type, role)) => {
                    let outs = self.core.on_join(self.now(), mc, mc_type, role);
                    self.apply(outs)?;
                    "ok".to_owned()
                }
                Err(e) => format!("err {e}"),
            },
            ["leave", mc] => match parse_mc(mc) {
                Ok(mc) => {
                    let outs = self.core.on_leave(self.now(), mc);
                    self.apply(outs)?;
                    "ok".to_owned()
                }
                Err(e) => format!("err {e}"),
            },
            ["link", a, b, state, detector] => match parse_link(self.id, a, b, state, detector) {
                Ok((neighbor, up, detector)) => {
                    let outs = self.core.on_link_event(self.now(), neighbor, up, detector);
                    self.apply(outs)?;
                    "ok".to_owned()
                }
                Err(e) => format!("err {e}"),
            },
            ["admin", state] => match parse_up_down(state) {
                Ok(up) => {
                    let outs = self.core.on_admin(self.now(), up);
                    self.apply(outs)?;
                    "ok".to_owned()
                }
                Err(e) => format!("err {e}"),
            },
            ["send", mc, pid] => match (parse_mc(mc), pid.parse::<u64>()) {
                (Ok(mc), Ok(pid)) => {
                    let outs = self.core.on_send_data(self.now(), mc, pid);
                    self.apply(outs)?;
                    "ok".to_owned()
                }
                _ => format!("err bad send arguments {mc:?} {pid:?}"),
            },
            ["status"] => format!(
                "quiet={} timers={} rx={} tx={} log={} mcs={}",
                u8::from(self.core.quiet()),
                self.timers.len(),
                self.rx,
                self.tx,
                self.log.borrow().len(),
                self.core.mc_count(),
            ),
            ["state"] => self.state_json(),
            ["metrics"] => self.core.metrics().to_json().to_json(),
            ["quit"] => {
                self.write_artifacts()?;
                return Ok(("bye".to_owned(), true));
            }
            other => format!("err unknown command {other:?}"),
        };
        Ok((reply, false))
    }
}

fn parse_peers(spec: &str) -> Result<HashMap<u32, SocketAddr>, String> {
    let mut peers = HashMap::new();
    for part in spec.split(';').filter(|p| !p.is_empty()) {
        let (id, addr) = part
            .split_once('=')
            .ok_or_else(|| format!("bad peer entry {part:?}"))?;
        let id: u32 = id.parse().map_err(|_| format!("bad peer id {id:?}"))?;
        let addr: SocketAddr = addr
            .parse()
            .map_err(|_| format!("bad peer addr {addr:?}"))?;
        peers.insert(id, addr);
    }
    Ok(peers)
}

fn parse_mc(tok: &str) -> Result<McId, String> {
    tok.parse::<u32>()
        .map(McId)
        .map_err(|_| format!("bad mc id {tok:?}"))
}

fn parse_join(mc: &str, rest: &[&str]) -> Result<(McId, McType, Role), String> {
    let mc = parse_mc(mc)?;
    let mc_type = match rest.first() {
        None | Some(&"symmetric") => McType::Symmetric,
        Some(&"receiver_only") => McType::ReceiverOnly,
        Some(&"asymmetric") => McType::Asymmetric,
        Some(other) => return Err(format!("bad mc type {other:?}")),
    };
    let role = match rest.get(1) {
        None | Some(&"sender_receiver") => Role::SenderReceiver,
        Some(&"sender") => Role::Sender,
        Some(&"receiver") => Role::Receiver,
        Some(other) => return Err(format!("bad role {other:?}")),
    };
    Ok((mc, mc_type, role))
}

fn parse_link(
    me: u32,
    a: &str,
    b: &str,
    state: &str,
    detector: &str,
) -> Result<(NodeId, bool, bool), String> {
    let a: u32 = a.parse().map_err(|_| format!("bad node id {a:?}"))?;
    let b: u32 = b.parse().map_err(|_| format!("bad node id {b:?}"))?;
    let neighbor = if a == me {
        b
    } else if b == me {
        a
    } else {
        return Err(format!("link {a}-{b} is not incident to node {me}"));
    };
    let up = parse_up_down(state)?;
    let detector = match detector {
        "0" => false,
        "1" => true,
        other => return Err(format!("bad detector flag {other:?}")),
    };
    Ok((NodeId(neighbor), up, detector))
}

fn parse_up_down(tok: &str) -> Result<bool, String> {
    match tok {
        "up" => Ok(true),
        "down" => Ok(false),
        other => Err(format!("bad state {other:?} (up|down)")),
    }
}
