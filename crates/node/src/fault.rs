//! A `FaultyNet`-equivalent loss shim for the UDP send path.
//!
//! The DES injects loss through [`dgmc_des::net::FaultyNet`]; real sockets
//! need the same treatment to test loss tolerance end to end. This module
//! parses the PR-2 fault-plan JSON format (the exact output of
//! [`dgmc_des::net::FaultPlan::to_json`], as written into repro bundles)
//! and applies it on a node's send path with the same semantics:
//!
//! * `hard_loss` — the datagram is dropped for good;
//! * `loss` — a geometric number of link-level retransmission rounds, each
//!   adding `retransmit_after_ns`, capped at `max_retries`; the datagram
//!   always arrives eventually (recovered loss);
//! * `duplicate` — one extra copy with its own jitter;
//! * `jitter_ns` — uniform extra delay on every copy.
//!
//! The shim is seeded per node, so a mesh run is reproducible from
//! `(plan, seed)` exactly like a DES run. `flaps`/`outages` in the plan are
//! scenario-harness concerns and are parsed but ignored here.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

use dgmc_obs::JsonValue;

/// Per-directed-link fault knobs (the wire-format mirror of the DES
/// `LinkFaults`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Faults {
    /// Per-attempt recovered-loss probability.
    pub loss: f64,
    /// Unrecovered drop probability.
    pub hard_loss: f64,
    /// Probability of one extra delivered copy.
    pub duplicate: f64,
    /// Maximum uniform extra delay per copy, nanoseconds.
    pub jitter_ns: u64,
}

impl Faults {
    /// No faults at all.
    pub fn none() -> Faults {
        Faults {
            loss: 0.0,
            hard_loss: 0.0,
            duplicate: 0.0,
            jitter_ns: 0,
        }
    }
}

/// A parsed fault plan, reduced to what the send path needs.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeFaultPlan {
    /// Faults on every pair without an override.
    pub default: Faults,
    /// Per-pair overrides keyed by `(min(a, b), max(a, b))`.
    pub overrides: BTreeMap<(u32, u32), Faults>,
    /// Extra delay of one recovered retransmission round, nanoseconds.
    pub retransmit_after_ns: u64,
    /// Cap on recovered rounds per datagram.
    pub max_retries: u32,
}

impl NodeFaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> NodeFaultPlan {
        NodeFaultPlan {
            default: Faults::none(),
            overrides: BTreeMap::new(),
            retransmit_after_ns: 20_000,
            max_retries: 5,
        }
    }

    /// Parses the PR-2 fault-plan JSON format.
    ///
    /// # Errors
    ///
    /// Returns a description on malformed JSON, missing required keys or
    /// out-of-range probabilities.
    pub fn from_json(text: &str) -> Result<NodeFaultPlan, String> {
        let root = JsonValue::parse(text)?;
        let default = parse_faults(
            root.get("default")
                .ok_or_else(|| "fault plan: missing `default`".to_owned())?,
        )?;
        let mut overrides = BTreeMap::new();
        if let Some(entries) = root.get("overrides").and_then(JsonValue::as_array) {
            for entry in entries {
                let a = get_u64(entry, "a")? as u32;
                let b = get_u64(entry, "b")? as u32;
                let faults = parse_faults(
                    entry
                        .get("faults")
                        .ok_or_else(|| "fault plan: override missing `faults`".to_owned())?,
                )?;
                overrides.insert((a.min(b), a.max(b)), faults);
            }
        }
        let retransmit_after_ns = root
            .get("retransmit_after_ns")
            .map(as_u64)
            .transpose()?
            .unwrap_or(20_000);
        let max_retries = root
            .get("max_retries")
            .map(as_u64)
            .transpose()?
            .unwrap_or(5) as u32;
        Ok(NodeFaultPlan {
            default,
            overrides,
            retransmit_after_ns,
            max_retries,
        })
    }

    /// The faults applied between `from` and `to` (direction-insensitive,
    /// like the DES).
    pub fn faults_between(&self, from: u32, to: u32) -> Faults {
        let key = (from.min(to), from.max(to));
        self.overrides.get(&key).copied().unwrap_or(self.default)
    }
}

fn get_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key)
        .ok_or_else(|| format!("fault plan: missing `{key}`"))
        .and_then(as_u64)
}

fn as_u64(v: &JsonValue) -> Result<u64, String> {
    match v {
        JsonValue::U64(n) => Ok(*n),
        other => Err(format!("fault plan: expected integer, got {other:?}")),
    }
}

fn as_f64(v: &JsonValue) -> Result<f64, String> {
    match v {
        JsonValue::U64(n) => Ok(*n as f64),
        JsonValue::F64(f) => Ok(*f),
        other => Err(format!("fault plan: expected number, got {other:?}")),
    }
}

fn parse_faults(v: &JsonValue) -> Result<Faults, String> {
    let prob = |key: &str| -> Result<f64, String> {
        let p = v.get(key).map(as_f64).transpose()?.unwrap_or(0.0);
        if !(0.0..=1.0).contains(&p) {
            return Err(format!("fault plan: `{key}` = {p} outside [0, 1]"));
        }
        Ok(p)
    };
    Ok(Faults {
        loss: prob("loss")?,
        hard_loss: prob("hard_loss")?,
        duplicate: prob("duplicate")?,
        jitter_ns: v.get("jitter_ns").map(as_u64).transpose()?.unwrap_or(0),
    })
}

/// The send-path shim: decides the fate of each outgoing datagram.
#[derive(Debug)]
pub struct SendShim {
    plan: NodeFaultPlan,
    rng: StdRng,
    me: u32,
}

impl SendShim {
    /// Creates the shim for node `me`; the fault schedule is a pure
    /// function of `(plan, seed, me)`.
    pub fn new(plan: NodeFaultPlan, seed: u64, me: u32) -> SendShim {
        // Decorrelate per-node streams without losing reproducibility.
        let node_seed = seed ^ u64::from(me).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SendShim {
            plan,
            rng: StdRng::seed_from_u64(node_seed),
            me,
        }
    }

    /// `true` when the plan can never perturb anything (fast path).
    pub fn is_transparent(&self) -> bool {
        self.plan.default == Faults::none() && self.plan.overrides.is_empty()
    }

    fn jitter(&mut self, max_ns: u64) -> u64 {
        if max_ns == 0 {
            0
        } else {
            self.rng.gen_range(0..=max_ns)
        }
    }

    /// Decides the fate of one datagram toward `to`: the extra send delay
    /// in nanoseconds of each copy to put on the wire. Empty means hard
    /// loss; `0` means send immediately; larger values become driver
    /// retransmission timers (recovered loss / jitter / duplicates).
    pub fn fate(&mut self, to: u32) -> Vec<u64> {
        let faults = self.plan.faults_between(self.me, to);
        let mut copies = Vec::with_capacity(1);
        if faults.hard_loss > 0.0 && self.rng.gen_bool(faults.hard_loss) {
            return copies;
        }
        let mut retries = 0u32;
        while faults.loss > 0.0 && retries < self.plan.max_retries && self.rng.gen_bool(faults.loss)
        {
            retries += 1;
        }
        copies.push(
            self.jitter(faults.jitter_ns) + self.plan.retransmit_after_ns * u64::from(retries),
        );
        if faults.duplicate > 0.0 && self.rng.gen_bool(faults.duplicate) {
            copies.push(self.jitter(faults.jitter_ns));
        }
        copies
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PLAN: &str = r#"{
        "default": {"loss": 0.25, "hard_loss": 0.0, "duplicate": 0.1, "jitter_ns": 500},
        "overrides": [
            {"a": 1, "b": 0, "faults": {"loss": 0.0, "hard_loss": 1.0, "duplicate": 0.0, "jitter_ns": 0}}
        ],
        "retransmit_after_ns": 20000,
        "max_retries": 5,
        "flaps": [],
        "outages": []
    }"#;

    #[test]
    fn parses_the_des_plan_format() {
        let plan = NodeFaultPlan::from_json(PLAN).unwrap();
        assert_eq!(plan.default.loss, 0.25);
        assert_eq!(plan.retransmit_after_ns, 20_000);
        assert_eq!(plan.max_retries, 5);
        assert_eq!(plan.faults_between(1, 0).hard_loss, 1.0);
        assert_eq!(plan.faults_between(0, 1).hard_loss, 1.0, "unordered key");
        assert_eq!(plan.faults_between(0, 2).loss, 0.25);
    }

    #[test]
    fn rejects_bad_probability() {
        let text = r#"{"default": {"loss": 1.5}}"#;
        assert!(NodeFaultPlan::from_json(text).is_err());
    }

    #[test]
    fn hard_loss_drops_recovered_loss_delays() {
        let mut plan = NodeFaultPlan::none();
        plan.overrides.insert(
            (0, 1),
            Faults {
                hard_loss: 1.0,
                ..Faults::none()
            },
        );
        plan.overrides.insert(
            (0, 2),
            Faults {
                loss: 1.0,
                ..Faults::none()
            },
        );
        let mut shim = SendShim::new(plan, 7, 0);
        assert!(shim.fate(1).is_empty(), "hard loss drops");
        let copies = shim.fate(2);
        assert_eq!(copies.len(), 1);
        assert_eq!(copies[0], 20_000 * 5, "loss=1 exhausts max_retries");
    }

    #[test]
    fn same_seed_same_fate_stream() {
        let plan = NodeFaultPlan::from_json(PLAN).unwrap();
        let mut a = SendShim::new(plan.clone(), 42, 3);
        let mut b = SendShim::new(plan, 42, 3);
        for to in [0u32, 1, 2, 4, 0, 2] {
            assert_eq!(a.fate(to), b.fate(to));
        }
    }

    #[test]
    fn transparent_plan_sends_one_immediate_copy() {
        let mut shim = SendShim::new(NodeFaultPlan::none(), 1, 0);
        assert!(shim.is_transparent());
        assert_eq!(shim.fate(1), vec![0]);
    }
}
