//! Wall-clock → tick-domain mapping and the node's timer wheel.
//!
//! The engine and observability layer timestamp everything in `u64`
//! nanoseconds. In the DES those are simulated; here they are nanoseconds
//! of *monotonic elapsed time since the node process started*, so decision
//! logs stay comparable (strictly increasing, starting near zero) without
//! depending on the host's wall clock being sane.

use dgmc_core::McId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

/// Maps [`Instant`] onto the engine's nanosecond tick domain.
#[derive(Debug, Clone)]
pub struct TickClock {
    epoch: Instant,
}

impl TickClock {
    /// Starts the clock: tick 0 is "now".
    pub fn new() -> TickClock {
        TickClock {
            epoch: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since the clock started, saturating at
    /// `u64::MAX` (584 years of uptime).
    pub fn now_nanos(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

impl Default for TickClock {
    fn default() -> Self {
        TickClock::new()
    }
}

/// What a due timer asks the driver to do.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Timer {
    /// The `Tc` computation timer for an MC fired: feed
    /// `on_computation_done` to the core.
    Compute(McId),
    /// A loss-shim retransmission slot: re-send the queued datagram with
    /// this sequence number.
    Resend(u64),
}

/// A deadline-ordered timer wheel (a binary heap of `(deadline, timer)`).
#[derive(Debug, Default)]
pub struct Timers {
    heap: BinaryHeap<Reverse<(u64, Timer)>>,
}

impl Timers {
    /// An empty wheel.
    pub fn new() -> Timers {
        Timers::default()
    }

    /// Arms `timer` to fire at `at_nanos` on the tick clock.
    pub fn arm(&mut self, at_nanos: u64, timer: Timer) {
        self.heap.push(Reverse((at_nanos, timer)));
    }

    /// The earliest pending deadline, if any.
    pub fn next_deadline(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse((at, _))| *at)
    }

    /// Pops every timer due at or before `now_nanos`, in deadline order.
    pub fn pop_due(&mut self, now_nanos: u64) -> Vec<Timer> {
        let mut due = Vec::new();
        while let Some(Reverse((at, _))) = self.heap.peek() {
            if *at > now_nanos {
                break;
            }
            let Reverse((_, timer)) = self.heap.pop().expect("peeked");
            due.push(timer);
        }
        due
    }

    /// Pending timer count.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when nothing is armed.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// How long until the earliest deadline, from `now_nanos` (zero when
    /// already due, `None` when nothing is armed).
    pub fn sleep_until_next(&self, now_nanos: u64) -> Option<Duration> {
        self.next_deadline()
            .map(|at| Duration::from_nanos(at.saturating_sub(now_nanos)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_clock_is_monotonic() {
        let clock = TickClock::new();
        let a = clock.now_nanos();
        let b = clock.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn timers_pop_in_deadline_order() {
        let mut timers = Timers::new();
        timers.arm(300, Timer::Compute(McId(3)));
        timers.arm(100, Timer::Resend(7));
        timers.arm(200, Timer::Compute(McId(1)));
        assert_eq!(timers.next_deadline(), Some(100));
        assert_eq!(timers.pop_due(50), Vec::new());
        assert_eq!(
            timers.pop_due(250),
            vec![Timer::Resend(7), Timer::Compute(McId(1))]
        );
        assert_eq!(timers.len(), 1);
        assert_eq!(timers.pop_due(u64::MAX), vec![Timer::Compute(McId(3))]);
        assert!(timers.is_empty());
        assert_eq!(timers.sleep_until_next(0), None);
    }
}
