//! # D-GMC: a lightweight protocol for multipoint connections under
//! link-state routing
//!
//! Reproduction of Huang & McKinley, ICDCS 1996. D-GMC constructs and
//! maintains *multipoint connections* (MCs) — symmetric, receiver-only and
//! asymmetric — on top of a link-state routing substrate. Its key idea:
//! when an event occurs (member join/leave, link change), **only the switch
//! that detects it** computes a new MC topology and floods the proposal in
//! an *MC LSA*; every other switch adopts it. Concurrent, conflicting
//! proposals are detected and resolved with vector [`Timestamp`]s.
//!
//! The crate layers:
//!
//! * [`Timestamp`] — the n-component event-count vectors (`R`, `E`, `C`),
//! * [`McLsa`] — the `(S, F, V, G, P, T)` advertisement tuple,
//! * [`DgmcEngine`] — the `EventHandler()`/`ReceiveLSA()` state machines of
//!   the paper's Figures 4 and 5, pure and unit-testable,
//! * [`switch`] — the simulated switch actor combining the engine with the
//!   [`dgmc_lsr`] substrate, `Tc`-long computations and a data plane,
//! * [`convergence`] — consensus checks and convergence-time measurement.
//!
//! # Examples
//!
//! Build a five-switch ring, have three switches join a teleconference MC,
//! and verify that everyone converges on the same tree:
//!
//! ```
//! use dgmc_core::switch::{build_dgmc_sim, DgmcConfig, SwitchMsg};
//! use dgmc_core::{convergence, McId};
//! use dgmc_des::{ActorId, SimDuration};
//! use dgmc_mctree::{McType, Role, SphStrategy};
//! use dgmc_topology::generate;
//! use std::rc::Rc;
//!
//! let net = generate::ring(5);
//! let mut sim = build_dgmc_sim(&net, DgmcConfig::computation_dominated(), Rc::new(SphStrategy::new()));
//! for (i, node) in [0u32, 2, 4].into_iter().enumerate() {
//!     sim.inject(
//!         ActorId(node),
//!         SimDuration::millis(i as u64),
//!         SwitchMsg::HostJoin { mc: McId(1), mc_type: McType::Symmetric, role: Role::SenderReceiver },
//!     );
//! }
//! sim.run_to_quiescence();
//! let consensus = convergence::check_consensus(&sim, McId(1)).unwrap();
//! assert_eq!(consensus.members.len(), 3);
//! assert!(consensus.topology.unwrap().is_tree());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod convergence;
pub mod invariants;
pub mod spec;
pub mod switch;

mod arena;
mod engine;
mod mc;
mod state;
mod timestamp;

pub use engine::{DgmcAction, DgmcEngine, EngineMutation};
pub use mc::{McEventKind, McId, McLsa};
pub use state::{Candidate, ComputationJob, McState, McSync, Tombstone};
pub use timestamp::Timestamp;

// Re-export the vocabulary types users need alongside the protocol.
pub use dgmc_mctree::{McAlgorithm, McTopology, McType, Role};
