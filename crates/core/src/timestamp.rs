use dgmc_topology::NodeId;
use std::cmp::Ordering;
use std::fmt;

/// A D-GMC vector timestamp.
///
/// "A timestamp `T` is an n-tuple of natural numbers, where `n` is the
/// number of switches in the network. The x-th component of `T` ... specifies
/// how many events have been heard from switch `x`."
///
/// Comparison follows the paper: `A >= B` iff `A[i] >= B[i]` for every `i`;
/// `A > B` iff `A >= B` and `A != B`. Two timestamps can be incomparable, so
/// only [`PartialOrd`] is implemented.
///
/// # Examples
///
/// ```
/// use dgmc_core::Timestamp;
/// use dgmc_topology::NodeId;
///
/// let mut a = Timestamp::zero(3);
/// let mut b = Timestamp::zero(3);
/// a.incr(NodeId(0));
/// b.incr(NodeId(2));
/// assert!(!a.dominates(&b));
/// assert!(!b.dominates(&a));
/// let m = a.merged_max(&b);
/// assert!(m.dominates(&a) && m.dominates(&b));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Timestamp(Vec<u64>);

impl Timestamp {
    /// The all-zero timestamp for a network of `n` switches.
    pub fn zero(n: usize) -> Timestamp {
        Timestamp(vec![0; n])
    }

    /// Builds a timestamp from explicit components.
    pub fn from_components(components: Vec<u64>) -> Timestamp {
        Timestamp(components)
    }

    /// Number of components (network size).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` if the timestamp has no components.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The component for switch `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn get(&self, x: NodeId) -> u64 {
        self.0[x.index()]
    }

    /// Increments the component for switch `x` (one more event heard).
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn incr(&mut self, x: NodeId) {
        self.0[x.index()] += 1;
    }

    /// Sets every component to the max of itself and `other`'s
    /// (the `E[y] = max(E[y], T[y])` step of `ReceiveLSA()`).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn merge_max(&mut self, other: &Timestamp) {
        assert_eq!(self.0.len(), other.0.len(), "timestamp sizes differ");
        for (a, &b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(b);
        }
    }

    /// Returns the componentwise max without mutating.
    pub fn merged_max(&self, other: &Timestamp) -> Timestamp {
        let mut out = self.clone();
        out.merge_max(other);
        out
    }

    /// The paper's `A >= B`: every component of `self` is at least `other`'s.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn dominates(&self, other: &Timestamp) -> bool {
        assert_eq!(self.0.len(), other.0.len(), "timestamp sizes differ");
        self.0.iter().zip(&other.0).all(|(a, b)| a >= b)
    }

    /// The paper's `A > B`: dominates and differs.
    pub fn strictly_dominates(&self, other: &Timestamp) -> bool {
        self.dominates(other) && self != other
    }

    /// Sum of all components (total events heard; useful in traces).
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// Iterates over `(switch, component)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, u64)> + '_ {
        self.0
            .iter()
            .enumerate()
            .map(|(i, &v)| (NodeId(i as u32), v))
    }
}

impl PartialOrd for Timestamp {
    /// `None` for incomparable timestamps.
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        match (self.dominates(other), other.dominates(self)) {
            (true, true) => Some(Ordering::Equal),
            (true, false) => Some(Ordering::Greater),
            (false, true) => Some(Ordering::Less),
            (false, false) => None,
        }
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: &[u64]) -> Timestamp {
        Timestamp::from_components(v.to_vec())
    }

    #[test]
    fn zero_is_dominated_by_everything() {
        let z = Timestamp::zero(3);
        let t = ts(&[1, 0, 2]);
        assert!(t.dominates(&z));
        assert!(t.strictly_dominates(&z));
        assert!(z.dominates(&z));
        assert!(!z.strictly_dominates(&z));
    }

    #[test]
    fn incomparable_pairs() {
        let a = ts(&[1, 0]);
        let b = ts(&[0, 1]);
        assert!(!a.dominates(&b));
        assert!(!b.dominates(&a));
        assert_eq!(a.partial_cmp(&b), None);
    }

    #[test]
    fn partial_ord_matches_domination() {
        let a = ts(&[2, 3]);
        let b = ts(&[1, 3]);
        assert_eq!(a.partial_cmp(&b), Some(Ordering::Greater));
        assert_eq!(b.partial_cmp(&a), Some(Ordering::Less));
        assert_eq!(a.partial_cmp(&a), Some(Ordering::Equal));
        assert!(a > b);
        assert!(b < a);
        assert!(a == a);
    }

    #[test]
    fn merge_is_least_upper_bound() {
        let a = ts(&[1, 0, 5]);
        let b = ts(&[0, 2, 3]);
        let m = a.merged_max(&b);
        assert_eq!(m, ts(&[1, 2, 5]));
        assert!(m.dominates(&a) && m.dominates(&b));
        // lub minimality: anything dominating both dominates m componentwise.
        let upper = ts(&[9, 9, 9]);
        assert!(upper.dominates(&m));
    }

    #[test]
    fn incr_and_get() {
        let mut t = Timestamp::zero(2);
        t.incr(NodeId(1));
        t.incr(NodeId(1));
        assert_eq!(t.get(NodeId(1)), 2);
        assert_eq!(t.get(NodeId(0)), 0);
        assert_eq!(t.total(), 2);
    }

    #[test]
    fn display_and_iter() {
        let t = ts(&[3, 1, 4]);
        assert_eq!(t.to_string(), "(3,1,4)");
        let pairs: Vec<_> = t.iter().collect();
        assert_eq!(pairs[2], (NodeId(2), 4));
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "sizes differ")]
    fn size_mismatch_panics() {
        ts(&[1]).dominates(&ts(&[1, 2]));
    }
}
