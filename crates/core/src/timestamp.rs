use dgmc_topology::NodeId;
use std::cmp::Ordering;
use std::fmt;

/// A D-GMC vector timestamp.
///
/// "A timestamp `T` is an n-tuple of natural numbers, where `n` is the
/// number of switches in the network. The x-th component of `T` ... specifies
/// how many events have been heard from switch `x`."
///
/// Comparison follows the paper: `A >= B` iff `A[i] >= B[i]` for every `i`;
/// `A > B` iff `A >= B` and `A != B`. Two timestamps can be incomparable, so
/// only [`PartialOrd`] is implemented.
///
/// # Representation
///
/// Logically an n-tuple, physically a sorted sparse vector of the *nonzero*
/// components only. An MC's stamps count events from its members, so at
/// scale (many thousands of resident MCs in a large network) almost every
/// component is zero; storing `(origin, count)` pairs makes a stamp O(active
/// origins) instead of O(n) and lets 100k-connection switches fit in memory.
/// The canonical form — strictly increasing indices, no zero values — makes
/// the derived `Eq`/`Hash` agree with tuple equality.
///
/// # Examples
///
/// ```
/// use dgmc_core::Timestamp;
/// use dgmc_topology::NodeId;
///
/// let mut a = Timestamp::zero(3);
/// let mut b = Timestamp::zero(3);
/// a.incr(NodeId(0));
/// b.incr(NodeId(2));
/// assert!(!a.dominates(&b));
/// assert!(!b.dominates(&a));
/// let m = a.merged_max(&b);
/// assert!(m.dominates(&a) && m.dominates(&b));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Timestamp {
    /// Network size: the logical tuple length.
    n: u32,
    /// Nonzero components as `(switch index, count)`, sorted by index.
    entries: Vec<(u32, u64)>,
}

impl Timestamp {
    /// The all-zero timestamp for a network of `n` switches.
    pub fn zero(n: usize) -> Timestamp {
        Timestamp {
            n: u32::try_from(n).expect("network size exceeds u32"),
            entries: Vec::new(),
        }
    }

    /// Builds a timestamp from explicit components.
    pub fn from_components(components: Vec<u64>) -> Timestamp {
        let n = u32::try_from(components.len()).expect("network size exceeds u32");
        let entries = components
            .into_iter()
            .enumerate()
            .filter(|&(_, v)| v != 0)
            .map(|(i, v)| (u32::try_from(i).expect("index fits: len checked"), v))
            .collect();
        Timestamp { n, entries }
    }

    /// Number of components (network size).
    pub fn len(&self) -> usize {
        self.n as usize
    }

    /// Returns `true` if the timestamp has no components.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of nonzero components actually stored.
    pub fn nonzero_len(&self) -> usize {
        self.entries.len()
    }

    /// The component for switch `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn get(&self, x: NodeId) -> u64 {
        assert!(x.0 < self.n, "timestamp component {} out of range", x.0);
        match self.entries.binary_search_by_key(&x.0, |&(i, _)| i) {
            Ok(k) => self.entries[k].1,
            Err(_) => 0,
        }
    }

    /// Increments the component for switch `x` (one more event heard).
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn incr(&mut self, x: NodeId) {
        assert!(x.0 < self.n, "timestamp component {} out of range", x.0);
        match self.entries.binary_search_by_key(&x.0, |&(i, _)| i) {
            Ok(k) => self.entries[k].1 += 1,
            Err(k) => self.entries.insert(k, (x.0, 1)),
        }
    }

    /// Sets every component to the max of itself and `other`'s
    /// (the `E[y] = max(E[y], T[y])` step of `ReceiveLSA()`).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn merge_max(&mut self, other: &Timestamp) {
        assert_eq!(self.n, other.n, "timestamp sizes differ");
        if other.entries.is_empty() {
            return;
        }
        // Merge-walk the two sorted sparse vectors.
        let mut merged = Vec::with_capacity(self.entries.len().max(other.entries.len()));
        let (mut a, mut b) = (0usize, 0usize);
        while a < self.entries.len() && b < other.entries.len() {
            let (ia, va) = self.entries[a];
            let (ib, vb) = other.entries[b];
            match ia.cmp(&ib) {
                Ordering::Less => {
                    merged.push((ia, va));
                    a += 1;
                }
                Ordering::Greater => {
                    merged.push((ib, vb));
                    b += 1;
                }
                Ordering::Equal => {
                    merged.push((ia, va.max(vb)));
                    a += 1;
                    b += 1;
                }
            }
        }
        merged.extend_from_slice(&self.entries[a..]);
        merged.extend_from_slice(&other.entries[b..]);
        self.entries = merged;
    }

    /// Returns the componentwise max without mutating.
    pub fn merged_max(&self, other: &Timestamp) -> Timestamp {
        let mut out = self.clone();
        out.merge_max(other);
        out
    }

    /// The paper's `A >= B`: every component of `self` is at least `other`'s.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn dominates(&self, other: &Timestamp) -> bool {
        assert_eq!(self.n, other.n, "timestamp sizes differ");
        // Every nonzero component of `other` must be covered; components
        // absent from `other` are zero and trivially dominated.
        let mut a = 0usize;
        for &(ib, vb) in &other.entries {
            while a < self.entries.len() && self.entries[a].0 < ib {
                a += 1;
            }
            match self.entries.get(a) {
                Some(&(ia, va)) if ia == ib && va >= vb => a += 1,
                _ => return false,
            }
        }
        true
    }

    /// The paper's `A > B`: dominates and differs.
    pub fn strictly_dominates(&self, other: &Timestamp) -> bool {
        self.dominates(other) && self != other
    }

    /// Sum of all components (total events heard; useful in traces).
    pub fn total(&self) -> u64 {
        self.entries.iter().map(|&(_, v)| v).sum()
    }

    /// Iterates over all `n` `(switch, component)` pairs, zeros included.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, u64)> + '_ {
        let mut k = 0usize;
        (0..self.n).map(move |i| {
            let v = match self.entries.get(k) {
                Some(&(idx, v)) if idx == i => {
                    k += 1;
                    v
                }
                _ => 0,
            };
            (NodeId(i), v)
        })
    }

    /// Iterates over the stored nonzero `(switch, component)` pairs only.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (NodeId, u64)> + '_ {
        self.entries.iter().map(|&(i, v)| (NodeId(i), v))
    }
}

impl PartialOrd for Timestamp {
    /// `None` for incomparable timestamps.
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        match (self.dominates(other), other.dominates(self)) {
            (true, true) => Some(Ordering::Equal),
            (true, false) => Some(Ordering::Greater),
            (false, true) => Some(Ordering::Less),
            (false, false) => None,
        }
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, (_, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: &[u64]) -> Timestamp {
        Timestamp::from_components(v.to_vec())
    }

    #[test]
    fn zero_is_dominated_by_everything() {
        let z = Timestamp::zero(3);
        let t = ts(&[1, 0, 2]);
        assert!(t.dominates(&z));
        assert!(t.strictly_dominates(&z));
        assert!(z.dominates(&z));
        assert!(!z.strictly_dominates(&z));
    }

    #[test]
    fn incomparable_pairs() {
        let a = ts(&[1, 0]);
        let b = ts(&[0, 1]);
        assert!(!a.dominates(&b));
        assert!(!b.dominates(&a));
        assert_eq!(a.partial_cmp(&b), None);
    }

    #[test]
    fn partial_ord_matches_domination() {
        let a = ts(&[2, 3]);
        let b = ts(&[1, 3]);
        assert_eq!(a.partial_cmp(&b), Some(Ordering::Greater));
        assert_eq!(b.partial_cmp(&a), Some(Ordering::Less));
        assert_eq!(a.partial_cmp(&a), Some(Ordering::Equal));
        assert!(a > b);
        assert!(b < a);
        assert!(a == a);
    }

    #[test]
    fn merge_is_least_upper_bound() {
        let a = ts(&[1, 0, 5]);
        let b = ts(&[0, 2, 3]);
        let m = a.merged_max(&b);
        assert_eq!(m, ts(&[1, 2, 5]));
        assert!(m.dominates(&a) && m.dominates(&b));
        // lub minimality: anything dominating both dominates m componentwise.
        let upper = ts(&[9, 9, 9]);
        assert!(upper.dominates(&m));
    }

    #[test]
    fn incr_and_get() {
        let mut t = Timestamp::zero(2);
        t.incr(NodeId(1));
        t.incr(NodeId(1));
        assert_eq!(t.get(NodeId(1)), 2);
        assert_eq!(t.get(NodeId(0)), 0);
        assert_eq!(t.total(), 2);
    }

    #[test]
    fn display_and_iter() {
        let t = ts(&[3, 1, 4]);
        assert_eq!(t.to_string(), "(3,1,4)");
        let pairs: Vec<_> = t.iter().collect();
        assert_eq!(pairs.len(), 3, "iter yields every component, zeros too");
        assert_eq!(pairs[2], (NodeId(2), 4));
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "sizes differ")]
    fn size_mismatch_panics() {
        ts(&[1]).dominates(&ts(&[1, 2]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        ts(&[1, 2]).get(NodeId(2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn incr_out_of_range_panics() {
        let mut t = Timestamp::zero(2);
        t.incr(NodeId(2));
    }

    #[test]
    fn sparse_representation_is_canonical() {
        // Zeros are never stored, so tuple-equal stamps built along
        // different paths are representation-equal (Eq/Hash agree).
        let a = ts(&[0, 7, 0, 0]);
        let mut b = Timestamp::zero(4);
        for _ in 0..7 {
            b.incr(NodeId(1));
        }
        assert_eq!(a, b);
        assert_eq!(a.nonzero_len(), 1);
        let merged = Timestamp::zero(4).merged_max(&a);
        assert_eq!(merged.nonzero_len(), 1);
        let pairs: Vec<_> = a.iter().collect();
        assert_eq!(
            pairs,
            vec![
                (NodeId(0), 0),
                (NodeId(1), 7),
                (NodeId(2), 0),
                (NodeId(3), 0)
            ]
        );
        assert_eq!(a.iter_nonzero().collect::<Vec<_>>(), vec![(NodeId(1), 7)]);
    }

    #[test]
    fn dominates_handles_interleaved_sparse_entries() {
        let a = ts(&[2, 0, 3, 0, 1]);
        let b = ts(&[1, 0, 3, 0, 0]);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        let c = ts(&[0, 1, 0, 0, 0]);
        assert!(!a.dominates(&c), "missing index 1 must not be skipped");
        assert!(a.merged_max(&c).dominates(&c));
    }
}
