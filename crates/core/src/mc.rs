//! Multipoint-connection identities, events and the MC LSA format.

use crate::Timestamp;
use dgmc_mctree::{McTopology, McType, Role};
use dgmc_topology::NodeId;
use std::fmt;

/// Identifier of a multipoint connection (the `G` field of an MC LSA).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct McId(pub u32);

impl fmt::Display for McId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mc{}", self.0)
    }
}

/// The event field `V` of an MC LSA.
///
/// "`V` ∈ {join, leave, link, none} specifies an event from the source
/// switch `S`." `None` marks *triggered* LSAs, which carry a proposal but no
/// event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum McEventKind {
    /// The source switch joins the connection with the given role.
    Join(Role),
    /// The source switch leaves the connection.
    Leave,
    /// A link or nodal event affected the connection's topology.
    Link,
    /// No event: a triggered LSA carrying only a topology proposal.
    None,
}

impl McEventKind {
    /// Returns `true` for join/leave/link (i.e., anything but `None`).
    pub fn is_event(self) -> bool {
        !matches!(self, McEventKind::None)
    }

    /// Returns `true` if the event changes the member list.
    pub fn is_membership(self) -> bool {
        matches!(self, McEventKind::Join(_) | McEventKind::Leave)
    }
}

impl fmt::Display for McEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McEventKind::Join(r) => write!(f, "join({r})"),
            McEventKind::Leave => f.write_str("leave"),
            McEventKind::Link => f.write_str("link"),
            McEventKind::None => f.write_str("none"),
        }
    }
}

/// An MC LSA: the tuple `(S, F, V, G, P, T)` of the paper.
///
/// `F` (the MC/non-MC flag) is represented structurally — this *is* the MC
/// variant; router LSAs are the non-MC variant (see
/// [`crate::switch::DgmcPayload`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct McLsa {
    /// `S`: the source switch of the advertisement.
    pub source: NodeId,
    /// `V`: the advertised event (or `None` for triggered LSAs).
    pub event: McEventKind,
    /// `G`: the connection this LSA is relevant to.
    pub mc: McId,
    /// The connection's type, carried so switches can allocate state for a
    /// previously unknown MC (creation "requires no special mechanisms").
    pub mc_type: McType,
    /// The source's incarnation number for the MC. Fences the
    /// teardown/resurrection race: LSAs from an incarnation older than a
    /// local tombstone are stale and dropped (DESIGN.md §11).
    pub epoch: u64,
    /// `P`: the (possibly absent) topology proposal.
    pub proposal: Option<McTopology>,
    /// `T`: the source's received-timestamp at origination.
    pub stamp: Timestamp,
}

impl fmt::Display for McLsa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mc-lsa(S={} V={} G={}#{} P={} T={})",
            self.source,
            self.event,
            self.mc,
            self.epoch,
            if self.proposal.is_some() {
                "yes"
            } else {
                "null"
            },
            self.stamp,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_kind_predicates() {
        assert!(McEventKind::Join(Role::Receiver).is_event());
        assert!(McEventKind::Leave.is_event());
        assert!(McEventKind::Link.is_event());
        assert!(!McEventKind::None.is_event());
        assert!(McEventKind::Join(Role::Sender).is_membership());
        assert!(McEventKind::Leave.is_membership());
        assert!(!McEventKind::Link.is_membership());
        assert!(!McEventKind::None.is_membership());
    }

    #[test]
    fn lsa_display_shows_tuple() {
        let lsa = McLsa {
            source: NodeId(3),
            event: McEventKind::Join(Role::SenderReceiver),
            mc: McId(7),
            mc_type: McType::Symmetric,
            epoch: 2,
            proposal: None,
            stamp: Timestamp::zero(2),
        };
        assert_eq!(
            lsa.to_string(),
            "mc-lsa(S=s3 V=join(sender+receiver) G=mc7#2 P=null T=(0,0))"
        );
    }

    #[test]
    fn mc_id_display_and_order() {
        assert_eq!(McId(2).to_string(), "mc2");
        assert!(McId(1) < McId(2));
    }
}
