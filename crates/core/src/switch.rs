//! The simulated D-GMC switch: a DES actor hosting the unicast LSR
//! substrate, the flooding engine and the [`DgmcEngine`], with the paper's
//! timing model (`Tc`-long topology computations, per-hop LSA delays) and a
//! data plane for end-to-end delivery checks.

use crate::{DgmcAction, DgmcEngine, McId, McLsa};
use dgmc_des::{Actor, ActorId, Ctx, Envelope, SimDuration, SimTime, Simulation};
use dgmc_lsr::flood::Flooder;
use dgmc_lsr::lsa::{FloodPacket, RouterLsa};
use dgmc_lsr::{Lsdb, RoutingTable};
use dgmc_mctree::{McAlgorithm, McType, Role};
use dgmc_obs::SharedObserver;
use dgmc_topology::{LinkId, Network, NodeId, SpfCache, SpfCacheStats};
use std::collections::BTreeMap;
use std::rc::Rc;

/// Everything that can be flooded: the paper's MC and non-MC LSAs.
#[derive(Debug, Clone)]
pub enum DgmcPayload {
    /// A non-MC LSA (`F = ¬mc`), processed by the unicast LSR substrate.
    Router(RouterLsa),
    /// An MC LSA (`F = mc`), processed by the D-GMC protocol.
    Mc(McLsa),
}

/// A data-plane packet traveling a multipoint connection.
#[derive(Debug, Clone)]
pub struct DataMsg {
    /// The connection carrying the packet.
    pub mc: McId,
    /// Unique id assigned by the injecting harness.
    pub packet_id: u64,
    /// The switch where the packet entered the network.
    pub origin: NodeId,
    /// Delivery phase.
    pub kind: DataKind,
}

/// Delivery phase of a [`DataMsg`].
#[derive(Debug, Clone)]
pub enum DataKind {
    /// Being forwarded along tree edges; `via` is the arrival link (`None`
    /// at the injection point).
    TreeFlood {
        /// Arrival link, if any.
        via: Option<LinkId>,
    },
    /// First stage of receiver-only delivery: unicast toward the contact
    /// node on the tree.
    UnicastToContact {
        /// The chosen contact switch.
        contact: NodeId,
    },
}

/// Messages delivered to a [`DgmcSwitch`].
#[derive(Debug, Clone)]
pub enum SwitchMsg {
    /// A flood packet arriving over `via`.
    Packet {
        /// The packet.
        packet: FloodPacket<DgmcPayload>,
        /// Arrival link.
        via: LinkId,
    },
    /// An attached host asks to join connection `mc`.
    HostJoin {
        /// The connection.
        mc: McId,
        /// Type used if the connection must be created.
        mc_type: McType,
        /// The member role.
        role: Role,
    },
    /// An attached host asks to leave connection `mc`.
    HostLeave {
        /// The connection.
        mc: McId,
    },
    /// An incident link changed state; `detector` marks the advertising
    /// endpoint.
    LinkEvent {
        /// The incident link.
        link: LinkId,
        /// New state.
        up: bool,
        /// Whether this endpoint originates the advertisements.
        detector: bool,
    },
    /// The `Tc` computation timer for `mc` fired.
    ComputationDone {
        /// The connection being recomputed.
        mc: McId,
    },
    /// A host hands the switch a data packet to inject into `mc`.
    SendData {
        /// The connection.
        mc: McId,
        /// Unique packet id.
        packet_id: u64,
    },
    /// A data packet in flight.
    Data(DataMsg),
    /// Administrative node failure/recovery (nodal events).
    NodeAdmin {
        /// `false` takes the switch down (it drops all traffic); `true`
        /// revives it.
        up: bool,
    },
    /// OSPF-style database exchange received from a neighbor after a link
    /// to it came up: the neighbor's router LSAs and MC state snapshots.
    DbSync {
        /// The neighbor's router LSA database.
        router_lsas: Vec<RouterLsa>,
        /// The neighbor's per-MC state snapshots.
        mc_states: Vec<crate::McSync>,
    },
}

/// Counter names bumped by [`DgmcSwitch`].
pub mod counters {
    /// Topology computations started (the paper's "proposals per event"
    /// numerator).
    pub const COMPUTATIONS: &str = "dgmc.computations";
    /// MC LSA flooding operations initiated ("floodings per event").
    pub const FLOODINGS: &str = "dgmc.floodings";
    /// Topologies installed (routing entries updated).
    pub const INSTALLS: &str = "dgmc.installs";
    /// Completed computations withdrawn as stale.
    pub const WITHDRAWN: &str = "dgmc.withdrawn";
    /// Membership events accepted from local hosts.
    pub const MEMBER_EVENTS: &str = "dgmc.member_events";
    /// Fresh MC LSAs processed.
    pub const MC_LSAS: &str = "dgmc.mc_lsas";
    /// Duplicate flood packets suppressed.
    pub const DUPLICATES: &str = "dgmc.duplicates";
    /// Router (non-MC) LSA floods originated.
    pub const ROUTER_FLOODS: &str = "dgmc.router_floods";
    /// Data packets delivered to member hosts.
    pub const DATA_DELIVERED: &str = "dgmc.data_delivered";
    /// Tree edges removed by topology rearrangements: edges present in a
    /// connection's previously installed topology but absent from the newly
    /// installed one (the disruption-on-rearrangement numerator).
    pub const DISRUPTED_EDGES: &str = "dgmc.disrupted_edges";
    /// SPF computations answered from the epoch-versioned cache.
    pub const SPF_CACHE_HITS: &str = "spf_cache.hits";
    /// SPF computations that ran Dijkstra (cache miss).
    pub const SPF_CACHE_MISSES: &str = "spf_cache.misses";
    /// Cache misses answered by incremental delta repair of a sibling
    /// generation's tree instead of a from-scratch Dijkstra.
    pub const SPF_CACHE_REPAIRS: &str = "spf_cache.repairs";
    /// Cache generations evicted because the image kept changing.
    pub const SPF_CACHE_INVALIDATIONS: &str = "spf_cache.invalidations";
}

/// Histogram names recorded by [`DgmcSwitch`] into the simulation's
/// [`dgmc_obs::MetricsRegistry`].
pub mod histograms {
    /// Links fanned out per flood operation (MC and router LSAs alike).
    pub const FLOOD_FANOUT: &str = "dgmc.flood_fanout";
    /// Microseconds from a computation starting (`StartComputation`, the
    /// proposal's birth) to a topology install at the same switch.
    pub const INSTALL_LATENCY_US: &str = "dgmc.install_latency_us";
    /// Withdrawn computations observed at a switch between consecutive
    /// local membership events.
    pub const WITHDRAWALS_PER_EVENT: &str = "dgmc.withdrawals_per_event";
    /// Microseconds from the first measured-phase event to the last topology
    /// install — the per-connection convergence time (recorded by the
    /// experiment runner once per measured run).
    pub const CONVERGENCE_US: &str = "dgmc.convergence_us";
    /// Microseconds of each traced operation's critical (longest causal)
    /// path — one sample per measured-phase membership event, recorded by
    /// the experiment runner when causal tracing is on.
    pub const OP_CONVERGENCE_US: &str = "dgmc.op_convergence_us";
    /// Nodes settled per cache-missing SPF run — the deterministic
    /// compute-work histogram (simulated work, not wall-clock, so that
    /// metrics stay byte-identical across hosts and cache configurations).
    pub const SPF_SETTLED_PER_COMPUTE: &str = "spf_cache.settled_per_compute";
}

/// Timing parameters of the simulated switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DgmcConfig {
    /// `Tc`: time one topology computation occupies the switch.
    pub tc: SimDuration,
    /// Per-hop LSA/packet relay delay.
    pub per_hop: SimDuration,
}

impl DgmcConfig {
    /// The paper's Experiment 1 regime (ATM LAN): computation dominates.
    /// Per-hop ≈ 10 µs, `Tc` ≈ 300 µs.
    pub fn computation_dominated() -> Self {
        DgmcConfig {
            tc: SimDuration::micros(300),
            per_hop: SimDuration::micros(10),
        }
    }

    /// The paper's Experiment 2 regime (WAN): communication dominates.
    /// Per-hop ≈ 2 ms, `Tc` ≈ 50 µs.
    pub fn communication_dominated() -> Self {
        DgmcConfig {
            tc: SimDuration::micros(50),
            per_hop: SimDuration::millis(2),
        }
    }
}

/// A network switch running the D-GMC protocol over an LSR substrate.
pub struct DgmcSwitch {
    me: NodeId,
    config: DgmcConfig,
    flooder: Flooder,
    lsdb: Lsdb,
    routes: RoutingTable,
    /// Local ground truth about incident links: (link, neighbor, cost, up).
    incident: Vec<(LinkId, NodeId, u64, bool)>,
    next_router_seq: u64,
    engine: DgmcEngine,
    spf_cache: SpfCache,
    image: Network,
    last_install: SimTime,
    /// (mc, packet_id) -> copies delivered to the local host.
    delivered: BTreeMap<(McId, u64), u32>,
    /// `true` while administratively failed: all traffic is dropped.
    failed: bool,
    /// When the in-flight computation for each MC started (latency metric).
    computation_started: BTreeMap<McId, SimTime>,
    /// Edge set of the previously installed topology per MC, for the
    /// disruption-on-rearrangement counter.
    installed_edges: BTreeMap<McId, std::collections::BTreeSet<(NodeId, NodeId)>>,
    /// Withdrawals seen since the last local membership event.
    withdrawn_since_event: u64,
}

impl std::fmt::Debug for DgmcSwitch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DgmcSwitch")
            .field("me", &self.me)
            .field("mcs", &self.engine.mc_ids())
            .finish()
    }
}

impl DgmcSwitch {
    /// Creates the switch warm-started on the ground-truth network `net`.
    pub fn new(
        me: NodeId,
        net: &Network,
        config: DgmcConfig,
        algorithm: Rc<dyn McAlgorithm>,
    ) -> DgmcSwitch {
        Self::new_with_cache(me, net, config, algorithm, SpfCache::new())
    }

    /// [`new`](Self::new) with an explicit SPF cache, so the warm-start
    /// routing computation already shares work with sibling switches.
    pub fn new_with_cache(
        me: NodeId,
        net: &Network,
        config: DgmcConfig,
        algorithm: Rc<dyn McAlgorithm>,
        spf_cache: SpfCache,
    ) -> DgmcSwitch {
        let mut lsdb = Lsdb::new(net.len());
        for n in net.nodes() {
            lsdb.install(RouterLsa::describe(net, n, 0));
        }
        let image = lsdb.local_image();
        let routes = RoutingTable::compute_with(&image, me, &spf_cache);
        let incident = net
            .links()
            .filter(|l| l.a == me || l.b == me)
            .map(|l| (l.id, l.other(me), l.cost, l.is_up()))
            .collect();
        let mut engine = DgmcEngine::new(me, net.len(), algorithm);
        engine.set_spf_cache(spf_cache.clone());
        DgmcSwitch {
            me,
            config,
            flooder: Flooder::new(me),
            lsdb,
            routes,
            incident,
            next_router_seq: 1,
            engine,
            spf_cache,
            image,
            last_install: SimTime::ZERO,
            delivered: BTreeMap::new(),
            failed: false,
            computation_started: BTreeMap::new(),
            installed_edges: BTreeMap::new(),
            withdrawn_since_event: 0,
        }
    }

    /// Attaches the shared decision-event observer (forwarded to the
    /// protocol engine, which does the emitting).
    pub fn set_observer(&mut self, observer: SharedObserver) {
        self.engine.set_observer(observer);
    }

    /// Sets the engine's shard worker count for link events touching many
    /// independent MCs (see [`DgmcEngine::set_jobs`]). Purely wall-clock:
    /// outputs stay byte-identical for every value.
    pub fn set_jobs(&mut self, jobs: usize) {
        self.engine.set_jobs(jobs);
    }

    /// Replaces the switch's SPF cache, typically with one shared by every
    /// switch of the simulation: identical local images hash to the same
    /// digest, so SPF work done by one switch is reused by all others.
    pub fn set_spf_cache(&mut self, cache: SpfCache) {
        self.engine.set_spf_cache(cache.clone());
        self.spf_cache = cache;
    }

    /// The SPF cache used for routing-table and MC topology computations.
    pub fn spf_cache(&self) -> &SpfCache {
        &self.spf_cache
    }

    /// The switch id.
    pub fn id(&self) -> NodeId {
        self.me
    }

    /// Read access to the protocol engine.
    pub fn engine(&self) -> &DgmcEngine {
        &self.engine
    }

    /// `true` while the switch is administratively failed (crashed): it
    /// drops all traffic and is excluded from invariant checking.
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// The unicast routing table.
    pub fn routes(&self) -> &RoutingTable {
        &self.routes
    }

    /// The switch's current local image of the network (the LSDB
    /// reconstruction its computations run against). Read-only: exposed so
    /// external drivers and conformance checks can snapshot derived state
    /// (e.g. installed-tree costs) without re-deriving the image.
    pub fn image(&self) -> &Network {
        &self.image
    }

    /// Simulated instant of the switch's most recent topology install.
    pub fn last_install(&self) -> SimTime {
        self.last_install
    }

    /// How many copies of `(mc, packet_id)` the local host received.
    pub fn delivered_copies(&self, mc: McId, packet_id: u64) -> u32 {
        self.delivered.get(&(mc, packet_id)).copied().unwrap_or(0)
    }

    fn up_links(&self) -> Vec<(LinkId, NodeId)> {
        self.incident
            .iter()
            .filter(|(.., up)| *up)
            .map(|&(l, n, ..)| (l, n))
            .collect()
    }

    fn link_to(&self, neighbor: NodeId) -> Option<LinkId> {
        self.incident
            .iter()
            .find(|&&(_, n, _, up)| n == neighbor && up)
            .map(|&(l, ..)| l)
    }

    fn neighbor_of(&self, link: LinkId) -> Option<NodeId> {
        self.incident
            .iter()
            .find(|&&(l, ..)| l == link)
            .map(|&(_, n, ..)| n)
    }

    fn flood(
        &mut self,
        ctx: &mut Ctx<'_, SwitchMsg>,
        payload: DgmcPayload,
        except: Option<LinkId>,
    ) {
        let packet = self.flooder.originate(payload);
        let mut fanout = 0u64;
        for (link, neighbor) in self.up_links() {
            if Some(link) == except {
                continue;
            }
            fanout += 1;
            ctx.send(
                ActorId(neighbor.0),
                self.config.per_hop,
                SwitchMsg::Packet {
                    packet: packet.clone(),
                    via: link,
                },
            );
        }
        ctx.metrics()
            .observe_named(histograms::FLOOD_FANOUT, fanout);
    }

    fn relay(
        &mut self,
        ctx: &mut Ctx<'_, SwitchMsg>,
        packet: &FloodPacket<DgmcPayload>,
        via: LinkId,
    ) {
        for (link, neighbor) in self.up_links() {
            if link == via {
                continue;
            }
            ctx.send(
                ActorId(neighbor.0),
                self.config.per_hop,
                SwitchMsg::Packet {
                    packet: packet.clone(),
                    via: link,
                },
            );
        }
    }

    fn execute(&mut self, ctx: &mut Ctx<'_, SwitchMsg>, actions: Vec<DgmcAction>) {
        for action in actions {
            match action {
                DgmcAction::Flood(lsa) => {
                    ctx.counter(counters::FLOODINGS).incr();
                    self.flood(ctx, DgmcPayload::Mc(lsa), None);
                }
                DgmcAction::StartComputation { mc } => {
                    ctx.counter(counters::COMPUTATIONS).incr();
                    self.computation_started.entry(mc).or_insert(ctx.now());
                    ctx.schedule_self(self.config.tc, SwitchMsg::ComputationDone { mc });
                }
                DgmcAction::Installed { mc } => {
                    ctx.counter(counters::INSTALLS).incr();
                    self.last_install = ctx.now();
                    if let Some(started) = self.computation_started.remove(&mc) {
                        let latency = ctx.now() - started;
                        ctx.metrics().observe_named(
                            histograms::INSTALL_LATENCY_US,
                            latency.as_nanos() / 1_000,
                        );
                    }
                    let edges: std::collections::BTreeSet<(NodeId, NodeId)> = self
                        .engine
                        .installed(mc)
                        .map(|t| t.edges().collect())
                        .unwrap_or_default();
                    if let Some(previous) = self.installed_edges.insert(mc, edges) {
                        let disrupted = u64::try_from(
                            previous
                                .difference(self.installed_edges.get(&mc).expect("just inserted"))
                                .count(),
                        )
                        .expect("edge count fits u64");
                        ctx.counter(counters::DISRUPTED_EDGES).add(disrupted);
                    }
                }
                DgmcAction::Withdrawn { mc: _ } => {
                    ctx.counter(counters::WITHDRAWN).incr();
                    self.withdrawn_since_event += 1;
                }
            }
        }
    }

    /// A new local membership event starts a fresh withdrawal episode:
    /// record how many withdrawals the previous one cost.
    fn close_event_episode(&mut self, ctx: &mut Ctx<'_, SwitchMsg>) {
        ctx.metrics().observe_named(
            histograms::WITHDRAWALS_PER_EVENT,
            self.withdrawn_since_event,
        );
        self.withdrawn_since_event = 0;
    }

    fn refresh_image(&mut self, ctx: &mut Ctx<'_, SwitchMsg>) {
        let before = self.spf_cache.stats();
        self.image = self.lsdb.local_image();
        self.routes = RoutingTable::compute_with(&self.image, self.me, &self.spf_cache);
        self.record_spf_delta(ctx, before);
    }

    /// Publishes the cache activity caused by one handler step into the
    /// simulation's metrics. Only deterministic quantities are recorded
    /// (hit/miss/invalidation counts and settled-node work); wall-clock
    /// nanoseconds stay out of the registry so `metrics.json` is
    /// byte-identical across hosts and runs.
    fn record_spf_delta(&mut self, ctx: &mut Ctx<'_, SwitchMsg>, before: SpfCacheStats) {
        let after = self.spf_cache.stats();
        ctx.counter(counters::SPF_CACHE_HITS)
            .add(after.hits - before.hits);
        ctx.counter(counters::SPF_CACHE_MISSES)
            .add(after.misses - before.misses);
        ctx.counter(counters::SPF_CACHE_REPAIRS)
            .add(after.repairs - before.repairs);
        ctx.counter(counters::SPF_CACHE_INVALIDATIONS)
            .add(after.invalidations - before.invalidations);
        if after.misses > before.misses {
            ctx.metrics().observe_named(
                histograms::SPF_SETTLED_PER_COMPUTE,
                after.settled_nodes - before.settled_nodes,
            );
        }
    }

    fn deliver_locally(&mut self, ctx: &mut Ctx<'_, SwitchMsg>, data: &DataMsg) {
        if self.engine.is_member(data.mc) {
            ctx.counter(counters::DATA_DELIVERED).incr();
            *self.delivered.entry((data.mc, data.packet_id)).or_insert(0) += 1;
        }
    }

    fn forward_tree(&mut self, ctx: &mut Ctx<'_, SwitchMsg>, data: DataMsg, via: Option<LinkId>) {
        self.deliver_locally(ctx, &data);
        let Some(topology) = self.engine.installed(data.mc) else {
            return;
        };
        let from = via.and_then(|l| self.neighbor_of(l));
        let next_hops: Vec<NodeId> = topology
            .neighbors_in(self.me)
            .into_iter()
            .filter(|&n| Some(n) != from)
            .collect();
        for n in next_hops {
            if let Some(link) = self.link_to(n) {
                ctx.send(
                    ActorId(n.0),
                    self.config.per_hop,
                    SwitchMsg::Data(DataMsg {
                        kind: DataKind::TreeFlood { via: Some(link) },
                        ..data.clone()
                    }),
                );
            }
        }
    }

    fn inject_data(&mut self, ctx: &mut Ctx<'_, SwitchMsg>, mc: McId, packet_id: u64) {
        let data = DataMsg {
            mc,
            packet_id,
            origin: self.me,
            kind: DataKind::TreeFlood { via: None },
        };
        if self.engine.is_member(mc)
            || self
                .engine
                .installed(mc)
                .is_some_and(|t| t.touches(self.me))
        {
            // On the tree already: second-stage tree delivery.
            self.forward_tree(ctx, data, None);
            return;
        }
        // Receiver-only style first stage: unicast to the nearest tree node
        // ("the packet is delivered to any node on the MC").
        let Some(topology) = self.engine.installed(mc) else {
            return;
        };
        let contact = topology
            .nodes()
            .into_iter()
            .filter_map(|n| self.routes.cost(n).map(|c| (c, n)))
            .min();
        let Some((_, contact)) = contact else { return };
        let msg = SwitchMsg::Data(DataMsg {
            kind: DataKind::UnicastToContact { contact },
            ..data
        });
        if contact == self.me {
            // We are the contact (e.g. zero-cost self route can't happen as
            // we're off-tree, but stay safe).
            if let SwitchMsg::Data(d) = msg {
                self.forward_tree(ctx, d, None);
            }
            return;
        }
        if let Some(next) = self.routes.next_hop(contact) {
            ctx.send(ActorId(next.0), self.config.per_hop, msg);
        }
    }

    fn on_data(&mut self, ctx: &mut Ctx<'_, SwitchMsg>, data: DataMsg) {
        match data.kind {
            DataKind::TreeFlood { via } => {
                let d = DataMsg {
                    kind: DataKind::TreeFlood { via },
                    ..data
                };
                self.forward_tree(ctx, d, via);
            }
            DataKind::UnicastToContact { contact } => {
                if contact == self.me {
                    let d = DataMsg {
                        kind: DataKind::TreeFlood { via: None },
                        ..data
                    };
                    self.forward_tree(ctx, d, None);
                } else if let Some(next) = self.routes.next_hop(contact) {
                    ctx.send(ActorId(next.0), self.config.per_hop, SwitchMsg::Data(data));
                }
            }
        }
    }
}

impl Actor<SwitchMsg> for DgmcSwitch {
    fn handle(&mut self, ctx: &mut Ctx<'_, SwitchMsg>, env: Envelope<SwitchMsg>) {
        if self.failed {
            // A failed switch drops everything except its own revival.
            if let SwitchMsg::NodeAdmin { up: true } = env.msg {
                self.failed = false;
                // Incident links come back with the node; neighbors
                // advertise and sync (inject_node_event drives them).
                for entry in &mut self.incident {
                    entry.3 = true;
                }
            }
            return;
        }
        match env.msg {
            SwitchMsg::Packet { packet, via } => {
                if !self.flooder.accept(packet.id) {
                    ctx.counter(counters::DUPLICATES).incr();
                    return;
                }
                self.relay(ctx, &packet, via);
                match packet.payload {
                    DgmcPayload::Router(lsa) => {
                        if self.lsdb.install(lsa) {
                            self.refresh_image(ctx);
                        }
                    }
                    DgmcPayload::Mc(lsa) => {
                        ctx.counter(counters::MC_LSAS).incr();
                        let actions = self.engine.on_mc_lsa(lsa);
                        self.execute(ctx, actions);
                    }
                }
            }
            SwitchMsg::HostJoin { mc, mc_type, role } => {
                let actions = self.engine.local_join(mc, mc_type, role);
                if !actions.is_empty() {
                    ctx.counter(counters::MEMBER_EVENTS).incr();
                    self.close_event_episode(ctx);
                }
                self.execute(ctx, actions);
            }
            SwitchMsg::HostLeave { mc } => {
                let actions = self.engine.local_leave(mc);
                if !actions.is_empty() {
                    ctx.counter(counters::MEMBER_EVENTS).incr();
                    self.close_event_episode(ctx);
                }
                self.execute(ctx, actions);
            }
            SwitchMsg::LinkEvent { link, up, detector } => {
                if let Some(entry) = self.incident.iter_mut().find(|(l, ..)| *l == link) {
                    entry.3 = up;
                } else {
                    panic!("link {link} is not incident to {}", self.me);
                }
                if up {
                    // Database exchange toward the (possibly just revived)
                    // far endpoint, as OSPF does when an adjacency forms.
                    if let Some(neighbor) = self.neighbor_of(link) {
                        let node_count =
                            u32::try_from(self.lsdb.node_count()).expect("node ids fit u32");
                        let router_lsas = (0..node_count)
                            .filter_map(|i| self.lsdb.get(NodeId(i)).cloned())
                            .collect();
                        ctx.send(
                            ActorId(neighbor.0),
                            self.config.per_hop,
                            SwitchMsg::DbSync {
                                router_lsas,
                                mc_states: self.engine.export_sync(),
                            },
                        );
                    }
                }
                if detector {
                    // Originate the one non-MC LSA for this event...
                    let links = self
                        .incident
                        .iter()
                        .map(|&(l, n, cost, up)| dgmc_lsr::lsa::LinkAdv {
                            link: l,
                            neighbor: n,
                            cost,
                            up,
                        })
                        .collect();
                    let lsa = RouterLsa {
                        origin: self.me,
                        seq: self.next_router_seq,
                        links,
                    };
                    self.next_router_seq += 1;
                    self.lsdb.install(lsa.clone());
                    self.refresh_image(ctx);
                    ctx.counter(counters::ROUTER_FLOODS).incr();
                    self.flood(ctx, DgmcPayload::Router(lsa), None);
                    // ...then the k MC LSAs for affected connections.
                    let neighbor = self.neighbor_of(link).expect("incident");
                    let actions = self.engine.local_link_event(self.me, neighbor);
                    self.execute(ctx, actions);
                }
            }
            SwitchMsg::ComputationDone { mc } => {
                let before = self.spf_cache.stats();
                let actions = self.engine.on_computation_done(mc, &self.image);
                self.record_spf_delta(ctx, before);
                self.execute(ctx, actions);
            }
            SwitchMsg::SendData { mc, packet_id } => {
                self.inject_data(ctx, mc, packet_id);
            }
            SwitchMsg::Data(data) => {
                self.on_data(ctx, data);
            }
            SwitchMsg::NodeAdmin { up } => {
                if !up {
                    self.failed = true;
                    for entry in &mut self.incident {
                        entry.3 = false;
                    }
                }
                // up while alive: nothing to do.
            }
            SwitchMsg::DbSync {
                router_lsas,
                mc_states,
            } => {
                let mut changed = false;
                for lsa in router_lsas {
                    changed |= self.lsdb.install(lsa);
                }
                if changed {
                    self.refresh_image(ctx);
                }
                let actions = self.engine.import_sync(mc_states);
                self.execute(ctx, actions);
            }
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// Renders a [`SwitchMsg`] into a short causal-span label (the labeler to
/// pass to [`dgmc_des::Simulation::enable_causal_trace`]).
///
/// Labels are stable strings used in trace exports and timelines: keep them
/// short and deterministic (no addresses, no wall-clock).
pub fn trace_label(msg: &SwitchMsg) -> String {
    match msg {
        SwitchMsg::Packet { packet, .. } => match &packet.payload {
            DgmcPayload::Router(lsa) => format!("router-lsa sw{}", lsa.origin.0),
            DgmcPayload::Mc(lsa) => format!("mc-lsa {} sw{}", lsa.mc, lsa.source.0),
        },
        SwitchMsg::HostJoin { mc, .. } => format!("join {mc}"),
        SwitchMsg::HostLeave { mc } => format!("leave {mc}"),
        SwitchMsg::LinkEvent { link, up, .. } => {
            format!("link-{} {link}", if *up { "up" } else { "down" })
        }
        SwitchMsg::ComputationDone { mc } => format!("compute {mc}"),
        SwitchMsg::SendData { mc, packet_id } => format!("send-data {mc} #{packet_id}"),
        SwitchMsg::Data(data) => format!("data {} #{}", data.mc, data.packet_id),
        SwitchMsg::NodeAdmin { up } => (if *up { "node-up" } else { "node-down" }).to_owned(),
        SwitchMsg::DbSync { .. } => "db-sync".to_owned(),
    }
}

/// Classifies a [`trace_label`] string into a handler phase for per-phase
/// event-loop self-profiling (SPF/compute, flood fan-out, wait-resolution
/// timers, install-driving events, data plane).
pub fn trace_phase(label: &str) -> &'static str {
    match label.split(' ').next().unwrap_or("") {
        "compute" => "compute",
        "mc-lsa" => "flood",
        "router-lsa" | "db-sync" => "routing",
        "join" | "leave" | "link-up" | "link-down" | "node-up" | "node-down" => "event",
        "data" | "send-data" => "data",
        _ => "other",
    }
}

/// Builds a simulation with one [`DgmcSwitch`] per node of `net`.
///
/// Actor ids equal node ids. All switches share one [`SpfCache`]: local
/// images are content-addressed, so while images agree (the common case —
/// floods converge fast) one switch's SPF run serves every other switch and
/// every terminal of every connection.
pub fn build_dgmc_sim(
    net: &Network,
    config: DgmcConfig,
    algorithm: Rc<dyn McAlgorithm>,
) -> Simulation<SwitchMsg> {
    build_dgmc_sim_with_cache(net, config, algorithm, SpfCache::new())
}

/// [`build_dgmc_sim`] with an explicit shared [`SpfCache`] — pass
/// [`SpfCache::disabled`] to measure the uncached from-scratch baseline.
pub fn build_dgmc_sim_with_cache(
    net: &Network,
    config: DgmcConfig,
    algorithm: Rc<dyn McAlgorithm>,
    cache: SpfCache,
) -> Simulation<SwitchMsg> {
    build_dgmc_sim_sharded(net, config, algorithm, cache, 1)
}

/// [`build_dgmc_sim_with_cache`] with the per-switch shard worker count
/// for many-MC link events (see [`DgmcEngine::set_jobs`]). Any `jobs`
/// value produces byte-identical simulation outputs; values above 1 only
/// change wall-clock when one event touches many independent connections.
pub fn build_dgmc_sim_sharded(
    net: &Network,
    config: DgmcConfig,
    algorithm: Rc<dyn McAlgorithm>,
    cache: SpfCache,
    jobs: usize,
) -> Simulation<SwitchMsg> {
    let mut sim = Simulation::new();
    for n in net.nodes() {
        let mut switch =
            DgmcSwitch::new_with_cache(n, net, config, Rc::clone(&algorithm), cache.clone());
        // Every engine stamps decisions with the simulation's shared clock;
        // observation stays a no-op until a sink is attached on the handle.
        switch.set_observer(sim.observer().clone());
        switch.set_jobs(jobs);
        let id = sim.add_actor(Box::new(switch));
        debug_assert_eq!(id.index(), n.index());
    }
    sim
}

/// Injects a nodal event: `up = false` fails the switch (it silently drops
/// all traffic and its incident links go down, each advertised by the
/// surviving neighbor); `up = true` revives it (neighbors re-advertise the
/// links and send database snapshots so the revived switch resynchronizes).
///
/// # Panics
///
/// Panics if `node` is unknown in `net`.
pub fn inject_node_event(
    sim: &mut Simulation<SwitchMsg>,
    net: &Network,
    node: NodeId,
    up: bool,
    delay: SimDuration,
) {
    assert!(net.contains_node(node), "unknown node {node}");
    sim.inject(ActorId(node.0), delay, SwitchMsg::NodeAdmin { up });
    // Neighbors detect each incident link transition slightly later and
    // advertise their side ("nodal events" decompose into link events with
    // the surviving endpoint as detector).
    let detect = delay + SimDuration::nanos(1);
    for link in net.links().filter(|l| l.a == node || l.b == node) {
        let neighbor = link.other(node);
        sim.inject(
            ActorId(neighbor.0),
            detect,
            SwitchMsg::LinkEvent {
                link: link.id,
                up,
                detector: true,
            },
        );
    }
}

/// Injects a ground-truth link event: both endpoints learn immediately, the
/// lower-id endpoint advertises (DESIGN.md §6).
///
/// # Panics
///
/// Panics if `link` is unknown in `net`.
pub fn inject_link_event(
    sim: &mut Simulation<SwitchMsg>,
    net: &Network,
    link: LinkId,
    up: bool,
    delay: SimDuration,
) {
    let l = net.link(link).expect("known link");
    sim.inject(
        ActorId(l.a.0),
        delay,
        SwitchMsg::LinkEvent {
            link,
            up,
            detector: true,
        },
    );
    sim.inject(
        ActorId(l.b.0),
        delay,
        SwitchMsg::LinkEvent {
            link,
            up,
            detector: false,
        },
    );
}
