//! Executable specification of the paper's `EventHandler()` and
//! `ReceiveLSA()` pseudocode (Figures 4 and 5).
//!
//! This module is a *second, independent transcription* of the protocol:
//! a pure state machine over the same message types as the engine, written
//! directly from the paper's line-numbered pseudocode with the two
//! documented corrections of DESIGN.md §3 (a candidate accepted before a
//! withdrawn computation survives the withdrawal, and equal-stamp
//! proposals are arbitrated toward the smaller source id — the literal
//! Fig. 5 lines 25/29 can deadlock consensus, see DESIGN.md).
//!
//! The systematic explorer (`dgmc_des::mc`, DESIGN.md §11) runs this
//! specification in lockstep with [`crate::DgmcEngine`] on every explored
//! interleaving and treats any divergence — in emitted actions or in
//! resulting per-MC state — as a failure in its own right. The engine
//! carries optimizations the spec deliberately does not (SPF caching,
//! observability, database resynchronization): divergence therefore means
//! an optimization changed protocol behavior.
//!
//! Every transition is a pure function `&self -> (Self, Vec<SpecAction>)`;
//! topology computation is abstracted behind a caller-provided closure so
//! that the differentially-checked part is exactly the decision logic.

use crate::state::{Candidate, Tombstone};
use crate::{DgmcAction, DgmcEngine, EngineMutation, McEventKind, McId, McLsa, Timestamp};
use dgmc_mctree::{McTopology, McType, Role};
use dgmc_topology::NodeId;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// Computes a multipoint topology for the spec: `(terminals, previous
/// installed topology) -> tree`. Must be deterministic and agree with the
/// engine's algorithm for the comparison to be meaningful.
pub type ComputeFn<'a> = dyn FnMut(&BTreeSet<NodeId>, Option<&McTopology>) -> McTopology + 'a;

/// An instruction emitted by the specification, mirroring
/// [`DgmcAction`] one-to-one so sequences can be compared.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecAction {
    /// Flood this MC LSA network-wide.
    Flood(McLsa),
    /// Begin the `Tc`-long topology computation for `mc`.
    StartComputation(McId),
    /// A topology was installed for `mc`.
    Installed(McId),
    /// A completed computation was withdrawn (Fig. 5 lines 28-30).
    Withdrawn(McId),
}

impl fmt::Display for SpecAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecAction::Flood(lsa) => write!(f, "flood {lsa}"),
            SpecAction::StartComputation(mc) => write!(f, "start-computation {mc}"),
            SpecAction::Installed(mc) => write!(f, "installed {mc}"),
            SpecAction::Withdrawn(mc) => write!(f, "withdrawn {mc}"),
        }
    }
}

/// Converts an engine action into the spec's vocabulary.
pub fn action_of_engine(action: &DgmcAction) -> SpecAction {
    match action {
        DgmcAction::Flood(lsa) => SpecAction::Flood(lsa.clone()),
        DgmcAction::StartComputation { mc } => SpecAction::StartComputation(*mc),
        DgmcAction::Installed { mc } => SpecAction::Installed(*mc),
        DgmcAction::Withdrawn { mc } => SpecAction::Withdrawn(*mc),
    }
}

/// `true` iff the engine emitted exactly the actions the spec requires, in
/// order.
pub fn actions_match(spec: &[SpecAction], engine: &[DgmcAction]) -> bool {
    spec.len() == engine.len()
        && spec
            .iter()
            .zip(engine.iter())
            .all(|(s, e)| *s == action_of_engine(e))
}

/// The snapshot taken when a computation starts (Fig. 4 lines 4-5, Fig. 5
/// lines 20-21).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SpecJob {
    /// `old_R` saved before computing.
    pub old_r: Timestamp,
    /// The terminal set frozen at start.
    pub terminals: BTreeSet<NodeId>,
    /// The installed topology at start.
    pub previous: Option<McTopology>,
    /// `Some(event)` when `EventHandler()` started the computation.
    pub pending_event: Option<McEventKind>,
    /// A candidate carried across the computation (DESIGN.md §3).
    pub held: Option<Candidate>,
    /// Local events held back behind the unannounced `pending_event`, in
    /// local order with their post-increment `R` (DESIGN.md §11 race 2).
    pub deferred: Vec<(McEventKind, Timestamp)>,
}

/// Per-MC specification state: the paper's `R`, `E`, `C` vectors plus the
/// member list, flag, installed topology, queued LSAs and in-flight
/// computation snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SpecMc {
    /// Connection type, learned from the creating join.
    pub mc_type: McType,
    /// The connection's incarnation number (DESIGN.md §11 race 1).
    pub epoch: u64,
    /// `R` — events received.
    pub r: Timestamp,
    /// `E` — events expected.
    pub e: Timestamp,
    /// `C` — stamp of the installed topology.
    pub c: Timestamp,
    /// Source of the installed proposal (tie-break bookkeeping).
    pub c_source: Option<NodeId>,
    /// The member list.
    pub members: BTreeMap<NodeId, Role>,
    /// The shared `make_proposal_flag`.
    pub flag: bool,
    /// The installed topology.
    pub installed: Option<McTopology>,
    /// LSAs queued while the single CPU computes.
    pub queue: VecDeque<McLsa>,
    /// The in-flight computation, if any.
    pub job: Option<SpecJob>,
}

impl SpecMc {
    fn new_at_epoch(mc_type: McType, n: usize, epoch: u64) -> SpecMc {
        SpecMc {
            mc_type,
            epoch,
            r: Timestamp::zero(n),
            e: Timestamp::zero(n),
            c: Timestamp::zero(n),
            c_source: None,
            members: BTreeMap::new(),
            flag: false,
            installed: None,
            queue: VecDeque::new(),
            job: None,
        }
    }

    fn revived(mc_type: McType, n: usize, tomb: &Tombstone) -> SpecMc {
        let mut st = SpecMc::new_at_epoch(mc_type, n, tomb.epoch);
        st.r = tomb.final_r.clone();
        st.e = tomb.final_r.clone();
        st
    }

    fn terminals(&self) -> BTreeSet<NodeId> {
        self.members.keys().copied().collect()
    }

    fn apply_membership(&mut self, source: NodeId, event: McEventKind) {
        match event {
            McEventKind::Join(role) => {
                self.members
                    .entry(source)
                    .and_modify(|r| *r = r.merge(role))
                    .or_insert(role);
            }
            McEventKind::Leave => {
                self.members.remove(&source);
            }
            McEventKind::Link | McEventKind::None => {}
        }
    }

    /// `R >= E` (with `E >= R` invariant: equality — nothing outstanding).
    fn caught_up(&self) -> bool {
        self.r.dominates(&self.e)
    }

    fn deletable(&self) -> bool {
        self.members.is_empty() && self.caught_up() && self.queue.is_empty() && self.job.is_none()
    }
}

/// The full per-switch specification state machine (all MCs).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SpecSwitch {
    me: NodeId,
    n: usize,
    mcs: BTreeMap<McId, SpecMc>,
    tombstones: BTreeMap<McId, Tombstone>,
    mutation: EngineMutation,
}

impl SpecSwitch {
    /// Fresh switch `me` in an `n`-switch network.
    pub fn new(me: NodeId, n: usize) -> SpecSwitch {
        SpecSwitch {
            me,
            n,
            mcs: BTreeMap::new(),
            tombstones: BTreeMap::new(),
            mutation: EngineMutation::None,
        }
    }

    /// Installs the same deliberate defect as the engine under check, so a
    /// mutated run diverges where the *protocol* breaks rather than at the
    /// first mutated step.
    pub fn set_mutation(&mut self, mutation: EngineMutation) {
        self.mutation = mutation;
    }

    /// The owning switch.
    pub fn id(&self) -> NodeId {
        self.me
    }

    /// Read access to the state of `mc`, if allocated.
    pub fn state(&self, mc: McId) -> Option<&SpecMc> {
        self.mcs.get(&mc)
    }

    /// The tombstone left by the last teardown of `mc`, if any.
    pub fn tombstone(&self, mc: McId) -> Option<&Tombstone> {
        self.tombstones.get(&mc)
    }

    /// All teardown tombstones, ordered by MC id (state-hash input).
    pub fn tombstones(&self) -> impl Iterator<Item = (&McId, &Tombstone)> {
        self.tombstones.iter()
    }

    /// All connections with allocated state.
    pub fn mc_ids(&self) -> Vec<McId> {
        self.mcs.keys().copied().collect()
    }

    /// Whether this switch is a member of `mc`.
    pub fn is_member(&self, mc: McId) -> bool {
        self.mcs
            .get(&mc)
            .is_some_and(|st| st.members.contains_key(&self.me))
    }

    /// A local host join (entry to Fig. 4 with V = join).
    pub fn host_join(
        &self,
        mc: McId,
        mc_type: McType,
        role: Role,
    ) -> (SpecSwitch, Vec<SpecAction>) {
        let mut next = self.clone();
        // Re-creating a torn-down MC starts a new incarnation (the epoch
        // moves past the tombstone's; DESIGN.md §11 race 1).
        let epoch = match (self.mutation, self.tombstones.get(&mc)) {
            (EngineMutation::UnfencedTeardown, _) | (_, None) => 0,
            (_, Some(tomb)) => tomb.epoch + 1,
        };
        let st = next
            .mcs
            .entry(mc)
            .or_insert_with(|| SpecMc::new_at_epoch(mc_type, self.n, epoch));
        if st.members.contains_key(&self.me) {
            return (next, Vec::new());
        }
        let actions = next.event_handler(mc, McEventKind::Join(role));
        (next, actions)
    }

    /// A local host leave (entry to Fig. 4 with V = leave).
    pub fn host_leave(&self, mc: McId) -> (SpecSwitch, Vec<SpecAction>) {
        if !self.is_member(mc) {
            return (self.clone(), Vec::new());
        }
        let mut next = self.clone();
        let actions = next.event_handler(mc, McEventKind::Leave);
        (next, actions)
    }

    /// A locally detected link event: Fig. 4 runs once per connection whose
    /// installed topology uses `(a, b)`.
    pub fn link_event(&self, a: NodeId, b: NodeId) -> (SpecSwitch, Vec<SpecAction>) {
        let mut next = self.clone();
        let affected: Vec<McId> = next
            .mcs
            .iter()
            .filter(|(_, st)| st.installed.as_ref().is_some_and(|t| t.contains_edge(a, b)))
            .map(|(&mc, _)| mc)
            .collect();
        let mut actions = Vec::new();
        for mc in affected {
            actions.extend(next.event_handler(mc, McEventKind::Link));
        }
        (next, actions)
    }

    /// Delivery of a flooded MC LSA (entry to Fig. 5, with the epoch gate
    /// of the DESIGN.md §11 race 1 repair — mirrored line-for-line from
    /// [`DgmcEngine::on_mc_lsa`]).
    pub fn receive_lsa(&self, lsa: McLsa) -> (SpecSwitch, Vec<SpecAction>) {
        let mut next = self.clone();
        let mc = lsa.mc;
        let mc_type = lsa.mc_type;
        let fenced = self.mutation != EngineMutation::UnfencedTeardown;
        let mut rejoin: Option<Role> = None;
        match next.mcs.get(&mc).map(|st| st.epoch) {
            None => {
                let is_join = matches!(lsa.event, McEventKind::Join(_));
                match next.tombstones.get(&mc).filter(|_| fenced) {
                    Some(tomb) if lsa.epoch < tomb.epoch => return (next, Vec::new()),
                    Some(tomb) if lsa.epoch == tomb.epoch => {
                        // Any same-epoch LSA resumes the tombstoned
                        // incarnation; the drain tears it back down if it
                        // stays empty and caught up.
                        let st = SpecMc::revived(mc_type, self.n, tomb);
                        next.mcs.insert(mc, st);
                    }
                    _ => {
                        if !is_join {
                            return (next, Vec::new());
                        }
                        let epoch = if fenced { lsa.epoch } else { 0 };
                        next.mcs
                            .insert(mc, SpecMc::new_at_epoch(mc_type, self.n, epoch));
                    }
                }
            }
            Some(epoch) if fenced && lsa.epoch < epoch => return (next, Vec::new()),
            Some(epoch) if fenced && lsa.epoch > epoch => {
                // Our incarnation is stale: reset and re-join if we were a
                // member.
                let old = next.mcs.get(&mc).expect("matched Some");
                rejoin = old.members.get(&self.me).copied();
                next.mcs
                    .insert(mc, SpecMc::new_at_epoch(mc_type, self.n, lsa.epoch));
            }
            Some(_) => {}
        }
        let st = next.mcs.get_mut(&mc).expect("just ensured");
        st.queue.push_back(lsa);
        let mut actions = Vec::new();
        if st.job.is_none() {
            // The CPU is idle; drain now. Otherwise the LSA waits and will
            // invalidate the in-flight proposal at completion (Fig. 5
            // line 22).
            actions.extend(next.receive_loop(mc, None));
        }
        if let Some(role) = rejoin {
            if next.mcs.contains_key(&mc) {
                actions.extend(next.event_handler(mc, McEventKind::Join(role)));
            } else {
                let (again, more) = next.host_join(mc, mc_type, role);
                next = again;
                actions.extend(more);
            }
        }
        (next, actions)
    }

    /// The `Tc` computation timer fired for `mc` (Fig. 4 lines 6-14 /
    /// Fig. 5 lines 22-30). `compute` supplies the topology.
    pub fn computation_done(
        &self,
        mc: McId,
        compute: &mut ComputeFn<'_>,
    ) -> (SpecSwitch, Vec<SpecAction>) {
        let mut next = self.clone();
        let Some(st) = next.mcs.get_mut(&mc) else {
            // Stale completion for a deleted connection: benign no-op.
            return (next, Vec::new());
        };
        let Some(job) = st.job.take() else {
            return (next, Vec::new());
        };
        // Fig. 4 line 6 / Fig. 5 line 22: the proposal is valid iff no LSA
        // arrived and R did not advance while computing.
        let fresh = st.queue.is_empty() && st.r == job.old_r;
        let mut actions = Vec::new();
        let mut carry: Option<Candidate> = None;
        if fresh {
            let topology = compute(&job.terminals, job.previous.as_ref());
            // Fig. 4 line 7 / Fig. 5 line 23: flood the proposal, stamped
            // with old_R and carrying the originating event if any.
            actions.push(SpecAction::Flood(McLsa {
                source: self.me,
                event: job.pending_event.unwrap_or(McEventKind::None),
                mc,
                mc_type: st.mc_type,
                epoch: st.epoch,
                proposal: Some(topology.clone()),
                stamp: job.old_r.clone(),
            }));
            if job.pending_event.is_none() {
                // Fig. 5 line 24: E catches up to R.
                st.e = st.r.clone();
            }
            // Fig. 4 lines 8-10 / Fig. 5 lines 25-27, with the DESIGN.md §3
            // correction: a held equal-stamp candidate from a smaller source
            // outranks our own proposal; otherwise we install our own.
            let own_wins = match &job.held {
                Some((_, stamp, source)) => *stamp != job.old_r || self.me < *source,
                None => true,
            };
            if own_wins {
                st.c = job.old_r;
                st.c_source = Some(self.me);
                st.installed = Some(topology);
            } else {
                let (topo, stamp, source) = job.held.clone().expect("own_wins checked Some");
                st.c = stamp;
                st.c_source = Some(source);
                st.installed = Some(topo);
            }
            st.flag = false;
            actions.push(SpecAction::Installed(mc));
        } else {
            // Withdrawal. The held candidate survives and competes in the
            // drain below (correction to Fig. 5 line 29, DESIGN.md §3).
            carry = job.held.clone();
            if let Some(event) = job.pending_event {
                // Fig. 4 lines 11-13: the event must still be announced,
                // stamped with old_R, without a proposal.
                st.flag = true;
                actions.push(SpecAction::Flood(McLsa {
                    source: self.me,
                    event,
                    mc,
                    mc_type: st.mc_type,
                    epoch: st.epoch,
                    proposal: None,
                    stamp: job.old_r,
                }));
            }
            // Deferred local events flood in local order after the pending
            // announcement (DESIGN.md §11 race 2 repair).
            for (event, stamp) in job.deferred {
                st.flag = true;
                actions.push(SpecAction::Flood(McLsa {
                    source: self.me,
                    event,
                    mc,
                    mc_type: st.mc_type,
                    epoch: st.epoch,
                    proposal: None,
                    stamp,
                }));
            }
            actions.push(SpecAction::Withdrawn(mc));
        }
        actions.extend(next.receive_loop(mc, carry));
        (next, actions)
    }

    /// `EventHandler()`, Fig. 4. Caller has allocated the state.
    fn event_handler(&mut self, mc: McId, event: McEventKind) -> Vec<SpecAction> {
        debug_assert!(event.is_event(), "EventHandler takes real events");
        let me = self.me;
        let st = self.mcs.get_mut(&mc).expect("state allocated by caller");
        // Line 1: R[x] += 1; E[x] += 1, plus local membership bookkeeping.
        st.r.incr(me);
        st.e.incr(me);
        st.apply_membership(me, event);
        // Line 2: compute only when caught up — and, on the serialized
        // single CPU, only when idle (DESIGN.md §6).
        if st.caught_up() && st.job.is_none() && st.queue.is_empty() {
            // Lines 4-5: snapshot old_R and start the Tc computation.
            st.job = Some(SpecJob {
                old_r: st.r.clone(),
                terminals: st.terminals(),
                previous: st.installed.clone(),
                pending_event: Some(event),
                held: None,
                deferred: Vec::new(),
            });
            vec![SpecAction::StartComputation(mc)]
        } else {
            // Lines 15-17 flood the event now — unless an earlier local
            // event is still unannounced behind the in-flight computation,
            // in which case this one waits its turn (DESIGN.md §11 race 2).
            st.flag = true;
            let unannounced_ahead = st
                .job
                .as_ref()
                .is_some_and(|job| job.pending_event.is_some() || !job.deferred.is_empty());
            if unannounced_ahead && self.mutation != EngineMutation::EagerDeferredFlood {
                let stamp = st.r.clone();
                let job = st.job.as_mut().expect("checked above");
                job.deferred.push((event, stamp));
                return Vec::new();
            }
            vec![SpecAction::Flood(McLsa {
                source: me,
                event,
                mc,
                mc_type: st.mc_type,
                epoch: st.epoch,
                proposal: None,
                stamp: st.r.clone(),
            })]
        }
    }

    /// `ReceiveLSA()`, Fig. 5: drains the queue, decides whether to compute,
    /// installs an accepted candidate, deletes dead state.
    fn receive_loop(&mut self, mc: McId, initial: Option<Candidate>) -> Vec<SpecAction> {
        let me = self.me;
        let Some(st) = self.mcs.get_mut(&mc) else {
            return Vec::new();
        };
        debug_assert!(st.job.is_none(), "the queue drains only when idle");
        // Lines 1-2, except the carried candidate stays live (DESIGN.md §3).
        let mut candidate: Option<Candidate> = initial;
        let mut actions = Vec::new();
        // Lines 3-18.
        while let Some(lsa) = st.queue.pop_front() {
            if lsa.event.is_event() {
                // Lines 7-8: count the event, track membership.
                st.r.incr(lsa.source);
                st.apply_membership(lsa.source, lsa.event);
            }
            // Line 10: E[y] = max(E[y], T[y]).
            st.e.merge_max(&lsa.stamp);
            // Line 11: a proposal is acceptable iff its stamp covers
            // everything we expect.
            if lsa.stamp.dominates(&st.e) && lsa.proposal.is_some() {
                let replace = match &candidate {
                    None => true,
                    Some((_, cand_stamp, cand_src)) => {
                        lsa.stamp.strictly_dominates(cand_stamp)
                            || (lsa.stamp == *cand_stamp && lsa.source < *cand_src)
                    }
                };
                if replace {
                    candidate = Some((
                        lsa.proposal.clone().expect("checked above"),
                        lsa.stamp.clone(),
                        lsa.source,
                    ));
                }
                st.flag = false;
            } else if st.r.get(me) > lsa.stamp.get(me) {
                // Line 15: the sender has not seen all our local events.
                st.flag = true;
            }
        }
        // Line 19: should we propose ourselves?
        if st.flag && st.caught_up() && st.r.strictly_dominates(&st.c) {
            // Lines 20-21: snapshot and start computing; the candidate
            // rides along (DESIGN.md §3 correction to lines 25/29).
            st.job = Some(SpecJob {
                old_r: st.r.clone(),
                terminals: st.terminals(),
                previous: st.installed.clone(),
                pending_event: None,
                held: candidate,
                deferred: Vec::new(),
            });
            actions.push(SpecAction::StartComputation(mc));
            return actions;
        }
        // Lines 32-34: install the accepted candidate if it supersedes the
        // installed one (equal stamps prefer the smaller source).
        if let Some((topology, stamp, source)) = candidate {
            let supersedes = stamp.strictly_dominates(&st.c)
                || (stamp == st.c && st.c_source.is_none_or(|cur| source <= cur));
            if supersedes {
                st.c = stamp;
                st.c_source = Some(source);
                st.installed = Some(topology);
                actions.push(SpecAction::Installed(mc));
            }
        }
        // MC destruction: "local data structures are deleted" once the
        // member list is empty and nothing is outstanding — leaving a
        // tombstone against stale resurrection (DESIGN.md §11 race 1).
        if st.deletable() {
            if self.mutation != EngineMutation::UnfencedTeardown {
                self.tombstones.insert(
                    mc,
                    Tombstone {
                        epoch: st.epoch,
                        final_r: st.r.clone(),
                    },
                );
            }
            self.mcs.remove(&mc);
        }
        actions
    }
}

/// Compares the specification state against a live engine and returns a
/// human-readable description of the first difference, or `None` when they
/// agree exactly (same connections; same R/E/C, `c_source`, members, flag,
/// installed topology, queued LSAs and computation snapshot per
/// connection).
pub fn diff_engine(spec: &SpecSwitch, engine: &DgmcEngine) -> Option<String> {
    let spec_ids = spec.mc_ids();
    let engine_ids = engine.mc_ids();
    if spec_ids != engine_ids {
        return Some(format!(
            "connection sets differ: spec {spec_ids:?} vs engine {engine_ids:?}"
        ));
    }
    {
        let spec_tombs: Vec<(&McId, &Tombstone)> = spec.tombstones().collect();
        let engine_tombs: Vec<(&McId, &Tombstone)> = engine.tombstones().collect();
        if spec_tombs != engine_tombs {
            return Some(format!(
                "tombstones differ at {}: spec {spec_tombs:?} vs engine {engine_tombs:?}",
                spec.id(),
            ));
        }
    }
    for mc in spec_ids {
        let s = spec.state(mc).expect("own id");
        let e = engine.state(mc).expect("same id set");
        let fields: [(&str, bool); 10] = [
            ("epoch", s.epoch == e.epoch),
            ("R", s.r == e.r),
            ("E", s.e == e.e),
            ("C", s.c == e.c),
            ("c_source", s.c_source == e.c_source),
            ("members", s.members == e.members),
            ("make_proposal_flag", s.flag == e.make_proposal_flag),
            ("installed", s.installed == e.installed),
            ("queue", s.queue == e.mailbox),
            (
                "computing",
                match (&s.job, &e.computing) {
                    (None, None) => true,
                    (Some(sj), Some(ej)) => {
                        sj.old_r == ej.old_r
                            && sj.terminals == ej.terminals
                            && sj.previous == ej.previous
                            && sj.pending_event == ej.pending_event
                            && sj.held == ej.stashed_candidate
                            && sj.deferred == ej.deferred
                    }
                    _ => false,
                },
            ),
        ];
        if let Some((name, _)) = fields.iter().find(|(_, eq)| !eq) {
            return Some(format!(
                "{mc} at {}: field `{name}` differs (spec {s:?} vs engine {e:?})",
                spec.id(),
            ));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgmc_mctree::{McAlgorithm, SphStrategy};
    use dgmc_topology::{generate, SpfCache};
    use std::rc::Rc;

    const MC: McId = McId(1);

    fn compute_on<'a>(
        net: &'a dgmc_topology::Network,
    ) -> impl FnMut(&BTreeSet<NodeId>, Option<&McTopology>) -> McTopology + 'a {
        move |terminals, previous| {
            SphStrategy::new().compute_with(net, terminals, previous, &SpfCache::disabled())
        }
    }

    #[test]
    fn first_join_mirrors_the_engine_exactly() {
        let net = generate::ring(4);
        let mut engine = DgmcEngine::new(NodeId(0), 4, Rc::new(SphStrategy::new()));
        let spec = SpecSwitch::new(NodeId(0), 4);

        let ea = engine.local_join(MC, McType::Symmetric, Role::SenderReceiver);
        let (spec, sa) = spec.host_join(MC, McType::Symmetric, Role::SenderReceiver);
        assert!(actions_match(&sa, &ea), "spec {sa:?} vs engine {ea:?}");
        assert_eq!(diff_engine(&spec, &engine), None);

        let ea = engine.on_computation_done(MC, &net);
        let (spec, sa) = spec.computation_done(MC, &mut compute_on(&net));
        assert!(actions_match(&sa, &ea), "spec {sa:?} vs engine {ea:?}");
        assert_eq!(diff_engine(&spec, &engine), None);
        assert!(spec.state(MC).unwrap().installed.is_some());
    }

    #[test]
    fn duplicate_join_and_foreign_leave_are_noops() {
        let spec = SpecSwitch::new(NodeId(2), 4);
        let (spec, _) = spec.host_join(MC, McType::Symmetric, Role::Receiver);
        let (spec, again) = spec.host_join(MC, McType::Symmetric, Role::Receiver);
        assert!(again.is_empty());
        let (spec, a) = spec.host_leave(McId(9));
        assert!(a.is_empty());
        assert!(spec.state(McId(9)).is_none());
    }

    #[test]
    fn non_join_lsa_for_unknown_mc_is_dropped() {
        let spec = SpecSwitch::new(NodeId(3), 4);
        let (spec, a) = spec.receive_lsa(McLsa {
            source: NodeId(0),
            event: McEventKind::None,
            mc: MC,
            mc_type: McType::Symmetric,
            epoch: 0,
            proposal: Some(McTopology::empty()),
            stamp: Timestamp::zero(4),
        });
        assert!(a.is_empty());
        assert!(spec.state(MC).is_none());
    }

    #[test]
    fn divergence_is_reported_with_the_field_name() {
        let net = generate::ring(4);
        let mut engine = DgmcEngine::new(NodeId(0), 4, Rc::new(SphStrategy::new()));
        let spec = SpecSwitch::new(NodeId(0), 4);
        engine.local_join(MC, McType::Symmetric, Role::SenderReceiver);
        engine.on_computation_done(MC, &net);
        let diff = diff_engine(&spec, &engine).expect("states differ");
        assert!(diff.contains("connection sets differ"), "{diff}");
        let (spec, _) = spec.host_join(MC, McType::Symmetric, Role::Receiver);
        let diff = diff_engine(&spec, &engine).expect("states differ");
        assert!(diff.contains('R') || diff.contains("members"), "{diff}");
    }

    #[test]
    fn stale_completion_is_a_noop() {
        let spec = SpecSwitch::new(NodeId(0), 4);
        let (next, a) = spec.computation_done(MC, &mut |_, _| McTopology::empty());
        assert!(a.is_empty());
        assert_eq!(next, spec);
    }
}
