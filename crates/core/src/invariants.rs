//! Reusable protocol invariant suite for quiescent simulations.
//!
//! The schedule explorer (DESIGN.md §8) runs a seeded scenario to
//! quiescence and then asks this module whether the protocol kept its
//! promises. Four invariants are checked per multipoint connection, over
//! the *live* (non-crashed) switches:
//!
//! * **`agreement`** — every live switch that knows the MC installed the
//!   identical topology, agrees on the `C` timestamp and on the member
//!   list, and no live switch is missing state others hold.
//! * **`stamps`** — per switch, `E >= R` and `E >= C` component-wise
//!   always, and at quiescence `R == E` (nothing announced remains
//!   undelivered).
//! * **`settled`** — no switch still holds queued LSAs or an in-flight
//!   computation: every proposal was either installed or withdrawn.
//! * **`tree`** — the installed topology is acyclic, uses only up links of
//!   the network, and spans exactly the member set.
//!
//! Each violation is also emitted as a
//! [`DecisionKind::InvariantViolated`] event through the simulation's
//! observer, so a replay with a decision log attached places the failure
//! on the protocol timeline.

use crate::switch::{DgmcSwitch, SwitchMsg};
use crate::{DgmcEngine, McId, McState};
use dgmc_des::{ActorId, Simulation};
use dgmc_obs::{DecisionEvent, DecisionKind, StampSnapshot};
use dgmc_topology::{Network, NodeId};
use std::collections::BTreeSet;
use std::fmt;

/// One broken invariant, localized to an MC and (where meaningful) a
/// switch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Stable invariant name: `agreement`, `stamps`, `settled` or `tree`.
    pub invariant: &'static str,
    /// The connection the violation concerns.
    pub mc: McId,
    /// The offending switch, when the violation is per-switch.
    pub switch: Option<NodeId>,
    /// Human-readable specifics.
    pub detail: String,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} on {}", self.invariant, self.mc)?;
        if let Some(sw) = self.switch {
            write!(f, " at {sw}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

fn live_switches(sim: &Simulation<SwitchMsg>) -> Vec<&DgmcSwitch> {
    let count = u32::try_from(sim.actor_count()).expect("actor ids fit u32");
    (0..count)
        .map(|i| {
            sim.actor_as::<DgmcSwitch>(ActorId(i))
                .expect("all actors are DgmcSwitch")
        })
        .filter(|sw| !sw.is_failed())
        .collect()
}

fn per_switch_checks(sw: NodeId, mc: McId, st: &McState, out: &mut Vec<InvariantViolation>) {
    if !st.invariant_holds() {
        out.push(InvariantViolation {
            invariant: "stamps",
            mc,
            switch: Some(sw),
            detail: format!(
                "E >= R / E >= C violated (R={} E={} C={})",
                st.r, st.e, st.c
            ),
        });
    }
    if !st.all_caught_up() {
        out.push(InvariantViolation {
            invariant: "stamps",
            mc,
            switch: Some(sw),
            detail: format!("R != E at quiescence (R={} E={})", st.r, st.e),
        });
    }
    if !st.mailbox.is_empty() {
        out.push(InvariantViolation {
            invariant: "settled",
            mc,
            switch: Some(sw),
            detail: format!("{} LSA(s) still queued at quiescence", st.mailbox.len()),
        });
    }
    if st.computing.is_some() {
        out.push(InvariantViolation {
            invariant: "settled",
            mc,
            switch: Some(sw),
            detail: "topology computation still in flight at quiescence".into(),
        });
    }
}

fn agreement_checks(
    reference: (NodeId, &McState),
    sw: NodeId,
    st: &McState,
    mc: McId,
    out: &mut Vec<InvariantViolation>,
) {
    let (ref_sw, ref_st) = reference;
    if st.installed != ref_st.installed {
        out.push(InvariantViolation {
            invariant: "agreement",
            mc,
            switch: Some(sw),
            detail: format!("installed topology differs from {ref_sw}'s"),
        });
    }
    if st.c != ref_st.c {
        out.push(InvariantViolation {
            invariant: "agreement",
            mc,
            switch: Some(sw),
            detail: format!("C stamp {} differs from {}'s {}", st.c, ref_sw, ref_st.c),
        });
    }
    if st.members != ref_st.members {
        out.push(InvariantViolation {
            invariant: "agreement",
            mc,
            switch: Some(sw),
            detail: format!("member list differs from {ref_sw}'s"),
        });
    }
}

fn tree_checks(
    reference: (NodeId, &McState),
    net: &Network,
    mc: McId,
    out: &mut Vec<InvariantViolation>,
) {
    let (ref_sw, ref_st) = reference;
    // An MC whose last member left is torn down; whatever state remains
    // before deletion has nothing to span.
    if ref_st.members.is_empty() {
        return;
    }
    let terminals = ref_st.terminals();
    let Some(topo) = ref_st.installed.as_ref() else {
        out.push(InvariantViolation {
            invariant: "tree",
            mc,
            switch: Some(ref_sw),
            detail: format!(
                "no topology installed for {} member(s)",
                ref_st.members.len()
            ),
        });
        return;
    };
    if let Err(err) = topo.validate(net, &terminals) {
        out.push(InvariantViolation {
            invariant: "tree",
            mc,
            switch: Some(ref_sw),
            detail: err.to_string(),
        });
    }
    if topo.terminals() != &terminals {
        out.push(InvariantViolation {
            invariant: "tree",
            mc,
            switch: Some(ref_sw),
            detail: "tree terminal set differs from the member set".into(),
        });
    }
}

/// Checks the full invariant suite directly over a set of protocol engines
/// (the `Simulation`-independent core of [`check_invariants`]).
///
/// The systematic explorer (DESIGN.md §11) drives bare [`DgmcEngine`]s
/// without the switch/DES layers and calls this at every quiescent leaf of
/// the interleaving tree. `net` must reflect the link states the explored
/// trace ended with. No observer events are emitted — callers that want the
/// decision-log mirror do it themselves (as [`check_invariants`] does).
pub fn check_engines(engines: &[&DgmcEngine], net: &Network) -> Vec<InvariantViolation> {
    let mut mcs: BTreeSet<McId> = BTreeSet::new();
    for engine in engines {
        mcs.extend(engine.mc_ids());
    }
    let mut out = Vec::new();
    for &mc in &mcs {
        let mut reference: Option<(NodeId, &McState)> = None;
        for engine in engines {
            let Some(st) = engine.state(mc) else {
                out.push(InvariantViolation {
                    invariant: "agreement",
                    mc,
                    switch: Some(engine.id()),
                    detail: "has no state for an MC other live switches know".into(),
                });
                continue;
            };
            per_switch_checks(engine.id(), mc, st, &mut out);
            match reference {
                None => reference = Some((engine.id(), st)),
                Some(r) => agreement_checks(r, engine.id(), st, mc, &mut out),
            }
        }
        if let Some(r) = reference {
            tree_checks(r, net, mc, &mut out);
        }
    }
    out
}

/// Checks the full invariant suite over all MCs known to any live switch.
///
/// Intended to run at quiescence (after [`Simulation::run_to_quiescence`]
/// returned `Quiescent`); the `stamps`/`settled` invariants are quiescence
/// properties and will report transient states as violations if called
/// mid-run. `net` must reflect the link states the run ended with.
///
/// Every violation found is also emitted through the simulation's observer
/// as a [`DecisionKind::InvariantViolated`] event.
///
/// # Panics
///
/// Panics if the simulation hosts non-[`DgmcSwitch`] actors.
pub fn check_invariants(sim: &Simulation<SwitchMsg>, net: &Network) -> Vec<InvariantViolation> {
    let live = live_switches(sim);
    let engines: Vec<&DgmcEngine> = live.iter().map(|sw| sw.engine()).collect();
    let out = check_engines(&engines, net);
    for v in &out {
        sim.observer().emit(|now| DecisionEvent {
            at_nanos: now,
            mc: u64::from(v.mc.0),
            switch: v.switch.map_or(u32::MAX, |n| n.0),
            kind: DecisionKind::InvariantViolated {
                invariant: v.invariant.to_string(),
            },
            stamps: StampSnapshot::empty(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::switch::{build_dgmc_sim, DgmcConfig};
    use crate::McType;
    use dgmc_des::SimDuration;
    use dgmc_mctree::{Role, SphStrategy};
    use dgmc_topology::generate;
    use std::rc::Rc;

    fn joined_ring() -> (dgmc_topology::Network, Simulation<SwitchMsg>) {
        let net = generate::ring(5);
        let mut sim = build_dgmc_sim(
            &net,
            DgmcConfig::computation_dominated(),
            Rc::new(SphStrategy::new()),
        );
        for (i, node) in [0u32, 2, 4].into_iter().enumerate() {
            sim.inject(
                ActorId(node),
                SimDuration::millis(u64::try_from(i).expect("loop index fits u64")),
                SwitchMsg::HostJoin {
                    mc: McId(1),
                    mc_type: McType::Symmetric,
                    role: Role::SenderReceiver,
                },
            );
        }
        sim.run_to_quiescence();
        (net, sim)
    }

    #[test]
    fn healthy_quiescent_run_upholds_every_invariant() {
        let (net, sim) = joined_ring();
        let violations = check_invariants(&sim, &net);
        assert!(violations.is_empty(), "unexpected: {violations:?}");
    }

    #[test]
    fn violations_render_with_mc_and_switch() {
        let v = InvariantViolation {
            invariant: "tree",
            mc: McId(3),
            switch: Some(NodeId(2)),
            detail: "topology contains a cycle".into(),
        };
        assert_eq!(
            v.to_string(),
            "tree on mc3 at s2: topology contains a cycle"
        );
        let global = InvariantViolation {
            invariant: "agreement",
            mc: McId(1),
            switch: None,
            detail: "split brain".into(),
        };
        assert_eq!(global.to_string(), "agreement on mc1: split brain");
    }

    #[test]
    fn violations_are_mirrored_onto_the_decision_log() {
        let (net, sim) = joined_ring();
        let log = sim.observer().attach_log(64);
        let violations = check_invariants(&sim, &net);
        assert!(violations.is_empty());
        // Force a violation by validating against a network where one
        // installed tree edge is administratively down.
        let (a, b) = sim
            .actor_as::<DgmcSwitch>(ActorId(0))
            .unwrap()
            .engine()
            .installed(McId(1))
            .unwrap()
            .edges()
            .next()
            .unwrap();
        let mut degraded = net.clone();
        let down = degraded.link_between(a, b).unwrap().id;
        degraded
            .set_link_state(down, dgmc_topology::LinkState::Down)
            .unwrap();
        let violations = check_invariants(&sim, &degraded);
        assert!(
            violations.iter().any(|v| v.invariant == "tree"),
            "expected a tree violation: {violations:?}"
        );
        let events = log.borrow();
        assert!(
            events
                .iter()
                .any(|e| matches!(&e.kind, DecisionKind::InvariantViolated { invariant } if invariant == "tree")),
            "violation not mirrored to the log"
        );
    }
}
