//! Arena-backed per-MC state store with flat `u32` slots and SoA hot views.
//!
//! The engine used to keep `BTreeMap<McId, McState>` and answer its two hot
//! queries by scanning every resident connection:
//!
//! * `mcs_using_link(a, b)` — walked all MCs and asked each installed
//!   topology `contains_edge`, so *every* link event cost O(#MCs) even when
//!   it affected three of them;
//! * `is_quiet()` — walked all mailboxes/computations at every quiescence
//!   probe.
//!
//! At the ROADMAP's target scale (tens of thousands of conference groups
//! resident in one switch) those scans dominate the event loop. This arena
//! replaces the map with:
//!
//! * **flat slots** — `McId → u32` slot index plus a free list, so state
//!   lookup is one `BTreeMap` probe and one `Vec` index, and slots are
//!   reused without reallocating;
//! * **an inverted edge index** — normalized installed edge → set of MC
//!   ids whose installed topology uses it, making `using_edge` O(answer);
//! * **a busy set** — MC ids with a queued LSA or in-flight computation,
//!   making `is_quiet` O(1).
//!
//! The views are *derived* data. They are refreshed by [`McArena::sync`],
//! which every engine entry point calls after mutating a state; under
//! `debug_assertions` the hot queries recompute their answer from scratch
//! and assert agreement, so any missed `sync` fails loudly in every test
//! run. The reference scans are kept (`using_edge_scan`, `is_quiet_scan`)
//! both as that oracle and as the baseline the PR9 benches gate against.

use crate::state::McState;
use crate::McId;
use dgmc_topology::NodeId;
use std::collections::{BTreeMap, BTreeSet};

/// A normalized (smaller id first) undirected edge, matching
/// [`dgmc_mctree::McTopology`]'s canonical edge form.
fn normalize(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// One arena slot: the state plus the per-slot snapshot of the hot fields
/// the SoA views were last synced from.
#[derive(Debug, Clone, Default)]
struct Slot {
    /// The state; `None` while the slot sits on the free list or while the
    /// state is checked out for sharded processing ([`McArena::take_at`]).
    state: Option<McState>,
    /// Installed edges (normalized, sorted) as of the last `sync`.
    edges: Vec<(NodeId, NodeId)>,
    /// Whether the MC counted as busy as of the last `sync`.
    busy: bool,
}

/// The arena: flat slot storage for all resident MC states plus the
/// derived hot views. See the module docs for the layout rationale.
#[derive(Debug, Clone, Default)]
pub(crate) struct McArena {
    /// `McId → slot`, also the sorted-id iteration order.
    index: BTreeMap<McId, u32>,
    slots: Vec<Slot>,
    free: Vec<u32>,
    /// MC ids with a non-empty mailbox or an in-flight computation.
    busy: BTreeSet<McId>,
    /// Normalized installed edge → ids of MCs whose topology uses it.
    edge_index: BTreeMap<(NodeId, NodeId), BTreeSet<McId>>,
}

impl McArena {
    pub fn new() -> McArena {
        McArena::default()
    }

    pub fn len(&self) -> usize {
        self.index.len()
    }

    pub fn contains(&self, mc: McId) -> bool {
        self.index.contains_key(&mc)
    }

    fn slot_of(&self, mc: McId) -> Option<u32> {
        self.index.get(&mc).copied()
    }

    pub fn get(&self, mc: McId) -> Option<&McState> {
        let slot = self.slot_of(mc)?;
        self.slots[slot as usize].state.as_ref()
    }

    /// Mutable state access. The caller must [`McArena::sync`] the id before
    /// the next hot-view query; the debug oracle enforces this.
    pub fn get_mut(&mut self, mc: McId) -> Option<&mut McState> {
        let slot = self.slot_of(mc)?;
        self.slots[slot as usize].state.as_mut()
    }

    /// Ids of all resident states, in sorted order.
    pub fn ids(&self) -> Vec<McId> {
        self.index.keys().copied().collect()
    }

    /// Iterates `(id, state)` in id order, skipping checked-out slots.
    pub fn iter(&self) -> impl Iterator<Item = (McId, &McState)> + '_ {
        self.index
            .iter()
            .filter_map(|(&mc, &slot)| Some((mc, self.slots[slot as usize].state.as_ref()?)))
    }

    /// Inserts (or replaces) the state for `mc` and syncs its views.
    pub fn insert(&mut self, mc: McId, state: McState) {
        match self.slot_of(mc) {
            Some(slot) => self.slots[slot as usize].state = Some(state),
            None => {
                let slot = match self.free.pop() {
                    Some(slot) => {
                        self.slots[slot as usize].state = Some(state);
                        slot
                    }
                    None => {
                        let slot = u32::try_from(self.slots.len())
                            .expect("more than u32::MAX resident MC states");
                        self.slots.push(Slot {
                            state: Some(state),
                            edges: Vec::new(),
                            busy: false,
                        });
                        slot
                    }
                };
                self.index.insert(mc, slot);
            }
        }
        self.sync(mc);
    }

    /// Gets the state for `mc`, inserting `make()` first if absent.
    /// The caller must `sync` after mutating, like [`McArena::get_mut`].
    pub fn ensure(&mut self, mc: McId, make: impl FnOnce() -> McState) -> &mut McState {
        if !self.contains(mc) {
            self.insert(mc, make());
        }
        self.get_mut(mc).expect("just ensured")
    }

    /// Removes `mc`, returning its state and clearing its view entries.
    pub fn remove(&mut self, mc: McId) -> Option<McState> {
        let slot = self.index.remove(&mc)?;
        let cell = &mut self.slots[slot as usize];
        let state = cell.state.take();
        for &edge in &cell.edges {
            if let Some(users) = self.edge_index.get_mut(&edge) {
                users.remove(&mc);
                if users.is_empty() {
                    self.edge_index.remove(&edge);
                }
            }
        }
        cell.edges.clear();
        cell.busy = false;
        self.busy.remove(&mc);
        self.free.push(slot);
        state
    }

    /// Resolves the slot index of `mc`, for the sharded batch fast path:
    /// resolving once and using [`McArena::take_at`]/[`McArena::restore_at`]
    /// pays one map probe per id instead of one per arena operation.
    pub fn slot_index(&self, mc: McId) -> Option<u32> {
        self.slot_of(mc)
    }

    /// Checks the state out of its slot (by pre-resolved index) for sharded
    /// processing. The slot stays allocated and its views untouched;
    /// [`McArena::restore_at`] puts the state back and resyncs.
    pub fn take_at(&mut self, slot: u32) -> Option<McState> {
        self.slots[slot as usize].state.take()
    }

    /// Returns a checked-out state to its slot and refreshes its views.
    pub fn restore_at(&mut self, slot: u32, mc: McId, state: McState) {
        debug_assert_eq!(self.slot_of(mc), Some(slot), "slot/id mismatch");
        let cell = &mut self.slots[slot as usize];
        debug_assert!(cell.state.is_none(), "restore over a resident state");
        cell.state = Some(state);
        self.sync_slot(mc, slot);
    }

    /// Refreshes the derived views (busy set, edge index) for `mc` from its
    /// current state. Idempotent; a no-op for non-resident ids.
    pub fn sync(&mut self, mc: McId) {
        let Some(slot) = self.slot_of(mc) else {
            return;
        };
        self.sync_slot(mc, slot);
    }

    fn sync_slot(&mut self, mc: McId, slot: u32) {
        let cell = &mut self.slots[slot as usize];
        let Some(state) = cell.state.as_ref() else {
            return;
        };
        let busy = !state.mailbox.is_empty() || state.computing.is_some();
        if busy != cell.busy {
            cell.busy = busy;
            if busy {
                self.busy.insert(mc);
            } else {
                self.busy.remove(&mc);
            }
        }
        // Diff the installed-edge snapshot; topologies are tiny relative to
        // the state, and most syncs leave the tree untouched (the common
        // case is a stamp bump), so compare — allocation-free — before
        // rewriting.
        let unchanged = match state.installed.as_ref() {
            Some(t) => {
                t.edge_count() == cell.edges.len() && t.edges().eq(cell.edges.iter().copied())
            }
            None => cell.edges.is_empty(),
        };
        if unchanged {
            return;
        }
        let edges: Vec<(NodeId, NodeId)> = match state.installed.as_ref() {
            Some(t) => t.edges().collect(),
            None => Vec::new(),
        };
        let old = std::mem::replace(&mut cell.edges, edges);
        for &edge in &old {
            if let Some(users) = self.edge_index.get_mut(&edge) {
                users.remove(&mc);
                if users.is_empty() {
                    self.edge_index.remove(&edge);
                }
            }
        }
        let cell = &self.slots[slot as usize];
        for &edge in &cell.edges {
            self.edge_index.entry(edge).or_default().insert(mc);
        }
    }

    /// `true` when no resident MC has queued LSAs or an in-flight
    /// computation. O(1) via the busy set.
    pub fn is_quiet(&self) -> bool {
        debug_assert_eq!(
            self.busy.is_empty(),
            self.is_quiet_scan(),
            "busy set out of sync with states"
        );
        self.busy.is_empty()
    }

    /// Reference linear scan for [`McArena::is_quiet`] (debug oracle).
    pub fn is_quiet_scan(&self) -> bool {
        self.iter()
            .all(|(_, st)| st.mailbox.is_empty() && st.computing.is_none())
    }

    /// Ids (sorted) of MCs whose installed topology uses link `(a, b)`.
    /// O(answer) via the inverted edge index.
    pub fn using_edge(&self, a: NodeId, b: NodeId) -> Vec<McId> {
        let out: Vec<McId> = self
            .edge_index
            .get(&normalize(a, b))
            .map(|users| users.iter().copied().collect())
            .unwrap_or_default();
        debug_assert_eq!(
            out,
            self.using_edge_scan(a, b),
            "edge index out of sync with installed topologies"
        );
        out
    }

    /// Reference linear scan for [`McArena::using_edge`]: walks every
    /// resident state like the pre-arena engine did. Kept as the debug
    /// oracle and as the bench baseline the PR9 speedup gate is measured
    /// against.
    pub fn using_edge_scan(&self, a: NodeId, b: NodeId) -> Vec<McId> {
        self.iter()
            .filter(|(_, st)| st.installed.as_ref().is_some_and(|t| t.contains_edge(a, b)))
            .map(|(mc, _)| mc)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgmc_mctree::{McTopology, McType};
    use std::collections::BTreeSet;

    fn state_with_tree(mc: McId, edges: &[(u32, u32)]) -> McState {
        let mut st = McState::new(mc, McType::Symmetric, 8);
        if !edges.is_empty() {
            st.installed = Some(McTopology::from_edges(
                edges.iter().map(|&(a, b)| (NodeId(a), NodeId(b))),
                BTreeSet::new(),
            ));
        }
        st
    }

    #[test]
    fn slots_are_reused_through_the_free_list() {
        let mut arena = McArena::new();
        arena.insert(McId(1), state_with_tree(McId(1), &[]));
        arena.insert(McId(2), state_with_tree(McId(2), &[]));
        assert_eq!(arena.len(), 2);
        assert!(arena.remove(McId(1)).is_some());
        assert_eq!(arena.len(), 1);
        // The freed slot is reused, not leaked.
        arena.insert(McId(3), state_with_tree(McId(3), &[]));
        assert_eq!(arena.slots.len(), 2, "slot recycled via the free list");
        assert_eq!(arena.ids(), vec![McId(2), McId(3)]);
        assert!(arena.get(McId(1)).is_none());
    }

    #[test]
    fn edge_index_tracks_installs_and_teardowns() {
        let mut arena = McArena::new();
        arena.insert(McId(1), state_with_tree(McId(1), &[(0, 1), (1, 2)]));
        arena.insert(McId(2), state_with_tree(McId(2), &[(1, 2)]));
        // Edge queries are direction-insensitive (normalized form).
        assert_eq!(
            arena.using_edge(NodeId(2), NodeId(1)),
            vec![McId(1), McId(2)]
        );
        assert_eq!(arena.using_edge(NodeId(0), NodeId(1)), vec![McId(1)]);
        assert!(arena.using_edge(NodeId(5), NodeId(6)).is_empty());
        // A topology change re-syncs the inverted index.
        arena.get_mut(McId(1)).unwrap().installed = None;
        arena.sync(McId(1));
        assert_eq!(arena.using_edge(NodeId(1), NodeId(2)), vec![McId(2)]);
        assert!(arena.using_edge(NodeId(0), NodeId(1)).is_empty());
        // Removal clears the remaining entries.
        arena.remove(McId(2));
        assert!(arena.using_edge(NodeId(1), NodeId(2)).is_empty());
        assert!(arena.edge_index.is_empty());
    }

    #[test]
    fn busy_set_follows_mailbox_and_computation() {
        let mut arena = McArena::new();
        arena.insert(McId(7), state_with_tree(McId(7), &[]));
        assert!(arena.is_quiet());
        arena.get_mut(McId(7)).unwrap().computing = Some(crate::state::ComputationJob {
            old_r: crate::Timestamp::zero(8),
            terminals: BTreeSet::new(),
            previous: None,
            pending_event: None,
            stashed_candidate: None,
            deferred: Vec::new(),
        });
        arena.sync(McId(7));
        assert!(!arena.is_quiet());
        arena.get_mut(McId(7)).unwrap().computing = None;
        arena.sync(McId(7));
        assert!(arena.is_quiet());
    }

    #[test]
    fn take_and_restore_round_trip() {
        let mut arena = McArena::new();
        arena.insert(McId(4), state_with_tree(McId(4), &[(0, 3)]));
        let slot = arena.slot_index(McId(4)).expect("resident");
        let st = arena.take_at(slot).expect("resident");
        assert!(arena.get(McId(4)).is_none(), "checked out");
        assert!(arena.contains(McId(4)), "slot stays allocated");
        arena.restore_at(slot, McId(4), st);
        assert_eq!(arena.using_edge(NodeId(0), NodeId(3)), vec![McId(4)]);
    }
}
