//! Binary wire format for MC LSAs, timestamps, topologies and the combined
//! flood payload.
//!
//! Extends [`dgmc_lsr::codec`] with the D-GMC types. Timestamps are encoded
//! sparsely — a burst touches few switches, so most components are zero —
//! which keeps MC LSAs within the small-packet regime the paper's timing
//! numbers assume.
//!
//! Layout (all integers big-endian):
//!
//! ```text
//! Timestamp  := n:u32 k:u32 (index:u32 value:u64)^k       (sparse)
//! Topology   := n_edges:u32 (a:u32 b:u32)* n_terms:u32 (t:u32)*
//! McLsa      := source:u32 event:u8 [role:u8] mc:u32 type:u8 epoch:u64
//!               has_proposal:u8 [Topology] Timestamp
//! Payload    := 0x01 RouterLsa | 0x02 McLsa
//! ```

use crate::switch::DgmcPayload;
use crate::{McEventKind, McId, McLsa, Timestamp};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use dgmc_lsr::codec::{decode_router_lsa, encode_router_lsa, CodecError};
use dgmc_mctree::{McTopology, McType, Role};
use dgmc_topology::NodeId;
use std::collections::BTreeSet;

fn need(buf: &impl Buf, n: usize) -> Result<(), CodecError> {
    if buf.remaining() < n {
        Err(CodecError::Truncated)
    } else {
        Ok(())
    }
}

/// Encodes a [`Timestamp`] sparsely.
pub fn encode_timestamp(t: &Timestamp, out: &mut BytesMut) {
    out.put_u32(u32::try_from(t.len()).expect("timestamp width fits u32"));
    out.put_u32(u32::try_from(t.nonzero_len()).expect("entry count bounded by width"));
    for (node, value) in t.iter_nonzero() {
        out.put_u32(node.0);
        out.put_u64(value);
    }
}

/// Decodes a [`Timestamp`].
///
/// # Errors
///
/// [`CodecError::Truncated`] on short input; [`CodecError::BadTag`] when an
/// index is out of range.
pub fn decode_timestamp(buf: &mut Bytes) -> Result<Timestamp, CodecError> {
    need(buf, 8)?;
    let n = buf.get_u32() as usize;
    let k = buf.get_u32() as usize;
    let mut components = vec![0u64; n];
    for _ in 0..k {
        need(buf, 12)?;
        let idx = buf.get_u32() as usize;
        let val = buf.get_u64();
        if idx >= n {
            return Err(CodecError::BadTag(u8::try_from(idx).unwrap_or(u8::MAX)));
        }
        components[idx] = val;
    }
    Ok(Timestamp::from_components(components))
}

/// Encodes an [`McTopology`].
pub fn encode_topology(t: &McTopology, out: &mut BytesMut) {
    out.put_u32(u32::try_from(t.edge_count()).expect("edge count fits u32"));
    for (a, b) in t.edges() {
        out.put_u32(a.0);
        out.put_u32(b.0);
    }
    out.put_u32(u32::try_from(t.terminals().len()).expect("terminal count fits u32"));
    for &term in t.terminals() {
        out.put_u32(term.0);
    }
}

/// Decodes an [`McTopology`].
///
/// # Errors
///
/// [`CodecError::Truncated`] on short input.
pub fn decode_topology(buf: &mut Bytes) -> Result<McTopology, CodecError> {
    need(buf, 4)?;
    let n_edges = buf.get_u32() as usize;
    let mut edges = Vec::with_capacity(n_edges);
    for _ in 0..n_edges {
        need(buf, 8)?;
        edges.push((NodeId(buf.get_u32()), NodeId(buf.get_u32())));
    }
    need(buf, 4)?;
    let n_terms = buf.get_u32() as usize;
    let mut terminals = BTreeSet::new();
    for _ in 0..n_terms {
        need(buf, 4)?;
        terminals.insert(NodeId(buf.get_u32()));
    }
    Ok(McTopology::from_edges(edges, terminals))
}

fn role_tag(role: Role) -> u8 {
    match role {
        Role::Sender => 0,
        Role::Receiver => 1,
        Role::SenderReceiver => 2,
    }
}

fn role_from(tag: u8) -> Result<Role, CodecError> {
    match tag {
        0 => Ok(Role::Sender),
        1 => Ok(Role::Receiver),
        2 => Ok(Role::SenderReceiver),
        t => Err(CodecError::BadTag(t)),
    }
}

fn mc_type_tag(t: McType) -> u8 {
    match t {
        McType::Symmetric => 0,
        McType::ReceiverOnly => 1,
        McType::Asymmetric => 2,
    }
}

fn mc_type_from(tag: u8) -> Result<McType, CodecError> {
    match tag {
        0 => Ok(McType::Symmetric),
        1 => Ok(McType::ReceiverOnly),
        2 => Ok(McType::Asymmetric),
        t => Err(CodecError::BadTag(t)),
    }
}

/// Encodes an [`McLsa`] — the paper's `(S, F, V, G, P, T)` tuple, with `F`
/// implied by the payload tag.
pub fn encode_mc_lsa(lsa: &McLsa, out: &mut BytesMut) {
    out.put_u32(lsa.source.0);
    match lsa.event {
        McEventKind::Join(role) => {
            out.put_u8(1);
            out.put_u8(role_tag(role));
        }
        McEventKind::Leave => out.put_u8(2),
        McEventKind::Link => out.put_u8(3),
        McEventKind::None => out.put_u8(0),
    }
    out.put_u32(lsa.mc.0);
    out.put_u8(mc_type_tag(lsa.mc_type));
    out.put_u64(lsa.epoch);
    match &lsa.proposal {
        Some(p) => {
            out.put_u8(1);
            encode_topology(p, out);
        }
        None => out.put_u8(0),
    }
    encode_timestamp(&lsa.stamp, out);
}

/// Decodes an [`McLsa`].
///
/// # Errors
///
/// [`CodecError::Truncated`] on short input; [`CodecError::BadTag`] on
/// unknown event/role/type/flag bytes.
pub fn decode_mc_lsa(buf: &mut Bytes) -> Result<McLsa, CodecError> {
    need(buf, 5)?;
    let source = NodeId(buf.get_u32());
    let event = match buf.get_u8() {
        0 => McEventKind::None,
        1 => {
            need(buf, 1)?;
            McEventKind::Join(role_from(buf.get_u8())?)
        }
        2 => McEventKind::Leave,
        3 => McEventKind::Link,
        t => return Err(CodecError::BadTag(t)),
    };
    need(buf, 14)?;
    let mc = McId(buf.get_u32());
    let mc_type = mc_type_from(buf.get_u8())?;
    let epoch = buf.get_u64();
    need(buf, 1)?;
    let proposal = match buf.get_u8() {
        0 => None,
        1 => Some(decode_topology(buf)?),
        t => return Err(CodecError::BadTag(t)),
    };
    let stamp = decode_timestamp(buf)?;
    Ok(McLsa {
        source,
        event,
        mc,
        mc_type,
        epoch,
        proposal,
        stamp,
    })
}

/// Encodes a [`DgmcPayload`] with its discriminating tag.
pub fn encode_payload(payload: &DgmcPayload, out: &mut BytesMut) {
    match payload {
        DgmcPayload::Router(lsa) => {
            out.put_u8(0x01);
            encode_router_lsa(lsa, out);
        }
        DgmcPayload::Mc(lsa) => {
            out.put_u8(0x02);
            encode_mc_lsa(lsa, out);
        }
    }
}

/// Decodes a [`DgmcPayload`].
///
/// # Errors
///
/// Propagates the inner codec errors; [`CodecError::BadTag`] on an unknown
/// payload tag.
pub fn decode_payload(buf: &mut Bytes) -> Result<DgmcPayload, CodecError> {
    need(buf, 1)?;
    match buf.get_u8() {
        0x01 => Ok(DgmcPayload::Router(decode_router_lsa(buf)?)),
        0x02 => Ok(DgmcPayload::Mc(decode_mc_lsa(buf)?)),
        t => Err(CodecError::BadTag(t)),
    }
}

/// One-shot encoding of an MC LSA to a frozen buffer (size accounting).
pub fn mc_lsa_bytes(lsa: &McLsa) -> Bytes {
    let mut out = BytesMut::new();
    encode_mc_lsa(lsa, &mut out);
    out.freeze()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_lsa(proposal: bool) -> McLsa {
        let mut stamp = Timestamp::zero(50);
        stamp.incr(NodeId(3));
        stamp.incr(NodeId(3));
        stamp.incr(NodeId(17));
        let topo = McTopology::from_edges(
            [(NodeId(1), NodeId(2)), (NodeId(2), NodeId(5))],
            [NodeId(1), NodeId(5)].into(),
        );
        McLsa {
            source: NodeId(3),
            event: McEventKind::Join(Role::Receiver),
            mc: McId(9),
            mc_type: McType::ReceiverOnly,
            epoch: 7,
            proposal: proposal.then_some(topo),
            stamp,
        }
    }

    #[test]
    fn epoch_rides_the_wire() {
        for epoch in [0u64, 1, u64::MAX] {
            let lsa = McLsa {
                epoch,
                ..sample_lsa(true)
            };
            let mut buf = mc_lsa_bytes(&lsa);
            assert_eq!(decode_mc_lsa(&mut buf).unwrap().epoch, epoch);
        }
    }

    #[test]
    fn timestamp_round_trip_sparse() {
        let mut t = Timestamp::zero(200);
        t.incr(NodeId(0));
        t.incr(NodeId(199));
        t.incr(NodeId(199));
        let mut out = BytesMut::new();
        encode_timestamp(&t, &mut out);
        // Sparse: 8 header + 2 * 12 entries, far below 200 * 8 dense.
        assert_eq!(out.len(), 8 + 2 * 12);
        let mut buf = out.freeze();
        assert_eq!(decode_timestamp(&mut buf).unwrap(), t);
    }

    #[test]
    fn topology_round_trip() {
        let topo = McTopology::from_edges(
            [(NodeId(4), NodeId(2)), (NodeId(2), NodeId(9))],
            [NodeId(4), NodeId(9), NodeId(30)].into(),
        );
        let mut out = BytesMut::new();
        encode_topology(&topo, &mut out);
        let mut buf = out.freeze();
        assert_eq!(decode_topology(&mut buf).unwrap(), topo);
    }

    #[test]
    fn mc_lsa_round_trip_with_and_without_proposal() {
        for proposal in [false, true] {
            let lsa = sample_lsa(proposal);
            let mut buf = mc_lsa_bytes(&lsa);
            let back = decode_mc_lsa(&mut buf).unwrap();
            assert_eq!(back, lsa);
            assert!(buf.is_empty());
        }
    }

    #[test]
    fn every_event_kind_round_trips() {
        for event in [
            McEventKind::None,
            McEventKind::Leave,
            McEventKind::Link,
            McEventKind::Join(Role::Sender),
            McEventKind::Join(Role::SenderReceiver),
        ] {
            let lsa = McLsa {
                event,
                ..sample_lsa(false)
            };
            let mut buf = mc_lsa_bytes(&lsa);
            assert_eq!(decode_mc_lsa(&mut buf).unwrap().event, event);
        }
    }

    #[test]
    fn payload_tags_discriminate() {
        let net = dgmc_topology::generate::path(3);
        let router = DgmcPayload::Router(dgmc_lsr::lsa::RouterLsa::describe(&net, NodeId(1), 4));
        let mc = DgmcPayload::Mc(sample_lsa(true));
        for payload in [router, mc] {
            let mut out = BytesMut::new();
            encode_payload(&payload, &mut out);
            let mut buf = out.freeze();
            let back = decode_payload(&mut buf).unwrap();
            match (&payload, &back) {
                (DgmcPayload::Router(a), DgmcPayload::Router(b)) => assert_eq!(a, b),
                (DgmcPayload::Mc(a), DgmcPayload::Mc(b)) => assert_eq!(a, b),
                _ => panic!("payload kind changed in transit"),
            }
        }
    }

    #[test]
    fn truncation_always_errors_never_panics() {
        let lsa = sample_lsa(true);
        let full = mc_lsa_bytes(&lsa);
        for cut in 0..full.len() {
            let mut buf = full.slice(0..cut);
            assert!(decode_mc_lsa(&mut buf).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn out_of_range_timestamp_index_rejected() {
        let mut out = BytesMut::new();
        out.put_u32(4); // n = 4
        out.put_u32(1); // one entry
        out.put_u32(9); // index out of range
        out.put_u64(1);
        let mut buf = out.freeze();
        assert!(matches!(
            decode_timestamp(&mut buf),
            Err(CodecError::BadTag(_))
        ));
    }

    #[test]
    fn unknown_payload_tag_rejected() {
        let mut buf = Bytes::from_static(&[0x07]);
        assert!(matches!(
            decode_payload(&mut buf),
            Err(CodecError::BadTag(0x07))
        ));
    }
}
