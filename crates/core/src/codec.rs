//! Binary wire format for MC LSAs, timestamps, topologies and the combined
//! flood payload.
//!
//! Extends [`dgmc_lsr::codec`] with the D-GMC types. Timestamps are encoded
//! sparsely — a burst touches few switches, so most components are zero —
//! which keeps MC LSAs within the small-packet regime the paper's timing
//! numbers assume.
//!
//! Layout (all integers big-endian):
//!
//! ```text
//! Timestamp  := n:u32 k:u32 (index:u32 value:u64)^k       (sparse)
//! Topology   := n_edges:u32 (a:u32 b:u32)* n_terms:u32 (t:u32)*
//! McLsa      := source:u32 event:u8 [role:u8] mc:u32 type:u8 epoch:u64
//!               has_proposal:u8 [Topology] Timestamp
//! Payload    := 0x01 RouterLsa | 0x02 McLsa
//! McSync     := mc:u32 type:u8 epoch:u64 R:Timestamp E:Timestamp
//!               C:Timestamp has_source:u8 [source:u32]
//!               n_members:u32 (node:u32 role:u8)* has_installed:u8 [Topology]
//! DbSync     := n_router:u32 RouterLsa* n_sync:u32 McSync*
//! FloodPacket:= FloodId Payload
//! DataMsg    := mc:u32 packet_id:u64 origin:u32
//!               (0x01 has_via:u8 [via:u32] | 0x02 contact:u32)
//! ```
//!
//! Every decoder is total: arbitrary input yields `Ok` or a [`CodecError`],
//! never a panic, and length fields are checked against the remaining
//! buffer *before* any allocation so a garbage count cannot drive an
//! out-of-memory abort (the node-facing robustness contract).

use crate::switch::{DataKind, DataMsg, DgmcPayload};
use crate::{McEventKind, McId, McLsa, McSync, Timestamp};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use dgmc_lsr::codec::{
    decode_flood_id, decode_router_lsa, encode_flood_id, encode_router_lsa, CodecError,
};
use dgmc_lsr::lsa::{FloodPacket, RouterLsa};
use dgmc_mctree::{McTopology, McType, Role};
use dgmc_topology::{LinkId, NodeId};
use std::collections::{BTreeMap, BTreeSet};

/// Upper bound on the dense width of a decoded [`Timestamp`].
///
/// The sparse encoding transmits only nonzero entries, but the width field
/// sizes the decoded vector: without a cap, a 12-byte garbage datagram
/// claiming `n = u32::MAX` would ask for a 32 GiB allocation. A million
/// switches is far beyond any deployment this protocol targets.
pub const MAX_TIMESTAMP_WIDTH: usize = 1 << 20;

fn need(buf: &impl Buf, n: usize) -> Result<(), CodecError> {
    if buf.remaining() < n {
        Err(CodecError::Truncated)
    } else {
        Ok(())
    }
}

/// Encodes a [`Timestamp`] sparsely.
pub fn encode_timestamp(t: &Timestamp, out: &mut BytesMut) {
    out.put_u32(u32::try_from(t.len()).expect("timestamp width fits u32"));
    out.put_u32(u32::try_from(t.nonzero_len()).expect("entry count bounded by width"));
    for (node, value) in t.iter_nonzero() {
        out.put_u32(node.0);
        out.put_u64(value);
    }
}

/// Decodes a [`Timestamp`].
///
/// # Errors
///
/// [`CodecError::Truncated`] on short input; [`CodecError::BadTag`] when an
/// index is out of range; [`CodecError::Oversize`] when the width exceeds
/// [`MAX_TIMESTAMP_WIDTH`] or the entry count exceeds the width.
pub fn decode_timestamp(buf: &mut Bytes) -> Result<Timestamp, CodecError> {
    need(buf, 8)?;
    let n = buf.get_u32() as usize;
    let k = buf.get_u32() as usize;
    if n > MAX_TIMESTAMP_WIDTH || k > n {
        return Err(CodecError::Oversize);
    }
    // Each sparse entry is 12 bytes; checking up front keeps a torn entry
    // count from looping over an allocation larger than the datagram.
    need(buf, k * 12)?;
    let mut components = vec![0u64; n];
    for _ in 0..k {
        need(buf, 12)?;
        let idx = buf.get_u32() as usize;
        let val = buf.get_u64();
        if idx >= n {
            return Err(CodecError::BadTag(u8::try_from(idx).unwrap_or(u8::MAX)));
        }
        components[idx] = val;
    }
    Ok(Timestamp::from_components(components))
}

/// Encodes an [`McTopology`].
pub fn encode_topology(t: &McTopology, out: &mut BytesMut) {
    out.put_u32(u32::try_from(t.edge_count()).expect("edge count fits u32"));
    for (a, b) in t.edges() {
        out.put_u32(a.0);
        out.put_u32(b.0);
    }
    out.put_u32(u32::try_from(t.terminals().len()).expect("terminal count fits u32"));
    for &term in t.terminals() {
        out.put_u32(term.0);
    }
}

/// Decodes an [`McTopology`].
///
/// # Errors
///
/// [`CodecError::Truncated`] on short input.
pub fn decode_topology(buf: &mut Bytes) -> Result<McTopology, CodecError> {
    need(buf, 4)?;
    let n_edges = buf.get_u32() as usize;
    // 8 bytes per edge, checked before the allocation the count sizes.
    need(buf, n_edges.checked_mul(8).ok_or(CodecError::Oversize)?)?;
    let mut edges = Vec::with_capacity(n_edges);
    for _ in 0..n_edges {
        need(buf, 8)?;
        edges.push((NodeId(buf.get_u32()), NodeId(buf.get_u32())));
    }
    need(buf, 4)?;
    let n_terms = buf.get_u32() as usize;
    let mut terminals = BTreeSet::new();
    for _ in 0..n_terms {
        need(buf, 4)?;
        terminals.insert(NodeId(buf.get_u32()));
    }
    Ok(McTopology::from_edges(edges, terminals))
}

fn role_tag(role: Role) -> u8 {
    match role {
        Role::Sender => 0,
        Role::Receiver => 1,
        Role::SenderReceiver => 2,
    }
}

fn role_from(tag: u8) -> Result<Role, CodecError> {
    match tag {
        0 => Ok(Role::Sender),
        1 => Ok(Role::Receiver),
        2 => Ok(Role::SenderReceiver),
        t => Err(CodecError::BadTag(t)),
    }
}

fn mc_type_tag(t: McType) -> u8 {
    match t {
        McType::Symmetric => 0,
        McType::ReceiverOnly => 1,
        McType::Asymmetric => 2,
    }
}

fn mc_type_from(tag: u8) -> Result<McType, CodecError> {
    match tag {
        0 => Ok(McType::Symmetric),
        1 => Ok(McType::ReceiverOnly),
        2 => Ok(McType::Asymmetric),
        t => Err(CodecError::BadTag(t)),
    }
}

/// Encodes an [`McLsa`] — the paper's `(S, F, V, G, P, T)` tuple, with `F`
/// implied by the payload tag.
pub fn encode_mc_lsa(lsa: &McLsa, out: &mut BytesMut) {
    out.put_u32(lsa.source.0);
    match lsa.event {
        McEventKind::Join(role) => {
            out.put_u8(1);
            out.put_u8(role_tag(role));
        }
        McEventKind::Leave => out.put_u8(2),
        McEventKind::Link => out.put_u8(3),
        McEventKind::None => out.put_u8(0),
    }
    out.put_u32(lsa.mc.0);
    out.put_u8(mc_type_tag(lsa.mc_type));
    out.put_u64(lsa.epoch);
    match &lsa.proposal {
        Some(p) => {
            out.put_u8(1);
            encode_topology(p, out);
        }
        None => out.put_u8(0),
    }
    encode_timestamp(&lsa.stamp, out);
}

/// Decodes an [`McLsa`].
///
/// # Errors
///
/// [`CodecError::Truncated`] on short input; [`CodecError::BadTag`] on
/// unknown event/role/type/flag bytes.
pub fn decode_mc_lsa(buf: &mut Bytes) -> Result<McLsa, CodecError> {
    need(buf, 5)?;
    let source = NodeId(buf.get_u32());
    let event = match buf.get_u8() {
        0 => McEventKind::None,
        1 => {
            need(buf, 1)?;
            McEventKind::Join(role_from(buf.get_u8())?)
        }
        2 => McEventKind::Leave,
        3 => McEventKind::Link,
        t => return Err(CodecError::BadTag(t)),
    };
    need(buf, 14)?;
    let mc = McId(buf.get_u32());
    let mc_type = mc_type_from(buf.get_u8())?;
    let epoch = buf.get_u64();
    need(buf, 1)?;
    let proposal = match buf.get_u8() {
        0 => None,
        1 => Some(decode_topology(buf)?),
        t => return Err(CodecError::BadTag(t)),
    };
    let stamp = decode_timestamp(buf)?;
    Ok(McLsa {
        source,
        event,
        mc,
        mc_type,
        epoch,
        proposal,
        stamp,
    })
}

/// Encodes a [`DgmcPayload`] with its discriminating tag.
pub fn encode_payload(payload: &DgmcPayload, out: &mut BytesMut) {
    match payload {
        DgmcPayload::Router(lsa) => {
            out.put_u8(0x01);
            encode_router_lsa(lsa, out);
        }
        DgmcPayload::Mc(lsa) => {
            out.put_u8(0x02);
            encode_mc_lsa(lsa, out);
        }
    }
}

/// Decodes a [`DgmcPayload`].
///
/// # Errors
///
/// Propagates the inner codec errors; [`CodecError::BadTag`] on an unknown
/// payload tag.
pub fn decode_payload(buf: &mut Bytes) -> Result<DgmcPayload, CodecError> {
    need(buf, 1)?;
    match buf.get_u8() {
        0x01 => Ok(DgmcPayload::Router(decode_router_lsa(buf)?)),
        0x02 => Ok(DgmcPayload::Mc(decode_mc_lsa(buf)?)),
        t => Err(CodecError::BadTag(t)),
    }
}

/// One-shot encoding of an MC LSA to a frozen buffer (size accounting).
pub fn mc_lsa_bytes(lsa: &McLsa) -> Bytes {
    let mut out = BytesMut::new();
    encode_mc_lsa(lsa, &mut out);
    out.freeze()
}

/// Encodes an [`McSync`] database-exchange snapshot.
pub fn encode_mc_sync(sync: &McSync, out: &mut BytesMut) {
    out.put_u32(sync.mc.0);
    out.put_u8(mc_type_tag(sync.mc_type));
    out.put_u64(sync.epoch);
    encode_timestamp(&sync.r, out);
    encode_timestamp(&sync.e, out);
    encode_timestamp(&sync.c, out);
    match sync.c_source {
        Some(source) => {
            out.put_u8(1);
            out.put_u32(source.0);
        }
        None => out.put_u8(0),
    }
    out.put_u32(u32::try_from(sync.members.len()).expect("member count fits u32"));
    for (&node, &role) in &sync.members {
        out.put_u32(node.0);
        out.put_u8(role_tag(role));
    }
    match &sync.installed {
        Some(topology) => {
            out.put_u8(1);
            encode_topology(topology, out);
        }
        None => out.put_u8(0),
    }
}

/// Decodes an [`McSync`].
///
/// # Errors
///
/// Propagates inner codec errors; [`CodecError::BadTag`] on unknown
/// type/role/flag bytes.
pub fn decode_mc_sync(buf: &mut Bytes) -> Result<McSync, CodecError> {
    need(buf, 13)?;
    let mc = McId(buf.get_u32());
    let mc_type = mc_type_from(buf.get_u8())?;
    let epoch = buf.get_u64();
    let r = decode_timestamp(buf)?;
    let e = decode_timestamp(buf)?;
    let c = decode_timestamp(buf)?;
    need(buf, 1)?;
    let c_source = match buf.get_u8() {
        0 => None,
        1 => {
            need(buf, 4)?;
            Some(NodeId(buf.get_u32()))
        }
        t => return Err(CodecError::BadTag(t)),
    };
    need(buf, 4)?;
    let n_members = buf.get_u32() as usize;
    need(buf, n_members.checked_mul(5).ok_or(CodecError::Oversize)?)?;
    let mut members = BTreeMap::new();
    for _ in 0..n_members {
        let node = NodeId(buf.get_u32());
        let role = role_from(buf.get_u8())?;
        members.insert(node, role);
    }
    need(buf, 1)?;
    let installed = match buf.get_u8() {
        0 => None,
        1 => Some(decode_topology(buf)?),
        t => return Err(CodecError::BadTag(t)),
    };
    Ok(McSync {
        mc,
        mc_type,
        epoch,
        r,
        e,
        c,
        c_source,
        members,
        installed,
    })
}

/// Encodes a database-exchange message: the advertising side's router LSAs
/// plus its per-MC state snapshots (the payload of
/// [`crate::switch::SwitchMsg::DbSync`]).
pub fn encode_db_sync(router_lsas: &[RouterLsa], mc_states: &[McSync], out: &mut BytesMut) {
    out.put_u32(u32::try_from(router_lsas.len()).expect("router LSA count fits u32"));
    for lsa in router_lsas {
        encode_router_lsa(lsa, out);
    }
    out.put_u32(u32::try_from(mc_states.len()).expect("sync count fits u32"));
    for sync in mc_states {
        encode_mc_sync(sync, out);
    }
}

/// Decodes a database-exchange message into `(router_lsas, mc_states)`.
///
/// # Errors
///
/// Propagates inner codec errors.
#[allow(clippy::type_complexity)]
pub fn decode_db_sync(buf: &mut Bytes) -> Result<(Vec<RouterLsa>, Vec<McSync>), CodecError> {
    need(buf, 4)?;
    let n_router = buf.get_u32() as usize;
    // Counts are untrusted: grow the vectors as elements actually decode
    // instead of pre-reserving from the wire.
    let mut router_lsas = Vec::new();
    for _ in 0..n_router {
        router_lsas.push(decode_router_lsa(buf)?);
    }
    need(buf, 4)?;
    let n_sync = buf.get_u32() as usize;
    let mut mc_states = Vec::new();
    for _ in 0..n_sync {
        mc_states.push(decode_mc_sync(buf)?);
    }
    Ok((router_lsas, mc_states))
}

/// Encodes a flood packet (duplicate-suppression id plus payload).
pub fn encode_flood_packet(packet: &FloodPacket<DgmcPayload>, out: &mut BytesMut) {
    encode_flood_id(packet.id, out);
    encode_payload(&packet.payload, out);
}

/// Decodes a flood packet.
///
/// # Errors
///
/// Propagates inner codec errors.
pub fn decode_flood_packet(buf: &mut Bytes) -> Result<FloodPacket<DgmcPayload>, CodecError> {
    let id = decode_flood_id(buf)?;
    let payload = decode_payload(buf)?;
    Ok(FloodPacket { id, payload })
}

/// Encodes a data-plane packet.
pub fn encode_data_msg(data: &DataMsg, out: &mut BytesMut) {
    out.put_u32(data.mc.0);
    out.put_u64(data.packet_id);
    out.put_u32(data.origin.0);
    match &data.kind {
        DataKind::TreeFlood { via } => {
            out.put_u8(0x01);
            match via {
                Some(link) => {
                    out.put_u8(1);
                    out.put_u32(link.0);
                }
                None => out.put_u8(0),
            }
        }
        DataKind::UnicastToContact { contact } => {
            out.put_u8(0x02);
            out.put_u32(contact.0);
        }
    }
}

/// Decodes a data-plane packet.
///
/// # Errors
///
/// [`CodecError::Truncated`] on short input; [`CodecError::BadTag`] on
/// unknown kind/flag bytes.
pub fn decode_data_msg(buf: &mut Bytes) -> Result<DataMsg, CodecError> {
    need(buf, 17)?;
    let mc = McId(buf.get_u32());
    let packet_id = buf.get_u64();
    let origin = NodeId(buf.get_u32());
    let kind = match buf.get_u8() {
        0x01 => {
            need(buf, 1)?;
            let via = match buf.get_u8() {
                0 => None,
                1 => {
                    need(buf, 4)?;
                    Some(LinkId(buf.get_u32()))
                }
                t => return Err(CodecError::BadTag(t)),
            };
            DataKind::TreeFlood { via }
        }
        0x02 => {
            need(buf, 4)?;
            DataKind::UnicastToContact {
                contact: NodeId(buf.get_u32()),
            }
        }
        t => return Err(CodecError::BadTag(t)),
    };
    Ok(DataMsg {
        mc,
        packet_id,
        origin,
        kind,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_lsa(proposal: bool) -> McLsa {
        let mut stamp = Timestamp::zero(50);
        stamp.incr(NodeId(3));
        stamp.incr(NodeId(3));
        stamp.incr(NodeId(17));
        let topo = McTopology::from_edges(
            [(NodeId(1), NodeId(2)), (NodeId(2), NodeId(5))],
            [NodeId(1), NodeId(5)].into(),
        );
        McLsa {
            source: NodeId(3),
            event: McEventKind::Join(Role::Receiver),
            mc: McId(9),
            mc_type: McType::ReceiverOnly,
            epoch: 7,
            proposal: proposal.then_some(topo),
            stamp,
        }
    }

    #[test]
    fn epoch_rides_the_wire() {
        for epoch in [0u64, 1, u64::MAX] {
            let lsa = McLsa {
                epoch,
                ..sample_lsa(true)
            };
            let mut buf = mc_lsa_bytes(&lsa);
            assert_eq!(decode_mc_lsa(&mut buf).unwrap().epoch, epoch);
        }
    }

    #[test]
    fn timestamp_round_trip_sparse() {
        let mut t = Timestamp::zero(200);
        t.incr(NodeId(0));
        t.incr(NodeId(199));
        t.incr(NodeId(199));
        let mut out = BytesMut::new();
        encode_timestamp(&t, &mut out);
        // Sparse: 8 header + 2 * 12 entries, far below 200 * 8 dense.
        assert_eq!(out.len(), 8 + 2 * 12);
        let mut buf = out.freeze();
        assert_eq!(decode_timestamp(&mut buf).unwrap(), t);
    }

    #[test]
    fn topology_round_trip() {
        let topo = McTopology::from_edges(
            [(NodeId(4), NodeId(2)), (NodeId(2), NodeId(9))],
            [NodeId(4), NodeId(9), NodeId(30)].into(),
        );
        let mut out = BytesMut::new();
        encode_topology(&topo, &mut out);
        let mut buf = out.freeze();
        assert_eq!(decode_topology(&mut buf).unwrap(), topo);
    }

    #[test]
    fn mc_lsa_round_trip_with_and_without_proposal() {
        for proposal in [false, true] {
            let lsa = sample_lsa(proposal);
            let mut buf = mc_lsa_bytes(&lsa);
            let back = decode_mc_lsa(&mut buf).unwrap();
            assert_eq!(back, lsa);
            assert!(buf.is_empty());
        }
    }

    #[test]
    fn every_event_kind_round_trips() {
        for event in [
            McEventKind::None,
            McEventKind::Leave,
            McEventKind::Link,
            McEventKind::Join(Role::Sender),
            McEventKind::Join(Role::SenderReceiver),
        ] {
            let lsa = McLsa {
                event,
                ..sample_lsa(false)
            };
            let mut buf = mc_lsa_bytes(&lsa);
            assert_eq!(decode_mc_lsa(&mut buf).unwrap().event, event);
        }
    }

    #[test]
    fn payload_tags_discriminate() {
        let net = dgmc_topology::generate::path(3);
        let router = DgmcPayload::Router(dgmc_lsr::lsa::RouterLsa::describe(&net, NodeId(1), 4));
        let mc = DgmcPayload::Mc(sample_lsa(true));
        for payload in [router, mc] {
            let mut out = BytesMut::new();
            encode_payload(&payload, &mut out);
            let mut buf = out.freeze();
            let back = decode_payload(&mut buf).unwrap();
            match (&payload, &back) {
                (DgmcPayload::Router(a), DgmcPayload::Router(b)) => assert_eq!(a, b),
                (DgmcPayload::Mc(a), DgmcPayload::Mc(b)) => assert_eq!(a, b),
                _ => panic!("payload kind changed in transit"),
            }
        }
    }

    #[test]
    fn truncation_always_errors_never_panics() {
        let lsa = sample_lsa(true);
        let full = mc_lsa_bytes(&lsa);
        for cut in 0..full.len() {
            let mut buf = full.slice(0..cut);
            assert!(decode_mc_lsa(&mut buf).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn out_of_range_timestamp_index_rejected() {
        let mut out = BytesMut::new();
        out.put_u32(4); // n = 4
        out.put_u32(1); // one entry
        out.put_u32(9); // index out of range
        out.put_u64(1);
        let mut buf = out.freeze();
        assert!(matches!(
            decode_timestamp(&mut buf),
            Err(CodecError::BadTag(_))
        ));
    }

    #[test]
    fn unknown_payload_tag_rejected() {
        let mut buf = Bytes::from_static(&[0x07]);
        assert!(matches!(
            decode_payload(&mut buf),
            Err(CodecError::BadTag(0x07))
        ));
    }
}
