//! Per-switch, per-MC protocol state.

use crate::{McEventKind, McId, McLsa, Timestamp};
use dgmc_mctree::{McTopology, McType, Role};
use dgmc_topology::NodeId;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A topology proposal held as an installation candidate: the topology, its
/// timestamp and its proposing switch.
pub type Candidate = (McTopology, Timestamp, NodeId);

/// Snapshot taken when a topology computation starts.
///
/// The computation runs for `Tc` of simulated time; at completion the
/// snapshot is compared against the live state to decide whether the
/// proposal is still valid (paper Fig. 4 line 6, Fig. 5 line 22).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ComputationJob {
    /// `old_R` — the received timestamp saved before computing.
    pub old_r: Timestamp,
    /// The terminal set the tree must span, frozen at start.
    pub terminals: BTreeSet<NodeId>,
    /// The installed topology at start (input to incremental strategies).
    pub previous: Option<McTopology>,
    /// `Some(event)` when the computation was started by `EventHandler()`
    /// (the flooded LSA must carry the event); `None` for `ReceiveLSA()`
    /// triggered computations.
    pub pending_event: Option<McEventKind>,
    /// A candidate proposal accepted by the mailbox drain that started this
    /// computation. The paper's Fig. 5 line 29 discards it on withdrawal,
    /// which can permanently lose an equal-stamp proposal at one switch and
    /// break consensus (DESIGN.md §3); we keep it and let the deterministic
    /// smallest-source rule arbitrate at completion.
    pub stashed_candidate: Option<Candidate>,
    /// Local events that arrived while `pending_event` was still
    /// unannounced, each with the `R` recorded right after it was applied.
    /// The paper floods them immediately (Fig. 4 lines 15-17), which lets
    /// same-origin events overtake each other (DESIGN.md §11 race 2); we
    /// hold them and flood in local order at completion, right after the
    /// pending event's announcement.
    pub deferred: Vec<(McEventKind, Timestamp)>,
}

/// A per-MC state snapshot exchanged during database synchronization when a
/// link comes up (the OSPF database-exchange analog; see
/// [`crate::DgmcEngine::export_sync`]).
#[derive(Debug, Clone, PartialEq)]
pub struct McSync {
    /// The connection.
    pub mc: McId,
    /// Its type.
    pub mc_type: McType,
    /// The incarnation the state belongs to.
    pub epoch: u64,
    /// Events received.
    pub r: Timestamp,
    /// Events expected.
    pub e: Timestamp,
    /// Installed-topology timestamp.
    pub c: Timestamp,
    /// Origin of the installed proposal.
    pub c_source: Option<NodeId>,
    /// Member list.
    pub members: BTreeMap<NodeId, Role>,
    /// Installed topology.
    pub installed: Option<McTopology>,
}

/// A marker left behind when an MC's state is torn down (last member left
/// and every announced event was received).
///
/// The teardown/resurrection race (DESIGN.md §11): a join LSA that was
/// already in flight when the state was deleted used to resurrect the MC
/// with a zeroed `R` while `E.merge_max` re-learned the forgotten
/// pre-deletion events, leaving `R != E` forever. The tombstone fences
/// this: LSAs from a *dead* incarnation (`lsa.epoch < tombstone.epoch`)
/// are dropped, and a same-incarnation join *revives* the state with
/// `R = E = final_r` — exactly the events delivered before deletion — so
/// in-flight LSAs still count correctly.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Tombstone {
    /// The incarnation that was torn down.
    pub epoch: u64,
    /// `R` (== `E`) at the moment of deletion.
    pub final_r: Timestamp,
}

/// All state a switch keeps for one multipoint connection.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct McState {
    /// The connection.
    pub mc: McId,
    /// Its type (learned from the creating join LSA).
    pub mc_type: McType,
    /// The connection's incarnation number. Bumped past the tombstone's
    /// epoch whenever the MC is re-created after a full teardown; carried
    /// on every LSA so stale resurrections are fenced (DESIGN.md §11).
    pub epoch: u64,
    /// `R` — events received, per origin switch.
    pub r: Timestamp,
    /// `E` — events expected, per origin switch. Invariant: `E >= R`.
    pub e: Timestamp,
    /// `C` — the timestamp the installed topology is based on.
    pub c: Timestamp,
    /// Origin of the installed proposal; used to break ties between
    /// equal-stamp proposals deterministically (DESIGN.md §6).
    pub c_source: Option<NodeId>,
    /// The connection's member list with roles.
    pub members: BTreeMap<NodeId, Role>,
    /// The shared `make_proposal_flag` of the two protocol entities.
    pub make_proposal_flag: bool,
    /// The currently installed topology, if any proposal was accepted.
    pub installed: Option<McTopology>,
    /// LSAs waiting while a computation is in flight.
    pub mailbox: VecDeque<McLsa>,
    /// The in-flight computation, if any (one per switch/MC — single CPU).
    pub computing: Option<ComputationJob>,
}

impl McState {
    /// Fresh state for a newly learned connection in an `n`-switch network.
    pub fn new(mc: McId, mc_type: McType, n: usize) -> McState {
        McState::new_at_epoch(mc, mc_type, n, 0)
    }

    /// Fresh state for a connection (re-)created at a given incarnation.
    pub fn new_at_epoch(mc: McId, mc_type: McType, n: usize, epoch: u64) -> McState {
        McState {
            mc,
            mc_type,
            epoch,
            r: Timestamp::zero(n),
            e: Timestamp::zero(n),
            c: Timestamp::zero(n),
            c_source: None,
            members: BTreeMap::new(),
            make_proposal_flag: false,
            installed: None,
            mailbox: VecDeque::new(),
            computing: None,
        }
    }

    /// State revived from a tombstone by a same-incarnation join LSA.
    ///
    /// `R = E = final_r`: the revived state remembers exactly the events
    /// that were delivered before deletion, so in-flight announcements
    /// (which will arrive and increment both `R` and `E`) neither
    /// double-count nor go missing.
    pub fn revived(mc: McId, mc_type: McType, n: usize, tomb: &Tombstone) -> McState {
        let mut st = McState::new_at_epoch(mc, mc_type, n, tomb.epoch);
        st.r = tomb.final_r.clone();
        st.e = tomb.final_r.clone();
        st
    }

    /// The switches the MC topology must span, derived from the member
    /// list.
    ///
    /// For all three MC types this is every member switch: symmetric members
    /// all send and receive; receiver-only members are all receivers;
    /// asymmetric senders and receivers must both attach to the shared tree.
    pub fn terminals(&self) -> BTreeSet<NodeId> {
        self.members.keys().copied().collect()
    }

    /// Applies a membership event from `source` to the member list
    /// (`ReceiveLSA()` line 8 / local bookkeeping in `EventHandler()`).
    pub fn apply_membership(&mut self, source: NodeId, event: McEventKind) {
        match event {
            McEventKind::Join(role) => {
                self.members
                    .entry(source)
                    .and_modify(|r| *r = r.merge(role))
                    .or_insert(role);
            }
            McEventKind::Leave => {
                self.members.remove(&source);
            }
            McEventKind::Link | McEventKind::None => {}
        }
    }

    /// `true` when there are no known outstanding LSAs (`R >= E`, which by
    /// the `E >= R` invariant means `R == E`).
    pub fn all_caught_up(&self) -> bool {
        self.r.dominates(&self.e)
    }

    /// Checks the `E >= R` and `E >= C` timestamp invariants (debug aid).
    ///
    /// Note `R >= C` does *not* hold in general: an accepted proposal's
    /// stamp equals `E`, which may reference announced events still in
    /// flight toward this switch.
    pub fn invariant_holds(&self) -> bool {
        self.e.dominates(&self.r) && self.e.dominates(&self.c)
    }

    /// `true` when the state is eligible for deletion: empty member list,
    /// nothing outstanding, nothing queued, nothing computing.
    pub fn deletable(&self) -> bool {
        self.members.is_empty()
            && self.all_caught_up()
            && self.mailbox.is_empty()
            && self.computing.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> McState {
        McState::new(McId(1), McType::Symmetric, 4)
    }

    #[test]
    fn fresh_state_is_caught_up_and_deletable() {
        let st = state();
        assert!(st.all_caught_up());
        assert!(st.invariant_holds());
        assert!(st.deletable());
        assert!(st.terminals().is_empty());
    }

    #[test]
    fn membership_events_update_roles() {
        let mut st = state();
        st.apply_membership(NodeId(2), McEventKind::Join(Role::Receiver));
        assert_eq!(st.members[&NodeId(2)], Role::Receiver);
        st.apply_membership(NodeId(2), McEventKind::Join(Role::Sender));
        assert_eq!(st.members[&NodeId(2)], Role::SenderReceiver, "roles merge");
        st.apply_membership(NodeId(2), McEventKind::Leave);
        assert!(st.members.is_empty());
        // Link and None never touch the member list.
        st.apply_membership(NodeId(1), McEventKind::Link);
        st.apply_membership(NodeId(1), McEventKind::None);
        assert!(st.members.is_empty());
    }

    #[test]
    fn terminals_cover_all_members() {
        let mut st = state();
        st.apply_membership(NodeId(0), McEventKind::Join(Role::Sender));
        st.apply_membership(NodeId(3), McEventKind::Join(Role::Receiver));
        let t = st.terminals();
        assert!(t.contains(&NodeId(0)) && t.contains(&NodeId(3)));
    }

    #[test]
    fn outstanding_lsas_block_caught_up() {
        let mut st = state();
        st.e.incr(NodeId(1)); // someone announced an event we haven't seen
        assert!(!st.all_caught_up());
        assert!(!st.deletable());
        st.r.incr(NodeId(1));
        assert!(st.all_caught_up());
    }

    #[test]
    fn revived_state_resumes_the_tombstoned_incarnation() {
        let mut final_r = Timestamp::zero(4);
        final_r.incr(NodeId(1));
        final_r.incr(NodeId(2));
        let tomb = Tombstone {
            epoch: 3,
            final_r: final_r.clone(),
        };
        let st = McState::revived(McId(1), McType::Symmetric, 4, &tomb);
        assert_eq!(st.epoch, 3);
        assert_eq!(st.r, final_r);
        assert_eq!(st.e, final_r, "revival must not re-expect delivered events");
        assert_eq!(st.c, Timestamp::zero(4));
        assert!(st.all_caught_up() && st.invariant_holds());
        assert!(
            st.deletable(),
            "an empty revived state can be torn down again"
        );
    }

    #[test]
    fn invariant_detects_violations() {
        let mut st = state();
        st.r.incr(NodeId(0)); // R > E: violated
        assert!(!st.invariant_holds());
        st.e.incr(NodeId(0));
        assert!(st.invariant_holds());
        st.c.incr(NodeId(2)); // C > R: violated
        assert!(!st.invariant_holds());
    }
}
