//! Consensus and convergence checks for experiment harnesses.
//!
//! After a quiescent run, every switch must hold the same view of each MC:
//! same installed topology, same current-topology timestamp `C`, same member
//! list, no pending flags or mailboxes. The paper's *convergence time* is
//! the span from the first event of a burst to the instant the last switch
//! installed its final topology, measured in rounds of `Tf + Tc`.

use crate::switch::{DgmcSwitch, SwitchMsg};
use crate::{McId, Timestamp};
use dgmc_des::{ActorId, SimTime, Simulation};
use dgmc_mctree::{McTopology, Role};
use dgmc_topology::NodeId;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// The agreed state of one MC across all switches.
#[derive(Debug, Clone, PartialEq)]
pub struct Consensus {
    /// The commonly installed topology (`None` if the MC was destroyed
    /// everywhere).
    pub topology: Option<McTopology>,
    /// The common current-topology timestamp.
    pub c: Option<Timestamp>,
    /// The common member list.
    pub members: BTreeMap<NodeId, Role>,
}

/// A disagreement found by [`check_consensus`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConsensusError {
    /// Some switches have state for the MC and others do not.
    PartialState {
        /// A switch holding state.
        has: NodeId,
        /// A switch without state.
        missing: NodeId,
    },
    /// Two switches disagree on the installed topology.
    TopologyMismatch(NodeId, NodeId),
    /// Two switches disagree on the `C` timestamp.
    StampMismatch(NodeId, NodeId),
    /// Two switches disagree on the member list.
    MemberMismatch(NodeId, NodeId),
    /// A switch still has work pending (mailbox, computation or flag).
    Unsettled(NodeId),
}

impl fmt::Display for ConsensusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsensusError::PartialState { has, missing } => {
                write!(f, "{has} has MC state but {missing} does not")
            }
            ConsensusError::TopologyMismatch(a, b) => {
                write!(f, "{a} and {b} installed different topologies")
            }
            ConsensusError::StampMismatch(a, b) => {
                write!(f, "{a} and {b} disagree on the C timestamp")
            }
            ConsensusError::MemberMismatch(a, b) => {
                write!(f, "{a} and {b} disagree on the member list")
            }
            ConsensusError::Unsettled(n) => write!(f, "{n} still has pending protocol work"),
        }
    }
}

impl Error for ConsensusError {}

fn switches(sim: &Simulation<SwitchMsg>) -> impl Iterator<Item = &DgmcSwitch> + '_ {
    let count = u32::try_from(sim.actor_count()).expect("actor ids fit u32");
    (0..count).map(|i| {
        sim.actor_as::<DgmcSwitch>(ActorId(i))
            .expect("all actors are DgmcSwitch")
    })
}

/// Verifies that every switch agrees on connection `mc`.
///
/// # Errors
///
/// Returns the first [`ConsensusError`] found.
///
/// # Panics
///
/// Panics if the simulation hosts non-[`DgmcSwitch`] actors.
pub fn check_consensus(sim: &Simulation<SwitchMsg>, mc: McId) -> Result<Consensus, ConsensusError> {
    let mut reference: Option<(&DgmcSwitch, bool)> = None;
    let mut consensus = Consensus {
        topology: None,
        c: None,
        members: BTreeMap::new(),
    };
    for sw in switches(sim) {
        let state = sw.engine().state(mc);
        if let Some(st) = state {
            if st.computing.is_some() || !st.mailbox.is_empty() {
                return Err(ConsensusError::Unsettled(sw.id()));
            }
        }
        match (&reference, state) {
            (None, None) => {
                reference = Some((sw, false));
            }
            (None, Some(st)) => {
                consensus = Consensus {
                    topology: st.installed.clone(),
                    c: Some(st.c.clone()),
                    members: st.members.clone(),
                };
                reference = Some((sw, true));
            }
            (Some((first, false)), Some(_)) => {
                return Err(ConsensusError::PartialState {
                    has: sw.id(),
                    missing: first.id(),
                });
            }
            (Some((first, true)), None) => {
                return Err(ConsensusError::PartialState {
                    has: first.id(),
                    missing: sw.id(),
                });
            }
            (Some((first, false)), None) => {
                let _ = first;
            }
            (Some((first, true)), Some(st)) => {
                if st.installed != consensus.topology {
                    return Err(ConsensusError::TopologyMismatch(first.id(), sw.id()));
                }
                if Some(&st.c) != consensus.c.as_ref() {
                    return Err(ConsensusError::StampMismatch(first.id(), sw.id()));
                }
                if st.members != consensus.members {
                    return Err(ConsensusError::MemberMismatch(first.id(), sw.id()));
                }
            }
        }
    }
    Ok(consensus)
}

/// The latest topology-install instant across all switches (convergence
/// endpoint).
pub fn last_install_time(sim: &Simulation<SwitchMsg>) -> SimTime {
    switches(sim)
        .map(|sw| sw.last_install())
        .max()
        .unwrap_or(SimTime::ZERO)
}

/// Total copies of `(mc, packet_id)` delivered across all member hosts.
pub fn total_deliveries(sim: &Simulation<SwitchMsg>, mc: McId, packet_id: u64) -> u32 {
    switches(sim)
        .map(|sw| sw.delivered_copies(mc, packet_id))
        .sum()
}

/// Per-switch delivered copies of `(mc, packet_id)`.
pub fn delivery_map(
    sim: &Simulation<SwitchMsg>,
    mc: McId,
    packet_id: u64,
) -> BTreeMap<NodeId, u32> {
    switches(sim)
        .map(|sw| (sw.id(), sw.delivered_copies(mc, packet_id)))
        .collect()
}
