//! The D-GMC protocol engine: the paper's `EventHandler()` and
//! `ReceiveLSA()` entities (Figures 4 and 5) as a pure state machine.
//!
//! # Concurrency model
//!
//! In the paper the two entities run concurrently at a switch, sharing the
//! timestamps and `make_proposal_flag` atomically, while a topology
//! computation occupies the switch for `Tc` of real time. This engine
//! serializes them on the switch's single CPU (DESIGN.md §6):
//!
//! * local events are handled immediately, even mid-computation — they only
//!   bump timestamps and flood;
//! * incoming MC LSAs are handled immediately when the CPU is idle, and
//!   queued in the per-MC mailbox while a computation is in flight;
//! * a completing computation is validated exactly as in the paper:
//!   the proposal is *withdrawn* if the mailbox is non-empty (Fig. 5 line
//!   22) or `R` advanced past the saved `old_R` (Fig. 4 line 6) — under
//!   serialization the latter happens only through local events.
//!
//! The engine is pure: every input returns [`DgmcAction`]s for the hosting
//! actor to execute (timed floods, `Tc`-long computation timers).
//!
//! # Scale (DESIGN.md §13)
//!
//! Per-MC state lives in an arena ([`crate::arena`]) with inverted hot
//! views, so link events and quiescence probes cost O(affected MCs), not
//! O(resident MCs). A link event that touches many *independent* MCs
//! (distinct ids — their states are disjoint by construction) can shard
//! the per-MC `EventHandler()` steps across the `dgmc_des::par` worker
//! pool ([`DgmcEngine::set_jobs`]); results are merged back in MC-id
//! order, so actions, decision-log events and every downstream artifact
//! are byte-identical for every worker count.

use crate::arena::McArena;
use crate::state::{ComputationJob, McState, McSync, Tombstone};
use crate::{McEventKind, McId, McLsa};
use dgmc_mctree::{McAlgorithm, McType, Role};
use dgmc_obs::{DecisionEvent, DecisionKind, MemberChange, SharedObserver, StampSnapshot};
use dgmc_topology::{Network, NodeId, SpfCache};
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// Copies a state's R/E/C vectors into an observability snapshot.
fn snap(st: &McState) -> StampSnapshot {
    StampSnapshot::new(
        st.r.iter().map(|(_, v)| v).collect(),
        st.e.iter().map(|(_, v)| v).collect(),
        st.c.iter().map(|(_, v)| v).collect(),
    )
}

/// An instruction emitted by the engine for its hosting actor.
#[derive(Debug, Clone, PartialEq)]
pub enum DgmcAction {
    /// Flood this MC LSA network-wide (one flooding operation).
    Flood(McLsa),
    /// Begin a topology computation for `mc`; call
    /// [`DgmcEngine::on_computation_done`] after `Tc`.
    StartComputation {
        /// The connection being recomputed.
        mc: McId,
    },
    /// A topology was installed (routing entries updated) for `mc`.
    Installed {
        /// The connection whose topology changed.
        mc: McId,
    },
    /// A completed computation was discarded because it was already stale.
    Withdrawn {
        /// The connection whose proposal was withdrawn.
        mc: McId,
    },
}

impl fmt::Display for DgmcAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DgmcAction::Flood(lsa) => write!(f, "flood {lsa}"),
            DgmcAction::StartComputation { mc } => write!(f, "start-computation {mc}"),
            DgmcAction::Installed { mc } => write!(f, "installed {mc}"),
            DgmcAction::Withdrawn { mc } => write!(f, "withdrawn {mc}"),
        }
    }
}

/// A deliberately introduced protocol defect, used by test harnesses to
/// prove their oracles catch real divergence from the paper's algorithm.
///
/// The systematic explorer (DESIGN.md §11) runs a mutated engine against
/// the executable specification ([`crate::spec`]) and the invariant suite;
/// a mutation that survives both would mean the oracles are vacuous.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum EngineMutation {
    /// The faithful protocol.
    #[default]
    None,
    /// Skip the staleness check of Fig. 4 line 6 / Fig. 5 line 22: a
    /// completing computation always installs and floods its proposal, even
    /// when LSAs arrived (or local events fired) during the computation.
    /// The proposal is then based on an outdated membership/timestamp view,
    /// which breaks agreement under concurrent joins.
    SkipWithdrawal,
    /// Re-introduce the teardown/resurrection race (DESIGN.md §11 race 1):
    /// tear state down without leaving a tombstone and ignore incarnation
    /// epochs entirely, exactly the paper's unfenced deletion. A join LSA
    /// in flight across the deletion then resurrects the MC with a zeroed
    /// `R` while merged stamps re-learn the forgotten events in `E`,
    /// leaving `R != E` at quiescence forever.
    UnfencedTeardown,
    /// Re-introduce the deferred-flood inversion (DESIGN.md §11 race 2):
    /// a second local event during a computation floods immediately
    /// (Fig. 4 lines 15-17 verbatim) instead of waiting its turn behind
    /// the still-unannounced pending event, so same-origin events flood
    /// out of local order and receivers split the member list.
    EagerDeferredFlood,
}

/// A decision-log emission produced by the pure per-MC event step.
///
/// `EventHandler()` for one MC is a pure function of that MC's state, so
/// it can run on a worker thread — but the observer is an `Rc`-based,
/// deliberately single-threaded handle. The step therefore *returns* its
/// emissions as data and the engine replays them on the calling thread,
/// in MC-id order, after the (possibly sharded) step completes. Serial
/// and sharded processing emit the same events in the same order at the
/// same simulated instant, which is what keeps decision logs and traces
/// byte-identical across `--jobs` values.
#[derive(Debug, Clone)]
struct PendingEmit {
    mc: McId,
    kind: DecisionKind,
    stamps: StampSnapshot,
}

/// Minimum number of affected MCs before a link event shards across the
/// worker pool: below this the per-event work cannot amortize the scoped
/// thread spawn of `dgmc_des::par::sweep`. Correctness does not depend on
/// the value — serial and sharded paths run the same per-MC step.
const SHARD_MIN_MCS: usize = 32;

// The sharded path moves checked-out states and their results across
// worker threads; this pins the payload to `Send` at compile time.
#[allow(dead_code)]
fn assert_shard_payload_is_send<T: Send>() {}
const _: fn() = assert_shard_payload_is_send::<(Vec<McState>, Vec<DgmcAction>, Vec<PendingEmit>)>;

/// The paper's `EventHandler()` body (Fig. 4) for one MC: a pure function
/// of the per-MC state. Returns the actions for the hosting actor plus
/// the decision-log emissions to replay ([`PendingEmit`]); snapshots are
/// only built when `want_emits` (an observer is attached).
fn event_step(
    me: NodeId,
    mutation: EngineMutation,
    want_emits: bool,
    st: &mut McState,
    mc: McId,
    event: McEventKind,
) -> (Vec<DgmcAction>, Vec<PendingEmit>) {
    debug_assert!(event.is_event(), "EventHandler takes real events");
    let mut emits = Vec::new();
    // Line 1: R[x] += 1; E[x] += 1.
    st.r.incr(me);
    st.e.incr(me);
    // Local bookkeeping of our own membership change.
    st.apply_membership(me, event);
    let change = match event {
        McEventKind::Join(_) => MemberChange::Join,
        McEventKind::Leave => MemberChange::Leave,
        McEventKind::Link | McEventKind::None => MemberChange::Link,
    };
    if want_emits {
        emits.push(PendingEmit {
            mc,
            kind: DecisionKind::EventDetected {
                member: me.0,
                change,
            },
            stamps: snap(st),
        });
    }
    // Line 2: compute only with no known outstanding LSAs — and, under
    // CPU serialization, only when idle.
    if st.all_caught_up() && st.computing.is_none() && st.mailbox.is_empty() {
        // Lines 4-5: save old_R and start the Tc-long computation; the
        // event LSA is flooded at completion (lines 6-14).
        st.computing = Some(ComputationJob {
            old_r: st.r.clone(),
            terminals: st.terminals(),
            previous: st.installed.clone(),
            pending_event: Some(event),
            stashed_candidate: None,
            deferred: Vec::new(),
        });
        (vec![DgmcAction::StartComputation { mc }], emits)
    } else {
        // Lines 15-17 flood the event immediately — but when an earlier
        // local event is still *unannounced* (it waits for the in-flight
        // computation's completion, lines 11-13), flooding now would let
        // this event overtake it and split member lists at receivers
        // (DESIGN.md §11 race 2). Hold it in local order instead; the
        // completion's withdrawal path floods pending + deferred FIFO.
        st.make_proposal_flag = true;
        let unannounced_ahead = st
            .computing
            .as_ref()
            .is_some_and(|job| job.pending_event.is_some() || !job.deferred.is_empty());
        if unannounced_ahead && mutation != EngineMutation::EagerDeferredFlood {
            let job = st.computing.as_mut().expect("checked above");
            job.deferred.push((event, st.r.clone()));
            if want_emits {
                emits.push(PendingEmit {
                    mc,
                    kind: DecisionKind::EventDeferred,
                    stamps: snap(st),
                });
            }
            return (Vec::new(), emits);
        }
        let lsa = McLsa {
            source: me,
            event,
            mc,
            mc_type: st.mc_type,
            epoch: st.epoch,
            proposal: None,
            stamp: st.r.clone(),
        };
        (vec![DgmcAction::Flood(lsa)], emits)
    }
}

/// The per-switch D-GMC protocol engine (all MCs).
///
/// # Examples
///
/// ```
/// use dgmc_core::{DgmcAction, DgmcEngine, McId};
/// use dgmc_mctree::{McType, Role, SphStrategy};
/// use dgmc_topology::{generate, NodeId};
/// use std::rc::Rc;
///
/// let net = generate::ring(4);
/// let mut engine = DgmcEngine::new(NodeId(0), 4, Rc::new(SphStrategy::new()));
/// let actions = engine.local_join(McId(1), McType::Symmetric, Role::SenderReceiver);
/// // First member: the join starts a topology computation.
/// assert_eq!(actions, vec![DgmcAction::StartComputation { mc: McId(1) }]);
/// let done = engine.on_computation_done(McId(1), &net);
/// assert!(matches!(done[0], DgmcAction::Flood(_)));
/// ```
#[derive(Debug, Clone)]
pub struct DgmcEngine {
    me: NodeId,
    n: usize,
    algorithm: Rc<dyn McAlgorithm>,
    states: McArena,
    /// Fences left behind by MC teardowns: the torn-down incarnation and
    /// its final `R`, consulted whenever an LSA arrives for an MC without
    /// state (DESIGN.md §11, the teardown/resurrection repair).
    tombstones: BTreeMap<McId, Tombstone>,
    observer: SharedObserver,
    spf_cache: SpfCache,
    mutation: EngineMutation,
    /// Worker count for sharding independent MCs in one event step
    /// (1 = serial; see [`DgmcEngine::set_jobs`]).
    jobs: usize,
}

impl DgmcEngine {
    /// Creates the engine for switch `me` in an `n`-switch network.
    pub fn new(me: NodeId, n: usize, algorithm: Rc<dyn McAlgorithm>) -> DgmcEngine {
        DgmcEngine {
            me,
            n,
            algorithm,
            states: McArena::new(),
            tombstones: BTreeMap::new(),
            observer: SharedObserver::new(),
            spf_cache: SpfCache::new(),
            mutation: EngineMutation::None,
            jobs: 1,
        }
    }

    /// Installs a deliberate protocol defect (test harnesses only).
    pub fn set_mutation(&mut self, mutation: EngineMutation) {
        self.mutation = mutation;
    }

    /// The active engine mutation ([`EngineMutation::None`] in production).
    pub fn mutation(&self) -> EngineMutation {
        self.mutation
    }

    /// Sets the worker count used to shard one event step across the
    /// *independent* MCs it touches (distinct ids — disjoint state).
    ///
    /// Purely a wall-clock optimization: the sharded path runs the exact
    /// same per-MC step as the serial one and merges results back in MC-id
    /// order, so actions, decision events and every downstream artifact
    /// are byte-identical for every value. Values below 1 clamp to 1.
    pub fn set_jobs(&mut self, jobs: usize) {
        self.jobs = jobs.max(1);
    }

    /// The configured shard worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Plugs in a (typically simulation-wide shared) SPF computation cache.
    ///
    /// Every engine gets a private cache by default; sharing one handle
    /// across engines lets switches holding identical images reuse each
    /// other's shortest-path trees. Purely an optimization — computed
    /// topologies are identical either way.
    pub fn set_spf_cache(&mut self, cache: SpfCache) {
        self.spf_cache = cache;
    }

    /// The engine's SPF cache handle.
    pub fn spf_cache(&self) -> &SpfCache {
        &self.spf_cache
    }

    /// Plugs in the decision-event observer (disabled by default).
    ///
    /// Typically a clone of the simulation's
    /// [`dgmc_des::Simulation::observer`] handle, so every engine stamps
    /// events with the shared simulated clock.
    pub fn set_observer(&mut self, observer: SharedObserver) {
        self.observer = observer;
    }

    /// The engine's decision-event observer handle.
    pub fn observer(&self) -> &SharedObserver {
        &self.observer
    }

    /// The owning switch.
    pub fn id(&self) -> NodeId {
        self.me
    }

    /// Engine-level quiescence probe: `true` when no connection has queued
    /// LSAs or an in-flight computation. At simulation quiescence every
    /// engine must be quiet — the invariant suite treats leftovers as
    /// un-withdrawn proposals. O(1) via the arena's busy set.
    pub fn is_quiet(&self) -> bool {
        self.states.is_quiet()
    }

    /// Read access to the state of connection `mc`, if allocated.
    pub fn state(&self, mc: McId) -> Option<&McState> {
        self.states.get(mc)
    }

    /// The tombstone left by the last teardown of `mc`, if any.
    pub fn tombstone(&self, mc: McId) -> Option<&Tombstone> {
        self.tombstones.get(&mc)
    }

    /// All teardown tombstones, ordered by MC id (state-hash input).
    pub fn tombstones(&self) -> impl Iterator<Item = (&McId, &Tombstone)> {
        self.tombstones.iter()
    }

    /// Ids of all connections with allocated state.
    pub fn mc_ids(&self) -> Vec<McId> {
        self.states.ids()
    }

    /// Number of connections with allocated state (O(1)).
    pub fn mc_count(&self) -> usize {
        self.states.len()
    }

    /// The installed topology of `mc`, if any.
    pub fn installed(&self, mc: McId) -> Option<&dgmc_mctree::McTopology> {
        self.states.get(mc)?.installed.as_ref()
    }

    /// Returns `true` if this switch is a member of `mc`.
    pub fn is_member(&self, mc: McId) -> bool {
        self.states
            .get(mc)
            .is_some_and(|st| st.members.contains_key(&self.me))
    }

    /// Connections whose installed topology uses the link `(a, b)`, in id
    /// order. O(answer) via the arena's inverted edge index.
    pub fn mcs_using_link(&self, a: NodeId, b: NodeId) -> Vec<McId> {
        self.states.using_edge(a, b)
    }

    /// Reference implementation of [`DgmcEngine::mcs_using_link`]: the
    /// pre-arena O(resident MCs) scan over every installed topology. Kept
    /// as the arena's debug oracle and as the measured baseline for the
    /// PR9 many-MC bench gate.
    pub fn mcs_using_link_scan(&self, a: NodeId, b: NodeId) -> Vec<McId> {
        self.states.using_edge_scan(a, b)
    }

    /// `EventHandler()` for a local host join.
    ///
    /// No-op (empty actions) if the switch is already a member. Re-creating
    /// an MC this switch tore down starts a *new incarnation* — the epoch
    /// moves past the tombstone's so straggler LSAs from the dead
    /// incarnation stay fenced.
    pub fn local_join(&mut self, mc: McId, mc_type: McType, role: Role) -> Vec<DgmcAction> {
        let epoch = match (self.mutation, self.tombstones.get(&mc)) {
            (EngineMutation::UnfencedTeardown, _) | (_, None) => 0,
            (_, Some(tomb)) => tomb.epoch + 1,
        };
        let n = self.n;
        let st = self
            .states
            .ensure(mc, || McState::new_at_epoch(mc, mc_type, n, epoch));
        if st.members.contains_key(&self.me) {
            return Vec::new();
        }
        self.event_handler(mc, McEventKind::Join(role))
    }

    /// `EventHandler()` for a local host leave.
    ///
    /// No-op if the switch is not a member.
    pub fn local_leave(&mut self, mc: McId) -> Vec<DgmcAction> {
        if !self.is_member(mc) {
            return Vec::new();
        }
        self.event_handler(mc, McEventKind::Leave)
    }

    /// `EventHandler()` for a locally detected link event: invoked once per
    /// connection whose installed topology uses link `(a, b)` ("a link/nodal
    /// event will cause ... k MC LSAs, where k is the number of MCs whose
    /// topologies are affected").
    ///
    /// The affected connections are *independent* — distinct MC ids with
    /// disjoint state — so when a worker pool is configured
    /// ([`DgmcEngine::set_jobs`]) and enough MCs are touched, their
    /// `EventHandler()` steps run sharded and are merged back in MC-id
    /// order (DESIGN.md §13). Output is byte-identical either way.
    pub fn local_link_event(&mut self, a: NodeId, b: NodeId) -> Vec<DgmcAction> {
        let affected = self.mcs_using_link(a, b);
        if self.jobs > 1 && affected.len() >= SHARD_MIN_MCS {
            return self.link_event_sharded(&affected);
        }
        let mut actions = Vec::new();
        for mc in affected {
            actions.extend(self.event_handler(mc, McEventKind::Link));
        }
        actions
    }

    /// Reference implementation of [`DgmcEngine::local_link_event`]: the
    /// pre-arena event path (O(resident MCs) affected-set scan, serial
    /// per-MC processing). Behaviorally identical; kept as the measured
    /// baseline for the PR9 many-MC bench gate.
    pub fn local_link_event_scan(&mut self, a: NodeId, b: NodeId) -> Vec<DgmcAction> {
        let affected = self.states.using_edge_scan(a, b);
        let mut actions = Vec::new();
        for mc in affected {
            actions.extend(self.event_handler(mc, McEventKind::Link));
        }
        actions
    }

    /// Runs the link-event `EventHandler()` step for every affected MC on
    /// the `dgmc_des::par` pool and merges results in MC-id order.
    ///
    /// Soundness: the states are checked out of the arena first, so each
    /// worker owns its block of `McState`s exclusively (`McId`s are
    /// distinct by construction — they come from one sorted affected set).
    /// Work is sharded in *contiguous blocks*, not per MC: one step is a
    /// microsecond of work, so per-task pool overhead (claim, slot lock)
    /// must be amortized over hundreds of steps to win wall-clock. The
    /// merge replays per-block results in exactly the order the serial
    /// loop would have produced them: `affected` is sorted, blocks are
    /// contiguous, the pool returns slots in task-index order, and
    /// emissions ride along as data ([`PendingEmit`]) to be replayed on
    /// this thread.
    fn link_event_sharded(&mut self, affected: &[McId]) -> Vec<DgmcAction> {
        use std::sync::Mutex;
        let me = self.me;
        let mutation = self.mutation;
        let want_emits = self.observer.enabled();
        // A few blocks per worker evens out block-to-block variance without
        // reintroducing per-task overhead.
        let block = affected.len().div_ceil(self.jobs * 4).max(8);
        let blocks: Vec<&[McId]> = affected.chunks(block).collect();
        // Resolve each id's slot once; take/restore then skip the map probe.
        let slots: Vec<u32> = affected
            .iter()
            .map(|&mc| {
                self.states
                    .slot_index(mc)
                    .expect("affected ids are resident")
            })
            .collect();
        let slot_blocks: Vec<&[u32]> = slots.chunks(block).collect();
        let cells: Vec<Mutex<Option<Vec<McState>>>> = slot_blocks
            .iter()
            .map(|idxs| {
                let states: Vec<McState> = idxs
                    .iter()
                    .map(|&slot| {
                        self.states
                            .take_at(slot)
                            .expect("affected ids are resident")
                    })
                    .collect();
                Mutex::new(Some(states))
            })
            .collect();
        let results = dgmc_des::par::sweep(
            self.jobs,
            blocks.len(),
            |_| (),
            |(), i| {
                let mut states = cells[i]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("each block is claimed exactly once");
                let mut actions = Vec::new();
                let mut emits = Vec::new();
                for (st, &mc) in states.iter_mut().zip(blocks[i]) {
                    let (a, e) = event_step(me, mutation, want_emits, st, mc, McEventKind::Link);
                    actions.extend(a);
                    emits.extend(e);
                }
                (states, actions, emits)
            },
            |_| false,
        );
        let mut actions = Vec::new();
        for (i, result) in results.into_iter().enumerate() {
            let (states, acts, emits) = result.expect("sweep without cancellation completes all");
            for ((st, &mc), &slot) in states.into_iter().zip(blocks[i]).zip(slot_blocks[i]) {
                self.states.restore_at(slot, mc, st);
            }
            for p in emits {
                self.emit_pending(p);
            }
            actions.extend(acts);
        }
        actions
    }

    /// Replays a deferred decision-log emission from the (possibly
    /// sharded) event step on the calling thread.
    fn emit_pending(&self, p: PendingEmit) {
        let switch = self.me.0;
        self.observer.emit(move |now| DecisionEvent {
            at_nanos: now,
            mc: u64::from(p.mc.0),
            switch,
            kind: p.kind,
            stamps: p.stamps,
        });
    }

    /// Exports a snapshot of all MC states for database synchronization
    /// (sent to a neighbor when a link to it comes up, mirroring OSPF's
    /// database exchange; see [`crate::switch`]).
    pub fn export_sync(&self) -> Vec<McSync> {
        self.states
            .iter()
            .map(|(_, st)| McSync {
                mc: st.mc,
                mc_type: st.mc_type,
                epoch: st.epoch,
                r: st.r.clone(),
                e: st.e.clone(),
                c: st.c.clone(),
                c_source: st.c_source,
                members: st.members.clone(),
                installed: st.installed.clone(),
            })
            .collect()
    }

    /// Imports a neighbor's database snapshot.
    ///
    /// For each synced MC: if the peer has strictly more received events
    /// (`peer.R > ours` componentwise) the whole per-MC state is adopted
    /// (the peer processed events we missed while down); otherwise only `E`
    /// is merged. Local states for MCs absent from the snapshot are deleted
    /// when quiet — the peer saw those connections destroyed.
    ///
    /// Recovery during an *active* burst is best-effort (incomparable `R`s
    /// are left to the regular protocol); the paper defers disaster recovery
    /// ("the ability of the protocol to survive disastrous situations ...
    /// remains for further study").
    pub fn import_sync(&mut self, snapshot: Vec<McSync>) -> Vec<DgmcAction> {
        let mut actions = Vec::new();
        let synced: std::collections::BTreeSet<McId> = snapshot.iter().map(|s| s.mc).collect();
        let fenced = self.mutation != EngineMutation::UnfencedTeardown;
        for sync in snapshot {
            let mc = sync.mc;
            // Incarnation fencing mirrors on_mc_lsa: snapshots of a dead
            // incarnation are ignored; an unknown MC at the tombstone's own
            // epoch resumes from the tombstone's counts.
            if fenced && !self.states.contains(mc) {
                if let Some(tomb) = self.tombstones.get(&mc) {
                    if sync.epoch < tomb.epoch {
                        continue;
                    }
                    if sync.epoch == tomb.epoch {
                        let st = McState::revived(mc, sync.mc_type, self.n, tomb);
                        self.states.insert(mc, st);
                    }
                }
            }
            let n = self.n;
            let st = self.states.ensure(mc, || {
                McState::new_at_epoch(mc, sync.mc_type, n, sync.epoch)
            });
            if fenced && sync.epoch < st.epoch {
                continue;
            }
            // Adopt only while locally quiet: adopting an R that counts an
            // event whose LSA is queued or still in flight to us would make
            // the later delivery double-count it.
            let quiet = st.mailbox.is_empty() && st.computing.is_none();
            if fenced && sync.epoch > st.epoch && quiet {
                // The peer's incarnation supersedes ours wholesale.
                *st = McState::new_at_epoch(mc, sync.mc_type, n, sync.epoch);
            }
            if quiet
                && (sync.r.strictly_dominates(&st.r)
                    || (sync.r == st.r && sync.c.strictly_dominates(&st.c)))
            {
                st.r = sync.r.clone();
                st.c = sync.c;
                st.c_source = sync.c_source;
                st.members = sync.members;
                st.installed = sync.installed;
                st.e.merge_max(&sync.e);
                st.e.merge_max(&sync.r);
                actions.push(DgmcAction::Installed { mc });
                let me = self.me;
                let edges = st.installed.as_ref().map_or(0, |t| t.edge_count());
                let by = st.c_source.unwrap_or(me);
                self.observer.emit(|now| DecisionEvent {
                    at_nanos: now,
                    mc: u64::from(mc.0),
                    switch: me.0,
                    kind: DecisionKind::TopologyInstalled {
                        source: by.0,
                        edges,
                    },
                    stamps: snap(st),
                });
            } else {
                st.e.merge_max(&sync.e);
            }
            self.states.sync(mc);
        }
        // Prune quiet local states the peer no longer knows (destroyed MCs).
        let stale: Vec<McId> = self
            .states
            .iter()
            .filter(|(mc, st)| {
                !synced.contains(mc) && st.mailbox.is_empty() && st.computing.is_none()
            })
            .map(|(mc, _)| mc)
            .collect();
        for mc in stale {
            if let Some(st) = self.states.remove(mc) {
                if fenced {
                    self.tombstones.insert(
                        mc,
                        Tombstone {
                            epoch: st.epoch,
                            final_r: st.r,
                        },
                    );
                }
            }
        }
        actions
    }

    /// The `EventHandler()` algorithm (paper Fig. 4): runs the pure
    /// per-MC step ([`event_step`]) in place and replays its emissions.
    fn event_handler(&mut self, mc: McId, event: McEventKind) -> Vec<DgmcAction> {
        let me = self.me;
        let mutation = self.mutation;
        let want_emits = self.observer.enabled();
        // Private invariant, not a recoverable race: every caller allocates
        // the state in the same tool round (unlike on_computation_done, whose
        // signal can cross a deletion).
        let st = self.states.get_mut(mc).expect("state allocated by caller");
        let (actions, emits) = event_step(me, mutation, want_emits, st, mc, event);
        self.states.sync(mc);
        for p in emits {
            self.emit_pending(p);
        }
        actions
    }

    /// Delivers a (fresh, non-duplicate) MC LSA to the engine.
    ///
    /// The incarnation epoch is compared first (DESIGN.md §11 race 1
    /// repair):
    ///
    /// * **No state, no tombstone**: join LSAs allocate state at the LSA's
    ///   epoch; anything else is dropped (DESIGN.md §6).
    /// * **No state, tombstone**: an older-epoch LSA is a straggler from a
    ///   dead incarnation — dropped. Any *same*-epoch LSA revives the state
    ///   from the tombstone (`R = E = final_r`), so resurrection keeps the
    ///   pre-deletion event counts instead of zeroing them: events count
    ///   into the live `R` and proposal-carrying LSAs can still install.
    ///   If the revived state stays empty and caught up, the drain tears
    ///   it right back down. A newer-epoch join starts fresh at that
    ///   epoch.
    /// * **State at an older epoch**: the sender re-created the MC after a
    ///   teardown we haven't performed; our incarnation is dead. The state
    ///   is reset to the LSA's epoch and, if we were a member, we re-join
    ///   so the new incarnation learns of us.
    /// * **State at a newer epoch**: the LSA is from a dead incarnation —
    ///   dropped.
    pub fn on_mc_lsa(&mut self, lsa: McLsa) -> Vec<DgmcAction> {
        let mc = lsa.mc;
        let mc_type = lsa.mc_type;
        let fenced = self.mutation != EngineMutation::UnfencedTeardown;
        let mut rejoin: Option<Role> = None;
        match self.states.get(mc).map(|st| st.epoch) {
            None => {
                let is_join = matches!(lsa.event, McEventKind::Join(_));
                match self.tombstones.get(&mc).filter(|_| fenced) {
                    Some(tomb) if lsa.epoch < tomb.epoch => return Vec::new(),
                    Some(tomb) if lsa.epoch == tomb.epoch => {
                        let st = McState::revived(mc, mc_type, self.n, tomb);
                        self.states.insert(mc, st);
                    }
                    _ => {
                        if !is_join {
                            return Vec::new();
                        }
                        let epoch = if fenced { lsa.epoch } else { 0 };
                        self.states
                            .insert(mc, McState::new_at_epoch(mc, mc_type, self.n, epoch));
                    }
                }
            }
            Some(epoch) if fenced && lsa.epoch < epoch => return Vec::new(),
            Some(epoch) if fenced && lsa.epoch > epoch => {
                // Our whole incarnation is stale. Any in-flight computation
                // dies with it (its completion becomes a logged no-op).
                let old = self.states.get(mc).expect("matched Some");
                rejoin = old.members.get(&self.me).copied();
                self.states
                    .insert(mc, McState::new_at_epoch(mc, mc_type, self.n, lsa.epoch));
            }
            Some(_) => {}
        }
        let st = self.states.get_mut(mc).expect("just ensured");
        st.mailbox.push_back(lsa);
        let idle = st.computing.is_none();
        self.states.sync(mc);
        let mut actions = Vec::new();
        if idle {
            // The CPU is idle; drain now. Otherwise the LSA waits (and will
            // invalidate the in-flight proposal at completion).
            actions.extend(self.process_mailbox(mc, None));
        }
        if let Some(role) = rejoin {
            // Announce ourselves in the adopted incarnation. The drain above
            // can have torn the reset state down again (the LSA was a leave
            // and we were caught up); `local_join` then re-creates it.
            if self.states.contains(mc) {
                actions.extend(self.event_handler(mc, McEventKind::Join(role)));
            } else {
                actions.extend(self.local_join(mc, mc_type, role));
            }
        }
        actions
    }

    /// Completes the in-flight computation for `mc` (`Tc` elapsed), then
    /// drains whatever queued up meanwhile.
    ///
    /// A completion signal for a connection without state (deleted by a
    /// concurrent withdraw/leave) or without an in-flight computation is a
    /// benign race: it is ignored as a no-op, visible in the decision log as
    /// [`DecisionKind::StaleCompletion`].
    pub fn on_computation_done(&mut self, mc: McId, image: &Network) -> Vec<DgmcAction> {
        let me = self.me;
        let Some(st) = self.states.get_mut(mc) else {
            self.observer.emit(|now| DecisionEvent {
                at_nanos: now,
                mc: u64::from(mc.0),
                switch: me.0,
                kind: DecisionKind::StaleCompletion,
                stamps: StampSnapshot::empty(),
            });
            return Vec::new();
        };
        let Some(job) = st.computing.take() else {
            let stamps = snap(st);
            self.observer.emit(|now| DecisionEvent {
                at_nanos: now,
                mc: u64::from(mc.0),
                switch: me.0,
                kind: DecisionKind::StaleCompletion,
                stamps,
            });
            return Vec::new();
        };
        // Fig. 4 line 6 / Fig. 5 line 22: still valid iff nothing arrived
        // during the computation and R did not advance (local events).
        let fresh = (st.mailbox.is_empty() && st.r == job.old_r)
            || self.mutation == EngineMutation::SkipWithdrawal;
        let mut actions = Vec::new();
        let mut carry: Option<crate::state::Candidate> = None;
        if fresh {
            let topology = self.algorithm.compute_with(
                image,
                &job.terminals,
                job.previous.as_ref(),
                &self.spf_cache,
            );
            let own_edges = topology.edge_count();
            self.observer.emit(|now| DecisionEvent {
                at_nanos: now,
                mc: u64::from(mc.0),
                switch: me.0,
                kind: DecisionKind::ProposalComputed { edges: own_edges },
                stamps: snap(st),
            });
            let lsa = McLsa {
                source: me,
                event: job.pending_event.unwrap_or(McEventKind::None),
                mc,
                mc_type: st.mc_type,
                epoch: st.epoch,
                proposal: Some(topology.clone()),
                stamp: job.old_r.clone(),
            };
            actions.push(DgmcAction::Flood(lsa));
            self.observer.emit(|now| DecisionEvent {
                at_nanos: now,
                mc: u64::from(mc.0),
                switch: me.0,
                kind: DecisionKind::ProposalFlooded,
                stamps: snap(st),
            });
            if job.pending_event.is_none() {
                // Fig. 5 line 24: bring E up to date.
                st.e = st.r.clone();
            }
            // Fig. 4 lines 8-10 / Fig. 5 lines 25-27 (with the stamp
            // correction of DESIGN.md §3): install our own proposal —
            // unless a stashed equal-stamp proposal from a smaller source
            // deterministically outranks it (every switch applies the same
            // rule, so everyone converges on the same winner).
            let own_wins = match &job.stashed_candidate {
                Some((_, stamp, source)) => *stamp != job.old_r || me < *source,
                None => true,
            };
            if let Some((_, _, source)) = &job.stashed_candidate {
                let (winner, loser) = if own_wins {
                    (me, *source)
                } else {
                    (*source, me)
                };
                self.observer.emit(|now| DecisionEvent {
                    at_nanos: now,
                    mc: u64::from(mc.0),
                    switch: me.0,
                    kind: DecisionKind::ConflictResolved {
                        winner: winner.0,
                        loser: loser.0,
                    },
                    stamps: snap(st),
                });
            }
            let (installed_by, installed_edges) = if own_wins {
                st.c = job.old_r;
                st.c_source = Some(me);
                st.installed = Some(topology);
                (me, own_edges)
            } else {
                let (topo, stamp, source) = job.stashed_candidate.clone().expect("checked above");
                let edges = topo.edge_count();
                st.c = stamp;
                st.c_source = Some(source);
                st.installed = Some(topo);
                (source, edges)
            };
            st.make_proposal_flag = false;
            actions.push(DgmcAction::Installed { mc });
            self.observer.emit(|now| DecisionEvent {
                at_nanos: now,
                mc: u64::from(mc.0),
                switch: me.0,
                kind: DecisionKind::TopologyInstalled {
                    source: installed_by.0,
                    edges: installed_edges,
                },
                stamps: snap(st),
            });
        } else {
            // The stashed candidate survives the withdrawal and competes in
            // the drain below (deviation from Fig. 5 line 29; DESIGN.md §3).
            carry = job.stashed_candidate.clone();
            match job.pending_event {
                Some(event) => {
                    // Fig. 4 lines 11-13: withdraw the proposal but still
                    // announce the event, stamped with old_R.
                    st.make_proposal_flag = true;
                    actions.push(DgmcAction::Flood(McLsa {
                        source: me,
                        event,
                        mc,
                        mc_type: st.mc_type,
                        epoch: st.epoch,
                        proposal: None,
                        stamp: job.old_r,
                    }));
                }
                None => {
                    // Fig. 5 lines 28-30: withdrawal; the flag stays set and
                    // the mailbox drain below decides what next.
                }
            }
            // Local events deferred behind the pending announcement now
            // flood in their original order, each with the R recorded when
            // it fired (DESIGN.md §11 race 2 repair). Deferral implies R
            // advanced past old_R, so a job with deferred events is always
            // withdrawn — this is the only flush point.
            for (event, stamp) in job.deferred {
                st.make_proposal_flag = true;
                actions.push(DgmcAction::Flood(McLsa {
                    source: me,
                    event,
                    mc,
                    mc_type: st.mc_type,
                    epoch: st.epoch,
                    proposal: None,
                    stamp,
                }));
            }
            actions.push(DgmcAction::Withdrawn { mc });
            self.observer.emit(|now| DecisionEvent {
                at_nanos: now,
                mc: u64::from(mc.0),
                switch: me.0,
                kind: DecisionKind::ProposalWithdrawn,
                stamps: snap(st),
            });
        }
        actions.extend(self.process_mailbox(mc, carry));
        actions
    }

    /// The `ReceiveLSA()` algorithm (paper Fig. 5): drains the mailbox,
    /// decides whether to compute, installs an accepted candidate.
    fn process_mailbox(
        &mut self,
        mc: McId,
        initial: Option<crate::state::Candidate>,
    ) -> Vec<DgmcAction> {
        let me = self.me;
        let Some(st) = self.states.get_mut(mc) else {
            return Vec::new();
        };
        debug_assert!(st.computing.is_none(), "mailbox drains only when idle");
        // Lines 1-2 — except that a candidate carried across a withdrawn
        // computation stays in play (DESIGN.md §3).
        let mut candidate: Option<crate::state::Candidate> = initial;
        let mut actions = Vec::new();
        // Lines 3-18.
        while let Some(lsa) = st.mailbox.pop_front() {
            if lsa.event.is_event() {
                // Line 7: one more event heard from S.
                st.r.incr(lsa.source);
                // Line 8: update the member list for join/leave.
                st.apply_membership(lsa.source, lsa.event);
            }
            // Line 10: E[y] = max(E[y], T[y]).
            st.e.merge_max(&lsa.stamp);
            // Line 11: accept a proposal based on everything we expect.
            if lsa.stamp.dominates(&st.e) && lsa.proposal.is_some() {
                let incumbent = candidate.as_ref().map(|(_, _, src)| *src);
                let replace = match &candidate {
                    None => true,
                    Some((_, cand_stamp, cand_src)) => {
                        // Deterministic preference among equal-information
                        // proposals: later (strictly larger) stamp wins;
                        // equal stamps prefer the smaller source id.
                        lsa.stamp.strictly_dominates(cand_stamp)
                            || (lsa.stamp == *cand_stamp && lsa.source < *cand_src)
                    }
                };
                if let Some(loser_or_winner) = incumbent {
                    // Two live proposals met: record the arbitration.
                    let (winner, loser) = if replace {
                        (lsa.source, loser_or_winner)
                    } else {
                        (loser_or_winner, lsa.source)
                    };
                    self.observer.emit(|now| DecisionEvent {
                        at_nanos: now,
                        mc: u64::from(mc.0),
                        switch: me.0,
                        kind: DecisionKind::ConflictResolved {
                            winner: winner.0,
                            loser: loser.0,
                        },
                        stamps: snap(st),
                    });
                }
                if replace {
                    candidate = Some((
                        lsa.proposal.clone().expect("checked above"),
                        lsa.stamp.clone(),
                        lsa.source,
                    ));
                    self.observer.emit(|now| DecisionEvent {
                        at_nanos: now,
                        mc: u64::from(mc.0),
                        switch: me.0,
                        kind: DecisionKind::ProposalAccepted { from: lsa.source.0 },
                        stamps: snap(st),
                    });
                }
                st.make_proposal_flag = false;
            } else if st.r.get(me) > lsa.stamp.get(me) {
                // Line 15: the sender is missing some of our local events.
                st.make_proposal_flag = true;
            }
            debug_assert!(st.invariant_holds(), "E >= R >= C violated");
        }
        // Line 19: decide whether to compute a proposal ourselves.
        if st.make_proposal_flag && st.all_caught_up() && st.r.strictly_dominates(&st.c) {
            // Lines 20-21: snapshot and start the Tc-long computation; the
            // flood/withdraw decision happens at completion (lines 22-30).
            st.computing = Some(ComputationJob {
                old_r: st.r.clone(),
                terminals: st.terminals(),
                previous: st.installed.clone(),
                pending_event: None,
                // The loop candidate rides along instead of being nulled
                // (Fig. 5 lines 25/29): completion arbitrates between it
                // and our own proposal by (stamp, source).
                stashed_candidate: candidate,
                deferred: Vec::new(),
            });
            actions.push(DgmcAction::StartComputation { mc });
            self.states.sync(mc);
            return actions;
        }
        // Lines 32-34: install the accepted candidate, preferring the
        // deterministic winner over an equal-stamp incumbent.
        if let Some((topology, stamp, source)) = candidate {
            let supersedes = stamp.strictly_dominates(&st.c)
                || (stamp == st.c && st.c_source.is_none_or(|cur| source <= cur));
            if supersedes {
                let edges = topology.edge_count();
                st.c = stamp;
                st.c_source = Some(source);
                st.installed = Some(topology);
                actions.push(DgmcAction::Installed { mc });
                self.observer.emit(|now| DecisionEvent {
                    at_nanos: now,
                    mc: u64::from(mc.0),
                    switch: me.0,
                    kind: DecisionKind::TopologyInstalled {
                        source: source.0,
                        edges,
                    },
                    stamps: snap(st),
                });
            }
        }
        // MC destruction: drop state once the member list is empty and
        // nothing is pending — leaving a tombstone so an LSA still in
        // flight cannot resurrect the MC with zeroed event counts
        // (DESIGN.md §11 race 1 repair).
        if st.deletable() {
            if self.mutation != EngineMutation::UnfencedTeardown {
                // deletable() implies all_caught_up(), so R here is the
                // exact count of every delivered announcement.
                self.tombstones.insert(
                    mc,
                    Tombstone {
                        epoch: st.epoch,
                        final_r: st.r.clone(),
                    },
                );
            }
            self.states.remove(mc);
        }
        self.states.sync(mc);
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Timestamp;
    use dgmc_mctree::SphStrategy;
    use dgmc_topology::generate;

    fn engine(me: u32, n: usize) -> DgmcEngine {
        DgmcEngine::new(NodeId(me), n, Rc::new(SphStrategy::new()))
    }

    fn flooded(actions: &[DgmcAction]) -> Vec<&McLsa> {
        actions
            .iter()
            .filter_map(|a| match a {
                DgmcAction::Flood(lsa) => Some(lsa),
                _ => None,
            })
            .collect()
    }

    const MC: McId = McId(1);

    #[test]
    fn first_join_computes_then_floods_with_proposal() {
        let net = generate::ring(4);
        let mut e0 = engine(0, 4);
        let a1 = e0.local_join(MC, McType::Symmetric, Role::SenderReceiver);
        assert_eq!(a1, vec![DgmcAction::StartComputation { mc: MC }]);
        let a2 = e0.on_computation_done(MC, &net);
        let lsas = flooded(&a2);
        assert_eq!(lsas.len(), 1);
        assert_eq!(lsas[0].event, McEventKind::Join(Role::SenderReceiver));
        let p = lsas[0].proposal.as_ref().unwrap();
        assert_eq!(p.terminals().len(), 1);
        assert!(a2.contains(&DgmcAction::Installed { mc: MC }));
        let st = e0.state(MC).unwrap();
        assert_eq!(st.c, st.r);
        assert!(st.invariant_holds());
    }

    #[test]
    fn duplicate_local_join_is_noop() {
        let net = generate::ring(4);
        let mut e0 = engine(0, 4);
        e0.local_join(MC, McType::Symmetric, Role::SenderReceiver);
        e0.on_computation_done(MC, &net);
        let again = e0.local_join(MC, McType::Symmetric, Role::SenderReceiver);
        assert!(again.is_empty());
    }

    #[test]
    fn receiver_accepts_fresh_proposal() {
        let net = generate::ring(4);
        let mut e0 = engine(0, 4);
        let mut e2 = engine(2, 4);
        e0.local_join(MC, McType::Symmetric, Role::SenderReceiver);
        let lsa = flooded(&e0.on_computation_done(MC, &net))[0].clone();
        let actions = e2.on_mc_lsa(lsa);
        assert!(actions.contains(&DgmcAction::Installed { mc: MC }));
        assert_eq!(e2.state(MC).unwrap().members.len(), 1);
        assert_eq!(e2.installed(MC), e0.installed(MC));
        assert_eq!(e2.state(MC).unwrap().c, e0.state(MC).unwrap().c);
    }

    #[test]
    fn non_join_lsa_for_unknown_mc_is_dropped() {
        let _net = generate::ring(4);
        let mut e2 = engine(2, 4);
        let lsa = McLsa {
            source: NodeId(0),
            event: McEventKind::None,
            mc: MC,
            mc_type: McType::Symmetric,
            epoch: 0,
            proposal: Some(dgmc_mctree::McTopology::empty()),
            stamp: Timestamp::zero(4),
        };
        assert!(e2.on_mc_lsa(lsa).is_empty());
        assert!(e2.state(MC).is_none());
    }

    #[test]
    fn lsa_during_computation_invalidates_proposal() {
        let net = generate::ring(4);
        let mut e0 = engine(0, 4);
        let mut e1 = engine(1, 4);
        // Switch 1 creates the MC; switch 0 learns of it.
        e1.local_join(MC, McType::Symmetric, Role::SenderReceiver);
        let join1 = flooded(&e1.on_computation_done(MC, &net))[0].clone();
        e0.on_mc_lsa(join1);
        // Switch 0 joins: starts computing (caught up).
        let a = e0.local_join(MC, McType::Symmetric, Role::SenderReceiver);
        assert_eq!(a, vec![DgmcAction::StartComputation { mc: MC }]);
        // Meanwhile switch 2's join LSA arrives mid-computation.
        let mut e2 = engine(2, 4);
        // Bring e2 up to date first so its stamp is meaningful.
        // (simplified: craft a join LSA with a plausible stamp)
        e2.local_join(MC, McType::Symmetric, Role::SenderReceiver);
        let join2 = flooded(&e2.on_computation_done(MC, &net))[0].clone();
        let queued = e0.on_mc_lsa(join2);
        assert!(queued.is_empty(), "mailbox holds it during computation");
        // Completion must withdraw and still announce our join.
        let done = e0.on_computation_done(MC, &net);
        assert!(done.contains(&DgmcAction::Withdrawn { mc: MC }));
        let lsas = flooded(&done);
        assert_eq!(lsas.len(), 1, "event announced without proposal");
        assert_eq!(lsas[0].proposal, None);
        assert!(matches!(lsas[0].event, McEventKind::Join(_)));
    }

    #[test]
    fn leave_of_last_member_empties_and_deletes() {
        let net = generate::ring(4);
        let mut e0 = engine(0, 4);
        e0.local_join(MC, McType::Symmetric, Role::SenderReceiver);
        e0.on_computation_done(MC, &net);
        let a = e0.local_leave(MC);
        assert_eq!(a, vec![DgmcAction::StartComputation { mc: MC }]);
        let done = e0.on_computation_done(MC, &net);
        let lsas = flooded(&done);
        assert_eq!(lsas[0].event, McEventKind::Leave);
        let p = lsas[0].proposal.as_ref().unwrap();
        assert!(p.terminals().is_empty());
        // The post-completion mailbox drain notices the empty member list
        // and deletes the state ("local data structures are deleted").
        assert!(e0.state(MC).is_none());
    }

    #[test]
    fn leave_when_not_member_is_noop() {
        let _net = generate::ring(4);
        let mut e0 = engine(0, 4);
        assert!(e0.local_leave(MC).is_empty());
    }

    #[test]
    fn link_event_only_fires_for_affected_mcs() {
        let net = generate::path(4);
        let mut e0 = engine(0, 4);
        let mut e3 = engine(3, 4);
        // Build an MC spanning 0..3 at switch 0 (via LSAs both ways).
        e0.local_join(MC, McType::Symmetric, Role::SenderReceiver);
        let l0 = flooded(&e0.on_computation_done(MC, &net))[0].clone();
        e3.on_mc_lsa(l0);
        let a3 = e3.local_join(MC, McType::Symmetric, Role::SenderReceiver);
        assert_eq!(a3, vec![DgmcAction::StartComputation { mc: MC }]);
        let l3 = flooded(&e3.on_computation_done(MC, &net))[0].clone();
        e0.on_mc_lsa(l3);
        // Tree now uses links 0-1,1-2,2-3.
        assert_eq!(e0.mcs_using_link(NodeId(1), NodeId(2)), vec![MC]);
        assert!(e0.mcs_using_link(NodeId(0), NodeId(2)).is_empty());
        // The indexed affected set and the reference scan agree.
        assert_eq!(
            e0.mcs_using_link(NodeId(1), NodeId(2)),
            e0.mcs_using_link_scan(NodeId(1), NodeId(2))
        );
        // A link event on 1-2 triggers EventHandler for the MC.
        let mut cut = net.clone();
        let l = cut.link_between(NodeId(1), NodeId(2)).unwrap().id;
        cut.set_link_state(l, dgmc_topology::LinkState::Down)
            .unwrap();
        let actions = e0.local_link_event(NodeId(1), NodeId(2));
        assert_eq!(actions, vec![DgmcAction::StartComputation { mc: MC }]);
        // An event on an unused link does nothing.
        let none = e0.local_link_event(NodeId(0), NodeId(2));
        assert!(none.is_empty());
    }

    #[test]
    fn triggered_proposal_floods_after_conflicting_events() {
        // Two switches join "simultaneously": each floods a join (deferred,
        // because they were mid-computation when the other's join arrived)…
        // Simulate the essential inconsistency path: e0 receives a join LSA
        // from e1 whose stamp does not include e0's own join event.
        let net = generate::ring(4);
        let mut e0 = engine(0, 4);
        let mut e1 = engine(1, 4);
        // Both create/join the MC concurrently.
        e0.local_join(MC, McType::Symmetric, Role::SenderReceiver);
        e1.local_join(MC, McType::Symmetric, Role::SenderReceiver);
        let lsa0 = flooded(&e0.on_computation_done(MC, &net))[0].clone();
        let lsa1 = flooded(&e1.on_computation_done(MC, &net))[0].clone();
        // Cross-deliver: each sees a proposal that misses its own event.
        let a0 = e0.on_mc_lsa(lsa1);
        // e0 detects the inconsistency (R[0] > T[0]) and starts computing.
        assert!(a0.contains(&DgmcAction::StartComputation { mc: MC }));
        let done0 = e0.on_computation_done(MC, &net);
        let trig = flooded(&done0);
        assert_eq!(trig.len(), 1);
        assert_eq!(trig[0].event, McEventKind::None, "triggered LSA");
        let p = trig[0].proposal.as_ref().unwrap();
        assert_eq!(p.terminals().len(), 2, "tree spans both members");
        // e1 symmetric path, then accepts e0's triggered proposal.
        let a1 = e1.on_mc_lsa(lsa0);
        assert!(a1.contains(&DgmcAction::StartComputation { mc: MC }));
        let done1 = e1.on_computation_done(MC, &net);
        // e1 computed the same topology (deterministic algorithm).
        assert_eq!(e0.installed(MC), e1.installed(MC));
        // Cross-deliver the triggered LSAs; stamps are equal so the smaller
        // source (e0) wins at both switches.
        let trig1 = flooded(&done1)[0].clone();
        e0.on_mc_lsa(trig1);
        let trig0 = trig[0].clone();
        e1.on_mc_lsa(trig0);
        assert_eq!(e0.state(MC).unwrap().c, e1.state(MC).unwrap().c);
        assert_eq!(e0.state(MC).unwrap().c_source, Some(NodeId(0)));
        assert_eq!(e1.state(MC).unwrap().c_source, Some(NodeId(0)));
        assert_eq!(e0.installed(MC), e1.installed(MC));
        assert!(e0.state(MC).unwrap().all_caught_up());
        assert!(e1.state(MC).unwrap().all_caught_up());
    }

    #[test]
    fn stale_completion_is_a_logged_noop() {
        // The withdraw race: a Tc timer fires for a connection whose state
        // was concurrently deleted (or whose computation already finished).
        // Historically both cases panicked the whole simulation.
        let net = generate::ring(4);
        let mut e0 = engine(0, 4);
        let log = e0.observer().attach_log(64);

        // Completion for a connection this engine never knew: no-op.
        assert!(e0.on_computation_done(MC, &net).is_empty());

        // Join, complete, then a duplicate completion with state present but
        // no computation in flight: no-op, state untouched.
        e0.local_join(MC, McType::Symmetric, Role::SenderReceiver);
        e0.on_computation_done(MC, &net);
        let before = e0.state(MC).unwrap().clone();
        assert!(e0.on_computation_done(MC, &net).is_empty());
        assert_eq!(e0.state(MC).unwrap(), &before);

        // The full race end-to-end: last member leaves while nothing is in
        // flight -> state deleted by the drain -> a stale timer fires.
        e0.local_leave(MC);
        e0.on_computation_done(MC, &net);
        assert!(e0.state(MC).is_none(), "leave deleted the state");
        assert!(e0.on_computation_done(MC, &net).is_empty());

        let stale = log
            .borrow()
            .iter()
            .filter(|ev| matches!(ev.kind, DecisionKind::StaleCompletion))
            .count();
        assert_eq!(stale, 3, "every ignored completion is decision-logged");
    }

    #[test]
    fn local_event_mid_computation_defers_and_floods() {
        let net = generate::ring(5);
        let mut e0 = engine(0, 5);
        e0.local_join(MC, McType::Symmetric, Role::SenderReceiver);
        // Computation for the join is in flight and the join itself is
        // still unannounced; a second local event (a leave) must NOT flood
        // yet — it is deferred so same-origin events reach the network in
        // local order (DESIGN.md §11 race 2 repair).
        let a = e0.local_leave(MC);
        assert!(
            flooded(&a).is_empty(),
            "the leave must wait for the withdrawal, got {a:?}"
        );
        // The join's computation is now stale (R advanced) -> the join is
        // announced with its pre-leave stamp, then the deferred leave with
        // its own stamp, then the withdrawal — strictly in local order.
        let done = e0.on_computation_done(MC, &net);
        assert!(done.contains(&DgmcAction::Withdrawn { mc: MC }));
        let announced = flooded(&done);
        assert_eq!(announced.len(), 2, "{done:?}");
        assert!(matches!(announced[0].event, McEventKind::Join(_)));
        assert_eq!(announced[0].proposal, None);
        assert_eq!(announced[1].event, McEventKind::Leave);
        assert_eq!(announced[1].proposal, None);
        assert!(
            announced[1].stamp.dominates(&announced[0].stamp)
                && announced[1].stamp != announced[0].stamp,
            "leave stamp {} must strictly follow join stamp {}",
            announced[1].stamp,
            announced[0].stamp
        );
    }

    /// Drives `e1` through create-join-complete and `e0` through learning
    /// the MC, then tears it down at both via `e1`'s leave. Returns the
    /// leave LSA so callers can replay stragglers.
    fn torn_down_pair(net: &Network) -> (DgmcEngine, DgmcEngine, McLsa) {
        let mut e0 = engine(0, 3);
        let mut e1 = engine(1, 3);
        e1.local_join(MC, McType::Symmetric, Role::SenderReceiver);
        let join1 = flooded(&e1.on_computation_done(MC, net))[0].clone();
        e0.on_mc_lsa(join1);
        e1.local_leave(MC);
        let done = e1.on_computation_done(MC, net);
        let leave1 = flooded(&done)[0].clone();
        e0.on_mc_lsa(leave1.clone());
        (e0, e1, leave1)
    }

    #[test]
    fn teardown_leaves_a_tombstone_and_same_epoch_join_revives_it() {
        let net = generate::ring(3);
        let (mut e0, _e1, _leave) = torn_down_pair(&net);
        assert!(e0.state(MC).is_none(), "empty + caught up tears down");
        let tomb = e0.tombstone(MC).expect("teardown records a tombstone");
        assert_eq!(tomb.epoch, 0);
        let final_r = tomb.final_r.clone();

        // A same-epoch join flooded concurrently with the teardown revives
        // the incarnation: the pre-deletion counts come back instead of a
        // zeroed R, so the merged stamp cannot strand E above R.
        let mut stamp = final_r.clone();
        stamp.incr(NodeId(2));
        e0.on_mc_lsa(McLsa {
            source: NodeId(2),
            event: McEventKind::Join(Role::SenderReceiver),
            mc: MC,
            mc_type: McType::Symmetric,
            epoch: 0,
            proposal: None,
            stamp: stamp.clone(),
        });
        let st = e0.state(MC).expect("revived");
        assert_eq!(st.epoch, 0);
        assert_eq!(st.r, stamp, "revival resumed from final_r");
        assert!(st.all_caught_up(), "R={} E={}", st.r, st.e);
        assert!(st.members.contains_key(&NodeId(2)));
    }

    #[test]
    fn same_epoch_straggler_revives_and_tears_back_down() {
        let net = generate::ring(3);
        let (mut e0, _e1, leave) = torn_down_pair(&net);
        let tomb = e0.tombstone(MC).expect("tombstone").clone();
        // A same-epoch withdrawal straggler (stamp at or below final_r,
        // no event to count) revives the state, stays empty and caught
        // up, and the drain deletes it again: self-healing, no zombie.
        let straggler = McLsa {
            event: McEventKind::None,
            proposal: None,
            ..leave
        };
        assert!(e0.on_mc_lsa(straggler).is_empty());
        assert!(e0.state(MC).is_none(), "empty revival tears back down");
        assert_eq!(e0.tombstone(MC), Some(&tomb));
    }

    #[test]
    fn older_epoch_straggler_is_fenced_after_recreation() {
        let net = generate::ring(3);
        let (mut e0, _e1, leave) = torn_down_pair(&net);
        // Local re-create over the tombstone starts incarnation 1...
        e0.local_join(MC, McType::Symmetric, Role::SenderReceiver);
        assert_eq!(e0.state(MC).unwrap().epoch, 1);
        let before = e0.state(MC).unwrap().clone();
        // ...so the dead incarnation's straggler bounces off the fence.
        assert!(e0.on_mc_lsa(leave).is_empty());
        assert_eq!(e0.state(MC).unwrap(), &before);
    }

    #[test]
    fn higher_epoch_lsa_resets_the_state_and_rejoins_members() {
        let net = generate::ring(3);
        let mut e0 = engine(0, 3);
        e0.local_join(MC, McType::Symmetric, Role::SenderReceiver);
        e0.on_computation_done(MC, &net);
        assert_eq!(e0.state(MC).unwrap().epoch, 0);
        // Another switch re-created the MC at epoch 1 (it saw a teardown we
        // never performed): our incarnation is dead. The state resets to
        // the new epoch and, as a member, we announce ourselves in it.
        let mut stamp = Timestamp::zero(3);
        stamp.incr(NodeId(2));
        e0.on_mc_lsa(McLsa {
            source: NodeId(2),
            event: McEventKind::Join(Role::SenderReceiver),
            mc: MC,
            mc_type: McType::Symmetric,
            epoch: 1,
            proposal: None,
            stamp,
        });
        let st = e0.state(MC).expect("reset to the new incarnation");
        assert_eq!(st.epoch, 1);
        assert!(st.members.contains_key(&NodeId(2)));
        assert!(st.members.contains_key(&NodeId(0)), "we re-joined");
        assert!(st.computing.is_some(), "the re-join started a computation");
        let done = e0.on_computation_done(MC, &net);
        let announced = flooded(&done);
        assert!(!announced.is_empty());
        assert_eq!(announced[0].epoch, 1, "the re-join floods at epoch 1");
    }

    #[test]
    fn eager_deferred_flood_mutation_floods_immediately() {
        // The Fig. 4 lines 15-17 verbatim behavior, kept reachable for the
        // checker: the second local event floods before the first is
        // announced.
        let mut e0 = engine(0, 5);
        e0.set_mutation(EngineMutation::EagerDeferredFlood);
        e0.local_join(MC, McType::Symmetric, Role::SenderReceiver);
        let a = e0.local_leave(MC);
        let lsas = flooded(&a);
        assert_eq!(lsas.len(), 1);
        assert_eq!(lsas[0].event, McEventKind::Leave);
        assert_eq!(lsas[0].proposal, None);
    }

    /// Builds `k` resident MCs with installed path trees via database
    /// sync, every tree using the edge `(0, 1)`.
    fn engine_with_k_mcs(n: usize, k: u32) -> DgmcEngine {
        use dgmc_mctree::McTopology;
        use std::collections::BTreeSet;
        let mut e0 = engine(0, n);
        let snapshot: Vec<McSync> = (0..k)
            .map(|i| {
                let mc = McId(i + 1);
                // Three members spread over the network; the tree is the
                // path 0-1-…-last so the edge (0,1) is always used.
                let last = 2 + (i % u32::try_from(n - 2).expect("test n fits u32"));
                let member_ids = [0u32, 1, last];
                let mut members = BTreeMap::new();
                let mut r = Timestamp::zero(n);
                for &m in &member_ids {
                    members.insert(NodeId(m), Role::SenderReceiver);
                    r.incr(NodeId(m));
                }
                let edges = (0..last).map(|a| (NodeId(a), NodeId(a + 1)));
                let terminals: BTreeSet<NodeId> = members.keys().copied().collect();
                McSync {
                    mc,
                    mc_type: McType::Symmetric,
                    epoch: 0,
                    r: r.clone(),
                    e: r.clone(),
                    c: r.clone(),
                    c_source: Some(NodeId(0)),
                    members,
                    installed: Some(McTopology::from_edges(edges, terminals)),
                }
            })
            .collect();
        e0.import_sync(snapshot);
        e0
    }

    #[test]
    fn sharded_link_event_is_byte_identical_to_serial() {
        // Enough MCs to clear SHARD_MIN_MCS so jobs > 1 really shards.
        let k = u32::try_from(SHARD_MIN_MCS).expect("shard threshold fits u32") * 2;
        let serial = engine_with_k_mcs(8, k);
        assert_eq!(serial.mc_ids().len(), k as usize);
        for jobs in [1usize, 2, 4] {
            // Cloned engines share the observer Rc; give each its own so
            // the two logs record independently.
            let mut eng = serial.clone();
            eng.set_jobs(jobs);
            eng.set_observer(SharedObserver::new());
            let log = eng.observer().attach_log(usize::MAX);
            let mut reference = serial.clone();
            reference.set_observer(SharedObserver::new());
            let ref_log = reference.observer().attach_log(usize::MAX);
            let a = eng.local_link_event(NodeId(0), NodeId(1));
            let b = reference.local_link_event_scan(NodeId(0), NodeId(1));
            assert_eq!(a, b, "jobs={jobs}: actions diverge from the scan path");
            assert_eq!(
                log.borrow().iter().cloned().collect::<Vec<_>>(),
                ref_log.borrow().iter().cloned().collect::<Vec<_>>(),
                "jobs={jobs}: decision events diverge"
            );
            for mc in serial.mc_ids() {
                assert_eq!(
                    eng.state(mc),
                    reference.state(mc),
                    "jobs={jobs}: state diverges for {mc}"
                );
            }
        }
    }

    #[test]
    fn link_event_index_agrees_with_scan_at_scale() {
        let eng = engine_with_k_mcs(8, 100);
        for (a, b) in [(0u32, 1u32), (1, 2), (2, 3), (5, 6), (0, 7)] {
            assert_eq!(
                eng.mcs_using_link(NodeId(a), NodeId(b)),
                eng.mcs_using_link_scan(NodeId(a), NodeId(b)),
                "edge ({a},{b})"
            );
        }
    }
}
