//! Property tests of the D-GMC wire codecs: every frame round-trips, and
//! the decode path is *total* — truncated, torn or garbage input yields a
//! clean `CodecError`, never a panic and never an absurd allocation.
//!
//! Totality matters because the socket driver feeds these decoders raw
//! datagrams: a single malformed packet must not take a node down (the
//! engine asserts structural invariants, so anything that decodes is
//! additionally vetted by `dgmc_node::frame::frame_is_sane` before it may
//! touch protocol state).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use dgmc_core::codec::{
    decode_data_msg, decode_db_sync, decode_flood_packet, decode_mc_lsa, decode_mc_sync,
    decode_timestamp, decode_topology, encode_data_msg, encode_db_sync, encode_flood_packet,
    encode_mc_lsa, encode_mc_sync, MAX_TIMESTAMP_WIDTH,
};
use dgmc_core::switch::{DataKind, DataMsg, DgmcPayload};
use dgmc_core::{McEventKind, McId, McLsa, McSync, Timestamp};
use dgmc_lsr::codec::decode_router_lsa;
use dgmc_lsr::lsa::{FloodId, FloodPacket, LinkAdv, RouterLsa};
use dgmc_mctree::{McTopology, McType, Role};
use dgmc_topology::{LinkId, NodeId};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

fn arb_role() -> impl Strategy<Value = Role> {
    (0u32..3).prop_map(|i| match i {
        0 => Role::Sender,
        1 => Role::Receiver,
        _ => Role::SenderReceiver,
    })
}

fn arb_mc_type() -> impl Strategy<Value = McType> {
    (0u32..3).prop_map(|i| match i {
        0 => McType::Symmetric,
        1 => McType::ReceiverOnly,
        _ => McType::Asymmetric,
    })
}

fn arb_event() -> impl Strategy<Value = McEventKind> {
    (0u32..6).prop_map(|i| match i {
        0 => McEventKind::Join(Role::Sender),
        1 => McEventKind::Join(Role::Receiver),
        2 => McEventKind::Join(Role::SenderReceiver),
        3 => McEventKind::Leave,
        4 => McEventKind::Link,
        _ => McEventKind::None,
    })
}

fn arb_stamp(width: usize) -> impl Strategy<Value = Timestamp> {
    proptest::collection::vec(0u64..50, width).prop_map(Timestamp::from_components)
}

fn arb_topology() -> impl Strategy<Value = Option<McTopology>> {
    let edges = proptest::collection::vec((0u32..8, 0u32..8), 0..6);
    let terminals = proptest::collection::btree_set(0u32..8, 0..4);
    (0u32..2, edges, terminals).prop_map(|(present, edges, terminals)| {
        (present == 1).then(|| {
            McTopology::from_edges(
                edges
                    .into_iter()
                    .filter(|(a, b)| a != b)
                    .map(|(a, b)| (NodeId(a), NodeId(b))),
                terminals.into_iter().map(NodeId).collect::<BTreeSet<_>>(),
            )
        })
    })
}

fn arb_mc_lsa() -> impl Strategy<Value = McLsa> {
    (
        (0u32..8, arb_event(), 1u32..5, arb_mc_type()),
        (0u64..4, arb_topology(), arb_stamp(8)),
    )
        .prop_map(
            |((source, event, mc, mc_type), (epoch, proposal, stamp))| McLsa {
                source: NodeId(source),
                event,
                mc: McId(mc),
                mc_type,
                epoch,
                proposal,
                stamp,
            },
        )
}

fn arb_mc_sync() -> impl Strategy<Value = McSync> {
    let members = proptest::collection::vec((0u32..8, arb_role()), 0..5);
    (
        (1u32..5, arb_mc_type(), 0u64..4),
        (arb_stamp(8), arb_stamp(8), arb_stamp(8)),
        (0u32..9, members, arb_topology()),
    )
        .prop_map(
            |((mc, mc_type, epoch), (r, e, c), (c_source, members, installed))| McSync {
                mc: McId(mc),
                mc_type,
                epoch,
                r,
                e,
                c,
                c_source: (c_source < 8).then_some(NodeId(c_source)),
                members: members
                    .into_iter()
                    .map(|(n, role)| (NodeId(n), role))
                    .collect::<BTreeMap<_, _>>(),
                installed,
            },
        )
}

fn arb_router_lsa() -> impl Strategy<Value = RouterLsa> {
    let links = proptest::collection::vec((0u32..16, 0u32..8, 1u64..10, any::<bool>()), 0..6);
    (0u32..8, 0u64..100, links).prop_map(|(origin, seq, links)| RouterLsa {
        origin: NodeId(origin),
        seq,
        links: links
            .into_iter()
            .map(|(l, n, cost, up)| LinkAdv {
                link: LinkId(l),
                neighbor: NodeId(n),
                cost,
                up,
            })
            .collect(),
    })
}

fn arb_data_msg() -> impl Strategy<Value = DataMsg> {
    (
        (1u32..5, any::<u64>(), 0u32..8),
        (0u32..17, 0u32..8, any::<bool>()),
    )
        .prop_map(
            |((mc, packet_id, origin), (via, contact, unicast))| DataMsg {
                mc: McId(mc),
                packet_id,
                origin: NodeId(origin),
                kind: if unicast {
                    DataKind::UnicastToContact {
                        contact: NodeId(contact),
                    }
                } else {
                    DataKind::TreeFlood {
                        via: (via < 16).then_some(LinkId(via)),
                    }
                },
            },
        )
}

fn encoded<F: FnOnce(&mut BytesMut)>(f: F) -> Vec<u8> {
    let mut out = BytesMut::new();
    f(&mut out);
    out.to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mc_lsa_round_trips(lsa in arb_mc_lsa()) {
        let bytes = encoded(|out| encode_mc_lsa(&lsa, out));
        let mut buf = Bytes::from(&bytes[..]);
        let back = decode_mc_lsa(&mut buf).expect("decode");
        prop_assert_eq!(&back, &lsa);
        prop_assert_eq!(buf.remaining(), 0, "decoder consumed everything");
    }

    #[test]
    fn mc_sync_round_trips(sync in arb_mc_sync()) {
        let bytes = encoded(|out| encode_mc_sync(&sync, out));
        let mut buf = Bytes::from(&bytes[..]);
        let back = decode_mc_sync(&mut buf).expect("decode");
        prop_assert_eq!(back, sync);
    }

    #[test]
    fn db_sync_round_trips(
        lsas in proptest::collection::vec(arb_router_lsa(), 0..4),
        syncs in proptest::collection::vec(arb_mc_sync(), 0..4),
    ) {
        let bytes = encoded(|out| encode_db_sync(&lsas, &syncs, out));
        let mut buf = Bytes::from(&bytes[..]);
        let (back_lsas, back_syncs) = decode_db_sync(&mut buf).expect("decode");
        prop_assert_eq!(back_syncs, syncs);
        // RouterLsa has no PartialEq: compare via re-encoding.
        let orig = encoded(|out| encode_db_sync(&lsas, &[], out));
        let back = encoded(|out| encode_db_sync(&back_lsas, &[], out));
        prop_assert_eq!(orig, back);
    }

    #[test]
    fn flood_and_data_round_trip(lsa in arb_mc_lsa(), data in arb_data_msg(), seq in 0u64..100) {
        let packet = FloodPacket {
            id: FloodId { origin: lsa.source, seq },
            payload: DgmcPayload::Mc(lsa),
        };
        let bytes = encoded(|out| encode_flood_packet(&packet, out));
        let back = decode_flood_packet(&mut Bytes::from(&bytes[..])).expect("decode");
        prop_assert_eq!(encoded(|out| encode_flood_packet(&back, out)), bytes);

        let bytes = encoded(|out| encode_data_msg(&data, out));
        let back = decode_data_msg(&mut Bytes::from(&bytes[..])).expect("decode");
        prop_assert_eq!(encoded(|out| encode_data_msg(&back, out)), bytes);
    }

    /// Any truncation of a valid encoding decodes to a clean error (or, for
    /// a prefix that happens to be self-delimiting, a clean value) — never
    /// a panic.
    #[test]
    fn truncations_never_panic(
        lsas in proptest::collection::vec(arb_router_lsa(), 0..3),
        syncs in proptest::collection::vec(arb_mc_sync(), 0..3),
        cut in any::<prop::sample::Index>(),
    ) {
        let bytes = encoded(|out| encode_db_sync(&lsas, &syncs, out));
        let cut = cut.index(bytes.len().max(1));
        let _ = decode_db_sync(&mut Bytes::from(&bytes[..cut]));
    }

    /// Raw garbage fed to every decoder completes without panicking and
    /// without attempting giant allocations.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = decode_timestamp(&mut Bytes::from(&bytes[..]));
        let _ = decode_topology(&mut Bytes::from(&bytes[..]));
        let _ = decode_mc_lsa(&mut Bytes::from(&bytes[..]));
        let _ = decode_mc_sync(&mut Bytes::from(&bytes[..]));
        let _ = decode_db_sync(&mut Bytes::from(&bytes[..]));
        let _ = decode_flood_packet(&mut Bytes::from(&bytes[..]));
        let _ = decode_data_msg(&mut Bytes::from(&bytes[..]));
        let _ = decode_router_lsa(&mut Bytes::from(&bytes[..]));
    }
}

/// Regression: a torn length field must not drive a pre-allocation. These
/// inputs used to request gigabytes before the need-before-alloc guards.
#[test]
fn giant_length_fields_fail_fast() {
    // Timestamp claiming u32::MAX components.
    let mut out = BytesMut::new();
    out.put_u32(u32::MAX); // n
    out.put_u32(0); // k
    assert!(decode_timestamp(&mut Bytes::from(&out.to_vec()[..])).is_err());
    assert!(u32::MAX as usize > MAX_TIMESTAMP_WIDTH);

    // Timestamp with k > n (inconsistent sparse encoding).
    let mut out = BytesMut::new();
    out.put_u32(4); // n
    out.put_u32(5); // k > n
    out.put_slice(&[0u8; 5 * 12]);
    assert!(decode_timestamp(&mut Bytes::from(&out.to_vec()[..])).is_err());

    // Topology claiming u32::MAX edges.
    let mut out = BytesMut::new();
    out.put_u32(u32::MAX); // n_edges
    out.put_u32(0); // n_terminals
    assert!(decode_topology(&mut Bytes::from(&out.to_vec()[..])).is_err());

    // Router LSA claiming u32::MAX link advertisements.
    let mut out = BytesMut::new();
    out.put_u32(0); // origin
    out.put_u64(1); // seq
    out.put_u32(u32::MAX); // n links
    assert!(decode_router_lsa(&mut Bytes::from(&out.to_vec()[..])).is_err());

    // McSync claiming u32::MAX members.
    let sync = McSync {
        mc: McId(1),
        mc_type: McType::Symmetric,
        epoch: 0,
        r: Timestamp::zero(2),
        e: Timestamp::zero(2),
        c: Timestamp::zero(2),
        c_source: None,
        members: BTreeMap::new(),
        installed: None,
    };
    let mut out = BytesMut::new();
    encode_mc_sync(&sync, &mut out);
    let mut bytes = out.to_vec();
    // The member count is the 4 bytes right before the trailing
    // `has_installed` byte: 0 members, no source, no topology.
    let count_at = bytes.len() - 5;
    bytes[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_be_bytes());
    assert!(decode_mc_sync(&mut Bytes::from(&bytes[..])).is_err());
}
