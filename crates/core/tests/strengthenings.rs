//! Direct tests of the two consensus strengthenings documented in
//! DESIGN.md §3: equal-stamp arbitration by smallest source, and candidate
//! stashing across withdrawn computations.

use dgmc_core::{DgmcAction, DgmcEngine, McEventKind, McId, McLsa, Timestamp};
use dgmc_mctree::{McTopology, McType, Role, SphStrategy};
use dgmc_topology::{generate, NodeId};
use std::collections::BTreeSet;
use std::rc::Rc;

const MC: McId = McId(1);
const N: usize = 6;

fn engine(me: u32) -> DgmcEngine {
    DgmcEngine::new(NodeId(me), N, Rc::new(SphStrategy::new()))
}

/// Hand-crafts a join LSA from `source` carrying `stamp` and `proposal`.
fn lsa(source: u32, event: McEventKind, stamp: &Timestamp, proposal: Option<McTopology>) -> McLsa {
    McLsa {
        source: NodeId(source),
        event,
        mc: MC,
        mc_type: McType::Symmetric,
        epoch: 0,
        proposal,
        stamp: stamp.clone(),
    }
}

fn tree(edges: &[(u32, u32)], terminals: &[u32]) -> McTopology {
    McTopology::from_edges(
        edges.iter().map(|&(a, b)| (NodeId(a), NodeId(b))),
        terminals
            .iter()
            .map(|&t| NodeId(t))
            .collect::<BTreeSet<_>>(),
    )
}

#[test]
fn equal_stamp_proposals_resolve_to_smallest_source() {
    // Receiver 5 sees two proposals with identical stamps but different
    // content (the incremental-strategy divergence): source 3's must win
    // regardless of arrival order.
    let mut stamp = Timestamp::zero(N);
    stamp.incr(NodeId(1)); // one join event from switch 1
    let tree_a = tree(&[(1, 2)], &[1, 2]);
    let tree_b = tree(&[(1, 0), (0, 2)], &[1, 2]);

    for order in [[3u32, 4], [4, 3]] {
        let mut e5 = engine(5);
        // Event LSA first so R catches up with the stamps.
        e5.on_mc_lsa(lsa(
            1,
            McEventKind::Join(Role::SenderReceiver),
            &stamp,
            None,
        ));
        let proposals = [
            (order[0], if order[0] == 3 { &tree_a } else { &tree_b }),
            (order[1], if order[1] == 3 { &tree_a } else { &tree_b }),
        ];
        for (src, topo) in proposals {
            e5.on_mc_lsa(lsa(src, McEventKind::None, &stamp, Some((*topo).clone())));
        }
        let st = e5.state(MC).expect("state allocated");
        assert_eq!(
            st.c_source,
            Some(NodeId(3)),
            "order {order:?}: smallest source must win"
        );
        assert_eq!(st.installed.as_ref(), Some(&tree_a), "order {order:?}");
    }
}

#[test]
fn stashed_candidate_survives_a_withdrawn_computation() {
    // Engine 0 starts computing for its own join; three LSAs queue up in
    // the mailbox meanwhile (an inconsistent event, a full-knowledge
    // proposal, another inconsistent event). The completion is withdrawn
    // and the post-drain starts a new computation — the accepted candidate
    // must ride along in the job instead of being nulled (Fig. 5 line 29).
    let net = generate::ring(N);
    let mut e0 = engine(0);
    let start = e0.local_join(MC, McType::Symmetric, Role::SenderReceiver);
    assert!(start.contains(&DgmcAction::StartComputation { mc: MC }));
    let my_stamp = e0.state(MC).unwrap().r.clone(); // (1,0,0,0,0,0)

    let mut stale3 = Timestamp::zero(N);
    stale3.incr(NodeId(3));
    let mut full2 = my_stamp.clone();
    full2.incr(NodeId(2));
    full2.incr(NodeId(3));
    let candidate_tree = tree(&[(0, 1), (1, 2), (2, 3)], &[0, 2, 3]);
    let mut stale4 = Timestamp::zero(N);
    stale4.incr(NodeId(4));

    // All three queue: the engine is mid-computation.
    assert!(e0
        .on_mc_lsa(lsa(
            3,
            McEventKind::Join(Role::SenderReceiver),
            &stale3,
            None
        ))
        .is_empty());
    assert!(e0
        .on_mc_lsa(lsa(
            2,
            McEventKind::Join(Role::SenderReceiver),
            &full2,
            Some(candidate_tree.clone()),
        ))
        .is_empty());
    assert!(e0
        .on_mc_lsa(lsa(
            4,
            McEventKind::Join(Role::SenderReceiver),
            &stale4,
            None
        ))
        .is_empty());

    // Completion: withdrawn (mailbox non-empty); the drain accepts the
    // proposal from 2, re-raises the flag on the LSA from 4, and starts a
    // new computation carrying the candidate as stash.
    let done = e0.on_computation_done(MC, &net);
    assert!(done.contains(&DgmcAction::Withdrawn { mc: MC }));
    assert!(done.contains(&DgmcAction::StartComputation { mc: MC }));
    let job = e0.state(MC).unwrap().computing.clone().expect("computing");
    let (stash_tree, stash_stamp, stash_src) = job
        .stashed_candidate
        .expect("candidate stashed, not nulled");
    assert_eq!(stash_src, NodeId(2));
    assert_eq!(stash_tree, candidate_tree);
    assert_eq!(stash_stamp, full2);

    // Drive to quiescence; the protocol stays consistent and installs a
    // topology covering every member.
    let mut guard = 0;
    while e0.state(MC).is_some_and(|st| st.computing.is_some()) {
        e0.on_computation_done(MC, &net);
        guard += 1;
        assert!(guard < 10, "no livelock");
    }
    let st = e0.state(MC).expect("members remain");
    assert!(st.invariant_holds());
    assert!(!st.make_proposal_flag);
    let installed = st.installed.as_ref().expect("topology installed");
    let members: BTreeSet<NodeId> = st.members.keys().copied().collect();
    assert_eq!(members.len(), 4, "0, 2, 3, 4");
    assert_eq!(installed.validate(&net, &members), Ok(()));
}

#[test]
fn own_fresh_proposal_yields_to_stashed_smaller_source() {
    // Engine 4 computes a triggered proposal, but an equal-stamp proposal
    // from source 2 was stashed: at completion the smaller source wins the
    // install while our proposal is still flooded for others to arbitrate.
    let net = generate::ring(N);
    let mut e4 = engine(4);
    // Learn of the MC via a join from 1 (no proposal) -> inconsistency
    // cannot trigger yet (no local events). Give 4 a local join so its
    // R[4] outruns later stamps.
    let mut s1 = Timestamp::zero(N);
    s1.incr(NodeId(1));
    let _ = e4.on_mc_lsa(lsa(1, McEventKind::Join(Role::SenderReceiver), &s1, None));
    let start = e4.local_join(MC, McType::Symmetric, Role::SenderReceiver);
    assert!(start.contains(&DgmcAction::StartComputation { mc: MC }));
    // Source 2's proposal with the *same* knowledge arrives mid-compute;
    // stamp equals what our completed proposal would carry.
    let full = e4.state(MC).unwrap().r.clone();
    let their_tree = tree(&[(1, 2), (2, 3), (3, 4)], &[1, 4]);
    let _ = e4.on_mc_lsa(lsa(2, McEventKind::None, &full, Some(their_tree.clone())));
    // Completion: withdrawn (mailbox non-empty), drain accepts the
    // candidate, flag forces our own triggered computation, which then
    // arbitrates against the stash.
    let done = e4.on_computation_done(MC, &net);
    let st = e4.state(MC).unwrap();
    // Whether we computed again or not, the installed topology must be
    // from the smallest source among equal stamps.
    if st.c == full {
        assert_eq!(st.c_source, Some(NodeId(2)), "{done:?}");
        assert_eq!(st.installed.as_ref(), Some(&their_tree));
    }
}
