//! Golden decision traces for the two repaired protocol races
//! (DESIGN.md §11): the exact step-by-step behavior of the *fixed*
//! engine on the interleavings that used to break it, hand-derived and
//! pinned stamp-for-stamp. As in `golden_traces.rs`, every step runs the
//! production [`DgmcEngine`] and the executable Fig. 4/5 specification in
//! lockstep, so the traces double as spec-conformance evidence for the
//! repair paths.
//!
//! Trace C — **teardown, tombstone and epoch fence**: the last member's
//! leave tears the connection down everywhere and records a tombstone; a
//! later local join starts incarnation 1; the dead incarnation's straggler
//! LSA bounces off the epoch fence instead of corrupting the new one.
//!
//! Trace D — **deferred second event**: a leave landing while the join's
//! computation is still in flight floods *nothing*; the stale completion
//! then announces join and leave strictly in local order (each with the
//! stamp it was recorded under), so receivers can never see same-origin
//! events inverted.

use dgmc_core::spec::{actions_match, diff_engine, SpecAction, SpecMc, SpecSwitch};
use dgmc_core::{DgmcAction, DgmcEngine, McEventKind, McId, McLsa, Timestamp};
use dgmc_mctree::{McAlgorithm, McType, Role, SphStrategy};
use dgmc_topology::{generate, Network, NodeId, SpfCache};
use std::collections::BTreeSet;
use std::rc::Rc;

const MC: McId = McId(7);
const S0: NodeId = NodeId(0);
const S1: NodeId = NodeId(1);
const S2: NodeId = NodeId(2);

fn ts(v: &[u64]) -> Timestamp {
    Timestamp::from_components(v.to_vec())
}

/// Compact action-shape fingerprint for step assertions.
fn kinds(actions: &[SpecAction]) -> Vec<&'static str> {
    actions
        .iter()
        .map(|a| match a {
            SpecAction::Flood(_) => "flood",
            SpecAction::StartComputation(_) => "start",
            SpecAction::Installed(_) => "installed",
            SpecAction::Withdrawn(_) => "withdrawn",
        })
        .collect()
}

fn floods(actions: &[SpecAction]) -> Vec<McLsa> {
    actions
        .iter()
        .filter_map(|a| match a {
            SpecAction::Flood(lsa) => Some(lsa.clone()),
            _ => None,
        })
        .collect()
}

/// One switch driven through the engine and the spec simultaneously;
/// every transition asserts the two agree action-for-action and
/// field-for-field before the golden expectations are checked.
struct Pair {
    engine: DgmcEngine,
    spec: SpecSwitch,
}

impl Pair {
    fn new(me: NodeId, n: usize) -> Pair {
        Pair {
            engine: DgmcEngine::new(me, n, Rc::new(SphStrategy::new())),
            spec: SpecSwitch::new(me, n),
        }
    }

    fn lockstep(
        &mut self,
        spec_next: SpecSwitch,
        sa: Vec<SpecAction>,
        ea: Vec<DgmcAction>,
    ) -> Vec<SpecAction> {
        self.spec = spec_next;
        assert!(
            actions_match(&sa, &ea),
            "{}: spec actions {sa:?} vs engine {ea:?}",
            self.spec.id()
        );
        assert_eq!(
            diff_engine(&self.spec, &self.engine),
            None,
            "{}: spec/engine state divergence",
            self.spec.id()
        );
        sa
    }

    fn join(&mut self) -> Vec<SpecAction> {
        let ea = self
            .engine
            .local_join(MC, McType::Symmetric, Role::SenderReceiver);
        let (next, sa) = self
            .spec
            .host_join(MC, McType::Symmetric, Role::SenderReceiver);
        self.lockstep(next, sa, ea)
    }

    fn leave(&mut self) -> Vec<SpecAction> {
        let ea = self.engine.local_leave(MC);
        let (next, sa) = self.spec.host_leave(MC);
        self.lockstep(next, sa, ea)
    }

    fn done(&mut self, net: &Network) -> Vec<SpecAction> {
        let ea = self.engine.on_computation_done(MC, net);
        let algo = SphStrategy::new();
        let (next, sa) =
            self.spec
                .computation_done(MC, &mut |terminals: &BTreeSet<NodeId>, previous| {
                    algo.compute_with(net, terminals, previous, &SpfCache::disabled())
                });
        self.lockstep(next, sa, ea)
    }

    fn recv(&mut self, lsa: &McLsa) -> Vec<SpecAction> {
        let ea = self.engine.on_mc_lsa(lsa.clone());
        let (next, sa) = self.spec.receive_lsa(lsa.clone());
        self.lockstep(next, sa, ea)
    }

    fn st(&self) -> &SpecMc {
        self.spec.state(MC).expect("MC allocated")
    }

    fn gone(&self) -> bool {
        self.spec.state(MC).is_none() && self.engine.state(MC).is_none()
    }
}

/// Trace C: the repaired teardown/resurrection sequence. The last member
/// leaves, every switch tears the MC down behind a tombstone, a local
/// join re-creates it at incarnation 1, and the dead incarnation's
/// straggler leave is fenced instead of stranding `E` above `R`.
#[test]
fn golden_trace_teardown_tombstone_and_epoch_fence() {
    let net = generate::ring(3);
    let mut s0 = Pair::new(S0, 3);
    let mut s1 = Pair::new(S1, 3);
    let mut s2 = Pair::new(S2, 3);

    // 1-2. s1 joins and completes: a single-member incarnation-0 tree.
    assert_eq!(kinds(&s1.join()), ["start"]);
    let j1 = floods(&s1.done(&net)).remove(0);
    assert_eq!(j1.epoch, 0);
    assert_eq!(j1.stamp, ts(&[0, 1, 0]));
    assert_eq!(s1.st().c, ts(&[0, 1, 0]));

    // 3-4. Both bystanders install it.
    assert_eq!(kinds(&s0.recv(&j1)), ["installed"]);
    assert_eq!(kinds(&s2.recv(&j1)), ["installed"]);
    assert_eq!(s0.st().r, ts(&[0, 1, 0]));
    assert_eq!(s2.st().r, ts(&[0, 1, 0]));

    // 5-6. The only member leaves. The completion announces the leave at
    //      R = (0,2,0); with the member list empty and R == E the drain
    //      deletes the state, leaving a tombstone that remembers the
    //      incarnation (epoch 0) and its final counts.
    assert_eq!(kinds(&s1.leave()), ["start"]);
    assert_eq!(s1.st().r, ts(&[0, 2, 0]));
    let a = s1.done(&net);
    let l1 = floods(&a).remove(0);
    assert_eq!(l1.event, McEventKind::Leave);
    assert_eq!(l1.epoch, 0);
    assert_eq!(l1.stamp, ts(&[0, 2, 0]));
    assert!(s1.gone(), "empty + caught-up state must tear down");
    let tomb = s1.engine.tombstone(MC).expect("tombstone").clone();
    assert_eq!(tomb.epoch, 0);
    assert_eq!(tomb.final_r, ts(&[0, 2, 0]));
    assert_eq!(
        s1.spec.tombstone(MC),
        Some(&tomb),
        "spec mirrors the tombstone"
    );

    // 7. The leave reaches s0: same emptiness, same teardown, same
    //    tombstone — but s2's copy stays undelivered (a straggler).
    s0.recv(&l1);
    assert!(s0.gone());
    assert_eq!(s0.engine.tombstone(MC), Some(&tomb));

    // 8-9. s0 re-creates the connection over its tombstone: the local
    //      join starts incarnation 1 with fresh counts.
    assert_eq!(kinds(&s0.join()), ["start"]);
    assert_eq!(s0.st().epoch, 1);
    assert_eq!(s0.st().r, ts(&[1, 0, 0]));
    let j0 = floods(&s0.done(&net)).remove(0);
    assert_eq!(j0.epoch, 1, "floods carry the new incarnation");
    assert_eq!(j0.stamp, ts(&[1, 0, 0]));

    // 10. The epoch-1 join reaches s2, which still holds incarnation-0
    //     state: the newer epoch resets it — fresh counts, not merged
    //     ones — and s0's proposal installs.
    assert_eq!(kinds(&s2.recv(&j0)), ["installed"]);
    assert_eq!(s2.st().epoch, 1);
    assert_eq!(s2.st().r, ts(&[1, 0, 0]));
    assert_eq!(s2.st().c, ts(&[1, 0, 0]));

    // 11. THE FENCE. The dead incarnation's straggler leave finally
    //     arrives at s2. Pre-fix this counted an epoch-0 event into the
    //     epoch-1 state (the resurrection bug's essence); now it bounces:
    //     no actions, nothing moves.
    let before = s2.st().clone();
    assert!(
        s2.recv(&l1).is_empty(),
        "the old incarnation's LSA must be fenced"
    );
    assert_eq!(s2.st(), &before, "fenced LSA must not move any state");

    // 12. s1 (torn down, tombstone epoch 0) learns of incarnation 1 and
    //     re-creates fresh state for it.
    assert_eq!(kinds(&s1.recv(&j0)), ["installed"]);
    assert_eq!(s1.st().epoch, 1);

    // Converged: everyone runs incarnation 1 with identical stamps and a
    // single member — no stranded E, no zombie state.
    for p in [&s0, &s1, &s2] {
        assert_eq!(p.st().epoch, 1);
        assert_eq!(p.st().r, ts(&[1, 0, 0]));
        assert_eq!(p.st().e, ts(&[1, 0, 0]));
        assert_eq!(p.st().c, ts(&[1, 0, 0]));
        assert_eq!(p.st().members.keys().copied().collect::<Vec<_>>(), [S0]);
    }
}

/// Trace D: the repaired deferred-event sequence. A leave lands at s2
/// while its join computation is in flight; nothing floods until the
/// stale completion announces join-then-leave in local order, and every
/// receiver converges on the origin's member list.
#[test]
fn golden_trace_deferred_second_event_floods_in_local_order() {
    let net = generate::ring(3);
    let mut s0 = Pair::new(S0, 3);
    let mut s1 = Pair::new(S1, 3);
    let mut s2 = Pair::new(S2, 3);

    // 1-3. s0 joins, completes and everyone installs the 1-member tree.
    assert_eq!(kinds(&s0.join()), ["start"]);
    let j0 = floods(&s0.done(&net)).remove(0);
    assert_eq!(j0.stamp, ts(&[1, 0, 0]));
    assert_eq!(kinds(&s1.recv(&j0)), ["installed"]);
    assert_eq!(kinds(&s2.recv(&j0)), ["installed"]);

    // 4. s2 joins: computation starts, the join is not yet announced.
    assert_eq!(kinds(&s2.join()), ["start"]);
    assert_eq!(s2.st().r, ts(&[1, 0, 1]));

    // 5. THE DEFERRAL. s2's host leaves while the join's computation is
    //    still in flight. Fig. 4 lines 15-17 verbatim would flood the
    //    leave immediately — *before* the join, inverting same-origin
    //    order (race 2). The repair floods nothing here.
    assert!(
        s2.leave().is_empty(),
        "the second local event must wait for the withdrawal"
    );
    assert_eq!(s2.st().r, ts(&[1, 0, 2]), "the event itself is counted");

    // 6. The stale completion announces the backlog strictly in local
    //    order: the join at its pre-leave stamp, the leave at its own,
    //    then the withdrawal; the mailbox drain starts a recomputation.
    let a = s2.done(&net);
    assert_eq!(kinds(&a), ["flood", "flood", "withdrawn", "start"]);
    let announced = floods(&a);
    assert_eq!(announced[0].event, McEventKind::Join(Role::SenderReceiver));
    assert_eq!(announced[0].stamp, ts(&[1, 0, 1]));
    assert_eq!(announced[0].proposal, None);
    assert_eq!(announced[1].event, McEventKind::Leave);
    assert_eq!(announced[1].stamp, ts(&[1, 0, 2]));
    assert_eq!(announced[1].proposal, None);
    let (j2, l2) = (announced[0].clone(), announced[1].clone());

    // 7. The recomputation completes: a triggered proposal at the full
    //    stamp installs the post-leave (single-member) tree at s2.
    let a = s2.done(&net);
    assert_eq!(kinds(&a), ["flood", "installed"]);
    let t2 = floods(&a).remove(0);
    assert_eq!(t2.event, McEventKind::None);
    assert_eq!(t2.stamp, ts(&[1, 0, 2]));
    assert_eq!(s2.st().c, ts(&[1, 0, 2]));

    // 8-9. Receivers see join, leave, proposal — in origin order, as the
    //      protocol's FIFO flooding guarantees — and land exactly on the
    //      origin's view. Pre-fix the leave overtook the join here and
    //      split the member lists.
    for p in [&mut s0, &mut s1] {
        p.recv(&j2);
        assert_eq!(p.st().r, ts(&[1, 0, 1]));
        p.recv(&l2);
        assert_eq!(p.st().r, ts(&[1, 0, 2]));
        assert_eq!(kinds(&p.recv(&t2)), ["installed"]);
    }

    // Converged: identical stamps and the single remaining member.
    for p in [&s0, &s1, &s2] {
        assert_eq!(p.st().r, ts(&[1, 0, 2]));
        assert_eq!(p.st().e, ts(&[1, 0, 2]));
        assert_eq!(p.st().c, ts(&[1, 0, 2]));
        assert_eq!(p.st().members.keys().copied().collect::<Vec<_>>(), [S0]);
    }
}
