//! Property-based tests of the D-GMC engine.
//!
//! Rather than the timing-driven DES (covered by `protocol_e2e.rs`), these
//! tests drive a set of [`DgmcEngine`]s under an *adversarial scheduler*:
//! flooded LSAs are delivered in any interleaving that preserves per-origin
//! FIFO order (the guarantee real LSR flooding provides via sequence
//! numbers), and computation completions race arbitrarily with deliveries.
//! Whatever the schedule, the protocol must drain and leave every switch
//! with identical members, timestamps and topology.

use dgmc_core::{DgmcAction, DgmcEngine, McId, McLsa, Timestamp};
use dgmc_mctree::{McType, Role, SphStrategy};
use dgmc_topology::{generate, Network, NodeId};
use proptest::prelude::*;
use std::collections::VecDeque;
use std::rc::Rc;

const MC: McId = McId(1);

/// A cluster of engines plus the adversarial delivery fabric.
struct Cluster {
    net: Network,
    engines: Vec<DgmcEngine>,
    /// queues[origin][receiver]: per-origin FIFO delivery queues.
    queues: Vec<Vec<VecDeque<McLsa>>>,
}

impl Cluster {
    fn new(n: usize) -> Cluster {
        let net = generate::grid(n, n);
        let size = net.len();
        let engines = net
            .nodes()
            .map(|id| DgmcEngine::new(id, size, Rc::new(SphStrategy::new())))
            .collect();
        Cluster {
            net,
            engines,
            queues: vec![vec![VecDeque::new(); size]; size],
        }
    }

    fn size(&self) -> usize {
        self.engines.len()
    }

    fn apply(&mut self, origin: usize, actions: Vec<DgmcAction>) {
        for action in actions {
            if let DgmcAction::Flood(lsa) = action {
                for receiver in 0..self.size() {
                    if receiver != origin {
                        self.queues[origin][receiver].push_back(lsa.clone());
                    }
                }
            }
        }
    }

    fn join(&mut self, node: usize) {
        let actions = self.engines[node].local_join(MC, McType::Symmetric, Role::SenderReceiver);
        self.apply(node, actions);
    }

    fn leave(&mut self, node: usize) {
        let actions = self.engines[node].local_leave(MC);
        self.apply(node, actions);
    }

    /// One adversarial step; `choice` selects among enabled moves.
    /// Returns false when fully drained.
    fn step(&mut self, choice: usize) -> bool {
        // Enabled moves: completions first, then queue deliveries.
        let mut moves: Vec<(usize, Option<(usize, usize)>)> = Vec::new();
        for (i, e) in self.engines.iter().enumerate() {
            if e.state(MC).is_some_and(|st| st.computing.is_some()) {
                moves.push((i, None));
            }
        }
        for origin in 0..self.size() {
            for receiver in 0..self.size() {
                if !self.queues[origin][receiver].is_empty() {
                    moves.push((receiver, Some((origin, receiver))));
                }
            }
        }
        if moves.is_empty() {
            return false;
        }
        let (engine_idx, delivery) = moves[choice % moves.len()];
        let actions = match delivery {
            None => self.engines[engine_idx].on_computation_done(MC, &self.net),
            Some((origin, receiver)) => {
                let lsa = self.queues[origin][receiver]
                    .pop_front()
                    .expect("move was enabled");
                self.engines[receiver].on_mc_lsa(lsa)
            }
        };
        self.apply(engine_idx, actions);
        // Per-step invariant: E >= R and E >= C everywhere.
        for e in &self.engines {
            if let Some(st) = e.state(MC) {
                assert!(st.invariant_holds(), "timestamp invariant violated");
            }
        }
        true
    }

    /// Drains with the provided choice stream (cycled); panics on livelock.
    fn drain(&mut self, choices: &[usize]) {
        let mut budget = 100_000;
        let mut k = 0;
        loop {
            let c = if choices.is_empty() {
                0
            } else {
                choices[k % choices.len()]
            };
            k += 1;
            if !self.step(c) {
                return;
            }
            budget -= 1;
            assert!(budget > 0, "protocol livelocked under adversarial schedule");
        }
    }

    fn assert_consensus(&self, expected_members: &[usize]) {
        let states: Vec<_> = self.engines.iter().map(|e| e.state(MC)).collect();
        if expected_members.is_empty() {
            for (i, st) in states.iter().enumerate() {
                assert!(st.is_none(), "engine {i} kept state for a destroyed MC");
            }
            return;
        }
        let first = states[0].expect("state exists");
        for (i, st) in states.iter().enumerate() {
            let st = st.unwrap_or_else(|| panic!("engine {i} lost state"));
            assert_eq!(st.members, first.members, "member mismatch at {i}");
            assert_eq!(st.c, first.c, "C mismatch at {i}");
            assert_eq!(st.installed, first.installed, "topology mismatch at {i}");
            assert!(st.mailbox.is_empty() && st.computing.is_none());
        }
        let got: Vec<usize> = first.members.keys().map(|n| n.index()).collect();
        let mut want = expected_members.to_vec();
        want.sort_unstable();
        assert_eq!(got, want);
        let tree = first.installed.as_ref().expect("topology installed");
        assert_eq!(tree.validate(&self.net, tree.terminals()), Ok(()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any interleaving of a join burst converges to consensus.
    #[test]
    fn join_bursts_converge_under_any_schedule(
        joiners in prop::collection::btree_set(0usize..16, 2..6),
        choices in prop::collection::vec(0usize..64, 1..200),
    ) {
        let mut cluster = Cluster::new(4);
        let members: Vec<usize> = joiners.iter().copied().collect();
        for &j in &members {
            cluster.join(j);
        }
        cluster.drain(&choices);
        cluster.assert_consensus(&members);
    }

    /// Joins followed by racing leaves converge; full departure destroys
    /// the MC everywhere.
    #[test]
    fn join_then_leave_races_converge(
        joiners in prop::collection::btree_set(0usize..9, 2..5),
        leave_count in 0usize..5,
        choices in prop::collection::vec(0usize..64, 1..300),
    ) {
        let mut cluster = Cluster::new(3);
        let members: Vec<usize> = joiners.iter().copied().collect();
        for &j in &members {
            cluster.join(j);
        }
        cluster.drain(&choices);
        let leavers: Vec<usize> = members.iter().copied().take(leave_count).collect();
        for &l in &leavers {
            cluster.leave(l);
        }
        cluster.drain(&choices);
        let remaining: Vec<usize> = members
            .iter()
            .copied()
            .filter(|m| !leavers.contains(m))
            .collect();
        cluster.assert_consensus(&remaining);
    }

    /// Interleaved joins and leaves injected *mid-drain* still converge.
    #[test]
    fn events_injected_mid_drain_converge(
        first in 0usize..9,
        second in 0usize..9,
        prefix_steps in 0usize..20,
        choices in prop::collection::vec(0usize..64, 1..300),
    ) {
        prop_assume!(first != second);
        let mut cluster = Cluster::new(3);
        cluster.join(first);
        // Partially propagate, then inject a second event mid-flight.
        for (k, &c) in choices.iter().take(prefix_steps).enumerate() {
            if !cluster.step(c.wrapping_add(k)) {
                break;
            }
        }
        cluster.join(second);
        cluster.drain(&choices);
        cluster.assert_consensus(&[first, second]);
    }
}

/// Random bounded fault plans: recovered loss, duplication and jitter in
/// sane ranges (`hard_loss` stays 0 — genuine drops legitimately break the
/// protocol's reliable-flooding assumption and are covered by the mutation
/// tests instead).
fn fault_plan_strategy() -> impl Strategy<Value = dgmc_des::FaultPlan> {
    // Probabilities in per-mille steps: the vendored proptest only has
    // integer range strategies.
    (0u64..300, 0u64..300, 0u64..100).prop_map(|(loss_pm, dup_pm, jitter_us)| {
        dgmc_des::FaultPlan::uniform(dgmc_des::LinkFaults {
            loss: loss_pm as f64 / 1000.0,
            hard_loss: 0.0,
            duplicate: dup_pm as f64 / 1000.0,
            jitter: dgmc_des::SimDuration::micros(jitter_us),
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Under any bounded fault plan and fault seed, a join burst on a small
    /// topology drains and the full invariant suite holds at quiescence.
    #[test]
    fn bounded_fault_plans_uphold_the_invariant_suite(
        plan in fault_plan_strategy(),
        fault_seed in any::<u64>(),
        topology_choice in 0usize..3,
        joiners in prop::collection::btree_set(0u32..5, 2..4),
    ) {
        use dgmc_core::invariants;
        use dgmc_core::switch::{build_dgmc_sim, DgmcConfig, SwitchMsg};
        use dgmc_des::{ActorId, FaultyNet, RunOutcome, SimDuration};

        let net = match topology_choice {
            0 => generate::ring(5),
            1 => generate::grid(3, 3),
            _ => generate::ring(7),
        };
        let mut sim = build_dgmc_sim(
            &net,
            DgmcConfig::computation_dominated(),
            Rc::new(SphStrategy::new()),
        );
        sim.set_event_budget(10_000_000);
        sim.set_net_model(FaultyNet::new(plan, fault_seed));
        for (i, &j) in joiners.iter().enumerate() {
            sim.inject(
                ActorId(j),
                SimDuration::millis(5) * i as u64,
                SwitchMsg::HostJoin {
                    mc: MC,
                    mc_type: McType::Symmetric,
                    role: Role::SenderReceiver,
                },
            );
        }
        prop_assert_eq!(sim.run_to_quiescence(), RunOutcome::Quiescent);
        let violations = invariants::check_invariants(&sim, &net);
        prop_assert!(violations.is_empty(), "violations: {:?}", violations);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Incarnation epochs are monotone: each full-departure/re-join cycle
    /// tears the MC down everywhere, leaves a tombstone carrying the dead
    /// incarnation's epoch, and the next cycle runs at a strictly higher
    /// epoch — on every switch, under any adversarial schedule.
    #[test]
    fn teardown_rejoin_cycles_bump_epochs_monotonically(
        cycles in 1usize..4,
        joiners in prop::collection::btree_set(0usize..4, 1..4),
        choices in prop::collection::vec(0usize..64, 1..200),
    ) {
        let mut cluster = Cluster::new(2);
        let members: Vec<usize> = joiners.iter().copied().collect();
        for cycle in 0..cycles as u64 {
            for &j in &members {
                cluster.join(j);
            }
            cluster.drain(&choices);
            for (i, e) in cluster.engines.iter().enumerate() {
                let st = e.state(MC).unwrap_or_else(|| panic!("engine {i} lost state"));
                prop_assert_eq!(st.epoch, cycle, "wrong incarnation at engine {}", i);
            }
            for &j in &members {
                cluster.leave(j);
            }
            cluster.drain(&choices);
            for (i, e) in cluster.engines.iter().enumerate() {
                prop_assert!(e.state(MC).is_none(), "engine {} kept dead state", i);
                let tomb = e
                    .tombstone(MC)
                    .unwrap_or_else(|| panic!("engine {i} has no tombstone"));
                prop_assert_eq!(tomb.epoch, cycle, "wrong tombstone epoch at engine {}", i);
            }
        }
    }

    /// Epoch fencing: with a tombstone at epoch `k > 0`, an LSA from any
    /// strictly older incarnation bounces off — no state resurrected, no
    /// actions emitted — whatever event kind or stamp it carries.
    #[test]
    fn stale_epoch_lsas_are_fenced_by_the_tombstone(
        cycles in 2usize..4,
        choices in prop::collection::vec(0usize..64, 1..150),
        stale_pick in any::<u64>(),
        event_pick in 0u8..4,
        stamp_components in prop::collection::vec(0u64..5, 4),
    ) {
        let mut cluster = Cluster::new(2);
        for _ in 0..cycles {
            for j in [0usize, 1] {
                cluster.join(j);
            }
            cluster.drain(&choices);
            for j in [0usize, 1] {
                cluster.leave(j);
            }
            cluster.drain(&choices);
        }
        let tomb_epoch = cycles as u64 - 1;
        prop_assert_eq!(cluster.engines[0].tombstone(MC).expect("tombstone").epoch, tomb_epoch);

        let event = match event_pick {
            0 => dgmc_core::McEventKind::Join(Role::SenderReceiver),
            1 => dgmc_core::McEventKind::Leave,
            2 => dgmc_core::McEventKind::Link,
            _ => dgmc_core::McEventKind::None,
        };
        let stale = McLsa {
            source: NodeId(1),
            event,
            mc: MC,
            mc_type: McType::Symmetric,
            epoch: stale_pick % tomb_epoch,
            proposal: None,
            stamp: Timestamp::from_components(stamp_components),
        };
        let actions = cluster.engines[0].on_mc_lsa(stale);
        prop_assert!(actions.is_empty(), "stale LSA produced actions: {:?}", actions);
        prop_assert!(
            cluster.engines[0].state(MC).is_none(),
            "stale LSA resurrected the torn-down state"
        );
    }
}

#[test]
fn timestamp_partial_order_laws() {
    // Deterministic sanity companion to the proptests above.
    let mut a = Timestamp::zero(4);
    let mut b = Timestamp::zero(4);
    a.incr(NodeId(0));
    b.incr(NodeId(3));
    let lub = a.merged_max(&b);
    assert!(lub.dominates(&a) && lub.dominates(&b));
    assert!(lub.strictly_dominates(&a));
    assert_eq!(lub.merged_max(&lub), lub, "merge is idempotent");
    assert_eq!(a.merged_max(&b), b.merged_max(&a), "merge commutes");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Timestamp algebra: merge is the least upper bound; domination is a
    /// partial order.
    #[test]
    fn timestamp_merge_is_lub(
        xs in prop::collection::vec(0u64..50, 8),
        ys in prop::collection::vec(0u64..50, 8),
        zs in prop::collection::vec(0u64..50, 8),
    ) {
        let a = Timestamp::from_components(xs);
        let b = Timestamp::from_components(ys);
        let c = Timestamp::from_components(zs);
        let m = a.merged_max(&b);
        prop_assert!(m.dominates(&a) && m.dominates(&b));
        // Least: any upper bound dominates the merge.
        if c.dominates(&a) && c.dominates(&b) {
            prop_assert!(c.dominates(&m));
        }
        // Partial order laws.
        prop_assert!(a.dominates(&a));
        if a.dominates(&b) && b.dominates(&a) {
            prop_assert_eq!(&a, &b);
        }
        if a.dominates(&b) && b.dominates(&c) {
            prop_assert!(a.dominates(&c));
        }
        // Associativity and commutativity of merge.
        prop_assert_eq!(a.merged_max(&b), b.merged_max(&a));
        prop_assert_eq!(a.merged_max(&b).merged_max(&c), a.merged_max(&b.merged_max(&c)));
    }

    /// Codec round-trips for arbitrary timestamps and topologies.
    #[test]
    fn codec_round_trips(
        components in prop::collection::vec(0u64..1000, 0..64),
        edges in prop::collection::vec((0u32..40, 0u32..40), 0..30),
        terminals in prop::collection::btree_set(0u32..40, 0..10),
        epoch in any::<u64>(),
    ) {
        use dgmc_core::codec;
        let t = Timestamp::from_components(components);
        let mut out = bytes::BytesMut::new();
        codec::encode_timestamp(&t, &mut out);
        let mut buf = out.freeze();
        prop_assert_eq!(codec::decode_timestamp(&mut buf).unwrap(), t.clone());

        let topo = dgmc_core::McTopology::from_edges(
            edges.into_iter().map(|(a, b)| (NodeId(a), NodeId(b))),
            terminals.into_iter().map(NodeId).collect(),
        );
        let mut out = bytes::BytesMut::new();
        codec::encode_topology(&topo, &mut out);
        let mut buf = out.freeze();
        prop_assert_eq!(codec::decode_topology(&mut buf).unwrap(), topo.clone());

        let lsa = McLsa {
            source: NodeId(1),
            event: dgmc_core::McEventKind::Join(Role::SenderReceiver),
            mc: MC,
            mc_type: McType::Asymmetric,
            epoch,
            proposal: Some(topo),
            stamp: t,
        };
        let mut buf = codec::mc_lsa_bytes(&lsa);
        prop_assert_eq!(codec::decode_mc_lsa(&mut buf).unwrap(), lsa);
    }
}
