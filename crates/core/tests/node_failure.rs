//! Nodal events: switch failure, traffic rerouting, revival with database
//! resynchronization — the paper's Section 6 fault-tolerance claim, plus the
//! partition-healing behavior it defers to future work (quiet-period case).

use dgmc_core::switch::{
    build_dgmc_sim, counters, inject_node_event, DgmcConfig, DgmcSwitch, SwitchMsg,
};
use dgmc_core::{convergence, McId, McType, Role};
use dgmc_des::{ActorId, RunOutcome, SimDuration, Simulation};
use dgmc_mctree::SphStrategy;
use dgmc_topology::{generate, Network, NodeId};
use std::rc::Rc;

const MC: McId = McId(1);

fn join(sim: &mut Simulation<SwitchMsg>, node: u32, delay: SimDuration) {
    sim.inject(
        ActorId(node),
        delay,
        SwitchMsg::HostJoin {
            mc: MC,
            mc_type: McType::Symmetric,
            role: Role::SenderReceiver,
        },
    );
}

fn sim_on(net: &Network) -> Simulation<SwitchMsg> {
    build_dgmc_sim(
        net,
        DgmcConfig::computation_dominated(),
        Rc::new(SphStrategy::new()),
    )
}

/// Consensus check that skips the given (failed) switches.
fn consensus_excluding(sim: &Simulation<SwitchMsg>, skip: &[u32]) -> Option<usize> {
    let mut reference: Option<(Option<_>, usize)> = None;
    for i in 0..sim.actor_count() as u32 {
        if skip.contains(&i) {
            continue;
        }
        let sw = sim.actor_as::<DgmcSwitch>(ActorId(i)).unwrap();
        let st = sw.engine().state(MC)?;
        let key = (st.installed.clone(), st.members.len());
        match &reference {
            None => reference = Some(key),
            Some(r) => {
                if *r != key {
                    return None;
                }
            }
        }
    }
    reference.map(|(_, m)| m)
}

#[test]
fn transit_node_failure_reroutes_the_tree() {
    // Ring 0..7; members 0 and 2; tree goes through node 1. Kill node 1:
    // the tree must detour the long way around.
    let net = generate::ring(8);
    let mut sim = sim_on(&net);
    join(&mut sim, 0, SimDuration::ZERO);
    join(&mut sim, 2, SimDuration::millis(1));
    sim.run_to_quiescence();
    let before = convergence::check_consensus(&sim, MC)
        .unwrap()
        .topology
        .unwrap();
    assert!(before.touches(NodeId(1)), "tree uses transit node 1");

    inject_node_event(&mut sim, &net, NodeId(1), false, SimDuration::millis(2));
    assert_eq!(sim.run_to_quiescence(), RunOutcome::Quiescent);

    // Surviving switches agree on a tree avoiding node 1.
    let members = consensus_excluding(&sim, &[1]).expect("survivors agree");
    assert_eq!(members, 2);
    let s0 = sim.actor_as::<DgmcSwitch>(ActorId(0)).unwrap();
    let repaired = s0.engine().installed(MC).unwrap().clone();
    assert!(!repaired.touches(NodeId(1)), "tree detours the dead switch");
    assert_eq!(repaired.edge_count(), 6, "long way around the ring");

    // Two neighbors each advertised their incident link down.
    assert_eq!(sim.counter_value(counters::ROUTER_FLOODS), 2);

    // Data still flows.
    sim.inject(
        ActorId(0),
        SimDuration::millis(50),
        SwitchMsg::SendData {
            mc: MC,
            packet_id: 5,
        },
    );
    sim.run_to_quiescence();
    assert_eq!(convergence::delivery_map(&sim, MC, 5)[&NodeId(2)], 1);
}

#[test]
fn revived_node_resynchronizes_missed_membership() {
    // Node 4 (transit, off-tree) fails; memberships change while it is
    // down; after revival the DB exchange brings it fully up to date.
    let net = generate::grid(3, 3);
    let mut sim = sim_on(&net);
    join(&mut sim, 0, SimDuration::ZERO);
    join(&mut sim, 2, SimDuration::millis(1));
    sim.run_to_quiescence();

    inject_node_event(&mut sim, &net, NodeId(8), false, SimDuration::millis(2));
    sim.run_to_quiescence();
    // Membership changes while 8 is down.
    join(&mut sim, 6, SimDuration::millis(10));
    sim.inject(
        ActorId(2),
        SimDuration::millis(20),
        SwitchMsg::HostLeave { mc: MC },
    );
    sim.run_to_quiescence();
    // The dead switch missed both events.
    let dead = sim.actor_as::<DgmcSwitch>(ActorId(8)).unwrap();
    assert_eq!(dead.engine().state(MC).unwrap().members.len(), 2, "stale");

    inject_node_event(&mut sim, &net, NodeId(8), true, SimDuration::millis(30));
    assert_eq!(sim.run_to_quiescence(), RunOutcome::Quiescent);

    // Full consensus including the revived switch.
    let c = convergence::check_consensus(&sim, MC).expect("revived node resynced");
    let got: Vec<u32> = c.members.keys().map(|n| n.0).collect();
    assert_eq!(got, vec![0, 6]);
}

#[test]
fn revived_node_learns_destroyed_mcs() {
    // The MC is destroyed entirely while a switch is down; on revival the
    // sync prunes its zombie state.
    let net = generate::ring(6);
    let mut sim = sim_on(&net);
    join(&mut sim, 0, SimDuration::ZERO);
    join(&mut sim, 2, SimDuration::millis(1));
    sim.run_to_quiescence();
    inject_node_event(&mut sim, &net, NodeId(4), false, SimDuration::millis(2));
    sim.run_to_quiescence();
    sim.inject(
        ActorId(0),
        SimDuration::millis(10),
        SwitchMsg::HostLeave { mc: MC },
    );
    sim.inject(
        ActorId(2),
        SimDuration::millis(20),
        SwitchMsg::HostLeave { mc: MC },
    );
    sim.run_to_quiescence();
    assert!(sim
        .actor_as::<DgmcSwitch>(ActorId(4))
        .unwrap()
        .engine()
        .state(MC)
        .is_some());
    inject_node_event(&mut sim, &net, NodeId(4), true, SimDuration::millis(30));
    sim.run_to_quiescence();
    let c = convergence::check_consensus(&sim, MC).expect("zombie state pruned");
    assert!(c.members.is_empty());
    assert_eq!(c.topology, None);
}

#[test]
fn member_node_failure_partitions_and_heals() {
    // A *member* fails: survivors keep a tree for the remaining reachable
    // members; when the member revives, the DB sync plus its stale
    // membership reconciles (quiet-period healing).
    let net = generate::ring(6);
    let mut sim = sim_on(&net);
    for (i, m) in [0u32, 2, 4].into_iter().enumerate() {
        join(&mut sim, m, SimDuration::millis(i as u64));
    }
    sim.run_to_quiescence();
    inject_node_event(&mut sim, &net, NodeId(4), false, SimDuration::millis(10));
    assert_eq!(sim.run_to_quiescence(), RunOutcome::Quiescent);
    // Survivors agree among themselves; member 4 is still listed (no leave
    // event was generated — the paper has no member-death detection), but
    // the tree spans what it can.
    assert!(consensus_excluding(&sim, &[4]).is_some());

    inject_node_event(&mut sim, &net, NodeId(4), true, SimDuration::millis(50));
    assert_eq!(sim.run_to_quiescence(), RunOutcome::Quiescent);
    let c = convergence::check_consensus(&sim, MC).expect("healed after revival");
    assert_eq!(c.members.len(), 3);
}

#[test]
fn failed_switch_drops_data() {
    let net = generate::ring(6);
    let mut sim = sim_on(&net);
    join(&mut sim, 0, SimDuration::ZERO);
    join(&mut sim, 2, SimDuration::millis(1));
    sim.run_to_quiescence();
    // Fail member 2 itself, then send data: 2 must receive nothing.
    inject_node_event(&mut sim, &net, NodeId(2), false, SimDuration::millis(2));
    sim.run_to_quiescence();
    sim.inject(
        ActorId(0),
        SimDuration::millis(10),
        SwitchMsg::SendData {
            mc: MC,
            packet_id: 1,
        },
    );
    sim.run_to_quiescence();
    assert_eq!(convergence::delivery_map(&sim, MC, 1)[&NodeId(2)], 0);
}
