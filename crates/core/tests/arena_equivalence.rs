//! PR9 arena-equivalence properties.
//!
//! The engine's per-MC store is an arena with derived hot views
//! (`crates/core/src/arena.rs`); the executable specification keeps the
//! naive `BTreeMap` it always had. These properties pin the refactor:
//!
//! * **Spec lockstep** — random join/leave/link/delivery/completion scripts
//!   (including full teardowns and slot-reusing rejoins) drive an engine and
//!   a [`SpecSwitch`] side by side; after every operation the actions must
//!   match and [`diff_engine`] must find no state difference. Because tests
//!   compile with `debug_assertions`, every hot-view query inside the engine
//!   also re-checks itself against the reference linear scan, so a missed
//!   arena sync fails loudly here.
//! * **Jobs identity** — for random many-MC databases, the sharded link
//!   event path (`jobs > 1`) must leave actions and every per-MC state
//!   byte-identical to the serial path.

use dgmc_core::spec::{actions_match, diff_engine, SpecAction, SpecSwitch};
use dgmc_core::{DgmcAction, DgmcEngine, McId, McLsa, McSync, McTopology, McType, Role, Timestamp};
use dgmc_mctree::{McAlgorithm, SphStrategy};
use dgmc_topology::{generate, Network, NodeId, SpfCache};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::rc::Rc;

/// Engine + spec per switch, with per-origin FIFO delivery queues (the
/// ordering reliable LSR flooding guarantees).
struct LockstepCluster {
    net: Network,
    engines: Vec<DgmcEngine>,
    specs: Vec<SpecSwitch>,
    /// queues[origin][receiver].
    queues: Vec<Vec<VecDeque<McLsa>>>,
}

impl LockstepCluster {
    fn new(net: Network) -> LockstepCluster {
        let size = net.len();
        let engines = net
            .nodes()
            .map(|id| DgmcEngine::new(id, size, Rc::new(SphStrategy::new())))
            .collect();
        let specs = net.nodes().map(|id| SpecSwitch::new(id, size)).collect();
        LockstepCluster {
            net,
            engines,
            specs,
            queues: vec![vec![VecDeque::new(); size]; size],
        }
    }

    fn size(&self) -> usize {
        self.engines.len()
    }

    /// Asserts one switch's engine/spec transition agrees, then floods.
    fn lockstep(&mut self, node: usize, next: SpecSwitch, sa: &[SpecAction], ea: Vec<DgmcAction>) {
        self.specs[node] = next;
        assert!(
            actions_match(sa, &ea),
            "switch {node}: spec actions {sa:?} vs engine {ea:?}"
        );
        assert_eq!(
            diff_engine(&self.specs[node], &self.engines[node]),
            None,
            "switch {node}: spec/engine state divergence"
        );
        for action in ea {
            if let DgmcAction::Flood(lsa) = action {
                for receiver in 0..self.size() {
                    if receiver != node {
                        self.queues[node][receiver].push_back(lsa.clone());
                    }
                }
            }
        }
    }

    fn join(&mut self, node: usize, mc: McId) {
        let ea = self.engines[node].local_join(mc, McType::Symmetric, Role::SenderReceiver);
        let (next, sa) = self.specs[node].host_join(mc, McType::Symmetric, Role::SenderReceiver);
        self.lockstep(node, next, &sa, ea);
    }

    fn leave(&mut self, node: usize, mc: McId) {
        let ea = self.engines[node].local_leave(mc);
        let (next, sa) = self.specs[node].host_leave(mc);
        self.lockstep(node, next, &sa, ea);
    }

    fn link_event(&mut self, node: usize, a: NodeId, b: NodeId) {
        let ea = self.engines[node].local_link_event(a, b);
        let (next, sa) = self.specs[node].link_event(a, b);
        self.lockstep(node, next, &sa, ea);
    }

    fn deliver(&mut self, origin: usize, receiver: usize) {
        let lsa = self.queues[origin][receiver]
            .pop_front()
            .expect("move was enabled");
        let ea = self.engines[receiver].on_mc_lsa(lsa.clone());
        let (next, sa) = self.specs[receiver].receive_lsa(lsa);
        self.lockstep(receiver, next, &sa, ea);
    }

    fn complete(&mut self, node: usize, mc: McId) {
        let net = self.net.clone();
        let ea = self.engines[node].on_computation_done(mc, &net);
        let algo = SphStrategy::new();
        let (next, sa) =
            self.specs[node].computation_done(mc, &mut |terminals: &BTreeSet<NodeId>, previous| {
                algo.compute_with(&net, terminals, previous, &SpfCache::disabled())
            });
        self.lockstep(node, next, &sa, ea);
    }

    /// `(node, mc)` pairs with an in-flight computation, in stable order.
    fn pending_completions(&self) -> Vec<(usize, McId)> {
        let mut out = Vec::new();
        for (i, spec) in self.specs.iter().enumerate() {
            for mc in spec.mc_ids() {
                if spec.state(mc).is_some_and(|st| st.job.is_some()) {
                    out.push((i, mc));
                }
            }
        }
        out
    }

    /// Non-empty `(origin, receiver)` queues, in stable order.
    fn pending_deliveries(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for origin in 0..self.size() {
            for receiver in 0..self.size() {
                if !self.queues[origin][receiver].is_empty() {
                    out.push((origin, receiver));
                }
            }
        }
        out
    }

    /// Runs queued work to quiescence, checking lockstep at every step.
    fn drain(&mut self) {
        let mut budget = 100_000;
        loop {
            if let Some(&(node, mc)) = self.pending_completions().first() {
                self.complete(node, mc);
            } else if let Some(&(origin, receiver)) = self.pending_deliveries().first() {
                self.deliver(origin, receiver);
            } else {
                return;
            }
            budget -= 1;
            assert!(budget > 0, "lockstep cluster failed to drain");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arena-backed engine state is observationally equivalent to the
    /// map-backed executable spec under random multi-MC scripts: joins,
    /// leaves (through full teardown, exercising slot free/reuse), link
    /// events, adversarially interleaved deliveries and completions.
    #[test]
    fn random_scripts_keep_engine_and_spec_in_lockstep(
        script in prop::collection::vec((0u8..5, 0usize..64, 0usize..64), 1..80),
    ) {
        let net = generate::ring(4);
        let links: Vec<(NodeId, NodeId)> = net.up_links().map(|l| (l.a, l.b)).collect();
        let mut cluster = LockstepCluster::new(net);
        for (op, x, y) in script {
            let node = x % cluster.size();
            let mc = McId(1 + (y % 2) as u32);
            match op {
                0 => cluster.join(node, mc),
                1 => cluster.leave(node, mc),
                2 => {
                    let (a, b) = links[y % links.len()];
                    cluster.link_event(node, a, b);
                }
                3 => {
                    let moves = cluster.pending_deliveries();
                    if !moves.is_empty() {
                        let (origin, receiver) = moves[y % moves.len()];
                        cluster.deliver(origin, receiver);
                    }
                }
                _ => {
                    let moves = cluster.pending_completions();
                    if !moves.is_empty() {
                        let (n, m) = moves[y % moves.len()];
                        cluster.complete(n, m);
                    }
                }
            }
        }
        cluster.drain();
        // Quiescent and still equivalent on every switch.
        for (i, spec) in cluster.specs.iter().enumerate() {
            prop_assert_eq!(diff_engine(spec, &cluster.engines[i]), None, "switch {}", i);
        }
    }
}

/// Builds one engine with `k` resident MCs on random 3-node path trees
/// (members at both ends and the middle), loaded through database sync.
fn engine_with_random_mcs(n: usize, starts: &[usize]) -> DgmcEngine {
    let mut engine = DgmcEngine::new(NodeId(0), n, Rc::new(SphStrategy::new()));
    let snapshot: Vec<McSync> = starts
        .iter()
        .enumerate()
        .map(|(i, &start)| {
            let mc = McId(u32::try_from(i + 1).expect("test MC count fits u32"));
            let b = u32::try_from(start % (n - 2)).expect("test node ids fit u32");
            let path = [NodeId(b), NodeId(b + 1), NodeId(b + 2)];
            let mut members = BTreeMap::new();
            let mut r = Timestamp::zero(n);
            for m in path {
                members.insert(m, Role::SenderReceiver);
                r.incr(m);
            }
            let edges = path.windows(2).map(|w| (w[0], w[1]));
            let terminals: BTreeSet<NodeId> = path.iter().copied().collect();
            McSync {
                mc,
                mc_type: McType::Symmetric,
                epoch: 0,
                r: r.clone(),
                e: r.clone(),
                c: r.clone(),
                c_source: Some(path[0]),
                members,
                installed: Some(McTopology::from_edges(edges, terminals)),
            }
        })
        .collect();
    engine.import_sync(snapshot);
    engine
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Sharded link-event processing is byte-identical to serial for random
    /// many-MC databases and random event sequences, for every jobs value.
    #[test]
    fn sharded_link_events_match_serial_for_random_databases(
        n in 6usize..16,
        starts in prop::collection::vec(0usize..1000, 40..100),
        events in prop::collection::vec(0usize..1000, 1..4),
    ) {
        let template = engine_with_random_mcs(n, &starts);
        for jobs in [2usize, 4] {
            let mut serial = template.clone();
            let mut sharded = template.clone();
            sharded.set_jobs(jobs);
            for &e in &events {
                let a = u32::try_from(e % (n - 1)).expect("test node ids fit u32");
                let serial_actions = serial.local_link_event(NodeId(a), NodeId(a + 1));
                let sharded_actions = sharded.local_link_event(NodeId(a), NodeId(a + 1));
                prop_assert_eq!(&serial_actions, &sharded_actions, "jobs {}", jobs);
            }
            prop_assert_eq!(serial.mc_ids(), sharded.mc_ids());
            for mc in serial.mc_ids() {
                prop_assert_eq!(
                    serial.state(mc).cloned(),
                    sharded.state(mc).cloned(),
                    "state diverged for {} at jobs {}", mc, jobs
                );
            }
        }
    }
}
