//! The protocol decision log observed end-to-end: a small D-GMC deployment
//! with an attached [`DecisionLog`], exercising the JSONL export, the
//! conflict-resolution events and the on-failure timeline dump.

use dgmc_core::switch::{build_dgmc_sim, DgmcConfig, SwitchMsg};
use dgmc_core::{convergence, McId, McType, Role};
use dgmc_des::{ActorId, RunOutcome, SimDuration, Simulation};
use dgmc_mctree::SphStrategy;
use dgmc_obs::{DecisionLogHandle, TimelineDumpGuard};
use dgmc_topology::generate;
use std::rc::Rc;

const MC: McId = McId(1);

fn join(sim: &mut Simulation<SwitchMsg>, node: u32, delay: SimDuration) {
    sim.inject(
        ActorId(node),
        delay,
        SwitchMsg::HostJoin {
            mc: MC,
            mc_type: McType::Symmetric,
            role: Role::SenderReceiver,
        },
    );
}

fn leave(sim: &mut Simulation<SwitchMsg>, node: u32, delay: SimDuration) {
    sim.inject(ActorId(node), delay, SwitchMsg::HostLeave { mc: MC });
}

/// A 3-switch path with the decision log attached from the start.
fn observed_sim(capacity: usize) -> (Simulation<SwitchMsg>, DecisionLogHandle) {
    let net = generate::path(3);
    let mut sim = build_dgmc_sim(
        &net,
        DgmcConfig::computation_dominated(),
        Rc::new(SphStrategy::new()),
    );
    sim.set_event_budget(1_000_000);
    let log = sim.observer().attach_log(capacity);
    (sim, log)
}

fn kinds(log: &DecisionLogHandle) -> Vec<&'static str> {
    log.borrow().iter().map(|e| e.kind.name()).collect()
}

#[test]
fn join_and_leave_produce_a_golden_jsonl_stream() {
    let (mut sim, log) = observed_sim(256);
    join(&mut sim, 0, SimDuration::ZERO);
    sim.run_to_quiescence();
    join(&mut sim, 2, SimDuration::ZERO);
    sim.run_to_quiescence();
    leave(&mut sim, 2, SimDuration::ZERO);
    assert_eq!(sim.run_to_quiescence(), RunOutcome::Quiescent);
    convergence::check_consensus(&sim, MC).unwrap();

    let jsonl = log.borrow().to_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), log.borrow().len());
    // The very first decision is the join detected at switch 0, before any
    // flooding: R advanced for switch 0 only, nothing installed yet.
    assert_eq!(
        lines[0],
        r#"{"at_ns":0,"mc":1,"switch":0,"kind":"EventDetected","member":0,"change":"join","r":[1,0,0],"e":[1,0,0],"c":[0,0,0]}"#
    );
    // Every line is a self-contained JSON object carrying the stamp vectors.
    for line in &lines {
        assert!(line.starts_with(r#"{"at_ns":"#), "{line}");
        assert!(line.contains(r#""kind":""#), "{line}");
        assert!(line.contains(r#""r":["#), "{line}");
        assert!(line.contains(r#""c":["#), "{line}");
        assert!(line.ends_with('}'), "{line}");
    }
    // Three isolated events, each fully processed: detect → compute → flood
    // → install (at the detecting switch and at the two remote switches).
    let ks = kinds(&log);
    assert_eq!(ks.iter().filter(|k| **k == "EventDetected").count(), 3);
    assert_eq!(ks.iter().filter(|k| **k == "ProposalComputed").count(), 3);
    assert_eq!(ks.iter().filter(|k| **k == "ProposalFlooded").count(), 3);
    assert!(ks.iter().filter(|k| **k == "TopologyInstalled").count() >= 3);
    assert_eq!(ks.iter().filter(|k| **k == "ProposalWithdrawn").count(), 0);
    assert_eq!(log.borrow().dropped(), 0);
}

#[test]
fn concurrent_proposals_log_conflict_resolution() {
    // The concurrent-proposal race, driven deterministically at the engine:
    // while switch 0 computes for its own join, equal-stamp proposals from
    // switches 1 and 2 arrive. The mailbox drain arbitrates the two remote
    // competitors, and the recomputation then arbitrates the survivor
    // against switch 0's own proposal — both ConflictResolved sites fire.
    use dgmc_core::{DgmcAction, DgmcEngine, McEventKind, McLsa, McTopology, Timestamp};
    use dgmc_topology::NodeId;
    use std::collections::BTreeSet;

    let net = generate::path(3);
    let mut engine = DgmcEngine::new(NodeId(0), 3, Rc::new(SphStrategy::new()));
    let obs = dgmc_obs::SharedObserver::new();
    let log = obs.attach_log(64);
    engine.set_observer(obs.clone());

    let actions = engine.local_join(MC, McType::Symmetric, Role::SenderReceiver);
    assert_eq!(actions, vec![DgmcAction::StartComputation { mc: MC }]);

    // Both remote switches joined, heard of all three events and flooded
    // proposals with the identical full stamp [1, 1, 1].
    let full_stamp = Timestamp::from_components(vec![1, 1, 1]);
    let proposal = {
        let terminals: BTreeSet<NodeId> = [NodeId(0), NodeId(1), NodeId(2)].into();
        let mut t = McTopology::new(terminals);
        t.insert_edge(NodeId(0), NodeId(1));
        t.insert_edge(NodeId(1), NodeId(2));
        t
    };
    obs.set_now(1_000);
    for source in [1u32, 2] {
        engine.on_mc_lsa(McLsa {
            source: NodeId(source),
            event: McEventKind::Join(Role::SenderReceiver),
            mc: MC,
            mc_type: McType::Symmetric,
            epoch: 0,
            proposal: Some(proposal.clone()),
            stamp: full_stamp.clone(),
        });
    }
    // ...plus a withdrawal announcement switch 2 sent before it had heard
    // of our join: the sender misses a local event, so the drain below sets
    // the make-proposal flag again and the accepted candidate gets stashed
    // into the recomputation instead of installed directly.
    engine.on_mc_lsa(McLsa {
        source: NodeId(2),
        event: McEventKind::None,
        mc: MC,
        mc_type: McType::Symmetric,
        epoch: 0,
        proposal: None,
        stamp: Timestamp::from_components(vec![0, 0, 1]),
    });

    // Tc elapses: the own proposal is stale (two events arrived meanwhile),
    // the drain accepts switch 1's proposal and arbitrates switch 2's away.
    obs.set_now(2_000);
    engine.on_computation_done(MC, &net);
    // The recomputation completes with the survivor stashed: equal stamps,
    // switch 0 < switch 1, so the own proposal deterministically wins.
    obs.set_now(3_000);
    engine.on_computation_done(MC, &net);

    let ks = kinds(&log);
    assert_eq!(
        ks,
        vec![
            "EventDetected",
            "ProposalWithdrawn",
            "ProposalAccepted",
            "ConflictResolved",
            "ProposalComputed",
            "ProposalFlooded",
            "ConflictResolved",
            "TopologyInstalled",
        ],
        "{ks:?}"
    );
    let conflicts: Vec<(u32, u32)> = log
        .borrow()
        .iter()
        .filter_map(|e| match e.kind {
            dgmc_obs::DecisionKind::ConflictResolved { winner, loser } => Some((winner, loser)),
            _ => None,
        })
        .collect();
    // Drain: switch 1 beats switch 2 (equal stamps, smaller id). Completion:
    // switch 0's own proposal beats the stashed survivor from switch 1.
    assert_eq!(conflicts, vec![(1, 2), (0, 1)]);
    // The JSONL line for the drain arbitration, stamps included.
    let jsonl = log.borrow().to_jsonl();
    assert!(
        jsonl.contains(
            r#"{"at_ns":2000,"mc":1,"switch":0,"kind":"ConflictResolved","winner":1,"loser":2,"r":[1,1,1],"e":[1,1,1],"c":[0,0,0]}"#
        ),
        "{jsonl}"
    );
}

#[test]
fn ring_eviction_keeps_the_newest_decisions() {
    let (mut sim, log) = observed_sim(4);
    for i in 0..3 {
        join(&mut sim, i, SimDuration::millis(10 * u64::from(i)));
    }
    assert_eq!(sim.run_to_quiescence(), RunOutcome::Quiescent);
    let total = log.borrow().len() as u64 + log.borrow().dropped();
    assert_eq!(log.borrow().len(), 4, "capacity bounds the log");
    assert!(log.borrow().dropped() > 0, "older decisions were evicted");
    let timeline = log.borrow().timeline(4);
    assert!(
        timeline.contains(&format!("{} earlier decision(s) omitted", total - 4)),
        "{timeline}"
    );
}

#[test]
fn failing_run_dumps_a_readable_timeline() {
    // The acceptance scenario: an e2e assertion fails and the last-N
    // decision timeline explains what the protocol did. Concurrent joins on
    // a shared path force accepted *and* withdrawn proposals into the log.
    let (mut sim, log) = observed_sim(512);
    join(&mut sim, 0, SimDuration::ZERO);
    join(&mut sim, 1, SimDuration::ZERO);
    join(&mut sim, 2, SimDuration::ZERO);
    assert_eq!(sim.run_to_quiescence(), RunOutcome::Quiescent);

    let guard = TimelineDumpGuard::new(log.clone(), 64, "decision_log e2e");
    let dump = guard.render();
    // The dump names the decisions with their timestamp snapshots — exactly
    // what a failing assertion needs on stderr.
    assert!(
        dump.contains("decision timeline (decision_log e2e"),
        "{dump}"
    );
    assert!(dump.contains("ProposalAccepted"), "{dump}");
    assert!(dump.contains("ProposalWithdrawn"), "{dump}");
    assert!(dump.contains("R=["), "{dump}");
    assert!(dump.contains("C=["), "{dump}");
    assert!(dump.contains("--- end timeline ---"), "{dump}");

    // And the guard actually fires on panic: the unwinding drop prints the
    // same dump to stderr (observed here only as "the panic propagates").
    let log2 = log.clone();
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        let _guard = TimelineDumpGuard::new(log2, 8, "deliberate failure");
        panic!("deliberate e2e failure to exercise the dump");
    }));
    assert!(caught.is_err());
}
