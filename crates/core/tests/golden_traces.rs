//! Golden decision traces for the paper's two worked conflict scenarios.
//!
//! Both traces are hand-derived from the Fig. 4/5 pseudocode (with the
//! DESIGN.md §3 corrections): every step lists the exact actions the
//! protocol must emit and the exact `R`/`E`/`C` vector stamps it must land
//! on. Each step is executed against the production [`DgmcEngine`] *and*
//! the executable specification ([`dgmc_core::spec`]) in lockstep; the two
//! must agree with each other (`actions_match` + `diff_engine`) and with
//! the hand-computed expectations.
//!
//! Trace A — **invalidation and withdrawal** (Fig. 4 line 6 / Fig. 5
//! lines 22, 28-30): a join LSA lands at `s1` while `s1` is computing its
//! own join proposal, forcing a withdrawal, a deferred event flood and a
//! recomputation whose proposal then wins network-wide.
//!
//! Trace B — **equal-stamp arbitration** (Fig. 5 lines 25/29 per
//! DESIGN.md §3): `s0` and `s1` propose concurrently with the *same*
//! stamp `(1,1,0)`; every switch must converge on the smaller source's
//! proposal, whichever order the proposals arrive in.

use dgmc_core::spec::{actions_match, diff_engine, SpecAction, SpecMc, SpecSwitch};
use dgmc_core::{DgmcAction, DgmcEngine, McEventKind, McId, McLsa, Timestamp};
use dgmc_mctree::{McAlgorithm, McType, Role, SphStrategy};
use dgmc_topology::{generate, Network, NodeId, SpfCache};
use std::collections::BTreeSet;
use std::rc::Rc;

const MC: McId = McId(7);
const S0: NodeId = NodeId(0);
const S1: NodeId = NodeId(1);
const S2: NodeId = NodeId(2);

fn ts(v: &[u64]) -> Timestamp {
    Timestamp::from_components(v.to_vec())
}

/// Compact action-shape fingerprint for step assertions.
fn kinds(actions: &[SpecAction]) -> Vec<&'static str> {
    actions
        .iter()
        .map(|a| match a {
            SpecAction::Flood(_) => "flood",
            SpecAction::StartComputation(_) => "start",
            SpecAction::Installed(_) => "installed",
            SpecAction::Withdrawn(_) => "withdrawn",
        })
        .collect()
}

fn floods(actions: &[SpecAction]) -> Vec<McLsa> {
    actions
        .iter()
        .filter_map(|a| match a {
            SpecAction::Flood(lsa) => Some(lsa.clone()),
            _ => None,
        })
        .collect()
}

/// One switch driven through the engine and the spec simultaneously;
/// every transition asserts the two agree action-for-action and
/// field-for-field before the golden expectations are checked.
struct Pair {
    engine: DgmcEngine,
    spec: SpecSwitch,
}

impl Pair {
    fn new(me: NodeId, n: usize) -> Pair {
        Pair {
            engine: DgmcEngine::new(me, n, Rc::new(SphStrategy::new())),
            spec: SpecSwitch::new(me, n),
        }
    }

    fn lockstep(
        &mut self,
        spec_next: SpecSwitch,
        sa: Vec<SpecAction>,
        ea: Vec<DgmcAction>,
    ) -> Vec<SpecAction> {
        self.spec = spec_next;
        assert!(
            actions_match(&sa, &ea),
            "{}: spec actions {sa:?} vs engine {ea:?}",
            self.spec.id()
        );
        assert_eq!(
            diff_engine(&self.spec, &self.engine),
            None,
            "{}: spec/engine state divergence",
            self.spec.id()
        );
        sa
    }

    fn join(&mut self) -> Vec<SpecAction> {
        let ea = self
            .engine
            .local_join(MC, McType::Symmetric, Role::SenderReceiver);
        let (next, sa) = self
            .spec
            .host_join(MC, McType::Symmetric, Role::SenderReceiver);
        self.lockstep(next, sa, ea)
    }

    fn done(&mut self, net: &Network) -> Vec<SpecAction> {
        let ea = self.engine.on_computation_done(MC, net);
        let algo = SphStrategy::new();
        let (next, sa) =
            self.spec
                .computation_done(MC, &mut |terminals: &BTreeSet<NodeId>, previous| {
                    algo.compute_with(net, terminals, previous, &SpfCache::disabled())
                });
        self.lockstep(next, sa, ea)
    }

    fn recv(&mut self, lsa: &McLsa) -> Vec<SpecAction> {
        let ea = self.engine.on_mc_lsa(lsa.clone());
        let (next, sa) = self.spec.receive_lsa(lsa.clone());
        self.lockstep(next, sa, ea)
    }

    fn st(&self) -> &SpecMc {
        self.spec.state(MC).expect("MC allocated")
    }
}

/// Trace A: an LSA arriving mid-computation invalidates the in-flight
/// proposal; the completion is withdrawn, the join is flooded late, and
/// the recomputed `(1,1,0)` proposal wins at every switch.
#[test]
fn golden_trace_invalidation_and_withdrawal() {
    let net = generate::ring(3);
    let mut s0 = Pair::new(S0, 3);
    let mut s1 = Pair::new(S1, 3);
    let mut s2 = Pair::new(S2, 3);

    // 1-2. Both hosts join; each switch starts computing immediately
    //      (Fig. 4 lines 2-5), counting only its own event.
    assert_eq!(kinds(&s0.join()), ["start"]);
    assert_eq!(s0.st().r, ts(&[1, 0, 0]));
    assert_eq!(s0.st().e, ts(&[1, 0, 0]));
    assert_eq!(s0.st().c, ts(&[0, 0, 0]));
    assert_eq!(kinds(&s1.join()), ["start"]);
    assert_eq!(s1.st().r, ts(&[0, 1, 0]));

    // 3. s0 completes first: its proposal floods with the join event,
    //    stamped old_R = (1,0,0), and is installed locally.
    let a = s0.done(&net);
    assert_eq!(kinds(&a), ["flood", "installed"]);
    let j0 = floods(&a).remove(0);
    assert_eq!(j0.source, S0);
    assert_eq!(j0.event, McEventKind::Join(Role::SenderReceiver));
    assert_eq!(j0.stamp, ts(&[1, 0, 0]));
    assert!(j0.proposal.is_some(), "completion floods a proposal");
    assert_eq!(s0.st().c, ts(&[1, 0, 0]));
    assert_eq!(s0.st().c_source, Some(S0));

    // 4. j0 lands at s1 *while s1 is computing*: the single CPU queues it
    //    (Fig. 5 line 5) — no visible action, no stamp movement yet.
    assert!(s1.recv(&j0).is_empty());
    assert_eq!(s1.st().r, ts(&[0, 1, 0]), "queued, not yet counted");

    // 5. s1's completion finds the mailbox non-empty: the proposal is
    //    invalid (Fig. 5 line 22). The pending join still must be
    //    announced — flooded WITHOUT a proposal, stamped old_R = (0,1,0)
    //    (Fig. 4 lines 11-13) — then the completion is withdrawn and the
    //    drained mailbox triggers a recomputation at R = (1,1,0).
    let a = s1.done(&net);
    assert_eq!(kinds(&a), ["flood", "withdrawn", "start"]);
    let e1 = floods(&a).remove(0);
    assert_eq!(e1.event, McEventKind::Join(Role::SenderReceiver));
    assert!(
        e1.proposal.is_none(),
        "withdrawal announces without proposal"
    );
    assert_eq!(e1.stamp, ts(&[0, 1, 0]));
    assert_eq!(s1.st().r, ts(&[1, 1, 0]));
    assert_eq!(s1.st().e, ts(&[1, 1, 0]));
    assert_eq!(s1.st().c, ts(&[0, 0, 0]), "nothing installed at s1 yet");
    assert!(s1.st().flag, "the late event leaves the proposal flag set");

    // 6. The recomputation completes cleanly: the triggered proposal
    //    floods with V = None at stamp (1,1,0) and installs.
    let a = s1.done(&net);
    assert_eq!(kinds(&a), ["flood", "installed"]);
    let t1 = floods(&a).remove(0);
    assert_eq!(t1.event, McEventKind::None);
    assert_eq!(t1.stamp, ts(&[1, 1, 0]));
    assert_eq!(s1.st().c, ts(&[1, 1, 0]));
    assert_eq!(s1.st().c_source, Some(S1));
    assert!(!s1.st().flag);

    // 7. s1's (late) join event reaches s0: R and E advance to (1,1,0),
    //    the sender had not seen s0's join (T[s0]=0 < R[s0]=1, Fig. 5
    //    line 15) so the flag raises and a recomputation starts.
    assert_eq!(kinds(&s0.recv(&e1)), ["start"]);
    assert_eq!(s0.st().r, ts(&[1, 1, 0]));
    assert_eq!(s0.st().e, ts(&[1, 1, 0]));

    // 8-9. t1 lands mid-computation at s0 and invalidates it — but this
    //      time there is no pending event (no flood) and the queued t1 is
    //      a valid candidate: stamp (1,1,0) covers E, supersedes C =
    //      (1,0,0), so s0 withdraws and installs s1's proposal directly.
    assert!(s0.recv(&t1).is_empty());
    let a = s0.done(&net);
    assert_eq!(kinds(&a), ["withdrawn", "installed"]);
    assert_eq!(s0.st().c, ts(&[1, 1, 0]));
    assert_eq!(s0.st().c_source, Some(S1));

    // 10-12. The bystander s2 sees, in per-origin FIFO order, j0 then
    //        {e1, t1}: it installs s0's (1,0,0) proposal, learns of s1's
    //        join, then upgrades to the (1,1,0) proposal.
    assert_eq!(kinds(&s2.recv(&j0)), ["installed"]);
    assert_eq!(s2.st().c, ts(&[1, 0, 0]));
    assert_eq!(s2.st().c_source, Some(S0));
    assert!(s2.recv(&e1).is_empty(), "event only raises E/R at s2");
    assert_eq!(s2.st().r, ts(&[1, 1, 0]));
    assert_eq!(kinds(&s2.recv(&t1)), ["installed"]);
    assert_eq!(s2.st().c, ts(&[1, 1, 0]));
    assert_eq!(s2.st().c_source, Some(S1));

    // Converged: identical stamps, members and topology everywhere; the
    // winning tree spans the two members over their direct ring link.
    for p in [&s0, &s1, &s2] {
        assert_eq!(p.st().r, ts(&[1, 1, 0]));
        assert_eq!(p.st().e, ts(&[1, 1, 0]));
        assert_eq!(p.st().c, ts(&[1, 1, 0]));
        assert_eq!(p.st().members.keys().copied().collect::<Vec<_>>(), [S0, S1]);
        let tree = p.st().installed.as_ref().expect("converged topology");
        assert!(tree.contains_edge(S0, S1));
        assert_eq!(tree, s0.st().installed.as_ref().unwrap());
    }
}

/// Trace B: symmetric conflict — both members complete a recomputation at
/// the same stamp `(1,1,0)`; the smaller source (`s0`) must win at every
/// switch regardless of arrival order (DESIGN.md §3 arbitration).
#[test]
fn golden_trace_equal_stamp_smallest_source_arbitration() {
    let net = generate::ring(3);
    let mut s0 = Pair::new(S0, 3);
    let mut s1 = Pair::new(S1, 3);
    let mut s2 = Pair::new(S2, 3);

    // 1-4. Both join and both complete before hearing from each other:
    //      two installed single-member trees with incomparable stamps.
    assert_eq!(kinds(&s0.join()), ["start"]);
    assert_eq!(kinds(&s1.join()), ["start"]);
    let j0 = floods(&s0.done(&net)).remove(0);
    let j1 = floods(&s1.done(&net)).remove(0);
    assert_eq!(j0.stamp, ts(&[1, 0, 0]));
    assert_eq!(j1.stamp, ts(&[0, 1, 0]));
    assert_eq!(s0.st().c, ts(&[1, 0, 0]));
    assert_eq!(s1.st().c, ts(&[0, 1, 0]));

    // 5-6. The join LSAs cross: each side counts the other's event and —
    //      since the sender's stamp misses its own join (Fig. 5 line 15)
    //      — recomputes. The stale (incomparable-stamp) proposals carried
    //      by j0/j1 are NOT acceptable candidates (Fig. 5 line 11).
    assert_eq!(kinds(&s0.recv(&j1)), ["start"]);
    assert_eq!(kinds(&s1.recv(&j0)), ["start"]);
    assert_eq!(s0.st().r, ts(&[1, 1, 0]));
    assert_eq!(s1.st().r, ts(&[1, 1, 0]));

    // 7-8. Both recomputations complete fresh and flood proposals with
    //      the SAME stamp (1,1,0); each installs its own for now.
    let t0 = floods(&s0.done(&net)).remove(0);
    let t1 = floods(&s1.done(&net)).remove(0);
    assert_eq!(t0.stamp, ts(&[1, 1, 0]));
    assert_eq!(t1.stamp, ts(&[1, 1, 0]));
    assert_eq!(s0.st().c_source, Some(S0));
    assert_eq!(s1.st().c_source, Some(S1));

    // 9. s1's equal-stamp proposal reaches s0: the larger source does NOT
    //    supersede — s0 keeps its own installation, no action.
    assert!(s0.recv(&t1).is_empty());
    assert_eq!(s0.st().c_source, Some(S0));

    // 10. s0's equal-stamp proposal reaches s1: the smaller source DOES
    //     supersede — s1 reinstalls, converging the tie-break.
    assert_eq!(kinds(&s1.recv(&t0)), ["installed"]);
    assert_eq!(s1.st().c, ts(&[1, 1, 0]));
    assert_eq!(s1.st().c_source, Some(S0));

    // 11-14. The bystander s2 receives s0's channel first (j0, t0), then
    //        s1's (j1, t1): it upgrades to (1,1,0) via t0 and must then
    //        REJECT the equal-stamp t1 from the larger source.
    assert_eq!(kinds(&s2.recv(&j0)), ["installed"]);
    assert_eq!(kinds(&s2.recv(&t0)), ["installed"]);
    assert_eq!(s2.st().c, ts(&[1, 1, 0]));
    assert_eq!(s2.st().c_source, Some(S0));
    assert!(s2.recv(&j1).is_empty());
    assert!(
        s2.recv(&t1).is_empty(),
        "equal stamp, larger source: keep s0's"
    );
    assert_eq!(s2.st().c_source, Some(S0));

    // Converged on the smaller source's proposal everywhere.
    for p in [&s0, &s1, &s2] {
        assert_eq!(p.st().r, ts(&[1, 1, 0]));
        assert_eq!(p.st().e, ts(&[1, 1, 0]));
        assert_eq!(p.st().c, ts(&[1, 1, 0]));
        assert_eq!(p.st().c_source, Some(S0), "smallest source wins the tie");
        assert_eq!(p.st().installed, s0.st().installed);
    }
}
