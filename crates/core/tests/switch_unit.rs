//! Focused tests of the simulated switch: counters, data-plane edge cases
//! and configuration presets.

use dgmc_core::switch::{build_dgmc_sim, counters, DgmcConfig, DgmcSwitch, SwitchMsg};
use dgmc_core::{McId, McType, Role};
use dgmc_des::{ActorId, SimDuration, Simulation};
use dgmc_mctree::SphStrategy;
use dgmc_topology::{generate, NodeId};
use std::rc::Rc;

const MC: McId = McId(1);

fn sim_path(n: usize) -> Simulation<SwitchMsg> {
    build_dgmc_sim(
        &generate::path(n),
        DgmcConfig::computation_dominated(),
        Rc::new(SphStrategy::new()),
    )
}

#[test]
fn config_presets_match_paper_regimes() {
    let lan = DgmcConfig::computation_dominated();
    assert!(lan.tc > lan.per_hop, "ATM: computation dominates");
    assert_eq!(lan.tc, SimDuration::micros(300));
    assert_eq!(lan.per_hop, SimDuration::micros(10));
    let wan = DgmcConfig::communication_dominated();
    assert!(wan.per_hop > wan.tc, "WAN: communication dominates");
}

#[test]
fn exact_counter_accounting_for_one_join() {
    // Path of 4: one join floods one LSA that every other switch accepts
    // and relays; duplicates are impossible on a tree topology.
    let mut sim = sim_path(4);
    sim.inject(
        ActorId(1),
        SimDuration::ZERO,
        SwitchMsg::HostJoin {
            mc: MC,
            mc_type: McType::Symmetric,
            role: Role::SenderReceiver,
        },
    );
    sim.run_to_quiescence();
    assert_eq!(sim.counter_value(counters::MEMBER_EVENTS), 1);
    assert_eq!(sim.counter_value(counters::COMPUTATIONS), 1);
    assert_eq!(sim.counter_value(counters::FLOODINGS), 1);
    assert_eq!(sim.counter_value(counters::MC_LSAS), 3, "3 receivers");
    assert_eq!(sim.counter_value(counters::DUPLICATES), 0, "tree topology");
    assert_eq!(sim.counter_value(counters::INSTALLS), 4, "all switches");
    assert_eq!(sim.counter_value(counters::WITHDRAWN), 0);
}

#[test]
fn duplicates_appear_on_cyclic_topologies() {
    let mut sim = build_dgmc_sim(
        &generate::ring(5),
        DgmcConfig::computation_dominated(),
        Rc::new(SphStrategy::new()),
    );
    sim.inject(
        ActorId(0),
        SimDuration::ZERO,
        SwitchMsg::HostJoin {
            mc: MC,
            mc_type: McType::Symmetric,
            role: Role::SenderReceiver,
        },
    );
    sim.run_to_quiescence();
    assert_eq!(sim.counter_value(counters::MC_LSAS), 4);
    assert!(
        sim.counter_value(counters::DUPLICATES) >= 1,
        "ring loops back"
    );
}

#[test]
fn data_for_unknown_mc_is_dropped_silently() {
    let mut sim = sim_path(3);
    sim.inject(
        ActorId(0),
        SimDuration::ZERO,
        SwitchMsg::SendData {
            mc: McId(99),
            packet_id: 1,
        },
    );
    sim.run_to_quiescence();
    assert_eq!(sim.counter_value(counters::DATA_DELIVERED), 0);
    assert_eq!(sim.events_processed(), 1, "only the injection itself");
}

#[test]
fn leave_from_non_member_switch_is_a_noop() {
    let mut sim = sim_path(3);
    sim.inject(
        ActorId(2),
        SimDuration::ZERO,
        SwitchMsg::HostLeave { mc: MC },
    );
    sim.run_to_quiescence();
    assert_eq!(sim.counter_value(counters::MEMBER_EVENTS), 0);
    assert_eq!(sim.counter_value(counters::FLOODINGS), 0);
}

#[test]
fn double_join_at_same_switch_counts_once() {
    let mut sim = sim_path(3);
    for d in [0u64, 5] {
        sim.inject(
            ActorId(0),
            SimDuration::millis(d),
            SwitchMsg::HostJoin {
                mc: MC,
                mc_type: McType::Symmetric,
                role: Role::SenderReceiver,
            },
        );
    }
    sim.run_to_quiescence();
    assert_eq!(sim.counter_value(counters::MEMBER_EVENTS), 1);
    assert_eq!(sim.counter_value(counters::COMPUTATIONS), 1);
}

#[test]
fn switch_accessors_expose_state() {
    let mut sim = sim_path(3);
    sim.inject(
        ActorId(1),
        SimDuration::ZERO,
        SwitchMsg::HostJoin {
            mc: MC,
            mc_type: McType::ReceiverOnly,
            role: Role::Receiver,
        },
    );
    sim.run_to_quiescence();
    let sw = sim.actor_as::<DgmcSwitch>(ActorId(1)).unwrap();
    assert_eq!(sw.id(), NodeId(1));
    assert!(sw.engine().is_member(MC));
    assert_eq!(sw.engine().state(MC).unwrap().mc_type, McType::ReceiverOnly);
    assert!(sw.routes().reaches(NodeId(2)));
    assert!(sw.last_install() > dgmc_des::SimTime::ZERO);
    assert_eq!(sw.delivered_copies(MC, 0), 0);
}

#[test]
fn data_between_installs_uses_latest_tree() {
    // Members 0 and 2 on a path; after 2 leaves, data from 0 goes nowhere
    // else (single member left).
    let mut sim = sim_path(3);
    for (i, n) in [0u32, 2].into_iter().enumerate() {
        sim.inject(
            ActorId(n),
            SimDuration::millis(i as u64),
            SwitchMsg::HostJoin {
                mc: MC,
                mc_type: McType::Symmetric,
                role: Role::SenderReceiver,
            },
        );
    }
    sim.run_to_quiescence();
    sim.inject(
        ActorId(2),
        SimDuration::millis(10),
        SwitchMsg::HostLeave { mc: MC },
    );
    sim.run_to_quiescence();
    sim.inject(
        ActorId(0),
        SimDuration::millis(20),
        SwitchMsg::SendData {
            mc: MC,
            packet_id: 3,
        },
    );
    sim.run_to_quiescence();
    let ex_member = sim.actor_as::<DgmcSwitch>(ActorId(2)).unwrap();
    assert_eq!(
        ex_member.delivered_copies(MC, 3),
        0,
        "ex-member hears nothing"
    );
    let sender = sim.actor_as::<DgmcSwitch>(ActorId(0)).unwrap();
    assert_eq!(sender.delivered_copies(MC, 3), 1, "sender still a member");
}
