//! End-to-end protocol tests: full switch actors over simulated networks.

use dgmc_core::switch::{build_dgmc_sim, counters, inject_link_event, DgmcConfig, SwitchMsg};
use dgmc_core::{convergence, McId, McType, Role};
use dgmc_des::{ActorId, RunOutcome, SimDuration, Simulation};
use dgmc_mctree::SphStrategy;
use dgmc_topology::{generate, Network, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::rc::Rc;

const MC: McId = McId(1);

fn join(sim: &mut Simulation<SwitchMsg>, node: u32, delay: SimDuration) {
    sim.inject(
        ActorId(node),
        delay,
        SwitchMsg::HostJoin {
            mc: MC,
            mc_type: McType::Symmetric,
            role: Role::SenderReceiver,
        },
    );
}

fn leave(sim: &mut Simulation<SwitchMsg>, node: u32, delay: SimDuration) {
    sim.inject(ActorId(node), delay, SwitchMsg::HostLeave { mc: MC });
}

fn sim_on(net: &Network, config: DgmcConfig) -> Simulation<SwitchMsg> {
    let mut sim = build_dgmc_sim(net, config, Rc::new(SphStrategy::new()));
    sim.set_event_budget(5_000_000);
    sim
}

#[test]
fn single_join_costs_one_computation_and_one_flood() {
    let net = generate::grid(4, 4);
    let mut sim = sim_on(&net, DgmcConfig::computation_dominated());
    join(&mut sim, 5, SimDuration::ZERO);
    assert_eq!(sim.run_to_quiescence(), RunOutcome::Quiescent);
    assert_eq!(sim.counter_value(counters::COMPUTATIONS), 1);
    assert_eq!(sim.counter_value(counters::FLOODINGS), 1);
    assert_eq!(sim.counter_value(counters::WITHDRAWN), 0);
    let c = convergence::check_consensus(&sim, MC).unwrap();
    assert_eq!(c.members.len(), 1);
}

#[test]
fn sequential_joins_converge_with_minimal_overhead() {
    // Events far enough apart are handled individually: exactly one
    // computation and one flooding each (the paper's Experiment 3 claim).
    let net = generate::grid(4, 4);
    let mut sim = sim_on(&net, DgmcConfig::computation_dominated());
    let members = [0u32, 3, 12, 15, 5];
    for (i, &m) in members.iter().enumerate() {
        join(&mut sim, m, SimDuration::millis(10 * i as u64));
    }
    assert_eq!(sim.run_to_quiescence(), RunOutcome::Quiescent);
    assert_eq!(
        sim.counter_value(counters::COMPUTATIONS),
        members.len() as u64
    );
    assert_eq!(sim.counter_value(counters::FLOODINGS), members.len() as u64);
    let c = convergence::check_consensus(&sim, MC).unwrap();
    assert_eq!(c.members.len(), members.len());
    let tree = c.topology.unwrap();
    assert!(tree.is_tree());
    assert_eq!(tree.validate(&net, tree.terminals()), Ok(()));
}

#[test]
fn burst_of_simultaneous_joins_converges() {
    let net = generate::grid(4, 4);
    let mut sim = sim_on(&net, DgmcConfig::computation_dominated());
    for m in [0u32, 3, 12, 15, 6, 9] {
        join(&mut sim, m, SimDuration::ZERO);
    }
    assert_eq!(sim.run_to_quiescence(), RunOutcome::Quiescent);
    let c = convergence::check_consensus(&sim, MC).unwrap();
    assert_eq!(c.members.len(), 6);
    let tree = c.topology.unwrap();
    assert_eq!(tree.validate(&net, tree.terminals()), Ok(()));
}

#[test]
fn burst_under_wan_timing_converges() {
    let net = generate::grid(4, 4);
    let mut sim = sim_on(&net, DgmcConfig::communication_dominated());
    for m in [1u32, 7, 8, 14] {
        join(&mut sim, m, SimDuration::ZERO);
    }
    assert_eq!(sim.run_to_quiescence(), RunOutcome::Quiescent);
    let c = convergence::check_consensus(&sim, MC).unwrap();
    assert_eq!(c.members.len(), 4);
}

#[test]
fn joins_and_leaves_interleaved_converge() {
    let net = generate::grid(4, 4);
    let mut sim = sim_on(&net, DgmcConfig::computation_dominated());
    for m in [0u32, 5, 10, 15] {
        join(&mut sim, m, SimDuration::ZERO);
    }
    sim.run_to_quiescence();
    // Two leave, one joins, nearly simultaneously.
    leave(&mut sim, 5, SimDuration::micros(5));
    leave(&mut sim, 15, SimDuration::micros(7));
    join(&mut sim, 3, SimDuration::micros(9));
    assert_eq!(sim.run_to_quiescence(), RunOutcome::Quiescent);
    let c = convergence::check_consensus(&sim, MC).unwrap();
    let expect: Vec<NodeId> = vec![NodeId(0), NodeId(3), NodeId(10)];
    assert_eq!(c.members.keys().copied().collect::<Vec<_>>(), expect);
    let tree = c.topology.unwrap();
    assert_eq!(tree.validate(&net, tree.terminals()), Ok(()));
}

#[test]
fn all_members_leaving_destroys_the_mc_everywhere() {
    let net = generate::ring(6);
    let mut sim = sim_on(&net, DgmcConfig::computation_dominated());
    for m in [0u32, 2, 4] {
        join(&mut sim, m, SimDuration::ZERO);
    }
    sim.run_to_quiescence();
    for (i, m) in [0u32, 2, 4].into_iter().enumerate() {
        leave(&mut sim, m, SimDuration::millis(5 * (i + 1) as u64));
    }
    assert_eq!(sim.run_to_quiescence(), RunOutcome::Quiescent);
    // Consensus must be "no state anywhere".
    let c = convergence::check_consensus(&sim, MC).unwrap();
    assert!(c.members.is_empty());
    assert_eq!(c.topology, None);
}

#[test]
fn link_failure_on_tree_triggers_repair() {
    // Members at the ends of a path; cutting a tree link must rebuild via
    // the ring's other side.
    let net = generate::ring(8);
    let mut sim = sim_on(&net, DgmcConfig::computation_dominated());
    join(&mut sim, 0, SimDuration::ZERO);
    join(&mut sim, 3, SimDuration::millis(1));
    sim.run_to_quiescence();
    let before = convergence::check_consensus(&sim, MC).unwrap();
    let tree_before = before.topology.unwrap();
    assert!(tree_before.contains_edge(NodeId(1), NodeId(2)));
    // Cut 1-2 (a tree link).
    let link = net.link_between(NodeId(1), NodeId(2)).unwrap().id;
    inject_link_event(&mut sim, &net, link, false, SimDuration::millis(1));
    assert_eq!(sim.run_to_quiescence(), RunOutcome::Quiescent);
    let after = convergence::check_consensus(&sim, MC).unwrap();
    let tree_after = after.topology.unwrap();
    assert!(!tree_after.contains_edge(NodeId(1), NodeId(2)));
    // The repaired tree is valid on the degraded ground truth.
    let mut degraded = net.clone();
    degraded
        .set_link_state(link, dgmc_topology::LinkState::Down)
        .unwrap();
    assert_eq!(
        tree_after.validate(&degraded, tree_after.terminals()),
        Ok(())
    );
    assert_eq!(sim.counter_value(counters::ROUTER_FLOODS), 1);
}

#[test]
fn link_failure_off_tree_is_cheap() {
    let net = generate::ring(8);
    let mut sim = sim_on(&net, DgmcConfig::computation_dominated());
    join(&mut sim, 0, SimDuration::ZERO);
    join(&mut sim, 2, SimDuration::millis(1));
    sim.run_to_quiescence();
    let comps_before = sim.counter_value(counters::COMPUTATIONS);
    // Cut 5-6, far from the 0-1-2 tree.
    let link = net.link_between(NodeId(5), NodeId(6)).unwrap().id;
    inject_link_event(&mut sim, &net, link, false, SimDuration::millis(1));
    sim.run_to_quiescence();
    assert_eq!(
        sim.counter_value(counters::COMPUTATIONS),
        comps_before,
        "off-tree link events must not trigger MC computations"
    );
}

#[test]
fn data_delivery_reaches_every_member_exactly_once() {
    let net = generate::grid(4, 4);
    let mut sim = sim_on(&net, DgmcConfig::computation_dominated());
    let members = [0u32, 3, 12, 15];
    for m in members {
        join(&mut sim, m, SimDuration::ZERO);
    }
    sim.run_to_quiescence();
    sim.inject(
        ActorId(0),
        SimDuration::millis(1),
        SwitchMsg::SendData {
            mc: MC,
            packet_id: 42,
        },
    );
    sim.run_to_quiescence();
    for m in members {
        let copies = convergence::delivery_map(&sim, MC, 42)[&NodeId(m)];
        assert_eq!(copies, 1, "member {m} must get exactly one copy");
    }
    assert_eq!(
        convergence::total_deliveries(&sim, MC, 42),
        members.len() as u32
    );
}

#[test]
fn receiver_only_injection_from_non_member() {
    let net = generate::grid(4, 4);
    let mut sim = build_dgmc_sim(
        &net,
        DgmcConfig::computation_dominated(),
        Rc::new(SphStrategy::new()),
    );
    let receivers = [3u32, 12, 15];
    for r in receivers {
        sim.inject(
            ActorId(r),
            SimDuration::ZERO,
            SwitchMsg::HostJoin {
                mc: MC,
                mc_type: McType::ReceiverOnly,
                role: Role::Receiver,
            },
        );
    }
    sim.run_to_quiescence();
    // Node 0 is not a member: its packet unicasts to a contact node first.
    sim.inject(
        ActorId(0),
        SimDuration::millis(1),
        SwitchMsg::SendData {
            mc: MC,
            packet_id: 7,
        },
    );
    sim.run_to_quiescence();
    for r in receivers {
        assert_eq!(
            convergence::delivery_map(&sim, MC, 7)[&NodeId(r)],
            1,
            "receiver {r} must get exactly one copy"
        );
    }
    // The non-member sender gets nothing.
    assert_eq!(convergence::delivery_map(&sim, MC, 7)[&NodeId(0)], 0);
}

#[test]
fn asymmetric_mc_sender_and_receivers() {
    let net = generate::grid(3, 3);
    let mut sim = sim_on(&net, DgmcConfig::computation_dominated());
    sim.inject(
        ActorId(0),
        SimDuration::ZERO,
        SwitchMsg::HostJoin {
            mc: MC,
            mc_type: McType::Asymmetric,
            role: Role::Sender,
        },
    );
    for r in [6u32, 8] {
        sim.inject(
            ActorId(r),
            SimDuration::millis(1),
            SwitchMsg::HostJoin {
                mc: MC,
                mc_type: McType::Asymmetric,
                role: Role::Receiver,
            },
        );
    }
    sim.run_to_quiescence();
    let c = convergence::check_consensus(&sim, MC).unwrap();
    assert_eq!(c.members[&NodeId(0)], Role::Sender);
    assert_eq!(c.members[&NodeId(6)], Role::Receiver);
    // The sender's packets reach both receivers.
    sim.inject(
        ActorId(0),
        SimDuration::millis(2),
        SwitchMsg::SendData {
            mc: MC,
            packet_id: 1,
        },
    );
    sim.run_to_quiescence();
    assert_eq!(convergence::delivery_map(&sim, MC, 1)[&NodeId(6)], 1);
    assert_eq!(convergence::delivery_map(&sim, MC, 1)[&NodeId(8)], 1);
}

#[test]
fn randomized_bursts_always_converge() {
    // Randomized stress: many graphs, random bursts of join/leave; the
    // protocol must always reach consensus with valid trees.
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = generate::waxman(&mut rng, 30, &generate::WaxmanParams::default());
        let mut sim = sim_on(&net, DgmcConfig::computation_dominated());
        let mut members: Vec<u32> = Vec::new();
        // Seed membership.
        let initial: Vec<NodeId> = generate::sample_nodes(&mut rng, &net, 5);
        for (i, n) in initial.iter().enumerate() {
            join(&mut sim, n.0, SimDuration::micros(i as u64));
            members.push(n.0);
        }
        sim.run_to_quiescence();
        // Burst: 10 random conflicting events within ~one flooding time.
        // At most one event per node — injection delays are random, so two
        // events at the same switch could be delivered out of order.
        let mut touched: Vec<u32> = Vec::new();
        for k in 0..10 {
            let delay = SimDuration::micros(rng.gen_range(0..200) + k);
            if !members.is_empty() && rng.gen_bool(0.4) {
                let candidates: Vec<usize> = (0..members.len())
                    .filter(|&i| !touched.contains(&members[i]))
                    .collect();
                let Some(&idx) = candidates.choose(&mut rng) else {
                    continue;
                };
                let node = members.swap_remove(idx);
                touched.push(node);
                leave(&mut sim, node, delay);
            } else {
                let all: Vec<u32> = net.nodes().map(|n| n.0).collect();
                let node = *all.choose(&mut rng).unwrap();
                if !members.contains(&node) && !touched.contains(&node) {
                    members.push(node);
                    touched.push(node);
                    join(&mut sim, node, delay);
                }
            }
        }
        let outcome = sim.run_to_quiescence();
        assert_eq!(outcome, RunOutcome::Quiescent, "seed {seed} diverged");
        let c =
            convergence::check_consensus(&sim, MC).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        members.sort_unstable();
        let got: Vec<u32> = c.members.keys().map(|n| n.0).collect();
        assert_eq!(got, members, "seed {seed} membership mismatch");
        if let Some(tree) = c.topology {
            assert_eq!(tree.validate(&net, tree.terminals()), Ok(()), "seed {seed}");
        } else {
            assert!(members.is_empty());
        }
    }
}

#[test]
fn delay_bounded_strategy_runs_live_in_the_protocol() {
    // The protocol is algorithm-agnostic: plug the delay-bounded strategy
    // into the switches and the converged tree honors the bound.
    use dgmc_mctree::DelayBoundedStrategy;
    let net = generate::ring(10);
    let bound = 5u64;
    let mut sim = build_dgmc_sim(
        &net,
        DgmcConfig::computation_dominated(),
        Rc::new(DelayBoundedStrategy::new(bound)),
    );
    for (i, m) in [0u32, 4, 7].into_iter().enumerate() {
        join(&mut sim, m, SimDuration::millis(i as u64));
    }
    assert_eq!(sim.run_to_quiescence(), RunOutcome::Quiescent);
    let c = convergence::check_consensus(&sim, MC).unwrap();
    let tree = c.topology.unwrap();
    assert_eq!(tree.validate(&net, tree.terminals()), Ok(()));
    let delays = dgmc_mctree::metrics::tree_path_costs(&tree, &net, NodeId(0)).expect("tree valid");
    for m in [0u32, 4, 7] {
        assert!(
            delays[&NodeId(m)] <= bound,
            "member {m} at delay {}",
            delays[&NodeId(m)]
        );
    }
}
