//! Bounded decision log, timeline rendering and JSONL export.

use crate::event::DecisionEvent;
use crate::observer::Observer;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::io::Write;
use std::path::Path;
use std::rc::Rc;

/// A capacity-bounded ring of [`DecisionEvent`]s, oldest evicted first.
#[derive(Debug, Clone, Default)]
pub struct DecisionLog {
    capacity: usize,
    events: VecDeque<DecisionEvent>,
    dropped: u64,
}

/// Shared handle to a [`DecisionLog`]; this is what implements [`Observer`],
/// so the same log can be attached to a [`crate::SharedObserver`] and kept
/// by the test for inspection.
pub type DecisionLogHandle = Rc<RefCell<DecisionLog>>;

impl DecisionLog {
    /// Creates a log retaining the `capacity` most recent decisions.
    pub fn new(capacity: usize) -> DecisionLog {
        DecisionLog {
            capacity,
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Creates a shared handle suitable for
    /// [`SharedObserver::attach`](crate::SharedObserver::attach).
    pub fn shared(capacity: usize) -> DecisionLogHandle {
        Rc::new(RefCell::new(DecisionLog::new(capacity)))
    }

    /// Records a decision, evicting the oldest when full.
    pub fn push(&mut self, event: DecisionEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Number of retained decisions.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Decisions evicted (or rejected by a zero-capacity log) so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates over retained decisions, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &DecisionEvent> + '_ {
        self.events.iter()
    }

    /// Renders the last `last_n` decisions as a human-readable timeline.
    ///
    /// This is what failing end-to-end tests print: one line per decision
    /// with simulated time, switch, connection, kind and R/E/C stamps.
    pub fn timeline(&self, last_n: usize) -> String {
        let skip = self.events.len().saturating_sub(last_n);
        let mut out = String::new();
        if skip > 0 || self.dropped > 0 {
            out.push_str(&format!(
                "... {} earlier decision(s) omitted ({} evicted from ring)\n",
                skip as u64 + self.dropped,
                self.dropped
            ));
        }
        for event in self.events.iter().skip(skip) {
            out.push_str(&event.to_string());
            out.push('\n');
        }
        out
    }

    /// Renders every retained decision as JSONL (one object per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            out.push_str(&event.to_json());
            out.push('\n');
        }
        out
    }

    /// Writes the JSONL rendering to `path`, creating parent directories.
    pub fn write_jsonl(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.to_jsonl().as_bytes())
    }
}

impl Observer for DecisionLogHandle {
    fn record(&mut self, event: DecisionEvent) {
        self.borrow_mut().push(event);
    }
}

/// Prints a decision timeline to stderr if the current thread panics.
///
/// Tests hold one of these across the assertion-heavy section; on a clean
/// pass it is silent, on failure the last `last_n` protocol decisions are
/// dumped so the failing run can be diagnosed without re-instrumenting.
pub struct TimelineDumpGuard {
    log: DecisionLogHandle,
    last_n: usize,
    label: String,
}

impl TimelineDumpGuard {
    /// Guards `log`, dumping up to `last_n` decisions labeled `label`.
    pub fn new(
        log: DecisionLogHandle,
        last_n: usize,
        label: impl Into<String>,
    ) -> TimelineDumpGuard {
        TimelineDumpGuard {
            log,
            last_n,
            label: label.into(),
        }
    }

    /// The rendering that would be printed on panic (exposed for tests).
    pub fn render(&self) -> String {
        format!(
            "--- decision timeline ({}, last {} of {}) ---\n{}--- end timeline ---\n",
            self.label,
            self.last_n.min(self.log.borrow().len()),
            self.log.borrow().len(),
            self.log.borrow().timeline(self.last_n)
        )
    }
}

impl Drop for TimelineDumpGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!("{}", self.render());
        }
    }
}

impl std::fmt::Debug for TimelineDumpGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimelineDumpGuard")
            .field("last_n", &self.last_n)
            .field("label", &self.label)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DecisionKind, StampSnapshot};

    fn ev(at: u64, kind: DecisionKind) -> DecisionEvent {
        DecisionEvent {
            at_nanos: at,
            mc: 3,
            switch: 2,
            kind,
            stamps: StampSnapshot::new(vec![1], vec![1], vec![0]),
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut log = DecisionLog::new(2);
        for i in 0..5 {
            log.push(ev(i * 1_000, DecisionKind::ProposalFlooded));
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 3);
        let at: Vec<u64> = log.iter().map(|e| e.at_nanos).collect();
        assert_eq!(at, vec![3_000, 4_000]);
    }

    #[test]
    fn timeline_limits_and_reports_omissions() {
        let mut log = DecisionLog::new(8);
        for i in 0..4 {
            log.push(ev(i, DecisionKind::ProposalFlooded));
        }
        let t = log.timeline(2);
        assert!(t.starts_with("... 2 earlier decision(s) omitted"));
        assert_eq!(t.matches("ProposalFlooded").count(), 2);
        let full = log.timeline(10);
        assert_eq!(full.matches("ProposalFlooded").count(), 4);
        assert!(!full.contains("omitted"));
    }

    #[test]
    fn jsonl_has_one_object_per_event() {
        let mut log = DecisionLog::new(8);
        log.push(ev(1, DecisionKind::ProposalAccepted { from: 0 }));
        log.push(ev(2, DecisionKind::ProposalWithdrawn));
        let jsonl = log.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains(r#""kind":"ProposalAccepted""#));
        assert!(lines[1].contains(r#""kind":"ProposalWithdrawn""#));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn guard_renders_label_and_tail() {
        let log = DecisionLog::shared(8);
        log.borrow_mut().push(ev(
            5_000,
            DecisionKind::ConflictResolved {
                winner: 0,
                loser: 1,
            },
        ));
        let guard = TimelineDumpGuard::new(log, 16, "unit");
        let text = guard.render();
        assert!(text.contains("decision timeline (unit"));
        assert!(text.contains("ConflictResolved(sw0 over sw1)"));
    }
}
