//! Bounded decision log, timeline rendering and JSONL export.
//!
//! # Timestamp semantics
//!
//! Every [`DecisionEvent::at_nanos`] is *simulated* time: nanoseconds since
//! the start of the deterministic event simulation, stamped by the simulator
//! via [`crate::SharedObserver::set_now`] immediately before each dispatch.
//! Timestamps are therefore reproducible across runs and across `--jobs`
//! values; wall-clock never appears in a decision log. Rendered timelines
//! print the same instants in microseconds (`[      42.000us]`).
//!
//! # Overflow accounting
//!
//! The ring keeps the `capacity` most recent decisions. Evictions are *not*
//! silent: [`DecisionLog::dropped`] counts them, [`DecisionLog::timeline`]
//! prefixes the rendering with an omission header whenever anything was
//! evicted, and [`DecisionLog::publish_dropped`] exports the count as the
//! `obs.dropped_events` counter so truncation shows up in metric snapshots.

use crate::event::DecisionEvent;
use crate::metrics::MetricsRegistry;
use crate::observer::Observer;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::io::Write;
use std::path::Path;
use std::rc::Rc;

/// Counter name under which [`DecisionLog::publish_dropped`] exports ring
/// evictions.
pub const DROPPED_EVENTS_COUNTER: &str = "obs.dropped_events";

/// A capacity-bounded ring of [`DecisionEvent`]s, oldest evicted first.
#[derive(Debug, Clone, Default)]
pub struct DecisionLog {
    capacity: usize,
    events: VecDeque<DecisionEvent>,
    dropped: u64,
}

/// Shared handle to a [`DecisionLog`]; this is what implements [`Observer`],
/// so the same log can be attached to a [`crate::SharedObserver`] and kept
/// by the test for inspection.
pub type DecisionLogHandle = Rc<RefCell<DecisionLog>>;

impl DecisionLog {
    /// Creates a log retaining the `capacity` most recent decisions.
    pub fn new(capacity: usize) -> DecisionLog {
        DecisionLog {
            capacity,
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Creates a shared handle suitable for
    /// [`SharedObserver::attach`](crate::SharedObserver::attach).
    pub fn shared(capacity: usize) -> DecisionLogHandle {
        Rc::new(RefCell::new(DecisionLog::new(capacity)))
    }

    /// Records a decision, evicting the oldest when full.
    pub fn push(&mut self, event: DecisionEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Number of retained decisions.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Decisions evicted (or rejected by a zero-capacity log) so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Exports the eviction count as the `obs.dropped_events` counter so
    /// truncated timelines are detectable from metric snapshots alone.
    ///
    /// Adds (rather than sets) so repeated publishes from several logs
    /// aggregate; call once per log at the end of a run.
    pub fn publish_dropped(&self, registry: &mut MetricsRegistry) {
        if self.dropped > 0 {
            let id = registry.counter(DROPPED_EVENTS_COUNTER);
            registry.add(id, self.dropped);
        }
    }

    /// Iterates over retained decisions, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &DecisionEvent> + '_ {
        self.events.iter()
    }

    /// Renders the last `last_n` decisions as a human-readable timeline.
    ///
    /// This is what failing end-to-end tests print: one line per decision
    /// with simulated time, switch, connection, kind and R/E/C stamps.
    pub fn timeline(&self, last_n: usize) -> String {
        let skip = self.events.len().saturating_sub(last_n);
        let mut out = String::new();
        if skip > 0 || self.dropped > 0 {
            out.push_str(&format!(
                "... {} earlier decision(s) omitted ({} evicted from ring)\n",
                skip as u64 + self.dropped,
                self.dropped
            ));
        }
        for event in self.events.iter().skip(skip) {
            out.push_str(&event.to_string());
            out.push('\n');
        }
        out
    }

    /// Renders every retained decision as JSONL (one object per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            out.push_str(&event.to_json());
            out.push('\n');
        }
        out
    }

    /// Writes the JSONL rendering to `path`, creating parent directories.
    pub fn write_jsonl(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.to_jsonl().as_bytes())
    }
}

impl Observer for DecisionLogHandle {
    fn record(&mut self, event: DecisionEvent) {
        self.borrow_mut().push(event);
    }
}

/// Serializes multi-line dump blocks across threads.
///
/// One panicking worker must emit its whole timeline as one contiguous
/// block: per-`write` locking (what `eprintln!` gives each line) is not
/// enough when several workers of a parallel sweep panic near-simultaneously
/// and each dump spans many lines. Every dump therefore takes this mutex for
/// the duration of its whole block. Poisoning is ignored on purpose — the
/// writer is only used on panic paths, where a previously-panicked holder is
/// the expected case, and the guarded state (stderr) cannot be left
/// half-updated in a way later dumps care about.
static DUMP_MUTEX: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Writes `text` to `out` as one uninterruptible block: the global dump
/// mutex is held across the whole write, so blocks from concurrently
/// panicking threads never interleave.
///
/// # Errors
///
/// Propagates the writer's I/O error.
pub fn write_dump_block(out: &mut dyn Write, text: &str) -> std::io::Result<()> {
    let _serialized = DUMP_MUTEX.lock().unwrap_or_else(|e| e.into_inner());
    out.write_all(text.as_bytes())?;
    out.flush()
}

/// Prints a decision timeline to stderr if the current thread panics.
///
/// Tests and sweep workers hold one of these across the assertion-heavy
/// section; on a clean pass it is silent, on failure the last `last_n`
/// protocol decisions are dumped so the failing run can be diagnosed without
/// re-instrumenting.
///
/// The log handle is `Rc`-based and therefore thread-local by construction:
/// each worker of a parallel sweep builds its *own* ring and its own guard
/// inside the worker thread, so a panic dumps that worker's timeline — never
/// a shared or global one. The dump itself goes through
/// [`write_dump_block`], so simultaneous panics in sibling workers produce
/// contiguous, non-interleaved blocks on stderr.
pub struct TimelineDumpGuard {
    log: DecisionLogHandle,
    last_n: usize,
    label: String,
}

impl TimelineDumpGuard {
    /// Guards `log`, dumping up to `last_n` decisions labeled `label`.
    pub fn new(
        log: DecisionLogHandle,
        last_n: usize,
        label: impl Into<String>,
    ) -> TimelineDumpGuard {
        TimelineDumpGuard {
            log,
            last_n,
            label: label.into(),
        }
    }

    /// The rendering that would be printed on panic (exposed for tests).
    pub fn render(&self) -> String {
        format!(
            "--- decision timeline ({}, last {} of {}) ---\n{}--- end timeline ---\n",
            self.label,
            self.last_n.min(self.log.borrow().len()),
            self.log.borrow().len(),
            self.log.borrow().timeline(self.last_n)
        )
    }
}

impl Drop for TimelineDumpGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            let _ = write_dump_block(&mut std::io::stderr().lock(), &self.render());
        }
    }
}

impl std::fmt::Debug for TimelineDumpGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimelineDumpGuard")
            .field("last_n", &self.last_n)
            .field("label", &self.label)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DecisionKind, StampSnapshot};

    fn ev(at: u64, kind: DecisionKind) -> DecisionEvent {
        DecisionEvent {
            at_nanos: at,
            mc: 3,
            switch: 2,
            kind,
            stamps: StampSnapshot::new(vec![1], vec![1], vec![0]),
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut log = DecisionLog::new(2);
        for i in 0..5 {
            log.push(ev(i * 1_000, DecisionKind::ProposalFlooded));
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 3);
        let at: Vec<u64> = log.iter().map(|e| e.at_nanos).collect();
        assert_eq!(at, vec![3_000, 4_000]);
    }

    #[test]
    fn publish_dropped_exports_the_counter_only_when_nonzero() {
        let mut reg = MetricsRegistry::new();
        let mut log = DecisionLog::new(2);
        log.push(ev(0, DecisionKind::ProposalFlooded));
        log.publish_dropped(&mut reg);
        // Nothing evicted yet: the counter is not even interned.
        assert!(!reg.counters_map().contains_key(DROPPED_EVENTS_COUNTER));
        for i in 0..4 {
            log.push(ev(i, DecisionKind::ProposalFlooded));
        }
        log.publish_dropped(&mut reg);
        assert_eq!(reg.counter_value(DROPPED_EVENTS_COUNTER), 3);
        // A second log's evictions aggregate into the same counter.
        let mut other = DecisionLog::new(0);
        other.push(ev(9, DecisionKind::ProposalWithdrawn));
        other.publish_dropped(&mut reg);
        assert_eq!(reg.counter_value(DROPPED_EVENTS_COUNTER), 4);
    }

    #[test]
    fn timeline_limits_and_reports_omissions() {
        let mut log = DecisionLog::new(8);
        for i in 0..4 {
            log.push(ev(i, DecisionKind::ProposalFlooded));
        }
        let t = log.timeline(2);
        assert!(t.starts_with("... 2 earlier decision(s) omitted"));
        assert_eq!(t.matches("ProposalFlooded").count(), 2);
        let full = log.timeline(10);
        assert_eq!(full.matches("ProposalFlooded").count(), 4);
        assert!(!full.contains("omitted"));
    }

    #[test]
    fn jsonl_has_one_object_per_event() {
        let mut log = DecisionLog::new(8);
        log.push(ev(1, DecisionKind::ProposalAccepted { from: 0 }));
        log.push(ev(2, DecisionKind::ProposalWithdrawn));
        let jsonl = log.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains(r#""kind":"ProposalAccepted""#));
        assert!(lines[1].contains(r#""kind":"ProposalWithdrawn""#));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    /// A writer that hands every byte individually to a shared buffer, the
    /// worst case for interleaving: any two unsynchronized multi-byte writes
    /// would shuffle their bytes together.
    struct ByteAtATime(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

    impl Write for ByteAtATime {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            let Some(&b) = buf.first() else {
                return Ok(0);
            };
            self.0.lock().unwrap().push(b);
            std::thread::yield_now();
            Ok(1)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn concurrent_dump_blocks_never_interleave() {
        let shared = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        std::thread::scope(|scope| {
            for worker in 0..4 {
                let shared = std::sync::Arc::clone(&shared);
                scope.spawn(move || {
                    let block: String = format!("w{worker}\n").repeat(20);
                    write_dump_block(&mut ByteAtATime(shared), &block).unwrap();
                });
            }
        });
        let bytes = shared.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        // Each worker's 20-line block must be contiguous: the block either
        // appears verbatim or the dump mutex failed.
        for worker in 0..4 {
            let block: String = format!("w{worker}\n").repeat(20);
            assert!(
                text.contains(&block),
                "worker {worker}'s dump was interleaved:\n{text}"
            );
        }
    }

    #[test]
    fn each_worker_guard_dumps_its_own_timeline() {
        // DecisionLogHandle is Rc-based, so each worker necessarily builds
        // its ring inside its own thread; assert the guard renders exactly
        // that worker's decisions, not a shared pool.
        let renders: Vec<String> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..3u64)
                .map(|worker| {
                    scope.spawn(move || {
                        let log = DecisionLog::shared(8);
                        log.borrow_mut().push(ev(
                            worker * 1_000,
                            DecisionKind::ProposalAccepted {
                                from: worker as u32,
                            },
                        ));
                        let guard = TimelineDumpGuard::new(log, 8, format!("worker {worker}"));
                        guard.render()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (worker, render) in renders.iter().enumerate() {
            assert!(render.contains(&format!("worker {worker}")));
            assert!(render.contains(&format!("ProposalAccepted(from sw{worker})")));
            for other in 0..3 {
                if other != worker {
                    assert!(
                        !render.contains(&format!("from sw{other}")),
                        "worker {worker} rendered worker {other}'s decisions"
                    );
                }
            }
        }
    }

    #[test]
    fn guard_renders_label_and_tail() {
        let log = DecisionLog::shared(8);
        log.borrow_mut().push(ev(
            5_000,
            DecisionKind::ConflictResolved {
                winner: 0,
                loser: 1,
            },
        ));
        let guard = TimelineDumpGuard::new(log, 16, "unit");
        let text = guard.render();
        assert!(text.contains("decision timeline (unit"));
        assert!(text.contains("ConflictResolved(sw0 over sw1)"));
    }
}
