//! The pluggable observer seam between the protocol engine and any sink.

use crate::event::DecisionEvent;
use crate::log::{DecisionLog, DecisionLogHandle};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// A sink for protocol decision events.
///
/// Implemented by [`DecisionLog`] handles and by anything
/// else that wants the typed stream (metric bridges, stdout printers, …).
pub trait Observer {
    /// Receives one decision event.
    fn record(&mut self, event: DecisionEvent);
}

/// An observer that discards everything (explicit opt-out sink).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl Observer for NoopObserver {
    fn record(&mut self, _event: DecisionEvent) {}
}

#[derive(Default)]
struct Inner {
    now_nanos: u64,
    sink: Option<Box<dyn Observer>>,
}

/// A cheaply cloneable handle shared by the simulator and every engine.
///
/// The simulator updates the clock with [`SharedObserver::set_now`] before
/// dispatching each event; engines call [`SharedObserver::emit`] with a
/// closure so that, with no sink attached (the default), the cost of an
/// emission point is a single branch — the event is never constructed.
#[derive(Clone, Default)]
pub struct SharedObserver {
    inner: Rc<RefCell<Inner>>,
}

impl SharedObserver {
    /// A disabled observer (no sink attached).
    pub fn new() -> SharedObserver {
        SharedObserver::default()
    }

    /// Attaches a sink; subsequent [`emit`](Self::emit) calls reach it.
    pub fn attach(&self, sink: impl Observer + 'static) {
        self.inner.borrow_mut().sink = Some(Box::new(sink));
    }

    /// Attaches a fresh bounded [`DecisionLog`] and returns its handle.
    pub fn attach_log(&self, capacity: usize) -> DecisionLogHandle {
        let log = DecisionLog::shared(capacity);
        self.attach(log.clone());
        log
    }

    /// Detaches the sink; emission reverts to a single-branch no-op.
    pub fn detach(&self) {
        self.inner.borrow_mut().sink = None;
    }

    /// Whether a sink is attached.
    pub fn enabled(&self) -> bool {
        self.inner.borrow().sink.is_some()
    }

    /// Updates the simulated clock used to stamp emitted events.
    pub fn set_now(&self, nanos: u64) {
        self.inner.borrow_mut().now_nanos = nanos;
    }

    /// Current simulated clock in nanoseconds.
    pub fn now_nanos(&self) -> u64 {
        self.inner.borrow().now_nanos
    }

    /// Emits one event if a sink is attached.
    ///
    /// The closure receives the current simulated instant and builds the
    /// event; it runs only when a sink is present, so disabled observation
    /// never allocates the stamp snapshots.
    pub fn emit(&self, make: impl FnOnce(u64) -> DecisionEvent) {
        let inner = &mut *self.inner.borrow_mut();
        if let Some(sink) = inner.sink.as_mut() {
            sink.record(make(inner.now_nanos));
        }
    }
}

impl fmt::Debug for SharedObserver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedObserver")
            .field("enabled", &self.enabled())
            .field("now_nanos", &self.now_nanos())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DecisionKind, StampSnapshot};

    fn event(at: u64) -> DecisionEvent {
        DecisionEvent {
            at_nanos: at,
            mc: 1,
            switch: 0,
            kind: DecisionKind::ProposalFlooded,
            stamps: StampSnapshot::empty(),
        }
    }

    #[test]
    fn disabled_observer_never_runs_the_closure() {
        let obs = SharedObserver::new();
        assert!(!obs.enabled());
        obs.emit(|_| panic!("closure must not run while disabled"));
    }

    #[test]
    fn attached_log_sees_stamped_events_through_clones() {
        let obs = SharedObserver::new();
        let log = obs.attach_log(8);
        let clone = obs.clone();
        clone.set_now(5_000);
        clone.emit(event);
        assert_eq!(log.borrow().len(), 1);
        assert_eq!(log.borrow().iter().next().unwrap().at_nanos, 5_000);
    }

    #[test]
    fn detach_restores_the_noop_path() {
        let obs = SharedObserver::new();
        let log = obs.attach_log(8);
        obs.emit(event);
        obs.detach();
        obs.emit(|_| panic!("closure must not run after detach"));
        assert_eq!(log.borrow().len(), 1);
    }
}
