//! A tiny hand-rolled JSON value and writer.
//!
//! The observability layer exports JSONL decision logs and metric snapshots
//! without pulling in a serialization dependency. Object keys keep insertion
//! order so exports are byte-stable across runs — golden tests depend on it.

use std::fmt;

/// An owned JSON value with insertion-ordered object keys.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the common case for counters and timestamps).
    U64(u64),
    /// A float; non-finite values render as `null`.
    F64(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; keys render in insertion order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience: an object from key/value pairs, keeping order.
    pub fn obj(pairs: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Convenience: an array of unsigned integers.
    pub fn u64_array(values: &[u64]) -> JsonValue {
        JsonValue::Arr(values.iter().map(|&v| JsonValue::U64(v)).collect())
    }

    /// Renders as compact JSON (no whitespace).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::U64(v) => {
                use fmt::Write;
                let _ = write!(out, "{v}");
            }
            JsonValue::F64(v) => {
                use fmt::Write;
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_with_ordered_keys() {
        let v = JsonValue::obj(vec![
            ("b", JsonValue::U64(2)),
            ("a", JsonValue::u64_array(&[1, 0])),
            ("s", JsonValue::Str("x\"y".into())),
            ("f", JsonValue::F64(1.5)),
            ("n", JsonValue::Null),
            ("t", JsonValue::Bool(true)),
        ]);
        assert_eq!(
            v.to_json(),
            r#"{"b":2,"a":[1,0],"s":"x\"y","f":1.5,"n":null,"t":true}"#
        );
    }

    #[test]
    fn escapes_control_characters() {
        let v = JsonValue::Str("a\nb\u{1}".into());
        assert_eq!(v.to_json(), "\"a\\nb\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(JsonValue::F64(f64::NAN).to_json(), "null");
        assert_eq!(JsonValue::F64(f64::INFINITY).to_json(), "null");
    }
}
