//! A tiny hand-rolled JSON value and writer.
//!
//! The observability layer exports JSONL decision logs and metric snapshots
//! without pulling in a serialization dependency. Object keys keep insertion
//! order so exports are byte-stable across runs — golden tests depend on it.

use std::fmt;

/// An owned JSON value with insertion-ordered object keys.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the common case for counters and timestamps).
    U64(u64),
    /// A float; non-finite values render as `null`.
    F64(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; keys render in insertion order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses a JSON document into a [`JsonValue`].
    ///
    /// A small recursive-descent parser for the offline trace validator and
    /// tests — accepts standard JSON (numbers parse as [`JsonValue::U64`]
    /// when they are non-negative integers in range, [`JsonValue::F64`]
    /// otherwise). Trailing non-whitespace is an error.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description with the byte offset on
    /// malformed input.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Looks up a key in an object (None for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, when this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Convenience: an object from key/value pairs, keeping order.
    pub fn obj(pairs: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Convenience: an array of unsigned integers.
    pub fn u64_array(values: &[u64]) -> JsonValue {
        JsonValue::Arr(values.iter().map(|&v| JsonValue::U64(v)).collect())
    }

    /// Renders as compact JSON (no whitespace).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::U64(v) => {
                use fmt::Write;
                let _ = write!(out, "{v}");
            }
            JsonValue::F64(v) => {
                use fmt::Write;
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected '{word}' at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected '{}' at byte {}", b as char, self.pos)),
            None => Err(format!("unexpected end of input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 in string at byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| format!("unterminated escape at byte {}", self.pos))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| {
                                    format!("truncated \\u escape at byte {}", self.pos)
                                })?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by our own
                            // exports; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(format!(
                                "unknown escape '\\{}' at byte {}",
                                other as char, self.pos
                            ))
                        }
                    }
                }
                _ => return Err(format!("unterminated string at byte {}", self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(JsonValue::U64(v));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::F64)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_with_ordered_keys() {
        let v = JsonValue::obj(vec![
            ("b", JsonValue::U64(2)),
            ("a", JsonValue::u64_array(&[1, 0])),
            ("s", JsonValue::Str("x\"y".into())),
            ("f", JsonValue::F64(1.5)),
            ("n", JsonValue::Null),
            ("t", JsonValue::Bool(true)),
        ]);
        assert_eq!(
            v.to_json(),
            r#"{"b":2,"a":[1,0],"s":"x\"y","f":1.5,"n":null,"t":true}"#
        );
    }

    #[test]
    fn escapes_control_characters() {
        let v = JsonValue::Str("a\nb\u{1}".into());
        assert_eq!(v.to_json(), "\"a\\nb\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(JsonValue::F64(f64::NAN).to_json(), "null");
        assert_eq!(JsonValue::F64(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn parse_round_trips_own_output() {
        let v = JsonValue::obj(vec![
            ("b", JsonValue::U64(2)),
            ("a", JsonValue::u64_array(&[1, 0])),
            ("s", JsonValue::Str("x\"y\nz".into())),
            ("f", JsonValue::F64(1.5)),
            ("n", JsonValue::Null),
            ("t", JsonValue::Bool(true)),
            ("o", JsonValue::obj(vec![("k", JsonValue::Str("v".into()))])),
        ]);
        let parsed = JsonValue::parse(&v.to_json()).unwrap();
        assert_eq!(parsed, v);
        assert_eq!(parsed.to_json(), v.to_json());
    }

    #[test]
    fn parse_accepts_whitespace_and_negative_numbers() {
        let parsed = JsonValue::parse(" { \"x\" : [ -1.5 , 3 ] , \"y\" : { } } ").unwrap();
        assert_eq!(
            parsed.get("x").unwrap().as_array().unwrap(),
            &[JsonValue::F64(-1.5), JsonValue::U64(3)]
        );
        assert_eq!(parsed.get("y"), Some(&JsonValue::Obj(Vec::new())));
        assert_eq!(parsed.get("z"), None);
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "\"unterminated",
            "nul",
            "1 2",
            "{\"a\":1}x",
            "\"bad\\q\"",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn parse_decodes_escapes() {
        let parsed = JsonValue::parse(r#""aA\n\t\"\\ b""#).unwrap();
        assert_eq!(parsed.as_str(), Some("aA\n\t\"\\ b"));
    }
}
