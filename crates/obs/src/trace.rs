//! Causal span tracing: per-operation span trees over the DES message graph.
//!
//! Every protocol-initiating event (join, leave, link flap, crash, teardown)
//! opens a *root span*; each message or timer scheduled while a span's
//! handler is dispatching becomes a *child span*, so flood / withdraw /
//! install chains turn into parent→child trees across switches. A span
//! covers one scheduled delivery: it starts when the message is sent
//! (`start_ns`) and ends when it is delivered and handled (`end_ns` — known
//! at send time because DES delays are deterministic). Spans carry the
//! sender/receiver actors, a message label, and free-form notes: decision-log
//! events made while the span's handler ran, plus fault-injection outcomes
//! (drop, retransmit, duplicate, jitter).
//!
//! All timestamps are *simulated* nanoseconds (see `crate::log` for the
//! clock semantics); traces are therefore byte-reproducible across runs and
//! `--jobs` values. On top of the raw spans this module provides critical-
//! path extraction ([`critical_paths`]), Chrome trace-event / Perfetto JSON
//! export ([`chrome_trace_json`]) and a compact causal text renderer
//! ([`render_causal`], [`render_trace_timeline`]) shared by repro bundles
//! and model-checker counterexamples.

use crate::event::DecisionEvent;
use crate::json::JsonValue;
use crate::observer::Observer;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// One causal span: a scheduled delivery (message or self-timer) and the
/// handler work it triggered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// 1-based span id; `spans[id - 1]` is this span. 0 is reserved for
    /// "no span".
    pub id: u64,
    /// Id of the root span of this operation (== `id` for roots).
    pub trace: u64,
    /// Parent span id (0 for roots).
    pub parent: u64,
    /// Logical hop depth: 0 for roots, parent depth + 1 otherwise.
    pub depth: u32,
    /// Sending actor (None for injected events and self-timers).
    pub from: Option<u32>,
    /// Receiving actor.
    pub to: u32,
    /// Simulated send instant (nanoseconds).
    pub start_ns: u64,
    /// Simulated delivery instant (nanoseconds); equals `start_ns` for
    /// dropped messages, which never dispatch.
    pub end_ns: u64,
    /// Human-readable message label (protocol-specific).
    pub label: String,
    /// Annotations: decision events made by this span's handler, fault
    /// outcomes applied to this delivery.
    pub notes: Vec<String>,
}

impl Span {
    /// Duration in simulated nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// A completed causal trace: every span recorded between enable and take,
/// in creation (= schedule) order, so parents always precede children.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// All spans, ordered by id (`spans[i].id == i + 1`).
    pub spans: Vec<Span>,
}

impl Trace {
    /// Number of spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// `true` when no spans were recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The root spans (operations), in creation order.
    pub fn roots(&self) -> impl Iterator<Item = &Span> + '_ {
        self.spans.iter().filter(|s| s.parent == 0)
    }

    /// Checks structural well-formedness and returns the first violation:
    ///
    /// - ids are dense and 1-based (`spans[i].id == i + 1`);
    /// - every non-root parent exists, precedes its child, belongs to the
    ///   same trace, and ends exactly when the child starts (the child was
    ///   sent while the parent's handler ran);
    /// - depth is parent depth + 1 (0 at roots);
    /// - every trace id has exactly one root, which is the span whose id
    ///   *is* the trace id.
    pub fn validate(&self) -> Result<(), String> {
        let mut roots_per_trace: BTreeMap<u64, u64> = BTreeMap::new();
        for (i, span) in self.spans.iter().enumerate() {
            let id = i as u64 + 1;
            if span.id != id {
                return Err(format!("span at index {i} has id {} (want {id})", span.id));
            }
            if span.end_ns < span.start_ns {
                return Err(format!("span {id} ends before it starts"));
            }
            if span.parent == 0 {
                if span.trace != id {
                    return Err(format!(
                        "root span {id} claims trace {} (want {id})",
                        span.trace
                    ));
                }
                if span.depth != 0 {
                    return Err(format!("root span {id} has depth {}", span.depth));
                }
                *roots_per_trace.entry(span.trace).or_insert(0) += 1;
            } else {
                if span.parent >= id {
                    return Err(format!(
                        "span {id} has non-preceding parent {}",
                        span.parent
                    ));
                }
                let parent = &self.spans[span.parent as usize - 1];
                if parent.trace != span.trace {
                    return Err(format!(
                        "span {id} is in trace {} but its parent {} is in trace {}",
                        span.trace, span.parent, parent.trace
                    ));
                }
                if span.depth != parent.depth + 1 {
                    return Err(format!(
                        "span {id} has depth {} under parent depth {}",
                        span.depth, parent.depth
                    ));
                }
                if span.start_ns != parent.end_ns {
                    return Err(format!(
                        "span {id} starts at {} but its parent was dispatched at {}",
                        span.start_ns, parent.end_ns
                    ));
                }
            }
        }
        for span in &self.spans {
            match roots_per_trace.get(&span.trace) {
                Some(1) => {}
                Some(n) => return Err(format!("trace {} has {n} roots", span.trace)),
                None => return Err(format!("trace {} has no root (orphans)", span.trace)),
            }
        }
        Ok(())
    }
}

/// The critical path of one operation: the longest causal chain from the
/// initiating root span to the last delivery it transitively caused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpCriticalPath {
    /// Trace (root span) id of the operation.
    pub trace: u64,
    /// Label of the initiating root span.
    pub label: String,
    /// Simulated instant the operation was initiated.
    pub start_ns: u64,
    /// Simulated instant of the last delivery on the path (= the latest
    /// delivery in the whole operation).
    pub end_ns: u64,
    /// Causal hops on the path (depth of the terminal span).
    pub hops: u32,
    /// Span ids from root to terminal span, inclusive.
    pub path: Vec<u64>,
}

impl OpCriticalPath {
    /// Critical-path duration in simulated nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// Extracts the critical path of every operation in `trace`, in root order.
///
/// The terminal span of an operation is its latest-ending span (ties broken
/// toward the earliest-created), and the path is its parent chain. Because
/// every child starts exactly when its parent ends, the terminal span's end
/// is the instant the operation's last causal effect was delivered — which
/// is what convergence measures when the last effect is an install.
pub fn critical_paths(trace: &Trace) -> Vec<OpCriticalPath> {
    // Latest-ending span per trace id (first-seen wins ties: spans are in
    // creation order).
    let mut terminal: BTreeMap<u64, &Span> = BTreeMap::new();
    for span in &trace.spans {
        let best = terminal.entry(span.trace).or_insert(span);
        if span.end_ns > best.end_ns {
            *best = span;
        }
    }
    trace
        .roots()
        .map(|root| {
            let leaf = terminal[&root.trace];
            let mut path = Vec::with_capacity(leaf.depth as usize + 1);
            let mut cursor = leaf;
            loop {
                path.push(cursor.id);
                if cursor.parent == 0 {
                    break;
                }
                cursor = &trace.spans[cursor.parent as usize - 1];
            }
            path.reverse();
            OpCriticalPath {
                trace: root.trace,
                label: root.label.clone(),
                start_ns: root.start_ns,
                end_ns: leaf.end_ns,
                hops: leaf.depth,
                path,
            }
        })
        .collect()
}

/// Sums span durations (simulated nanoseconds) per phase, where `classify`
/// maps a span label to a phase name. Used for per-phase event-loop
/// self-profiling: the caller publishes the sums as registry gauges.
pub fn phase_durations_ns(
    trace: &Trace,
    classify: impl Fn(&str) -> &'static str,
) -> BTreeMap<&'static str, u64> {
    let mut sums = BTreeMap::new();
    for span in &trace.spans {
        *sums.entry(classify(&span.label)).or_insert(0) += span.duration_ns();
    }
    sums
}

/// Renders `trace` as Chrome trace-event JSON (object format), loadable in
/// Perfetto / `chrome://tracing`.
///
/// Each operation becomes a process (`pid` = trace id, named after the root
/// label); each span becomes a complete event (`ph:"X"`) on the receiving
/// actor's thread (`tid`), with `ts`/`dur` in microseconds and the causal
/// linkage (span/parent/depth/from/notes) under `args`. Output is a pure
/// function of the trace — deterministic and byte-identical across `--jobs`.
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut events: Vec<JsonValue> = Vec::with_capacity(trace.len() + 8);
    for root in trace.roots() {
        events.push(JsonValue::obj(vec![
            ("name", JsonValue::Str("process_name".into())),
            ("ph", JsonValue::Str("M".into())),
            ("pid", JsonValue::U64(root.trace)),
            ("tid", JsonValue::U64(0)),
            (
                "args",
                JsonValue::obj(vec![(
                    "name",
                    JsonValue::Str(format!("op {}: {}", root.trace, root.label)),
                )]),
            ),
        ]));
    }
    for span in &trace.spans {
        let mut args = vec![
            ("span", JsonValue::U64(span.id)),
            ("parent", JsonValue::U64(span.parent)),
            ("depth", JsonValue::U64(span.depth as u64)),
            (
                "from",
                span.from
                    .map_or(JsonValue::Null, |a| JsonValue::U64(a as u64)),
            ),
        ];
        if !span.notes.is_empty() {
            args.push((
                "notes",
                JsonValue::Arr(
                    span.notes
                        .iter()
                        .map(|n| JsonValue::Str(n.clone()))
                        .collect(),
                ),
            ));
        }
        events.push(JsonValue::obj(vec![
            ("name", JsonValue::Str(span.label.clone())),
            ("cat", JsonValue::Str("dgmc".into())),
            ("ph", JsonValue::Str("X".into())),
            ("ts", JsonValue::F64(span.start_ns as f64 / 1_000.0)),
            ("dur", JsonValue::F64(span.duration_ns() as f64 / 1_000.0)),
            ("pid", JsonValue::U64(span.trace)),
            ("tid", JsonValue::U64(span.to as u64)),
            ("args", JsonValue::obj(args)),
        ]));
    }
    let mut out = JsonValue::obj(vec![
        ("displayTimeUnit", JsonValue::Str("ns".into())),
        ("traceEvents", JsonValue::Arr(events)),
    ])
    .to_json();
    out.push('\n');
    out
}

/// One node of a generic causal tree for text rendering: model-checker
/// steps and DES spans both reduce to this shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CausalItem {
    /// Node id (any nonzero value; 0 is "no parent").
    pub id: u64,
    /// Parent node id, 0 for roots. Parents must appear before children.
    pub parent: u64,
    /// The rendered line content (without indentation).
    pub label: String,
}

/// Renders causal items as an indented text tree, one line per item, in the
/// given order. Indentation is two spaces per causal hop; non-roots get a
/// `↳` marker so chains read as "this happened *because of* the line above
/// it at one less indent". Items whose parent is absent render as roots.
pub fn render_causal(items: &[CausalItem]) -> Vec<String> {
    let mut depth: BTreeMap<u64, u32> = BTreeMap::new();
    items
        .iter()
        .map(|item| {
            let d = if item.parent == 0 {
                0
            } else {
                depth.get(&item.parent).map_or(0, |&p| p + 1)
            };
            depth.insert(item.id, d);
            if d == 0 {
                item.label.clone()
            } else {
                format!("{}↳ {}", "  ".repeat(d as usize), item.label)
            }
        })
        .collect()
}

/// Renders the last `last_n` spans of `trace` as a causal text timeline
/// (with an omission header when truncated), reusing [`render_causal`] so
/// repro bundles and counterexample timelines share one format.
pub fn render_trace_timeline(trace: &Trace, last_n: usize) -> Vec<String> {
    let skip = trace.spans.len().saturating_sub(last_n);
    let mut out = Vec::with_capacity(trace.spans.len() - skip + 1);
    if skip > 0 {
        out.push(format!("... {skip} earlier span(s) omitted"));
    }
    let items: Vec<CausalItem> = trace.spans[skip..]
        .iter()
        .map(|span| CausalItem {
            id: span.id,
            parent: span.parent,
            label: span.to_string(),
        })
        .collect();
    out.extend(render_causal(&items));
    out
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12.3}us] {}a{} {}",
            self.end_ns as f64 / 1_000.0,
            match self.from {
                Some(from) => format!("a{from}→"),
                None => String::new(),
            },
            self.to,
            self.label
        )?;
        for note in &self.notes {
            write!(f, " [{note}]")?;
        }
        Ok(())
    }
}

#[derive(Debug, Default)]
struct TraceCollector {
    spans: Vec<Span>,
    /// Id of the span whose handler is currently dispatching (0 = none).
    current: u64,
}

/// A cheaply cloneable causal-trace collector shared by the simulator, the
/// context handed to actors, and the harness.
///
/// Disabled by default: every hook is a single branch until
/// [`SharedTracer::enable`] is called, mirroring `crate::SharedObserver`.
/// Also implements [`Observer`], so attaching a clone as the decision-event
/// sink annotates the currently dispatching span with each decision.
#[derive(Clone, Default)]
pub struct SharedTracer {
    inner: Rc<RefCell<Option<TraceCollector>>>,
}

impl SharedTracer {
    /// A disabled tracer.
    pub fn new() -> SharedTracer {
        SharedTracer::default()
    }

    /// Starts collecting spans (idempotent; keeps existing spans).
    pub fn enable(&self) {
        let mut inner = self.inner.borrow_mut();
        if inner.is_none() {
            *inner = Some(TraceCollector::default());
        }
    }

    /// Whether spans are being collected.
    pub fn enabled(&self) -> bool {
        self.inner.borrow().is_some()
    }

    /// Stops collecting and returns the trace (None when disabled).
    pub fn take(&self) -> Option<Trace> {
        self.inner.borrow_mut().take().map(|collector| Trace {
            spans: collector.spans,
        })
    }

    /// Number of spans collected so far (0 when disabled).
    pub fn len(&self) -> usize {
        self.inner.borrow().as_ref().map_or(0, |c| c.spans.len())
    }

    /// `true` when disabled or nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records a span for a delivery scheduled at `end_ns` (sent at
    /// `start_ns`) and returns its id (0 when disabled).
    ///
    /// The new span's parent is the currently dispatching span; with no
    /// dispatch in progress (an injected event) it opens a new root. The
    /// label closure only runs when tracing is enabled.
    pub fn on_send(
        &self,
        from: Option<u32>,
        to: u32,
        start_ns: u64,
        end_ns: u64,
        label: impl FnOnce() -> String,
    ) -> u64 {
        let mut inner = self.inner.borrow_mut();
        let Some(collector) = inner.as_mut() else {
            return 0;
        };
        let id = collector.spans.len() as u64 + 1;
        let (trace, parent, depth) = if collector.current == 0 {
            (id, 0, 0)
        } else {
            let parent = &collector.spans[collector.current as usize - 1];
            (parent.trace, parent.id, parent.depth + 1)
        };
        collector.spans.push(Span {
            id,
            trace,
            parent,
            depth,
            from,
            to,
            start_ns,
            end_ns,
            label: label(),
            notes: Vec::new(),
        });
        id
    }

    /// Appends a note to span `id` (no-op when disabled or `id` is 0).
    pub fn annotate(&self, id: u64, note: impl FnOnce() -> String) {
        if id == 0 {
            return;
        }
        if let Some(collector) = self.inner.borrow_mut().as_mut() {
            if let Some(span) = collector.spans.get_mut(id as usize - 1) {
                span.notes.push(note());
            }
        }
    }

    /// Appends a note to the currently dispatching span, if any.
    pub fn annotate_current(&self, note: impl FnOnce() -> String) {
        let mut inner = self.inner.borrow_mut();
        if let Some(collector) = inner.as_mut() {
            let current = collector.current;
            if let Some(span) = current
                .checked_sub(1)
                .and_then(|i| collector.spans.get_mut(i as usize))
            {
                span.notes.push(note());
            }
        }
    }

    /// Marks span `id` as the one whose handler is now dispatching.
    ///
    /// Sends made until [`SharedTracer::end_dispatch`] become its children.
    pub fn begin_dispatch(&self, id: u64) {
        if let Some(collector) = self.inner.borrow_mut().as_mut() {
            collector.current = id;
        }
    }

    /// Clears the currently dispatching span.
    pub fn end_dispatch(&self) {
        if let Some(collector) = self.inner.borrow_mut().as_mut() {
            collector.current = 0;
        }
    }
}

impl Observer for SharedTracer {
    /// Decision events annotate the currently dispatching span, turning the
    /// decision log's typed stream into span annotations for free.
    fn record(&mut self, event: DecisionEvent) {
        self.annotate_current(|| format!("mc{} {}", event.mc, event.kind));
    }
}

impl fmt::Debug for SharedTracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedTracer")
            .field("enabled", &self.enabled())
            .field("spans", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DecisionKind, StampSnapshot};

    /// Builds the canonical two-operation trace used across tests:
    ///
    /// op A (root 1, injected at 0, delivered at 10): handler sends two
    /// children (delivered at 25 and 30); the 25-child sends a grandchild
    /// delivered at 60. op B (root 5, injected at 0, delivered at 40): no
    /// children.
    fn sample_tracer() -> SharedTracer {
        let tracer = SharedTracer::new();
        tracer.enable();
        let a = tracer.on_send(None, 0, 0, 10, || "join mc1".into());
        let b = tracer.on_send(None, 2, 0, 40, || "leave mc1".into());
        tracer.begin_dispatch(a);
        let c1 = tracer.on_send(Some(0), 1, 10, 25, || "mc-lsa".into());
        tracer.on_send(Some(0), 2, 10, 30, || "mc-lsa".into());
        tracer.end_dispatch();
        tracer.begin_dispatch(c1);
        tracer.on_send(Some(1), 2, 25, 60, || "mc-lsa".into());
        tracer.end_dispatch();
        tracer.begin_dispatch(b);
        tracer.end_dispatch();
        tracer
    }

    #[test]
    fn disabled_tracer_records_nothing_and_skips_label_closures() {
        let tracer = SharedTracer::new();
        assert!(!tracer.enabled());
        let id = tracer.on_send(None, 0, 0, 10, || panic!("label built while disabled"));
        assert_eq!(id, 0);
        tracer.annotate(id, || panic!("note built for span 0"));
        tracer.annotate_current(|| panic!("note built while disabled"));
        assert!(tracer.take().is_none());
    }

    #[test]
    fn spans_form_well_formed_trees() {
        let trace = sample_tracer().take().unwrap();
        assert_eq!(trace.len(), 5);
        trace.validate().unwrap();
        assert_eq!(trace.roots().count(), 2);
        let grandchild = &trace.spans[4];
        assert_eq!(grandchild.trace, 1);
        assert_eq!(grandchild.parent, 3);
        assert_eq!(grandchild.depth, 2);
        assert_eq!(grandchild.start_ns, 25);
    }

    #[test]
    fn validate_rejects_broken_trees() {
        let mut trace = sample_tracer().take().unwrap();
        trace.spans[4].depth = 7;
        assert!(trace.validate().is_err());
        let mut trace2 = sample_tracer().take().unwrap();
        trace2.spans[4].start_ns = 11;
        assert!(trace2.validate().is_err());
        let mut trace3 = sample_tracer().take().unwrap();
        // A root must be the span whose id is the trace id.
        trace3.spans[1].trace = 1;
        assert!(trace3.validate().is_err());
        let mut trace4 = sample_tracer().take().unwrap();
        // A child claiming a different trace than its parent is an orphan.
        trace4.spans[4].trace = 2;
        assert!(trace4.validate().is_err());
    }

    #[test]
    fn critical_path_finds_the_longest_causal_chain() {
        let trace = sample_tracer().take().unwrap();
        let paths = critical_paths(&trace);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].trace, 1);
        assert_eq!(paths[0].label, "join mc1");
        assert_eq!(paths[0].path, vec![1, 3, 5]);
        assert_eq!(paths[0].hops, 2);
        assert_eq!(paths[0].start_ns, 0);
        assert_eq!(paths[0].end_ns, 60);
        assert_eq!(paths[0].duration_ns(), 60);
        assert_eq!(paths[1].trace, 2);
        assert_eq!(paths[1].path, vec![2]);
        assert_eq!(paths[1].duration_ns(), 40);
    }

    #[test]
    fn decision_events_annotate_the_dispatching_span() {
        let tracer = sample_tracer();
        let id = tracer.on_send(None, 3, 100, 110, || "link-down".into());
        tracer.begin_dispatch(id);
        let mut sink: Box<dyn Observer> = Box::new(tracer.clone());
        sink.record(DecisionEvent {
            at_nanos: 110,
            mc: 4,
            switch: 3,
            kind: DecisionKind::ProposalWithdrawn,
            stamps: StampSnapshot::empty(),
        });
        tracer.end_dispatch();
        let trace = tracer.take().unwrap();
        let span = trace.spans.last().unwrap();
        assert_eq!(span.notes, vec!["mc4 ProposalWithdrawn".to_owned()]);
        assert!(span.to_string().contains("[mc4 ProposalWithdrawn]"));
    }

    #[test]
    fn chrome_export_is_valid_and_deterministic() {
        let trace = sample_tracer().take().unwrap();
        let json = chrome_trace_json(&trace);
        assert_eq!(json, chrome_trace_json(&sample_tracer().take().unwrap()));
        let doc = JsonValue::parse(json.trim_end()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        // 2 process_name metadata records + 5 spans.
        assert_eq!(events.len(), 7);
        for event in events {
            let ph = event.get("ph").unwrap().as_str().unwrap();
            assert!(event.get("name").is_some());
            assert!(event.get("pid").is_some());
            assert!(event.get("tid").is_some());
            if ph == "X" {
                assert!(event.get("ts").is_some());
                assert!(event.get("dur").is_some());
            } else {
                assert_eq!(ph, "M");
            }
        }
        // Span 5: sent at 25ns = 0.025us, delivered at 60ns -> dur 0.035us.
        assert!(json.contains(r#""ts":0.025,"dur":0.035"#), "{json}");
        assert!(json.contains(r#""name":"op 1: join mc1""#), "{json}");
    }

    #[test]
    fn causal_rendering_indents_by_depth() {
        let trace = sample_tracer().take().unwrap();
        let lines = render_trace_timeline(&trace, 10);
        assert_eq!(lines.len(), 5);
        assert!(lines[0].starts_with("["), "{}", lines[0]);
        assert!(lines[0].contains("join mc1"));
        assert!(lines[2].starts_with("  ↳ "), "{}", lines[2]);
        assert!(lines[4].starts_with("    ↳ "), "{}", lines[4]);
        assert!(lines[4].contains("a1→a2"));
        let capped = render_trace_timeline(&trace, 2);
        assert_eq!(capped[0], "... 3 earlier span(s) omitted");
        assert_eq!(capped.len(), 3);
        // Spans whose parents were truncated away render as roots.
        assert!(!capped[1].contains('↳'), "{}", capped[1]);
    }

    #[test]
    fn phase_durations_sum_by_label_class() {
        let trace = sample_tracer().take().unwrap();
        let sums = phase_durations_ns(&trace, |label| {
            if label.contains("lsa") {
                "flood"
            } else {
                "event"
            }
        });
        assert_eq!(sums["flood"], 15 + 20 + 35);
        assert_eq!(sums["event"], 10 + 40);
    }
}
