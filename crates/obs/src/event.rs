//! Typed protocol decision events.
//!
//! Each event captures one decision the D-GMC engine made — detecting a
//! membership event, computing/flooding/accepting/withdrawing a proposal,
//! resolving a conflict between concurrent proposals, or installing a
//! topology — together with the simulated instant and a compact snapshot of
//! the R/E/C vector timestamps at that moment.

use crate::json::JsonValue;
use std::fmt;

/// Compact copy of the three D-GMC vector timestamps (R ≥ E ≥ C invariant
/// notwithstanding: R counts events received, E events heard of, C the
/// stamp of the current topology).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StampSnapshot {
    /// Received-events vector (`R` in the paper).
    pub r: Vec<u64>,
    /// Heard-of-events vector (`E`).
    pub e: Vec<u64>,
    /// Current-topology stamp (`C`).
    pub c: Vec<u64>,
}

impl StampSnapshot {
    /// Builds a snapshot from the three component vectors.
    pub fn new(r: Vec<u64>, e: Vec<u64>, c: Vec<u64>) -> StampSnapshot {
        StampSnapshot { r, e, c }
    }

    /// An empty snapshot (for events where stamps are not meaningful).
    pub fn empty() -> StampSnapshot {
        StampSnapshot {
            r: Vec::new(),
            e: Vec::new(),
            c: Vec::new(),
        }
    }
}

impl fmt::Display for StampSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R={:?} E={:?} C={:?}", self.r, self.e, self.c)
    }
}

/// The flavor of a locally detected connection event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberChange {
    /// A host joined through the detecting switch.
    Join,
    /// A host left through the detecting switch.
    Leave,
    /// A link/nodal change forced a topology event.
    Link,
}

impl MemberChange {
    /// Stable lowercase name (used as the JSON `change` field).
    pub fn name(self) -> &'static str {
        match self {
            MemberChange::Join => "join",
            MemberChange::Leave => "leave",
            MemberChange::Link => "link",
        }
    }
}

/// The flavor of a fault injected on the message-delivery path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A message was dropped and will never arrive (hard loss).
    Drop,
    /// An extra copy of a message was scheduled.
    Duplicate,
    /// A message was lost and recovered by link-level retransmission
    /// (arrives late but arrives).
    Retransmit,
}

impl FaultKind {
    /// Stable lowercase name (used as the JSON `fault` field).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Retransmit => "retransmit",
        }
    }
}

/// What kind of decision was made, with decision-specific detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecisionKind {
    /// A membership or link event was detected locally.
    EventDetected {
        /// The switch where the event was detected.
        member: u32,
        /// What changed.
        change: MemberChange,
    },
    /// A topology computation finished and produced a proposal.
    ProposalComputed {
        /// Number of edges in the proposed multipoint topology.
        edges: usize,
    },
    /// A proposal (or event notification) was flooded in an MC LSA.
    ProposalFlooded,
    /// A remote proposal was accepted as the current candidate.
    ProposalAccepted {
        /// The switch whose proposal was accepted.
        from: u32,
    },
    /// A locally computed proposal was withdrawn as stale.
    ProposalWithdrawn,
    /// Two concurrent proposals for the same events were arbitrated.
    ConflictResolved {
        /// The switch whose proposal won the tie-break.
        winner: u32,
        /// The switch whose proposal was discarded.
        loser: u32,
    },
    /// A topology became the installed one for the connection.
    TopologyInstalled {
        /// The switch that computed the installed topology.
        source: u32,
        /// Number of edges in the installed topology.
        edges: usize,
    },
    /// The network model injected a fault on a message in flight.
    ///
    /// Emitted by the simulator (`switch` is the sender), so `mc` is 0 and
    /// the stamp snapshot is empty.
    FaultInjected {
        /// What was done to the message.
        fault: FaultKind,
        /// The intended recipient.
        peer: u32,
    },
    /// A protocol invariant failed during post-quiescence checking.
    InvariantViolated {
        /// Stable name of the violated invariant.
        invariant: String,
    },
    /// A computation-done signal arrived for a connection that no longer has
    /// that computation — e.g. its state was concurrently deleted by a
    /// withdraw/leave race. The signal was ignored as a no-op.
    StaleCompletion,
    /// A local event fired while an earlier local event was still
    /// unannounced (waiting on an in-flight computation); its flood was
    /// held back to preserve local order (DESIGN.md §11 race 2 repair).
    EventDeferred,
    /// The engine's behavior diverged from the executable Fig. 4/5
    /// specification during lockstep conformance checking (systematic
    /// exploration, DESIGN.md §11).
    SpecDiverged {
        /// Which field or action sequence diverged, and how.
        detail: String,
    },
}

impl DecisionKind {
    /// Stable name of the variant (used as the JSON `kind` field).
    pub fn name(&self) -> &'static str {
        match self {
            DecisionKind::EventDetected { .. } => "EventDetected",
            DecisionKind::ProposalComputed { .. } => "ProposalComputed",
            DecisionKind::ProposalFlooded => "ProposalFlooded",
            DecisionKind::ProposalAccepted { .. } => "ProposalAccepted",
            DecisionKind::ProposalWithdrawn => "ProposalWithdrawn",
            DecisionKind::ConflictResolved { .. } => "ConflictResolved",
            DecisionKind::TopologyInstalled { .. } => "TopologyInstalled",
            DecisionKind::FaultInjected { .. } => "FaultInjected",
            DecisionKind::InvariantViolated { .. } => "InvariantViolated",
            DecisionKind::StaleCompletion => "StaleCompletion",
            DecisionKind::EventDeferred => "EventDeferred",
            DecisionKind::SpecDiverged { .. } => "SpecDiverged",
        }
    }
}

impl fmt::Display for DecisionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecisionKind::EventDetected { member, change } => {
                write!(f, "EventDetected({} sw{member})", change.name())
            }
            DecisionKind::ProposalComputed { edges } => {
                write!(f, "ProposalComputed({edges} edges)")
            }
            DecisionKind::ProposalFlooded => write!(f, "ProposalFlooded"),
            DecisionKind::ProposalAccepted { from } => {
                write!(f, "ProposalAccepted(from sw{from})")
            }
            DecisionKind::ProposalWithdrawn => write!(f, "ProposalWithdrawn"),
            DecisionKind::ConflictResolved { winner, loser } => {
                write!(f, "ConflictResolved(sw{winner} over sw{loser})")
            }
            DecisionKind::TopologyInstalled { source, edges } => {
                write!(f, "TopologyInstalled(by sw{source}, {edges} edges)")
            }
            DecisionKind::FaultInjected { fault, peer } => {
                write!(f, "FaultInjected({} toward a{peer})", fault.name())
            }
            DecisionKind::InvariantViolated { invariant } => {
                write!(f, "InvariantViolated({invariant})")
            }
            DecisionKind::StaleCompletion => write!(f, "StaleCompletion"),
            DecisionKind::EventDeferred => write!(f, "EventDeferred"),
            DecisionKind::SpecDiverged { detail } => {
                write!(f, "SpecDiverged({detail})")
            }
        }
    }
}

/// One protocol decision, stamped with simulated time and R/E/C context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecisionEvent {
    /// Simulated instant in nanoseconds.
    pub at_nanos: u64,
    /// The multipoint connection the decision concerns.
    pub mc: u64,
    /// The switch that made the decision.
    pub switch: u32,
    /// What was decided.
    pub kind: DecisionKind,
    /// R/E/C vector timestamps at decision time.
    pub stamps: StampSnapshot,
}

impl DecisionEvent {
    /// Renders as one compact JSON object (one JSONL line, no newline).
    pub fn to_json(&self) -> String {
        let mut pairs = vec![
            ("at_ns", JsonValue::U64(self.at_nanos)),
            ("mc", JsonValue::U64(self.mc)),
            ("switch", JsonValue::U64(self.switch as u64)),
            ("kind", JsonValue::Str(self.kind.name().to_owned())),
        ];
        match &self.kind {
            DecisionKind::EventDetected { member, change } => {
                pairs.push(("member", JsonValue::U64(*member as u64)));
                pairs.push(("change", JsonValue::Str(change.name().to_owned())));
            }
            DecisionKind::ProposalComputed { edges } => {
                pairs.push(("edges", JsonValue::U64(*edges as u64)));
            }
            DecisionKind::ProposalFlooded
            | DecisionKind::ProposalWithdrawn
            | DecisionKind::StaleCompletion
            | DecisionKind::EventDeferred => {}
            DecisionKind::ProposalAccepted { from } => {
                pairs.push(("from", JsonValue::U64(*from as u64)));
            }
            DecisionKind::ConflictResolved { winner, loser } => {
                pairs.push(("winner", JsonValue::U64(*winner as u64)));
                pairs.push(("loser", JsonValue::U64(*loser as u64)));
            }
            DecisionKind::TopologyInstalled { source, edges } => {
                pairs.push(("source", JsonValue::U64(*source as u64)));
                pairs.push(("edges", JsonValue::U64(*edges as u64)));
            }
            DecisionKind::FaultInjected { fault, peer } => {
                pairs.push(("fault", JsonValue::Str(fault.name().to_owned())));
                pairs.push(("peer", JsonValue::U64(*peer as u64)));
            }
            DecisionKind::InvariantViolated { invariant } => {
                pairs.push(("invariant", JsonValue::Str(invariant.clone())));
            }
            DecisionKind::SpecDiverged { detail } => {
                pairs.push(("detail", JsonValue::Str(detail.clone())));
            }
        }
        pairs.push(("r", JsonValue::u64_array(&self.stamps.r)));
        pairs.push(("e", JsonValue::u64_array(&self.stamps.e)));
        pairs.push(("c", JsonValue::u64_array(&self.stamps.c)));
        JsonValue::obj(pairs).to_json()
    }
}

impl fmt::Display for DecisionEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12.3}us] sw{} mc{} {:<36} {}",
            self.at_nanos as f64 / 1_000.0,
            self.switch,
            self.mc,
            self.kind.to_string(),
            self.stamps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DecisionEvent {
        DecisionEvent {
            at_nanos: 42_000,
            mc: 7,
            switch: 1,
            kind: DecisionKind::ProposalAccepted { from: 2 },
            stamps: StampSnapshot::new(vec![1, 2, 0], vec![1, 2, 0], vec![0, 0, 0]),
        }
    }

    #[test]
    fn json_line_is_stable_and_typed() {
        assert_eq!(
            sample().to_json(),
            r#"{"at_ns":42000,"mc":7,"switch":1,"kind":"ProposalAccepted","from":2,"r":[1,2,0],"e":[1,2,0],"c":[0,0,0]}"#
        );
    }

    #[test]
    fn display_shows_time_kind_and_stamps() {
        let line = sample().to_string();
        assert!(line.contains("42.000us"), "{line}");
        assert!(line.contains("ProposalAccepted(from sw2)"), "{line}");
        assert!(line.contains("R=[1, 2, 0]"), "{line}");
    }

    #[test]
    fn every_kind_has_a_stable_name() {
        let kinds = [
            DecisionKind::EventDetected {
                member: 0,
                change: MemberChange::Join,
            },
            DecisionKind::ProposalComputed { edges: 3 },
            DecisionKind::ProposalFlooded,
            DecisionKind::ProposalAccepted { from: 1 },
            DecisionKind::ProposalWithdrawn,
            DecisionKind::ConflictResolved {
                winner: 0,
                loser: 1,
            },
            DecisionKind::TopologyInstalled {
                source: 0,
                edges: 2,
            },
            DecisionKind::FaultInjected {
                fault: FaultKind::Drop,
                peer: 3,
            },
            DecisionKind::InvariantViolated {
                invariant: "agreement".into(),
            },
            DecisionKind::StaleCompletion,
            DecisionKind::SpecDiverged {
                detail: "field `C` differs".into(),
            },
        ];
        let names: Vec<&str> = kinds.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            vec![
                "EventDetected",
                "ProposalComputed",
                "ProposalFlooded",
                "ProposalAccepted",
                "ProposalWithdrawn",
                "ConflictResolved",
                "TopologyInstalled",
                "FaultInjected",
                "InvariantViolated",
                "StaleCompletion",
                "SpecDiverged",
            ]
        );
    }

    #[test]
    fn spec_divergence_renders_its_detail() {
        let ev = DecisionEvent {
            kind: DecisionKind::SpecDiverged {
                detail: "field `C` differs".into(),
            },
            stamps: StampSnapshot::empty(),
            ..sample()
        };
        assert!(ev.to_json().contains(r#""detail":"field `C` differs""#));
        assert!(ev.to_string().contains("SpecDiverged(field `C` differs)"));
    }

    #[test]
    fn fault_and_invariant_events_render_their_detail() {
        let fault = DecisionEvent {
            kind: DecisionKind::FaultInjected {
                fault: FaultKind::Retransmit,
                peer: 5,
            },
            stamps: StampSnapshot::empty(),
            ..sample()
        };
        assert!(fault.to_json().contains(r#""fault":"retransmit","peer":5"#));
        assert!(fault.to_string().contains("FaultInjected(retransmit"));
        let inv = DecisionEvent {
            kind: DecisionKind::InvariantViolated {
                invariant: "stamps".into(),
            },
            stamps: StampSnapshot::empty(),
            ..sample()
        };
        assert!(inv.to_json().contains(r#""invariant":"stamps""#));
        assert!(inv.to_string().contains("InvariantViolated(stamps)"));
    }
}
