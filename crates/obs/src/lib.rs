//! Dependency-free observability for the D-GMC protocol stack.
//!
//! Three pillars, all allocation-conscious and deterministic:
//!
//! 1. **Protocol decision log** — a typed, bounded stream of
//!    [`DecisionEvent`]s ([`DecisionKind::EventDetected`],
//!    [`DecisionKind::ProposalComputed`], [`DecisionKind::ProposalFlooded`],
//!    [`DecisionKind::ProposalAccepted`], [`DecisionKind::ProposalWithdrawn`],
//!    [`DecisionKind::ConflictResolved`], [`DecisionKind::TopologyInstalled`])
//!    emitted by the protocol engine through the pluggable [`Observer`]
//!    trait. The default is disabled: emission costs one branch.
//! 2. **Metrics registry** — [`MetricsRegistry`] with interned counter keys
//!    and fixed-bucket power-of-two [`Histogram`]s, replacing stringly-typed
//!    per-run counter tables.
//! 3. **Export and rendering** — JSONL writers for the decision log and
//!    metric snapshots ([`JsonValue`]), plus a human-readable timeline dump
//!    ([`DecisionLog::timeline`], [`TimelineDumpGuard`]) for failing tests.
//! 4. **Causal span tracing** — [`SharedTracer`] collects per-operation
//!    [`Span`] trees over the simulated message graph; [`critical_paths`]
//!    extracts each operation's longest causal chain, [`chrome_trace_json`]
//!    exports Perfetto-loadable Chrome trace-event JSON, and
//!    [`render_causal`] / [`render_trace_timeline`] render compact causal
//!    text timelines shared by repro bundles and counterexamples.
//!
//! # Example
//!
//! ```
//! use dgmc_obs::{DecisionEvent, DecisionKind, DecisionLog, SharedObserver, StampSnapshot};
//!
//! let obs = SharedObserver::new();
//! let log = DecisionLog::shared(16);
//! obs.attach(log.clone());
//! obs.set_now(42_000);
//! obs.emit(|now| DecisionEvent {
//!     at_nanos: now,
//!     mc: 7,
//!     switch: 0,
//!     kind: DecisionKind::ProposalFlooded,
//!     stamps: StampSnapshot::new(vec![1, 0], vec![1, 0], vec![0, 0]),
//! });
//! assert_eq!(log.borrow().len(), 1);
//! assert!(log.borrow().timeline(8).contains("ProposalFlooded"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod json;
mod log;
mod metrics;
mod observer;
mod trace;

pub use event::{DecisionEvent, DecisionKind, FaultKind, MemberChange, StampSnapshot};
pub use json::JsonValue;
pub use log::{DecisionLog, DecisionLogHandle, TimelineDumpGuard, DROPPED_EVENTS_COUNTER};
pub use metrics::{CounterId, GaugeId, Histogram, HistogramId, MetricsRegistry};
pub use observer::{NoopObserver, Observer, SharedObserver};
pub use trace::{
    chrome_trace_json, critical_paths, phase_durations_ns, render_causal, render_trace_timeline,
    CausalItem, OpCriticalPath, SharedTracer, Span, Trace,
};
