//! Interned-key counters and fixed-bucket histograms.
//!
//! The registry replaces ad-hoc `HashMap<String, u64>` counter tables: hot
//! paths intern a name once (getting a copyable [`CounterId`] /
//! [`HistogramId`]) and afterwards update a plain `u64` slot, so steady-state
//! counting never hashes or allocates. Name-keyed convenience methods remain
//! for cold paths and for tests.

use crate::json::JsonValue;
use std::collections::{BTreeMap, HashMap};

/// Interned handle to one counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CounterId(u32);

/// Interned handle to one histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HistogramId(u32);

/// Interned handle to one gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GaugeId(u32);

/// A fixed-bucket histogram of `u64` samples.
///
/// Bucket 0 holds the value `0`; bucket `k ≥ 1` holds values in
/// `[2^(k-1), 2^k)`. Sixty-five buckets therefore cover the whole `u64`
/// range with no configuration and no allocation after creation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

const BUCKETS: usize = 65;

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Upper bound (inclusive) of bucket `index`.
    fn bucket_upper(index: usize) -> u64 {
        if index == 0 {
            0
        } else if index >= 64 {
            u64::MAX
        } else {
            (1u64 << index) - 1
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile (`0.0 ..= 1.0`).
    ///
    /// The bound makes the estimate conservative: the true quantile is never
    /// above the returned value by construction of the bucket.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (index, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_upper(index).min(self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(upper_bound_inclusive, count)` pairs.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (Self::bucket_upper(i), n))
            .collect()
    }

    /// Clears all samples.
    pub fn reset(&mut self) {
        *self = Histogram::default();
    }

    /// Folds every sample of `other` into `self` (bucket-wise; exact for
    /// count, sum, min and max).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Snapshot as a JSON object (stable key order).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("count", JsonValue::U64(self.count)),
            ("min", JsonValue::U64(self.min())),
            ("max", JsonValue::U64(self.max)),
            ("mean", JsonValue::F64(self.mean())),
            ("p50", JsonValue::U64(self.quantile(0.50))),
            ("p90", JsonValue::U64(self.quantile(0.90))),
            ("p99", JsonValue::U64(self.quantile(0.99))),
            (
                "buckets",
                JsonValue::Arr(
                    self.buckets()
                        .into_iter()
                        .map(|(le, n)| {
                            JsonValue::obj(vec![
                                ("le", JsonValue::U64(le)),
                                ("n", JsonValue::U64(n)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// The registry: interned counters plus named histograms.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    // PartialEq is implemented manually (by name → value) so two registries
    // that interned the same metrics in different orders still compare equal.
    counter_names: Vec<String>,
    counter_values: Vec<u64>,
    counter_index: HashMap<String, u32>,
    histogram_names: Vec<String>,
    histograms: Vec<Histogram>,
    histogram_index: HashMap<String, u32>,
    gauge_names: Vec<String>,
    gauge_values: Vec<u64>,
    gauge_index: HashMap<String, u32>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Interns `name`, returning a copyable handle. Idempotent.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(&id) = self.counter_index.get(name) {
            return CounterId(id);
        }
        let id = self.counter_values.len() as u32;
        self.counter_names.push(name.to_owned());
        self.counter_values.push(0);
        self.counter_index.insert(name.to_owned(), id);
        CounterId(id)
    }

    /// Adds 1 to an interned counter.
    pub fn incr(&mut self, id: CounterId) {
        self.counter_values[id.0 as usize] += 1;
    }

    /// Adds `n` to an interned counter.
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counter_values[id.0 as usize] += n;
    }

    /// Mutable slot for an interned counter (for handle-style increments).
    pub fn counter_slot(&mut self, name: &str) -> &mut u64 {
        let id = self.counter(name);
        &mut self.counter_values[id.0 as usize]
    }

    /// Current value of a counter by id.
    pub fn counter_get(&self, id: CounterId) -> u64 {
        self.counter_values[id.0 as usize]
    }

    /// Current value of a counter by name (0 when never interned).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counter_index
            .get(name)
            .map_or(0, |&id| self.counter_values[id as usize])
    }

    /// All counters as a sorted name → value map (for reports and
    /// determinism comparisons).
    pub fn counters_map(&self) -> BTreeMap<String, u64> {
        self.counter_names
            .iter()
            .cloned()
            .zip(self.counter_values.iter().copied())
            .collect()
    }

    /// Interns a histogram by name. Idempotent.
    pub fn histogram(&mut self, name: &str) -> HistogramId {
        if let Some(&id) = self.histogram_index.get(name) {
            return HistogramId(id);
        }
        let id = self.histograms.len() as u32;
        self.histogram_names.push(name.to_owned());
        self.histograms.push(Histogram::new());
        self.histogram_index.insert(name.to_owned(), id);
        HistogramId(id)
    }

    /// Records `value` into an interned histogram.
    pub fn observe(&mut self, id: HistogramId, value: u64) {
        self.histograms[id.0 as usize].record(value);
    }

    /// Records `value` into a histogram by name (interning if needed).
    pub fn observe_named(&mut self, name: &str, value: u64) {
        let id = self.histogram(name);
        self.observe(id, value);
    }

    /// Read access to a histogram by name.
    pub fn histogram_get(&self, name: &str) -> Option<&Histogram> {
        self.histogram_index
            .get(name)
            .map(|&id| &self.histograms[id as usize])
    }

    /// Histogram names in registration order.
    pub fn histogram_names(&self) -> impl Iterator<Item = &str> + '_ {
        self.histogram_names.iter().map(String::as_str)
    }

    /// Interns a gauge by name. Idempotent.
    ///
    /// A gauge is a *point-in-time level* (tree cost, max leaf delay, queue
    /// depth), as opposed to a monotone counter: setting it replaces the
    /// previous value.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(&id) = self.gauge_index.get(name) {
            return GaugeId(id);
        }
        let id = self.gauge_values.len() as u32;
        self.gauge_names.push(name.to_owned());
        self.gauge_values.push(0);
        self.gauge_index.insert(name.to_owned(), id);
        GaugeId(id)
    }

    /// Sets an interned gauge to `value` (replacing the previous level).
    pub fn gauge_set(&mut self, id: GaugeId, value: u64) {
        self.gauge_values[id.0 as usize] = value;
    }

    /// Sets a gauge by name (interning if needed).
    pub fn gauge_set_named(&mut self, name: &str, value: u64) {
        let id = self.gauge(name);
        self.gauge_set(id, value);
    }

    /// Current value of a gauge by id.
    pub fn gauge_get(&self, id: GaugeId) -> u64 {
        self.gauge_values[id.0 as usize]
    }

    /// Current value of a gauge by name (0 when never interned).
    pub fn gauge_value(&self, name: &str) -> u64 {
        self.gauge_index
            .get(name)
            .map_or(0, |&id| self.gauge_values[id as usize])
    }

    /// All gauges as a sorted name → value map.
    pub fn gauges_map(&self) -> BTreeMap<String, u64> {
        self.gauge_names
            .iter()
            .cloned()
            .zip(self.gauge_values.iter().copied())
            .collect()
    }

    /// Zeroes every counter and gauge and clears every histogram, keeping
    /// the interned names (ids stay valid).
    pub fn reset(&mut self) {
        for value in &mut self.counter_values {
            *value = 0;
        }
        for histogram in &mut self.histograms {
            histogram.reset();
        }
        for value in &mut self.gauge_values {
            *value = 0;
        }
    }

    /// Folds every counter and histogram of `other` into `self`, matching by
    /// name and interning names `self` has not seen yet. Used to aggregate
    /// the registries of many independent runs into one snapshot.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, &value) in other.counter_names.iter().zip(&other.counter_values) {
            let id = self.counter(name);
            self.counter_values[id.0 as usize] += value;
        }
        for (name, histogram) in other.histogram_names.iter().zip(&other.histograms) {
            let id = self.histogram(name);
            self.histograms[id.0 as usize].merge(histogram);
        }
        // Gauges are point-in-time levels, not sums: when aggregating many
        // independent runs of a sweep, keep the worst (largest) level seen
        // for each gauge so reports surface the worst-case tree quality.
        for (name, &value) in other.gauge_names.iter().zip(&other.gauge_values) {
            let id = self.gauge(name);
            let slot = &mut self.gauge_values[id.0 as usize];
            *slot = (*slot).max(value);
        }
    }

    /// Full snapshot as a JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}` with
    /// sorted keys in each section.
    pub fn to_json(&self) -> JsonValue {
        let counters = JsonValue::Obj(
            self.counters_map()
                .into_iter()
                .map(|(name, value)| (name, JsonValue::U64(value)))
                .collect(),
        );
        let mut hist_pairs: Vec<(String, JsonValue)> = self
            .histogram_names
            .iter()
            .zip(&self.histograms)
            .map(|(name, histogram)| (name.clone(), histogram.to_json()))
            .collect();
        hist_pairs.sort_by(|a, b| a.0.cmp(&b.0));
        let gauges = JsonValue::Obj(
            self.gauges_map()
                .into_iter()
                .map(|(name, value)| (name, JsonValue::U64(value)))
                .collect(),
        );
        JsonValue::Obj(vec![
            ("counters".to_owned(), counters),
            ("gauges".to_owned(), gauges),
            ("histograms".to_owned(), JsonValue::Obj(hist_pairs)),
        ])
    }
}

impl PartialEq for MetricsRegistry {
    fn eq(&self, other: &MetricsRegistry) -> bool {
        if self.counters_map() != other.counters_map() {
            return false;
        }
        if self.gauges_map() != other.gauges_map() {
            return false;
        }
        let by_name = |reg: &MetricsRegistry| -> BTreeMap<String, Histogram> {
            reg.histogram_names
                .iter()
                .cloned()
                .zip(reg.histograms.iter().cloned())
                .collect()
        };
        by_name(self) == by_name(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_counts() {
        let mut reg = MetricsRegistry::new();
        let a = reg.counter("dgmc.floodings");
        let again = reg.counter("dgmc.floodings");
        assert_eq!(a, again);
        reg.incr(a);
        reg.add(a, 4);
        assert_eq!(reg.counter_get(a), 5);
        assert_eq!(reg.counter_value("dgmc.floodings"), 5);
        assert_eq!(reg.counter_value("never.seen"), 0);
    }

    #[test]
    fn counter_slot_supports_handle_style_updates() {
        let mut reg = MetricsRegistry::new();
        *reg.counter_slot("x") += 3;
        *reg.counter_slot("x") += 1;
        assert_eq!(reg.counter_value("x"), 4);
    }

    #[test]
    fn counters_map_is_sorted_by_name() {
        let mut reg = MetricsRegistry::new();
        reg.counter("z");
        reg.counter("a");
        let keys: Vec<String> = reg.counters_map().into_keys().collect();
        assert_eq!(keys, vec!["a".to_owned(), "z".to_owned()]);
    }

    #[test]
    fn histogram_buckets_are_power_of_two() {
        let mut h = Histogram::new();
        for v in [0, 1, 1, 3, 4, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 100);
        // 0 -> le 0; 1,1 -> le 1; 3 -> le 3; 4 -> le 7; 100 -> le 127.
        assert_eq!(h.buckets(), vec![(0, 1), (1, 2), (3, 1), (7, 1), (127, 1)]);
        assert_eq!(h.quantile(0.5), 1);
        assert_eq!(h.quantile(1.0), 100); // clamped to observed max
    }

    #[test]
    fn extreme_samples_stay_in_bounds() {
        // bucket_of(u64::MAX) == 64 — the last of the 65 buckets, not OOB.
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        h.record(1u64 << 63);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.buckets(), vec![(u64::MAX, 3)]);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }

    #[test]
    fn low_quantiles_never_undershoot_the_min() {
        // The conservative bucket-upper estimate must stay within the
        // observed [min, max] even for q near (or at) 0.
        let mut h = Histogram::new();
        for v in [100u64, 150, 200, 1 << 40] {
            h.record(v);
        }
        for q in [0.0, 1e-9, 0.01, 0.25, 0.5, 0.99, 1.0] {
            let est = h.quantile(q);
            assert!(est >= h.min(), "quantile({q}) = {est} < min {}", h.min());
            assert!(est <= h.max(), "quantile({q}) = {est} > max {}", h.max());
        }
    }

    proptest::proptest! {
        #[test]
        fn bucket_of_and_bucket_upper_are_inverses(v in proptest::prelude::any::<u64>()) {
            let index = Histogram::bucket_of(v);
            proptest::prop_assert!(index < BUCKETS);
            // The bucket's upper bound covers the value...
            proptest::prop_assert!(Histogram::bucket_upper(index) >= v);
            // ...and the previous bucket's does not (v == 0 sits in bucket 0,
            // which has no predecessor).
            if index > 0 {
                proptest::prop_assert!(Histogram::bucket_upper(index - 1) < v);
            }
        }

        #[test]
        fn quantiles_bracket_all_samples(values in proptest::collection::vec(proptest::prelude::any::<u64>(), 1..50)) {
            let mut h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let lo = *values.iter().min().unwrap();
            let hi = *values.iter().max().unwrap();
            for q in [0.0, 0.5, 0.9, 1.0] {
                let est = h.quantile(q);
                proptest::prop_assert!(est >= lo && est <= hi);
            }
        }
    }

    #[test]
    fn empty_histogram_is_well_defined() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.99), 0);
        assert!(h.buckets().is_empty());
    }

    #[test]
    fn reset_keeps_ids_valid() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("c");
        let h = reg.histogram("h");
        reg.incr(c);
        reg.observe(h, 9);
        reg.reset();
        assert_eq!(reg.counter_get(c), 0);
        assert_eq!(reg.histogram_get("h").unwrap().count(), 0);
        reg.incr(c);
        reg.observe(h, 2);
        assert_eq!(reg.counter_get(c), 1);
        assert_eq!(reg.histogram_get("h").unwrap().max(), 2);
    }

    #[test]
    fn merge_aggregates_counters_and_histograms() {
        let mut a = MetricsRegistry::new();
        *a.counter_slot("shared") += 2;
        a.observe_named("lat", 4);
        let mut b = MetricsRegistry::new();
        *b.counter_slot("shared") += 3;
        *b.counter_slot("only_b") += 1;
        b.observe_named("lat", 100);
        b.observe_named("fanout", 2);
        a.merge(&b);
        assert_eq!(a.counter_value("shared"), 5);
        assert_eq!(a.counter_value("only_b"), 1);
        let lat = a.histogram_get("lat").unwrap();
        assert_eq!(lat.count(), 2);
        assert_eq!(lat.min(), 4);
        assert_eq!(lat.max(), 100);
        assert_eq!(a.histogram_get("fanout").unwrap().count(), 1);
    }

    #[test]
    fn merge_is_independent_of_worker_arrival_and_interning_order() {
        // Three "worker" registries that intern overlapping metric sets in
        // adversarial orders: every name gets a different interner id in
        // every registry, and the workers arrive for merging in every
        // possible order. The aggregate must not care: matching is by name
        // (with remapping onto the target's own ids), counter and bucket
        // sums commute, and the JSON snapshot sorts keys.
        let worker = |names: &[&str], weight: u64| {
            let mut reg = MetricsRegistry::new();
            for (i, name) in names.iter().enumerate() {
                *reg.counter_slot(name) += weight + i as u64;
                reg.observe_named(&format!("h.{name}"), weight * 10 + i as u64);
            }
            reg
        };
        let a = worker(&["alpha", "beta", "gamma"], 1);
        let b = worker(&["gamma", "alpha", "delta"], 100);
        let c = worker(&["delta", "beta"], 10_000);
        let orders: [[&MetricsRegistry; 3]; 6] = [
            [&a, &b, &c],
            [&a, &c, &b],
            [&b, &a, &c],
            [&b, &c, &a],
            [&c, &a, &b],
            [&c, &b, &a],
        ];
        let merged: Vec<MetricsRegistry> = orders
            .iter()
            .map(|order| {
                let mut total = MetricsRegistry::new();
                for reg in order {
                    total.merge(reg);
                }
                total
            })
            .collect();
        let reference = merged[0].to_json().to_json();
        assert!(reference.contains(r#""alpha":102"#), "{reference}");
        for (i, total) in merged.iter().enumerate() {
            assert_eq!(&merged[0], total, "arrival order {i} changed the aggregate");
            assert_eq!(
                reference,
                total.to_json().to_json(),
                "arrival order {i} changed the JSON snapshot bytes"
            );
        }
    }

    #[test]
    fn equality_ignores_interning_order() {
        let mut a = MetricsRegistry::new();
        a.counter("x");
        *a.counter_slot("y") += 1;
        a.observe_named("h", 3);
        let mut b = MetricsRegistry::new();
        b.observe_named("h", 3);
        *b.counter_slot("y") += 1;
        b.counter("x");
        assert_eq!(a, b);
        *b.counter_slot("y") += 1;
        assert_ne!(a, b);
    }

    #[test]
    fn json_snapshot_shape_is_stable() {
        let mut reg = MetricsRegistry::new();
        let b = reg.counter("b");
        reg.add(b, 2);
        let a = reg.counter("a");
        reg.add(a, 1);
        reg.observe_named("lat", 8);
        reg.gauge_set_named("g", 7);
        let json = reg.to_json().to_json();
        assert!(
            json.starts_with(r#"{"counters":{"a":1,"b":2},"gauges":{"g":7},"histograms":{"lat":"#)
        );
        assert!(json.contains(r#""count":1"#));
        assert!(json.contains(r#""p50":8"#));
    }

    #[test]
    fn gauges_set_replace_and_reset() {
        let mut reg = MetricsRegistry::new();
        let g = reg.gauge("tree.cost");
        assert_eq!(reg.gauge("tree.cost"), g);
        reg.gauge_set(g, 12);
        reg.gauge_set(g, 9);
        assert_eq!(reg.gauge_get(g), 9);
        assert_eq!(reg.gauge_value("tree.cost"), 9);
        assert_eq!(reg.gauge_value("never.seen"), 0);
        reg.reset();
        assert_eq!(reg.gauge_get(g), 0);
        reg.gauge_set_named("tree.cost", 3);
        assert_eq!(reg.gauge_get(g), 3);
    }

    #[test]
    fn gauge_merge_keeps_the_worst_level() {
        let mut a = MetricsRegistry::new();
        a.gauge_set_named("delay", 40);
        a.gauge_set_named("only_a", 1);
        let mut b = MetricsRegistry::new();
        b.gauge_set_named("delay", 25);
        b.gauge_set_named("only_b", 2);
        a.merge(&b);
        assert_eq!(a.gauge_value("delay"), 40);
        assert_eq!(a.gauge_value("only_a"), 1);
        assert_eq!(a.gauge_value("only_b"), 2);
        // Merging the other way yields the same aggregate (max commutes).
        let mut c = MetricsRegistry::new();
        c.gauge_set_named("delay", 25);
        c.gauge_set_named("only_b", 2);
        let mut d = MetricsRegistry::new();
        d.gauge_set_named("delay", 40);
        d.gauge_set_named("only_a", 1);
        c.merge(&d);
        assert_eq!(a, c);
    }

    #[test]
    fn equality_covers_gauges() {
        let mut a = MetricsRegistry::new();
        a.gauge_set_named("g", 1);
        let mut b = MetricsRegistry::new();
        b.gauge_set_named("g", 1);
        assert_eq!(a, b);
        b.gauge_set_named("g", 2);
        assert_ne!(a, b);
    }
}
