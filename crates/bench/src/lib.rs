//! Shared helpers for the Criterion benches that regenerate the paper's
//! figures.
//!
//! Each bench first prints the reproduced figure rows (reduced scale — use
//! the `dgmc-experiments` binaries for the full 20-graph sweeps), then
//! benchmarks the underlying simulation so `cargo bench` also tracks the
//! harness's own performance.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dgmc_experiments::presets::{self, ExperimentSpec};
use dgmc_experiments::report;

/// Runs a reduced-scale sweep of `spec` and prints the figure table.
pub fn print_figure(spec: ExperimentSpec) {
    let quick = presets::quick(spec);
    let results = presets::run_experiment(&quick);
    println!();
    println!(
        "=== Reproduced rows (reduced scale: {} graphs/size) ===",
        quick.graphs_per_size
    );
    print!("{}", report::text_table(&results));
    println!("=== (full scale: cargo run --release -p dgmc-experiments --bin exp{{1,2,3}}) ===");
    println!();
}
