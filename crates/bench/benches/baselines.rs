//! Baseline comparison (Section 4 prose / Section 2): D-GMC vs brute-force
//! LSR multicast vs MOSPF per-event overhead, and CBT tree quality.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgmc_experiments::compare;

fn bench_baselines(c: &mut Criterion) {
    let sizes = [20usize, 60];
    let rows = compare::compare_protocols(&sizes, 3, 0xC0FFEE);
    println!();
    println!("=== Signaling overhead per membership event (reduced scale) ===");
    print!("{}", compare::protocol_table(&rows));
    let cbt_rows = compare::compare_cbt(&sizes, 3, 0xBEEF);
    println!("=== CBT vs D-GMC Steiner trees ===");
    print!("{}", compare::cbt_table(&cbt_rows));
    println!();

    let mut group = c.benchmark_group("baseline_comparison");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("all_protocols", 20), &20usize, |b, &n| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            compare::compare_protocols(&[n], 1, seed)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
