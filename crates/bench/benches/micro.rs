//! Micro-benchmarks of the building blocks: Steiner heuristics, SPF and
//! vector-timestamp operations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgmc_core::Timestamp;
use dgmc_mctree::algorithms;
use dgmc_topology::{generate, spf, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;

fn bench_steiner(c: &mut Criterion) {
    let mut group = c.benchmark_group("steiner_heuristics");
    for &n in &[50usize, 100, 200] {
        let mut rng = StdRng::seed_from_u64(7);
        let net = generate::waxman(&mut rng, n, &generate::WaxmanParams::default());
        let terminals: BTreeSet<NodeId> = generate::sample_nodes(&mut rng, &net, n / 10)
            .into_iter()
            .collect();
        group.bench_with_input(BenchmarkId::new("takahashi_matsuyama", n), &n, |b, _| {
            b.iter(|| algorithms::takahashi_matsuyama(&net, &terminals));
        });
        group.bench_with_input(BenchmarkId::new("kmb", n), &n, |b, _| {
            b.iter(|| algorithms::kmb(&net, &terminals));
        });
        group.bench_with_input(BenchmarkId::new("pruned_spt", n), &n, |b, _| {
            b.iter(|| algorithms::pruned_spt(&net, NodeId(0), &terminals));
        });
    }
    group.finish();
}

fn bench_spf(c: &mut Criterion) {
    let mut group = c.benchmark_group("spf");
    for &n in &[100usize, 200] {
        let mut rng = StdRng::seed_from_u64(9);
        let net = generate::waxman(&mut rng, n, &generate::WaxmanParams::default());
        group.bench_with_input(BenchmarkId::new("dijkstra", n), &n, |b, _| {
            b.iter(|| spf::shortest_path_tree(&net, NodeId(0)));
        });
        group.bench_with_input(BenchmarkId::new("hop_bfs", n), &n, |b, _| {
            b.iter(|| spf::hop_distances(&net, NodeId(0)));
        });
    }
    group.finish();
}

fn bench_timestamps(c: &mut Criterion) {
    let mut group = c.benchmark_group("timestamps");
    for &n in &[100usize, 200] {
        let mut a = Timestamp::zero(n);
        let mut b_ts = Timestamp::zero(n);
        for i in (0..n).step_by(3) {
            a.incr(NodeId(i as u32));
        }
        for i in (0..n).step_by(5) {
            b_ts.incr(NodeId(i as u32));
        }
        group.bench_with_input(BenchmarkId::new("dominates", n), &n, |bch, _| {
            bch.iter(|| a.dominates(&b_ts));
        });
        group.bench_with_input(BenchmarkId::new("merge_max", n), &n, |bch, _| {
            bch.iter(|| a.merged_max(&b_ts));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_steiner, bench_spf, bench_timestamps);
criterion_main!(benches);
