//! Figure 7 (Experiment 2): bursty events, communication-dominated timing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgmc_core::switch::DgmcConfig;
use dgmc_experiments::workload::{self, BurstParams};
use dgmc_experiments::{presets, runner};

fn bench_fig7(c: &mut Criterion) {
    dgmc_bench::print_figure(presets::experiment2());
    let mut group = c.benchmark_group("fig7_bursty_communication_dominated");
    group.sample_size(10);
    for &n in &[40usize, 120, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut seed = 1_000u64;
            b.iter(|| {
                seed += 1;
                runner::run_seeded(
                    n,
                    seed,
                    DgmcConfig::communication_dominated(),
                    |rng, net| workload::bursty(rng, net, &BurstParams::default()),
                )
                .expect("run converges")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
