//! Figure 8 (Experiment 3): sparse "normal" traffic periods.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgmc_core::switch::DgmcConfig;
use dgmc_experiments::workload::{self, SparseParams};
use dgmc_experiments::{presets, runner};

fn bench_fig8(c: &mut Criterion) {
    dgmc_bench::print_figure(presets::experiment3());
    let mut group = c.benchmark_group("fig8_sparse_normal_traffic");
    group.sample_size(10);
    for &n in &[40usize, 120, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut seed = 2_000u64;
            b.iter(|| {
                seed += 1;
                runner::run_seeded(n, seed, DgmcConfig::computation_dominated(), |rng, net| {
                    workload::sparse(rng, net, &SparseParams::default())
                })
                .expect("run converges")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
