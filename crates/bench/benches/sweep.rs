//! PR4 sweep benchmark: parallel seed-sweep throughput versus serial,
//! self-timed and exported as `BENCH_pr4.json`.
//!
//! Two sweep shapes, both pure functions of their seeds:
//!
//! * **Explorer chaos sweep** — the seeded schedule explorer
//!   (`explore_run`) over a block of chaos-scenario seeds, serial
//!   (`jobs = 1`) versus the scoped-thread worker pool (`jobs =
//!   min(cores, 8)`).
//! * **Experiment sweep** — a small `run_experiment_jobs` preset (bursty
//!   workload), the unit the paper's figure sweeps are built from.
//!
//! Besides the throughput numbers, this bench *is* the determinism gate at
//! speed: each scenario asserts the parallel result is byte-identical to the
//! serial one before it records a single timing. The ≥2x speedup assertion
//! only applies on machines with at least 4 cores (a single-core container
//! can't speed anything up; the numbers are still recorded there).
//!
//! The vendored criterion shim has no data export, so this bench times with
//! `std::time::Instant` directly and writes its own JSON. Set
//! `DGMC_BENCH_SMOKE=1` for a reduced-size CI run.

use dgmc_core::switch::DgmcConfig;
use dgmc_des::explorer::ExploreConfig;
use dgmc_des::par;
use dgmc_experiments::explore::{self, ExploreParams};
use dgmc_experiments::presets::{self, ExperimentSpec, WorkloadKind};
use dgmc_experiments::report;
use dgmc_experiments::workload::BurstParams;
use std::fmt::Write as _;
use std::time::Instant;

struct Scenario {
    name: &'static str,
    /// Independent seeds (or graph runs) in the sweep.
    tasks: u64,
    serial_nanos: u128,
    parallel_nanos: u128,
}

impl Scenario {
    fn speedup(&self) -> f64 {
        if self.parallel_nanos == 0 {
            f64::INFINITY
        } else {
            self.serial_nanos as f64 / self.parallel_nanos as f64
        }
    }

    fn per_sec(&self, nanos: u128) -> f64 {
        if nanos == 0 {
            f64::INFINITY
        } else {
            self.tasks as f64 * 1e9 / nanos as f64
        }
    }
}

fn bench_explorer(seeds: u64, jobs: usize) -> Scenario {
    let params = ExploreParams {
        nodes: 12,
        ..ExploreParams::default()
    };
    let config = |jobs| ExploreConfig {
        start_seed: 0,
        seeds,
        fail_fast: false,
        jobs,
        ..ExploreConfig::default()
    };
    // Warm-up run (also JIT-free determinism check before timing anything).
    let serial_report = explore::explore_run(&config(1), &params);
    let parallel_report = explore::explore_run(&config(jobs), &params);
    assert_eq!(
        serial_report.to_json(),
        parallel_report.to_json(),
        "jobs={jobs} explorer report diverged from serial"
    );
    assert!(serial_report.passed(), "{}", serial_report.summary());

    let start = Instant::now();
    let timed_serial = explore::explore_run(&config(1), &params);
    let serial_nanos = start.elapsed().as_nanos();
    let start = Instant::now();
    let timed_parallel = explore::explore_run(&config(jobs), &params);
    let parallel_nanos = start.elapsed().as_nanos();
    assert_eq!(timed_serial.to_json(), timed_parallel.to_json());
    Scenario {
        name: "explorer_chaos_n12",
        tasks: seeds,
        serial_nanos,
        parallel_nanos,
    }
}

fn bench_experiment(graphs: usize, jobs: usize) -> Scenario {
    let spec = ExperimentSpec {
        name: "bench sweep",
        config: DgmcConfig::computation_dominated(),
        sizes: vec![20, 30],
        graphs_per_size: graphs,
        workload: WorkloadKind::Bursty(BurstParams {
            burst_events: 6,
            ..BurstParams::default()
        }),
        seed: 0x9664,
    };
    let serial = presets::run_experiment_jobs(&spec, 1);
    let parallel = presets::run_experiment_jobs(&spec, jobs);
    assert_eq!(
        report::metrics_snapshot(&serial.name, &serial.metrics),
        report::metrics_snapshot(&parallel.name, &parallel.metrics),
        "jobs={jobs} experiment metrics diverged from serial"
    );

    let start = Instant::now();
    let _ = presets::run_experiment_jobs(&spec, 1);
    let serial_nanos = start.elapsed().as_nanos();
    let start = Instant::now();
    let _ = presets::run_experiment_jobs(&spec, jobs);
    let parallel_nanos = start.elapsed().as_nanos();
    Scenario {
        name: "experiment_bursty_2sizes",
        tasks: (spec.sizes.len() * graphs) as u64,
        serial_nanos,
        parallel_nanos,
    }
}

fn write_json(scenarios: &[Scenario], jobs: usize, cores: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"pr4.parallel_sweep\",\n");
    let _ = writeln!(out, "  \"cores\": {cores},");
    let _ = writeln!(out, "  \"jobs\": {jobs},");
    out.push_str("  \"scenarios\": [\n");
    for (i, s) in scenarios.iter().enumerate() {
        let sep = if i + 1 == scenarios.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"tasks\": {}, \"serial_ms\": {:.3}, \"parallel_ms\": {:.3}, \
             \"serial_per_sec\": {:.3}, \"parallel_per_sec\": {:.3}, \"speedup\": {:.3}}}{}",
            s.name,
            s.tasks,
            s.serial_nanos as f64 / 1e6,
            s.parallel_nanos as f64 / 1e6,
            s.per_sec(s.serial_nanos),
            s.per_sec(s.parallel_nanos),
            s.speedup(),
            sep
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let smoke = std::env::var_os("DGMC_BENCH_SMOKE").is_some();
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let jobs = par::default_jobs();
    let (seeds, graphs) = if smoke { (12, 3) } else { (48, 8) };
    let scenarios = vec![bench_explorer(seeds, jobs), bench_experiment(graphs, jobs)];

    for s in &scenarios {
        println!(
            "{:<24} serial {:>9.2} ms ({:>7.2}/s)  parallel({} jobs) {:>9.2} ms ({:>7.2}/s)  speedup {:>5.2}x",
            s.name,
            s.serial_nanos as f64 / 1e6,
            s.per_sec(s.serial_nanos),
            jobs,
            s.parallel_nanos as f64 / 1e6,
            s.per_sec(s.parallel_nanos),
            s.speedup(),
        );
    }
    let json = write_json(&scenarios, jobs, cores);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr4.json");
    std::fs::write(path, &json).expect("write BENCH_pr4.json");
    println!("wrote {path}");
    if cores >= 4 && !smoke {
        let explorer = &scenarios[0];
        assert!(
            explorer.speedup() >= 2.0,
            "explorer sweep speedup {:.2}x below the 2x acceptance bar on {cores} cores",
            explorer.speedup()
        );
    } else {
        println!(
            "speedup assertion skipped ({} core(s){}) — the ≥2x bar applies on ≥4 cores",
            cores,
            if smoke { ", smoke run" } else { "" }
        );
    }
}
