//! PR3 cache benchmark: epoch-versioned SPF cache versus from-scratch
//! recompute, self-timed and exported as `BENCH_pr3.json`.
//!
//! Two kinds of measurement, both on the paper's evaluation scenarios:
//!
//! * **Event hot path** — the per-event work every switch performs after a
//!   membership event on a converged 100-node image: recompute the unicast
//!   routing table and the MC topology proposal. Uncached, each of the `n`
//!   switches runs its own Dijkstras; cached, the first switch's SPF runs
//!   serve all others (identical image ⇒ identical digest).
//! * **Full simulation** — end-to-end `fig6`/`fig7` runs (bursty workload,
//!   both timing regimes) with the shared cache on versus disabled, as a
//!   sanity check that the cache also pays for itself in the whole harness.
//!
//! The vendored criterion shim has no data export, so this bench times with
//! `std::time::Instant` directly and writes its own JSON. Set
//! `DGMC_BENCH_SMOKE=1` for a reduced-sample CI run.

use dgmc_core::switch::DgmcConfig;
use dgmc_experiments::runner;
use dgmc_experiments::workload::{self, BurstParams};
use dgmc_lsr::RoutingTable;
use dgmc_mctree::{McAlgorithm, SphStrategy};
use dgmc_topology::{generate, Network, NodeId, SpfCache};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::time::Instant;

struct Scenario {
    name: &'static str,
    samples: usize,
    uncached_nanos: u128,
    cached_nanos: u128,
    /// Fastest single sample per mode: the noise-resistant basis for the
    /// no-pessimization gate (interference only ever adds time).
    min_uncached_nanos: u128,
    min_cached_nanos: u128,
    hits: u64,
    misses: u64,
}

impl Scenario {
    fn speedup(&self) -> f64 {
        if self.cached_nanos == 0 {
            f64::INFINITY
        } else {
            self.uncached_nanos as f64 / self.cached_nanos as f64
        }
    }

    fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One converged event step: every switch recomputes its routing table and
/// its topology proposal for the same image and terminal set.
fn event_step(net: &Network, terminals: &BTreeSet<NodeId>, cache: &SpfCache) -> u64 {
    let strategy = SphStrategy::new();
    let mut acc = 0u64;
    for me in net.nodes() {
        let routes = RoutingTable::compute_with(net, me, cache);
        acc = acc.wrapping_add(routes.cost(NodeId(0)).unwrap_or(0));
        let tree = strategy.compute_with(net, terminals, None, cache);
        acc = acc.wrapping_add(tree.edge_count() as u64);
    }
    acc
}

fn bench_event_path(n: usize, k: usize, samples: usize) -> Scenario {
    let mut rng = StdRng::seed_from_u64(0xE5E7);
    let net = generate::waxman(&mut rng, n, &generate::WaxmanParams::default());
    let terminals: BTreeSet<NodeId> = {
        let mut t = BTreeSet::new();
        while t.len() < k {
            t.insert(NodeId(rng.gen_range(0..n as u32)));
        }
        t
    };
    let mut uncached_nanos = 0u128;
    let mut cached_nanos = 0u128;
    let mut min_uncached_nanos = u128::MAX;
    let mut min_cached_nanos = u128::MAX;
    let mut hits = 0u64;
    let mut misses = 0u64;
    let mut sink = 0u64;
    for _ in 0..samples {
        let start = Instant::now();
        let base = event_step(&net, &terminals, &SpfCache::disabled());
        let nanos = start.elapsed().as_nanos();
        uncached_nanos += nanos;
        min_uncached_nanos = min_uncached_nanos.min(nanos);

        // Fresh cache per sample: the cold misses are part of the cost.
        let cache = SpfCache::new();
        let start = Instant::now();
        let cached = event_step(&net, &terminals, &cache);
        let nanos = start.elapsed().as_nanos();
        cached_nanos += nanos;
        min_cached_nanos = min_cached_nanos.min(nanos);
        assert_eq!(cached, base, "cached event step diverged");
        sink = sink.wrapping_add(base).wrapping_add(cached);
        let stats = cache.stats();
        hits += stats.hits;
        misses += stats.misses;
    }
    std::hint::black_box(sink);
    Scenario {
        name: if n >= 100 {
            "event_path_n100"
        } else {
            "event_path_smoke"
        },
        samples,
        uncached_nanos,
        cached_nanos,
        min_uncached_nanos,
        min_cached_nanos,
        hits,
        misses,
    }
}

fn bench_full_run(name: &'static str, n: usize, config: DgmcConfig, samples: usize) -> Scenario {
    let mut uncached_nanos = 0u128;
    let mut cached_nanos = 0u128;
    let mut min_uncached_nanos = u128::MAX;
    let mut min_cached_nanos = u128::MAX;
    let mut hits = 0u64;
    let mut misses = 0u64;
    for seed in 1..=samples as u64 {
        let wl =
            |rng: &mut StdRng, net: &Network| workload::bursty(rng, net, &BurstParams::default());
        let start = Instant::now();
        let a = runner::run_seeded_with_cache(n, seed, config, wl, SpfCache::disabled())
            .expect("uncached run converges");
        let nanos = start.elapsed().as_nanos();
        uncached_nanos += nanos;
        min_uncached_nanos = min_uncached_nanos.min(nanos);

        let cache = SpfCache::new();
        let start = Instant::now();
        let b = runner::run_seeded_with_cache(n, seed, config, wl, cache.clone())
            .expect("cached run converges");
        let nanos = start.elapsed().as_nanos();
        cached_nanos += nanos;
        min_cached_nanos = min_cached_nanos.min(nanos);
        assert_eq!(a.computations, b.computations, "cache changed the protocol");
        assert_eq!(a.floodings, b.floodings, "cache changed the protocol");
        let stats = cache.stats();
        hits += stats.hits;
        misses += stats.misses;
    }
    Scenario {
        name,
        samples,
        uncached_nanos,
        cached_nanos,
        min_uncached_nanos,
        min_cached_nanos,
        hits,
        misses,
    }
}

fn write_json(scenarios: &[Scenario]) -> String {
    let mut out = String::from(
        "{\n  \"schema\": \"dgmc.bench/1\",\n  \"bench\": \"pr3_spf_cache\",\n  \"scenarios\": [\n",
    );
    for (i, s) in scenarios.iter().enumerate() {
        let sep = if i + 1 == scenarios.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"samples\": {}, \"uncached_ms\": {:.3}, \"cached_ms\": {:.3}, \"speedup\": {:.2}, \"cache_hits\": {}, \"cache_misses\": {}, \"hit_rate\": {:.4}}}{}",
            s.name,
            s.samples,
            s.uncached_nanos as f64 / 1e6,
            s.cached_nanos as f64 / 1e6,
            s.speedup(),
            s.hits,
            s.misses,
            s.hit_rate(),
            sep
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let smoke = std::env::var_os("DGMC_BENCH_SMOKE").is_some();
    let (n, samples) = if smoke { (40, 1) } else { (100, 5) };
    let mut scenarios = vec![bench_event_path(n, 10, samples.max(3))];
    let (fig6, fig7) = if smoke {
        // Five samples even in smoke: the no-pessimization gate below works
        // on per-sample minima, and on a noisy shared-CPU box (wall-clock
        // swings of 2-4x between runs are routine) a pair of samples is not
        // enough for the min to land in a calm window for both modes. Each
        // sample is a ~10 ms sim run, so the extra cost is negligible.
        (
            bench_full_run("fig6_smoke", n, DgmcConfig::computation_dominated(), 5),
            bench_full_run("fig7_smoke", n, DgmcConfig::communication_dominated(), 5),
        )
    } else {
        (
            bench_full_run("fig6_n100", n, DgmcConfig::computation_dominated(), samples),
            bench_full_run(
                "fig7_n100",
                n,
                DgmcConfig::communication_dominated(),
                samples,
            ),
        )
    };
    scenarios.push(fig6);
    scenarios.push(fig7);

    for s in &scenarios {
        println!(
            "{:<18} uncached {:>9.2} ms  cached {:>9.2} ms  speedup {:>6.2}x  hit-rate {:.1}% ({} hits / {} misses)",
            s.name,
            s.uncached_nanos as f64 / 1e6,
            s.cached_nanos as f64 / 1e6,
            s.speedup(),
            s.hit_rate() * 100.0,
            s.hits,
            s.misses
        );
    }
    let json = write_json(&scenarios);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr3.json");
    std::fs::write(path, &json).expect("write BENCH_pr3.json");
    println!("wrote {path}");
    // No-pessimization gate, every scenario, both modes: the cached path may
    // never be materially slower than recomputing from scratch. Compared on
    // per-sample minima with 5% tolerance (min_cached <= min_uncached * 1.05,
    // in integer arithmetic).
    for s in &scenarios {
        assert!(
            s.min_cached_nanos * 20 <= s.min_uncached_nanos * 21,
            "{}: cached min {:.3} ms exceeds uncached min {:.3} ms by more than 5%",
            s.name,
            s.min_cached_nanos as f64 / 1e6,
            s.min_uncached_nanos as f64 / 1e6,
        );
    }
    let event = &scenarios[0];
    assert!(
        event.hits > 0,
        "cache saw no hits on the event path — wiring broken"
    );
    if !smoke {
        assert!(
            event.speedup() >= 2.0,
            "event-path speedup {:.2}x below the 2x acceptance bar",
            event.speedup()
        );
    }
}
