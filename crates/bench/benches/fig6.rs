//! Figure 6 (Experiment 1): bursty events, computation-dominated timing.
//!
//! Prints the reproduced proposals/floodings/convergence rows, then
//! benchmarks one bursty D-GMC run per network size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgmc_core::switch::DgmcConfig;
use dgmc_experiments::workload::{self, BurstParams};
use dgmc_experiments::{presets, runner};

fn bench_fig6(c: &mut Criterion) {
    dgmc_bench::print_figure(presets::experiment1());
    let mut group = c.benchmark_group("fig6_bursty_computation_dominated");
    group.sample_size(10);
    for &n in &[40usize, 120, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                runner::run_seeded(n, seed, DgmcConfig::computation_dominated(), |rng, net| {
                    workload::bursty(rng, net, &BurstParams::default())
                })
                .expect("run converges")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
