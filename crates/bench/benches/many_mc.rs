//! PR9 many-MC benchmark: the arena-backed event path versus the pre-arena
//! linear scan at thousands of resident connections, exported as
//! `BENCH_pr9.json`.
//!
//! The scaling axis that breaks naive D-GMC implementations is group count,
//! not graph size: one switch hosting 10k+ conference groups pays the old
//! `mcs_using_link` scan — O(resident MCs) — on *every* link event, even
//! when the event touches a handful of trees. Two kinds of scenario:
//!
//! * **Discovery** (`discovery_n*_k*`) — k resident MCs whose trees tile
//!   the network, so each probed link is used by only ~1% of them. Baseline
//!   is [`DgmcEngine::local_link_event_scan`] (the pre-arena path: full
//!   scan + serial processing); the measured path is `local_link_event`
//!   (inverted edge index, O(affected)). This is the ≥2× acceptance gate
//!   at k=10000.
//! * **Shard** (`shard_n*_k*`) — every resident MC uses the probed link, so
//!   discovery is free and the per-MC `EventHandler()` steps dominate; with
//!   `--jobs N` (N > 1) they run sharded across the `dgmc_des::par` pool.
//!   Gated on no-pessimization only: wall-clock gains depend on cores, but
//!   the path must never lose to the serial scan. Timing runs clamp `--jobs`
//!   to the host's available parallelism — on a single-core box sharding
//!   can only add thread overhead, so the timed path degrades to the serial
//!   arena path there (the identity checks below still force real threads).
//!
//! Every sample asserts the fast path's actions are byte-identical to the
//! baseline's, and the timing-free sidecar `results/bench_pr9.report.json`
//! (action checksums, affected counts) is compared byte-for-byte between
//! `--jobs 1` and `--jobs 4` by CI. Set `DGMC_BENCH_SMOKE=1` for a reduced
//! run (the gates still apply).

use dgmc_core::{DgmcAction, DgmcEngine, McId, McSync, McTopology, McType, Role, Timestamp};
use dgmc_mctree::SphStrategy;
use dgmc_topology::NodeId;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::rc::Rc;
use std::time::Instant;

struct Scenario {
    name: String,
    samples: usize,
    /// Resident connections in the engine.
    mcs: usize,
    /// Link events fired per sample.
    events: usize,
    /// Total MC `EventHandler()` steps per sample (affected sum).
    affected: usize,
    scan_nanos: u128,
    arena_nanos: u128,
    min_scan_nanos: u128,
    min_arena_nanos: u128,
    /// Deterministic action digest — identical across paths and `--jobs`.
    checksum: u64,
}

impl Scenario {
    /// Speedup on per-sample minima: robust against one-sided timer noise.
    fn speedup(&self) -> f64 {
        if self.min_arena_nanos == 0 {
            f64::INFINITY
        } else {
            self.min_scan_nanos as f64 / self.min_arena_nanos as f64
        }
    }

    fn events_per_sec(&self) -> f64 {
        if self.arena_nanos == 0 {
            f64::INFINITY
        } else {
            (self.events * self.samples) as f64 / (self.arena_nanos as f64 / 1e9)
        }
    }

    fn no_pessimization(&self) -> bool {
        self.min_arena_nanos * 20 <= self.min_scan_nanos * 21
    }
}

/// Folds an action sequence into a deterministic digest.
fn fold_actions(mut h: u64, actions: &[DgmcAction]) -> u64 {
    for a in actions {
        let (tag, mc, extra) = match a {
            DgmcAction::Flood(lsa) => (1u64, u64::from(lsa.mc.0), lsa.stamp.total()),
            DgmcAction::StartComputation { mc } => (2, u64::from(mc.0), 0),
            DgmcAction::Installed { mc } => (3, u64::from(mc.0), 0),
            DgmcAction::Withdrawn { mc } => (4, u64::from(mc.0), 0),
        };
        h = h
            .rotate_left(7)
            .wrapping_add(tag.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(mc.wrapping_mul(0x0100_0000_01b3))
            .wrapping_add(extra);
    }
    h
}

/// Builds switch 0's engine with `k` resident MCs via database sync. MC `i`
/// gets a `tree_len`-node path tree starting at node `b = i mod (n -
/// tree_len + 1)`, so trees tile every link of the 0-1-…-(n-1) path;
/// `span_all` instead anchors every tree at node 0 so one link event on
/// (0, 1) touches all k.
fn engine_with_k_mcs(
    n: usize,
    k: usize,
    jobs: usize,
    tree_len: usize,
    span_all: bool,
) -> DgmcEngine {
    assert!((2..=n).contains(&tree_len));
    let mut engine = DgmcEngine::new(NodeId(0), n, Rc::new(SphStrategy::new()));
    engine.set_jobs(jobs);
    let snapshot: Vec<McSync> = (0..k)
        .map(|i| {
            let mc = McId(u32::try_from(i + 1).expect("bench MC count fits u32"));
            let b = if span_all { 0 } else { i % (n - tree_len + 1) };
            let path: Vec<NodeId> = (b..b + tree_len).map(|x| NodeId(x as u32)).collect();
            let mut members = BTreeMap::new();
            let mut r = Timestamp::zero(n);
            // Three members at the ends and middle of the path; the rest of
            // the tree is transit switches, like a real conference tree.
            for m in [path[0], path[tree_len / 2], path[tree_len - 1]] {
                members.insert(m, Role::SenderReceiver);
                r.incr(m);
            }
            let edges = path.windows(2).map(|w| (w[0], w[1]));
            let terminals: BTreeSet<NodeId> = members.keys().copied().collect();
            McSync {
                mc,
                mc_type: McType::Symmetric,
                epoch: 0,
                r: r.clone(),
                e: r.clone(),
                c: r.clone(),
                c_source: Some(path[0]),
                members,
                installed: Some(McTopology::from_edges(edges, terminals)),
            }
        })
        .collect();
    engine.import_sync(snapshot);
    assert_eq!(engine.mc_count(), k);
    engine
}

/// One timed pass: fires `events` link events down the path links and folds
/// every returned action into the digest.
fn drive(engine: &mut DgmcEngine, n: usize, events: usize, scan: bool) -> (u64, usize) {
    let mut checksum = 0u64;
    let mut affected = 0usize;
    for e in 0..events {
        let a = NodeId(((e * 7) % (n - 1)) as u32);
        let b = NodeId(a.0 + 1);
        affected += engine.mcs_using_link(a, b).len();
        let actions = if scan {
            engine.local_link_event_scan(a, b)
        } else {
            engine.local_link_event(a, b)
        };
        checksum = fold_actions(checksum, &actions);
    }
    (checksum, affected)
}

#[allow(clippy::too_many_arguments)]
fn bench_scenario(
    name: &str,
    n: usize,
    k: usize,
    events: usize,
    samples: usize,
    jobs: usize,
    tree_len: usize,
    span_all: bool,
) -> Scenario {
    let template = engine_with_k_mcs(n, k, jobs, tree_len, span_all);
    let mut scan_nanos = 0u128;
    let mut arena_nanos = 0u128;
    let mut min_scan_nanos = u128::MAX;
    let mut min_arena_nanos = u128::MAX;
    let mut checksum = 0u64;
    let mut affected = 0usize;
    for _ in 0..samples {
        let mut baseline = template.clone();
        let start = Instant::now();
        let (scan_sum, scan_affected) = drive(&mut baseline, n, events, true);
        let nanos = start.elapsed().as_nanos();
        scan_nanos += nanos;
        min_scan_nanos = min_scan_nanos.min(nanos);

        let mut fast = template.clone();
        let start = Instant::now();
        let (fast_sum, fast_affected) = drive(&mut fast, n, events, false);
        let nanos = start.elapsed().as_nanos();
        arena_nanos += nanos;
        min_arena_nanos = min_arena_nanos.min(nanos);

        assert_eq!(
            fast_sum, scan_sum,
            "{name}: arena path actions diverge from the scan path"
        );
        assert_eq!(
            fast_affected, scan_affected,
            "{name}: affected sets diverge"
        );
        checksum = fast_sum;
        affected = fast_affected;
    }
    Scenario {
        name: name.to_string(),
        samples,
        mcs: k,
        events,
        affected,
        scan_nanos,
        arena_nanos,
        min_scan_nanos,
        min_arena_nanos,
        checksum,
    }
}

/// The ≥2× acceptance gate applies to this scenario (see `main` for the
/// regime rationale).
fn gated(s: &Scenario) -> bool {
    s.name.starts_with("discovery_") && !s.name.contains("_n200_") && s.mcs >= 10_000
}

fn write_json(scenarios: &[Scenario], jobs: usize, timed_jobs: usize, hw: usize) -> String {
    let many_mc_gate_ok = scenarios
        .iter()
        .filter(|s| gated(s))
        .all(|s| s.speedup() >= 2.0);
    let no_pessimization = scenarios.iter().all(Scenario::no_pessimization);
    let mut out = format!(
        "{{\n  \"schema\": \"dgmc.bench/1\",\n  \"bench\": \"pr9_many_mc\",\n  \"jobs\": {jobs}, \"timed_jobs\": {timed_jobs}, \"hw_threads\": {hw},\n  \"scenarios\": [\n",
    );
    for (i, s) in scenarios.iter().enumerate() {
        let sep = if i + 1 == scenarios.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"samples\": {}, \"mcs\": {}, \"events\": {}, \"affected\": {}, \"scan_ms\": {:.3}, \"arena_ms\": {:.3}, \"events_per_sec\": {:.1}, \"speedup\": {:.2}}}{}",
            s.name,
            s.samples,
            s.mcs,
            s.events,
            s.affected,
            s.scan_nanos as f64 / 1e6,
            s.arena_nanos as f64 / 1e6,
            s.events_per_sec(),
            s.speedup(),
            sep
        );
    }
    let _ = writeln!(
        out,
        "  ],\n  \"many_mc_gate_ok\": {many_mc_gate_ok},\n  \"no_pessimization\": {no_pessimization}\n}}"
    );
    out
}

/// The timing-free sidecar: everything in it is deterministic, so CI can
/// `cmp` the `--jobs 1` and `--jobs 4` runs byte-for-byte.
fn write_report(scenarios: &[Scenario]) -> String {
    let mut out = String::from(
        "{\n  \"schema\": \"dgmc.bench-report/1\",\n  \"bench\": \"pr9_many_mc\",\n  \"scenarios\": [\n",
    );
    for (i, s) in scenarios.iter().enumerate() {
        let sep = if i + 1 == scenarios.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"samples\": {}, \"mcs\": {}, \"events\": {}, \"affected\": {}, \"checksum\": \"{:016x}\"}}{}",
            s.name, s.samples, s.mcs, s.events, s.affected, s.checksum, sep
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Single-state spot check outside the timed loop: the sharded and serial
/// paths leave byte-identical engine state, not just identical actions.
fn verify_state_identity(n: usize, k: usize, jobs: usize) {
    let template = engine_with_k_mcs(n, k, 1, 16.min(n), true);
    let mut serial = template.clone();
    let mut sharded = template.clone();
    sharded.set_jobs(jobs.max(2));
    serial.local_link_event(NodeId(0), NodeId(1));
    sharded.local_link_event(NodeId(0), NodeId(1));
    for mc in serial.mc_ids() {
        assert_eq!(
            serial.state(mc).cloned(),
            sharded.state(mc).cloned(),
            "sharded state diverges for {mc}"
        );
    }
}

fn main() {
    let smoke = std::env::var_os("DGMC_BENCH_SMOKE").is_some();
    let args: Vec<String> = std::env::args().collect();
    let jobs = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(1)
        .max(1);
    let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    // Timing honesty: oversubscribing a small box measures thread churn,
    // not the sharded event path. Identity checks still use `jobs` as given.
    let timed_jobs = jobs.min(hw);
    if timed_jobs < jobs {
        println!("note: --jobs {jobs} clamped to {timed_jobs} for timing ({hw} hardware threads)");
    }

    // (n, k, events, samples, tree_len, span_all). The ≥2× gate applies to
    // discovery scenarios at k ≥ 10_000 with n ≥ 600: there a link event
    // touches ~2k/n ≈ tens of trees, so the baseline's O(k) scan dominates —
    // the regime the arena exists for. The n=200 row is reported ungated:
    // with k/100 MCs per link, per-MC protocol work (identical on both
    // paths) swamps discovery. Shard scenarios use 16-node conference trees
    // so per-MC handler work (tree clones into ComputationJob) dominates the
    // main-thread take/restore cost.
    // Four smoke samples: the gates work on per-sample minima, which need a
    // few tries to dodge noise spikes on a shared-CPU box.
    let configs: Vec<(usize, usize, usize, usize, usize, bool)> = if smoke {
        vec![(600, 10_000, 16, 4, 3, false), (600, 4_000, 2, 4, 16, true)]
    } else {
        vec![
            (200, 10_000, 64, 3, 3, false),
            (600, 10_000, 64, 3, 3, false),
            (1000, 10_000, 64, 3, 3, false),
            (1000, 20_000, 32, 3, 3, false),
            (200, 10_000, 4, 3, 16, true),
            (1000, 10_000, 4, 3, 16, true),
        ]
    };
    let mut scenarios = Vec::new();
    for (n, k, events, samples, tree_len, span_all) in configs {
        let kind = if span_all { "shard" } else { "discovery" };
        let name = format!("{kind}_n{n}_k{k}");
        scenarios.push(bench_scenario(
            &name, n, k, events, samples, timed_jobs, tree_len, span_all,
        ));
    }
    verify_state_identity(64, 512, jobs);

    for s in &scenarios {
        println!(
            "{:<24} scan {:>9.2} ms  arena {:>9.2} ms  speedup {:>6.2}x  {:>9.0} ev/s  ({} MCs, {} steps)",
            s.name,
            s.scan_nanos as f64 / 1e6,
            s.arena_nanos as f64 / 1e6,
            s.speedup(),
            s.events_per_sec(),
            s.mcs,
            s.affected
        );
    }

    let json = write_json(&scenarios, jobs, timed_jobs, hw);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr9.json");
    std::fs::write(path, &json).expect("write BENCH_pr9.json");
    println!("wrote {path}");

    let report = write_report(&scenarios);
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    std::fs::create_dir_all(dir).expect("create results/");
    let report_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/bench_pr9.report.json"
    );
    std::fs::write(report_path, &report).expect("write bench_pr9.report.json");
    println!("wrote {report_path}");

    // Gates, after the JSON so a failure leaves evidence on disk.
    for s in scenarios.iter().filter(|s| gated(s)) {
        assert!(
            s.speedup() >= 2.0,
            "{}: many-MC event path speedup {:.2}x below the 2x acceptance bar",
            s.name,
            s.speedup()
        );
    }
    for s in &scenarios {
        assert!(
            s.no_pessimization(),
            "{}: arena min {:.3} ms exceeds scan min {:.3} ms by more than 5%",
            s.name,
            s.min_arena_nanos as f64 / 1e6,
            s.min_scan_nanos as f64 / 1e6,
        );
    }
}
