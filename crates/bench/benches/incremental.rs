//! PR8 incremental-SPF benchmark: repair-based cache versus from-scratch
//! recompute under the Fig. 7 WAN churn regime, exported as `BENCH_pr8.json`.
//!
//! Three kinds of scenario:
//!
//! * **Link churn** (`churn_n*`) — the regime that collapsed the PR-3 cache
//!   (fig7_smoke ran at 0.99×): every event rotates the image digest, so the
//!   old cache recomputed everything. With incremental repair a digest miss
//!   one delta away from a live generation is patched in place. Driven by
//!   [`dgmc_experiments::churn`], whose route checksum doubles as the
//!   cached-vs-uncached equivalence oracle.
//! * **Membership repair** (`membership_graft_prune`) — pruned-SPT
//!   maintenance by `graft_member`/`prune_member` versus from-scratch
//!   `pruned_spt` per join/leave.
//! * **Equivalence sweep** — additional small churn runs (parallelizable
//!   with `--jobs N` over disjoint seed chunks, merged in seed order) whose
//!   checksums land in the deterministic sidecar
//!   `results/bench_pr8.report.json`; CI compares the sidecar byte-for-byte
//!   between `--jobs 1` and `--jobs 4`.
//!
//! Gates (asserted in-process after the JSON is written, so failures leave
//! evidence): every churn scenario ≥ 1.5× on per-sample minima, and **no**
//! scenario's cached minimum may exceed its uncached minimum by more than 5%.
//! Set `DGMC_BENCH_SMOKE=1` for a reduced CI run (the gates still apply).

use dgmc_experiments::churn::{churn_event_path, ChurnParams};
use dgmc_mctree::{algorithms, repair, McTopology};
use dgmc_topology::{generate, Network, NodeId, SpfCache};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::time::Instant;

struct Scenario {
    name: String,
    samples: usize,
    /// Events per sample (link events or membership operations).
    events: usize,
    uncached_nanos: u128,
    cached_nanos: u128,
    min_uncached_nanos: u128,
    min_cached_nanos: u128,
    /// Deterministic payload digest — identical across modes and `--jobs`.
    checksum: u64,
    hits: u64,
    misses: u64,
    repairs: u64,
}

impl Scenario {
    /// Speedup on per-sample minima: robust against one-sided timer noise.
    fn speedup(&self) -> f64 {
        if self.min_cached_nanos == 0 {
            f64::INFINITY
        } else {
            self.min_uncached_nanos as f64 / self.min_cached_nanos as f64
        }
    }

    fn events_per_sec(&self) -> f64 {
        if self.cached_nanos == 0 {
            f64::INFINITY
        } else {
            (self.events * self.samples) as f64 / (self.cached_nanos as f64 / 1e9)
        }
    }

    fn no_pessimization(&self) -> bool {
        self.min_cached_nanos * 20 <= self.min_uncached_nanos * 21
    }
}

fn bench_churn(params: ChurnParams, samples: usize) -> (Scenario, usize) {
    let mut uncached_nanos = 0u128;
    let mut cached_nanos = 0u128;
    let mut min_uncached_nanos = u128::MAX;
    let mut min_cached_nanos = u128::MAX;
    let mut hits = 0u64;
    let mut misses = 0u64;
    let mut repairs = 0u64;
    let mut checksum = 0u64;
    let mut equivalence_events = 0usize;
    for _ in 0..samples {
        let start = Instant::now();
        let base = churn_event_path(&params, &SpfCache::disabled());
        let nanos = start.elapsed().as_nanos();
        uncached_nanos += nanos;
        min_uncached_nanos = min_uncached_nanos.min(nanos);

        // Fresh cache per sample: cold misses are part of the cost.
        let cache = SpfCache::new();
        let start = Instant::now();
        let cached = churn_event_path(&params, &cache);
        let nanos = start.elapsed().as_nanos();
        cached_nanos += nanos;
        min_cached_nanos = min_cached_nanos.min(nanos);

        assert_eq!(
            cached.checksum, base.checksum,
            "churn n={} diverged: repaired routes != from-scratch routes",
            params.n
        );
        equivalence_events += params.events;
        checksum = cached.checksum;
        let stats = cache.stats();
        hits += stats.hits;
        misses += stats.misses;
        repairs += stats.repairs;
    }
    (
        Scenario {
            name: format!("churn_n{}", params.n),
            samples,
            events: params.events,
            uncached_nanos,
            cached_nanos,
            min_uncached_nanos,
            min_cached_nanos,
            checksum,
            hits,
            misses,
            repairs,
        },
        equivalence_events,
    )
}

/// A deterministic join/leave script over a fixed network: `true` joins the
/// node, `false` removes it.
fn membership_script(net: &Network, ops: usize, seed: u64) -> Vec<(NodeId, bool)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = net.len() as u32;
    let mut members: BTreeSet<NodeId> = BTreeSet::new();
    let mut script = Vec::with_capacity(ops);
    for _ in 0..ops {
        let join = members.len() < 3 || rng.gen_range(0..3u32) > 0;
        if join {
            let node = loop {
                let c = NodeId(rng.gen_range(1..n));
                if !members.contains(&c) {
                    break c;
                }
            };
            members.insert(node);
            script.push((node, true));
        } else {
            let pick = rng.gen_range(0..members.len());
            let node = *members.iter().nth(pick).unwrap();
            members.remove(&node);
            script.push((node, false));
        }
    }
    script
}

fn fold(checksum: u64, tree: &McTopology) -> u64 {
    checksum
        .rotate_left(9)
        .wrapping_add((tree.edge_count() as u64).wrapping_mul(0x0100_0000_01b3))
}

fn bench_membership(n: usize, ops: usize, samples: usize) -> (Scenario, usize) {
    let mut rng = StdRng::seed_from_u64(0x1B8);
    let net = generate::waxman(&mut rng, n, &generate::WaxmanParams::default());
    let root = NodeId(0);
    let script = membership_script(&net, ops, 0x5EED);

    // Untimed verification pass: repair must equal full recompute per op.
    {
        let cache = SpfCache::new();
        let mut members: BTreeSet<NodeId> = BTreeSet::new();
        let mut tree = algorithms::pruned_spt(&net, root, &members);
        for &(node, join) in &script {
            if join {
                tree = repair::graft_member(&net, root, &tree, node, &cache);
                members.insert(node);
            } else {
                tree = repair::prune_member(root, &tree, node);
                members.remove(&node);
            }
            assert_eq!(
                tree,
                algorithms::pruned_spt(&net, root, &members),
                "membership repair diverged at {node} (join={join})"
            );
        }
    }

    let mut uncached_nanos = 0u128;
    let mut cached_nanos = 0u128;
    let mut min_uncached_nanos = u128::MAX;
    let mut min_cached_nanos = u128::MAX;
    let mut hits = 0u64;
    let mut misses = 0u64;
    let mut repairs = 0u64;
    let mut uncached_sum = 0u64;
    let mut cached_sum = 0u64;
    for _ in 0..samples {
        let start = Instant::now();
        let mut members: BTreeSet<NodeId> = BTreeSet::new();
        let mut checksum = 0u64;
        for &(node, join) in &script {
            if join {
                members.insert(node);
            } else {
                members.remove(&node);
            }
            checksum = fold(checksum, &algorithms::pruned_spt(&net, root, &members));
        }
        let nanos = start.elapsed().as_nanos();
        uncached_nanos += nanos;
        min_uncached_nanos = min_uncached_nanos.min(nanos);
        uncached_sum = checksum;

        let cache = SpfCache::new();
        let start = Instant::now();
        let mut tree = algorithms::pruned_spt(&net, root, &BTreeSet::new());
        let mut checksum = 0u64;
        for &(node, join) in &script {
            tree = if join {
                repair::graft_member(&net, root, &tree, node, &cache)
            } else {
                repair::prune_member(root, &tree, node)
            };
            checksum = fold(checksum, &tree);
        }
        let nanos = start.elapsed().as_nanos();
        cached_nanos += nanos;
        min_cached_nanos = min_cached_nanos.min(nanos);
        cached_sum = checksum;

        let stats = cache.stats();
        hits += stats.hits;
        misses += stats.misses;
        repairs += stats.repairs;
    }
    assert_eq!(cached_sum, uncached_sum, "membership checksum diverged");
    (
        Scenario {
            name: "membership_graft_prune".to_string(),
            samples,
            events: ops,
            uncached_nanos,
            cached_nanos,
            min_uncached_nanos,
            min_cached_nanos,
            checksum: cached_sum,
            hits,
            misses,
            repairs,
        },
        script.len(),
    )
}

/// Small churn runs verified cached-vs-uncached, fanned out over `jobs`
/// threads in disjoint seed chunks and merged back in seed order — the
/// `--jobs` byte-identity payload.
fn equivalence_sweep(seeds: &[u64], jobs: usize) -> Vec<(u64, u64, usize)> {
    let run = |seed: u64| {
        let params = ChurnParams {
            n: 50 + (seed as usize % 4) * 20,
            events: 16,
            seed,
            flap_every: 5,
            switches_per_event: 16,
        };
        let base = churn_event_path(&params, &SpfCache::disabled());
        let cached = churn_event_path(&params, &SpfCache::new());
        assert_eq!(cached.checksum, base.checksum, "sweep seed {seed} diverged");
        (seed, cached.checksum, params.events)
    };
    if jobs <= 1 {
        return seeds.iter().map(|&s| run(s)).collect();
    }
    let chunk = seeds.len().div_ceil(jobs);
    let mut merged = Vec::with_capacity(seeds.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = seeds
            .chunks(chunk)
            .map(|c| scope.spawn(move || c.iter().map(|&s| run(s)).collect::<Vec<_>>()))
            .collect();
        for h in handles {
            merged.extend(h.join().expect("sweep worker panicked"));
        }
    });
    merged
}

fn write_json(scenarios: &[Scenario], equivalence_events: usize) -> String {
    let churn_gate_ok = scenarios
        .iter()
        .filter(|s| s.name.starts_with("churn_"))
        .all(|s| s.speedup() >= 1.5);
    let no_pessimization = scenarios.iter().all(Scenario::no_pessimization);
    let mut out = String::from(
        "{\n  \"schema\": \"dgmc.bench/1\",\n  \"bench\": \"pr8_incremental_spf\",\n  \"scenarios\": [\n",
    );
    for (i, s) in scenarios.iter().enumerate() {
        let sep = if i + 1 == scenarios.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"samples\": {}, \"events\": {}, \"uncached_ms\": {:.3}, \"cached_ms\": {:.3}, \"events_per_sec\": {:.1}, \"speedup\": {:.2}, \"hits\": {}, \"misses\": {}, \"repairs\": {}}}{}",
            s.name,
            s.samples,
            s.events,
            s.uncached_nanos as f64 / 1e6,
            s.cached_nanos as f64 / 1e6,
            s.events_per_sec(),
            s.speedup(),
            s.hits,
            s.misses,
            s.repairs,
            sep
        );
    }
    let _ = writeln!(
        out,
        "  ],\n  \"churn_gate_ok\": {churn_gate_ok},\n  \"no_pessimization\": {no_pessimization},\n  \"equivalence_events\": {equivalence_events}\n}}"
    );
    out
}

/// The timing-free sidecar: everything in it is deterministic, so CI can
/// `cmp` the `--jobs 1` and `--jobs 4` runs byte-for-byte.
fn write_report(
    scenarios: &[Scenario],
    sweep: &[(u64, u64, usize)],
    equivalence_events: usize,
) -> String {
    let mut out = String::from(
        "{\n  \"schema\": \"dgmc.bench-report/1\",\n  \"bench\": \"pr8_incremental_spf\",\n  \"scenarios\": [\n",
    );
    for (i, s) in scenarios.iter().enumerate() {
        let sep = if i + 1 == scenarios.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"samples\": {}, \"events\": {}, \"checksum\": \"{:016x}\", \"hits\": {}, \"misses\": {}, \"repairs\": {}}}{}",
            s.name, s.samples, s.events, s.checksum, s.hits, s.misses, s.repairs, sep
        );
    }
    out.push_str("  ],\n  \"sweep\": [\n");
    for (i, (seed, checksum, events)) in sweep.iter().enumerate() {
        let sep = if i + 1 == sweep.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"seed\": {seed}, \"events\": {events}, \"checksum\": \"{checksum:016x}\"}}{sep}"
        );
    }
    let _ = writeln!(
        out,
        "  ],\n  \"equivalence_events\": {equivalence_events}\n}}"
    );
    out
}

fn main() {
    let smoke = std::env::var_os("DGMC_BENCH_SMOKE").is_some();
    let args: Vec<String> = std::env::args().collect();
    let jobs = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(1)
        .max(1);

    let churn_configs: Vec<(usize, usize, usize, usize)> = if smoke {
        // (n, events, switches_per_event, samples). Four samples: the
        // no-pessimization gate works on per-sample minima, which need a
        // few tries to dodge noise spikes on a shared-CPU box.
        vec![(120, 24, 32, 4), (200, 24, 32, 4)]
    } else {
        vec![(200, 48, 48, 3), (600, 48, 64, 3), (1000, 40, 64, 3)]
    };
    let mut scenarios = Vec::new();
    let mut equivalence_events = 0usize;
    for (n, events, spe, samples) in churn_configs {
        let params = ChurnParams {
            n,
            events,
            seed: 0xF167 + n as u64,
            flap_every: 6,
            switches_per_event: spe,
        };
        let (s, eq) = bench_churn(params, samples);
        equivalence_events += eq;
        scenarios.push(s);
    }
    let (n, ops, samples) = if smoke { (120, 32, 4) } else { (400, 64, 3) };
    let (s, eq) = bench_membership(n, ops, samples);
    equivalence_events += eq;
    scenarios.push(s);

    let seeds: Vec<u64> = (0..8).collect();
    let sweep = equivalence_sweep(&seeds, jobs);
    equivalence_events += sweep.iter().map(|&(_, _, e)| e).sum::<usize>();

    for s in &scenarios {
        println!(
            "{:<24} uncached {:>9.2} ms  cached {:>9.2} ms  speedup {:>6.2}x  {:>9.0} ev/s  ({} hits / {} misses / {} repairs)",
            s.name,
            s.uncached_nanos as f64 / 1e6,
            s.cached_nanos as f64 / 1e6,
            s.speedup(),
            s.events_per_sec(),
            s.hits,
            s.misses,
            s.repairs
        );
    }

    let json = write_json(&scenarios, equivalence_events);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr8.json");
    std::fs::write(path, &json).expect("write BENCH_pr8.json");
    println!("wrote {path}");

    let report = write_report(&scenarios, &sweep, equivalence_events);
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    std::fs::create_dir_all(dir).expect("create results/");
    let report_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/bench_pr8.report.json"
    );
    std::fs::write(report_path, &report).expect("write bench_pr8.report.json");
    println!("wrote {report_path}");

    // Gates, after the JSON so a failure leaves evidence on disk.
    for s in scenarios.iter().filter(|s| s.name.starts_with("churn_")) {
        assert!(
            s.speedup() >= 1.5,
            "{}: churn speedup {:.2}x below the 1.5x acceptance bar",
            s.name,
            s.speedup()
        );
        assert!(
            s.repairs > 0,
            "{}: no repairs under link churn — wiring broken",
            s.name
        );
    }
    for s in &scenarios {
        assert!(
            s.no_pessimization(),
            "{}: cached min {:.3} ms exceeds uncached min {:.3} ms by more than 5%",
            s.name,
            s.min_cached_nanos as f64 / 1e6,
            s.min_uncached_nanos as f64 / 1e6,
        );
    }
}
