//! Property tests of the systematic model (DESIGN.md §11).
//!
//! Random 2-event scripts over random connected 5-node Waxman graphs,
//! driven down random schedules: because every [`SystematicModel`] step
//! runs the engine and the Fig. 4/5 executable spec in lockstep and
//! reports any divergence as a violation, "the walk is clean" IS the
//! spec-vs-engine equivalence property. Each walk is then drained
//! deterministically to quiescence, where the full invariant suite must
//! hold.
//!
//! The remaining properties guard the checker itself: the canonical state
//! hash must be deterministic, must separate consecutive (distinct)
//! states, and must be *confluent* for actions the partial-order
//! reduction declares commuting — applying an independent pair in either
//! order has to land on the same canonical state, or sleep sets would
//! prune schedules that are not actually redundant.

use dgmc_core::EngineMutation;
use dgmc_des::mc::Model;
use dgmc_experiments::systematic::{ScriptEvent, SysAction, SysState, SystematicModel};
use dgmc_topology::{generate, NodeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const NODES: usize = 5;
/// Safety cap on walk + drain length; clean 2-event scenarios quiesce in
/// well under this many transitions.
const MAX_STEPS: usize = 400;

/// A random scenario: a connected 5-node Waxman graph and two concurrent
/// events — a join or a (warm-member) leave — at two arbitrary switches,
/// possibly the *same* one.
///
/// Earlier revisions constrained these walks to dodge two corners the
/// checker had discovered as real protocol races (DESIGN.md §11): a
/// permanent anchor member kept the member list non-empty (dodging the
/// teardown/resurrection race) and the two events always hit distinct
/// switches (dodging the deferred-event flood inversion). Both races are
/// now fixed — teardown tombstones with incarnation epochs, and deferred
/// second floods — so the walks roam the full scenario space: member
/// lists may empty and tear down mid-walk, and both events may land on
/// one switch mid-computation. The fixes are pinned as must-pass
/// regressions in `systematic_e2e.rs`.
fn model_strategy() -> impl Strategy<Value = SystematicModel> {
    (
        any::<u64>(),
        0..NODES as u32,
        0..NODES as u32,
        (any::<bool>(), any::<bool>()),
    )
        .prop_map(|(seed, first, second, (join_a, join_b))| {
            let mut rng = StdRng::seed_from_u64(seed);
            let net = generate::waxman(&mut rng, NODES, &generate::WaxmanParams::default());
            let mut warm = Vec::new();
            let script = [(first, join_a), (second, join_b)]
                .into_iter()
                .map(|(at, is_join)| {
                    let at = NodeId(at);
                    if is_join {
                        ScriptEvent::Join { at }
                    } else {
                        // Leaves only mean something for a member: make the
                        // leaver warm so it joins during the deterministic
                        // warm-up. (A duplicate leave at one switch is a
                        // scripted no-op — the second leave finds no
                        // member — which is itself worth walking.)
                        if !warm.contains(&at) {
                            warm.push(at);
                        }
                        ScriptEvent::Leave { at }
                    }
                })
                .collect();
            SystematicModel::with_scenario(net, script, warm, EngineMutation::None)
        })
}

/// Walks `choices` (each taken modulo the enabled set) and then drains
/// deterministically (always the first enabled action) to quiescence,
/// asserting every step is violation-free. Returns the visited states.
fn clean_walk(model: &SystematicModel, choices: &[usize]) -> Vec<SysState> {
    let mut states = vec![model.initial()];
    let mut picks = choices
        .iter()
        .copied()
        .map(Some)
        .chain(std::iter::repeat(None));
    for step in 0..MAX_STEPS {
        let state = states.last().expect("non-empty");
        let enabled = model.enabled(state);
        if enabled.is_empty() {
            let quiescent = model.check_quiescent(state);
            assert!(
                quiescent.is_empty(),
                "invariants at quiescence: {quiescent:?}"
            );
            return states;
        }
        let idx = picks.next().flatten().map_or(0, |c| c % enabled.len());
        let step_result = model.apply(state, &enabled[idx]);
        assert!(
            step_result.violations.is_empty(),
            "step {step} ({:?}) diverged from the spec: {:?}",
            enabled[idx],
            step_result.violations
        );
        states.push(step_result.state);
    }
    panic!("scenario did not quiesce within {MAX_STEPS} steps");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Spec-vs-engine equivalence: random schedules of random scenarios
    /// never diverge from the Fig. 4/5 spec and always quiesce with the
    /// invariant suite intact.
    #[test]
    fn random_walks_match_the_spec_and_quiesce_clean(
        model in model_strategy(),
        choices in proptest::collection::vec(any::<usize>(), 0..48),
    ) {
        clean_walk(&model, &choices);
    }

    /// State-hash sanity: hashing is deterministic (same walk, same
    /// hashes), and every transition along a walk moves to a state with a
    /// different canonical hash — R/E/C advances, script progress and
    /// pending-message changes must all be visible to the hash.
    #[test]
    fn state_hash_is_deterministic_and_separates_consecutive_states(
        model in model_strategy(),
        choices in proptest::collection::vec(any::<usize>(), 0..32),
    ) {
        let first: Vec<u64> = clean_walk(&model, &choices)
            .iter()
            .map(|s| model.state_hash(s))
            .collect();
        let second: Vec<u64> = clean_walk(&model, &choices)
            .iter()
            .map(|s| model.state_hash(s))
            .collect();
        prop_assert_eq!(&first, &second, "replaying a schedule must rehash identically");
        for (i, pair) in first.windows(2).enumerate() {
            prop_assert!(pair[0] != pair[1], "step {} left the state hash unchanged", i);
        }
    }

    /// POR soundness: whenever two enabled actions are declared commuting,
    /// applying them in either order reaches the same canonical state (and
    /// neither order uncovers a violation the other hides).
    #[test]
    fn commuting_actions_are_confluent(
        model in model_strategy(),
        choices in proptest::collection::vec(any::<usize>(), 0..24),
    ) {
        let states = clean_walk(&model, &choices);
        for state in &states {
            let enabled = model.enabled(state);
            for (i, a) in enabled.iter().enumerate() {
                for b in &enabled[i + 1..] {
                    if !model.commutes(state, a, b) {
                        continue;
                    }
                    let ab = model.apply(&model.apply(state, a).state, b);
                    let ba = model.apply(&model.apply(state, b).state, a);
                    prop_assert!(ab.violations.is_empty() && ba.violations.is_empty());
                    prop_assert_eq!(
                        model.state_hash(&ab.state),
                        model.state_hash(&ba.state),
                        "{:?} and {:?} were declared independent but do not commute",
                        a,
                        b
                    );
                }
            }
        }
    }

    /// Content-keyed replay: the `action_key` of every enabled action is
    /// unique within its state (keys are how bundles name choice points,
    /// so an ambiguous key would make `--trace` replays ambiguous).
    #[test]
    fn action_keys_are_unambiguous_within_a_state(
        model in model_strategy(),
        choices in proptest::collection::vec(any::<usize>(), 0..24),
    ) {
        for state in clean_walk(&model, &choices) {
            let enabled = model.enabled(&state);
            let mut keys: Vec<u64> = enabled
                .iter()
                .map(|a| model.action_key(&state, a))
                .collect();
            keys.sort_unstable();
            let before = keys.len();
            keys.dedup();
            prop_assert_eq!(keys.len(), before, "duplicate action keys in one state");
        }
    }
}

/// Non-proptest regression: two structurally different scenarios hash
/// differently from the very first state (graph and script feed the hash
/// through the engines and the script-progress vector).
#[test]
fn different_scenarios_hash_differently() {
    let a = SystematicModel::with_scenario(
        generate::ring(NODES),
        vec![ScriptEvent::Join { at: NodeId(0) }],
        vec![],
        EngineMutation::None,
    );
    let b = SystematicModel::with_scenario(
        generate::ring(NODES),
        vec![ScriptEvent::Join { at: NodeId(0) }],
        vec![NodeId(4)],
        EngineMutation::None,
    );
    let sa = a.initial();
    let sb = b.initial();
    assert_ne!(
        a.state_hash(&sa),
        b.state_hash(&sb),
        "warm member must be visible"
    );
    // And applying the single join moves the hash.
    let next = a.apply(&sa, &SysAction::Script(0)).state;
    assert_ne!(a.state_hash(&sa), a.state_hash(&next));
}
