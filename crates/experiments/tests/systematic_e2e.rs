//! End-to-end tests of systematic exploration (DESIGN.md §11).
//!
//! Covers the PR's acceptance criteria — the 4-node/2-join scenario is
//! explored *exhaustively* (far beyond what seed sweeps sample), the
//! report is byte-identical for every `--jobs` value, and a seeded engine
//! mutation yields a minimized, bit-for-bit replayable repro bundle — plus
//! regressions for the two real protocol races the checker discovered on
//! its first runs and that are now *fixed* (see DESIGN.md §11 for the full
//! discussion):
//!
//! * **teardown/resurrection race**: a leave that empties the member list
//!   deletes the MC state; a concurrently flooded join used to resurrect
//!   it with a zeroed `R` while merged stamps kept the forgotten events in
//!   `E`, leaving `R != E` at quiescence forever. Fixed by incarnation
//!   epochs and teardown tombstones; the scenario now explores clean, and
//!   [`EngineMutation::UnfencedTeardown`] re-introduces the bug so the
//!   checker's ability to find it stays pinned.
//! * **deferred-event flood inversion**: a second local event during the
//!   first event's `Tc` computation used to flood immediately (Fig. 4
//!   lines 15-17) while the first's announcement waited for the
//!   withdrawal (lines 11-13), so same-origin events flooded out of local
//!   order and receivers converged on a different member list than the
//!   origin. Fixed by deferring the second flood to the withdrawal;
//!   [`EngineMutation::EagerDeferredFlood`] re-introduces the eager flood.

use dgmc_core::EngineMutation;
use dgmc_des::explorer::ExploreConfig;
use dgmc_des::mc::{self, McConfig, Model};
use dgmc_experiments::systematic::{
    self, ScriptEvent, SysAction, SystematicModel, SystematicParams, TopologyKind,
};
use dgmc_topology::{generate, NodeId};
use std::path::PathBuf;

fn jobs(n: usize) -> ExploreConfig {
    ExploreConfig {
        jobs: n,
        ..ExploreConfig::default()
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dgmc-sys-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The flagship acceptance scenario: a 4-switch ring with two concurrent
/// joins is explored to exhaustion with zero violations, and visits far
/// more distinct schedules than the default 100-seed sweep samples.
#[test]
fn four_node_two_join_explores_exhaustively_and_clean() {
    let params = SystematicParams::default();
    assert_eq!((params.nodes, params.joins), (4, 2));
    assert_eq!(params.topology, TopologyKind::Ring);
    let run = systematic::run_systematic(&jobs(1), &params);
    assert!(run.report.passed(), "{}", run.report.summary());
    assert!(run.report.complete, "state space must be exhausted");
    assert!(run.minimized.is_none());
    assert!(
        run.report.stats.states > 100,
        "only {} states — fewer schedules than a seed sweep samples",
        run.report.stats.states
    );
    assert!(run.report.stats.pruned > 0, "canonical pruning never fired");
    assert_eq!(
        run.metrics.counter_value(mc::metric_names::STATES),
        run.report.stats.states
    );
    assert_eq!(
        run.metrics.counter_value(mc::metric_names::MAX_DEPTH),
        run.report.stats.max_depth as u64
    );
}

/// Determinism across sharding: the full report (stats, completeness,
/// counterexample) serializes byte-identically for every worker count.
#[test]
fn report_is_byte_identical_across_job_counts() {
    let params = SystematicParams::default();
    let baseline = systematic::run_systematic(&jobs(1), &params)
        .report
        .to_json();
    for n in [2, 4] {
        let report = systematic::run_systematic(&jobs(n), &params)
            .report
            .to_json();
        assert_eq!(baseline, report, "jobs=1 vs jobs={n} reports differ");
    }
}

/// A seeded engine defect (the skipped Fig. 4 line 6 / Fig. 5 line 22
/// freshness check) is caught, minimized, written as a repro bundle, and
/// the bundle's trace replays bit-for-bit.
#[test]
fn seeded_withdrawal_bug_yields_a_minimized_replayable_bundle() {
    let params = SystematicParams {
        mutation: EngineMutation::SkipWithdrawal,
        ..SystematicParams::default()
    };
    let run = systematic::run_systematic(&jobs(2), &params);
    assert!(!run.report.passed());
    let cx = run.report.counterexample.as_ref().expect("counterexample");
    let min = run.minimized.expect("minimized failure");
    assert!(
        min.keys.len() <= cx.keys.len(),
        "minimization grew the trace"
    );
    assert!(min.replay.failed());

    // The bundle is self-contained: plan, timeline, replay command.
    let dir = scratch_dir("mutation");
    let path = min.bundle.write_replacing(dir.to_str().unwrap()).unwrap();
    let raw = std::fs::read_to_string(&path).unwrap();
    assert!(raw.contains("\"systematic\""));
    assert!(raw.contains("skip-withdrawal"));
    assert!(min.bundle.replay.contains("--trace"));

    // Bit-for-bit replay: same keys, same violations, same failure.
    let again = systematic::replay_trace(&params, &min.keys).expect("keys resolve");
    assert_eq!(again.keys, min.replay.keys);
    assert_eq!(again.violations, min.replay.violations);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The scenario parameters under which the checker originally found the
/// teardown/resurrection race (DESIGN.md §11 race 1).
fn teardown_params(mutation: EngineMutation) -> SystematicParams {
    SystematicParams {
        nodes: 3,
        joins: 1,
        leaves: 1,
        mutation,
        ..SystematicParams::default()
    }
}

/// The scenario under which the checker originally found the
/// deferred-event flood inversion (DESIGN.md §11 race 2): a warm member
/// leaves and immediately re-joins, racing the two floods from the same
/// origin. The anchor member at switch 0 keeps membership non-empty so
/// only the inversion — not the teardown race — can fire.
fn inversion_model(mutation: EngineMutation) -> SystematicModel {
    SystematicModel::with_scenario(
        generate::ring(3),
        vec![
            ScriptEvent::Leave { at: NodeId(2) },
            ScriptEvent::Join { at: NodeId(2) },
        ],
        vec![NodeId(0), NodeId(2)],
        mutation,
    )
}

/// Regression: the teardown/resurrection race is fixed. The scenario that
/// used to leave `R != E` at quiescence forever now explores to
/// exhaustion with every oracle green — the epoch fence keeps stale
/// resurrections out and tombstone revival keeps the counts.
#[test]
fn teardown_resurrection_race_is_fixed() {
    let run = systematic::run_systematic(&jobs(1), &teardown_params(EngineMutation::None));
    assert!(run.report.passed(), "{}", run.report.summary());
    assert!(run.report.complete, "state space must be exhausted");
    assert!(run.minimized.is_none());
}

/// The checker still *can* find race 1: re-introducing the unfenced
/// teardown (no tombstones, no epoch gates — the exact pre-fix engine)
/// resurfaces the stamps violation as a minimized, replayable bundle.
#[test]
fn unfenced_teardown_mutation_resurrects_the_race() {
    let params = teardown_params(EngineMutation::UnfencedTeardown);
    let run = systematic::run_systematic(&jobs(1), &params);
    assert!(!run.report.passed(), "{}", run.report.summary());
    let min = run.minimized.expect("race must minimize to a bundle");
    assert!(
        min.replay
            .violations
            .iter()
            .any(|v| v.invariant == "stamps"),
        "expected a stamps (R != E) violation, got {:?}",
        min.replay.violations
    );
    assert!(min.bundle.replay.contains("--mutate unfenced-teardown"));
    let again = systematic::replay_trace(&params, &min.keys).expect("keys resolve");
    assert_eq!(again.violations, min.replay.violations);
}

/// Regression: the deferred-event flood inversion is fixed. The
/// leave/re-join scenario whose floods used to invert now explores to
/// exhaustion clean — the second local event waits for the withdrawal and
/// floods in local order.
#[test]
fn deferred_event_flood_inversion_is_fixed() {
    let model = inversion_model(EngineMutation::None);
    let config = McConfig::default();
    let report = mc::explore_sharded(&model, &config, 1);
    assert!(report.passed(), "{}", report.summary());
    assert!(report.complete, "state space must be exhausted");
}

/// The checker still *can* find race 2: re-introducing the eager Fig. 4
/// lines 15-17 flood resurfaces the agreement violation, minimized and
/// bit-for-bit replayable.
#[test]
fn eager_deferred_flood_mutation_resurrects_the_inversion() {
    let model = inversion_model(EngineMutation::EagerDeferredFlood);
    let config = McConfig::default();
    let report = mc::explore_sharded(&model, &config, 1);
    assert!(!report.passed(), "{}", report.summary());
    let cx = report.counterexample.expect("counterexample");
    let (keys, replay) = mc::minimize(&model, &cx.keys, config.max_depth);
    assert!(replay.failed());
    assert!(
        replay.violations.iter().any(|v| v.invariant == "agreement"),
        "expected an agreement (member list) violation, got {:?}",
        replay.violations
    );
    // The minimized schedule still resolves and reproduces identically.
    let again = mc::replay(&model, &keys, true, config.max_depth).expect("keys resolve");
    assert_eq!(again.violations, replay.violations);
}

/// Backward search (Helmy et al.): the violation state of the forward
/// counterexample — seeded by hash — is reached backward from the initial
/// state, and the shortest witness schedule replays to the same class of
/// violation.
#[test]
fn backward_search_reaches_the_forward_violation_state() {
    let params = teardown_params(EngineMutation::UnfencedTeardown);
    let run = systematic::run_systematic(&jobs(2), &params);
    let min = run.minimized.expect("race must minimize to a bundle");
    // The full replayed schedule (prescribed keys + deterministic
    // completion) ends in the state the oracle rejected.
    let target = systematic::violation_state_hash(&params, &min.replay.keys)
        .expect("minimized schedule replays");

    let bounds = mc::BackwardConfig::default();
    let report = systematic::run_backward(&jobs(2), &params, &bounds, &[target]);
    assert!(report.found(), "{}", report.summary());
    assert_eq!(report.target, Some(target));

    // The witness is a real schedule: it resolves against the scenario
    // and drives the system into the seeded (violating) quiescent state.
    let witness =
        systematic::replay_trace(&params, &report.witness_keys).expect("witness keys resolve");
    assert!(witness.failed(), "witness must land on the violation");
    assert!(
        witness.violations.iter().any(|v| v.invariant == "stamps"),
        "expected the stamps violation, got {:?}",
        witness.violations
    );
}

/// Backward-search reports are byte-identical across worker counts, like
/// the forward reports — the CI gate diffs them directly.
#[test]
fn backward_report_is_byte_identical_across_job_counts() {
    let params = teardown_params(EngineMutation::UnfencedTeardown);
    let min = systematic::run_systematic(&jobs(1), &params)
        .minimized
        .expect("race must minimize");
    let target =
        systematic::violation_state_hash(&params, &min.replay.keys).expect("schedule replays");
    let bounds = mc::BackwardConfig::default();
    let baseline = systematic::run_backward(&jobs(1), &params, &bounds, &[target]).to_json();
    for n in [2, 4] {
        let report = systematic::run_backward(&jobs(n), &params, &bounds, &[target]).to_json();
        assert_eq!(
            baseline, report,
            "jobs=1 vs jobs={n} backward reports differ"
        );
    }
}

/// On the *repaired* engine the mutated engine's violation state does not
/// exist: backward search exhausts the (fixed) state space without
/// reaching it, and says so conclusively.
#[test]
fn backward_search_proves_the_violation_unreachable_when_fixed() {
    let mutated = teardown_params(EngineMutation::UnfencedTeardown);
    let min = systematic::run_systematic(&jobs(1), &mutated)
        .minimized
        .expect("race must minimize");
    let target =
        systematic::violation_state_hash(&mutated, &min.replay.keys).expect("schedule replays");

    let repaired = teardown_params(EngineMutation::None);
    let bounds = mc::BackwardConfig::default();
    let report = systematic::run_backward(&jobs(2), &repaired, &bounds, &[target]);
    assert!(!report.found(), "repaired engine reached a violation state");
    assert!(
        report.complete,
        "search must exhaust the space to prove unreachability"
    );
}

/// Crash interleavings — the depths forward scripts alone don't reach —
/// stay clean on the repaired engine: granting the scheduler one
/// fail-stop crash at any point widens the explored space by an order of
/// magnitude without corrupting any *survivor* (crashed switches lose
/// their soft state by definition and are excluded from the oracle).
#[test]
fn crash_interleavings_stay_clean_on_the_repaired_engine() {
    let plain = teardown_params(EngineMutation::None);
    let faulty = SystematicParams {
        crashes: 1,
        ..teardown_params(EngineMutation::None)
    };
    let baseline = systematic::run_systematic(&jobs(2), &plain);
    let run = systematic::run_systematic(&jobs(2), &faulty);
    assert!(run.report.passed(), "{}", run.report.summary());
    assert!(run.report.complete, "state space must be exhausted");
    assert!(
        run.report.stats.states > baseline.report.stats.states,
        "the crash budget must widen the space ({} vs {})",
        run.report.stats.states,
        baseline.report.stats.states
    );
}

/// A crash+loss interleaving — a depth no forward script reaches — is
/// found by backward search: we drive the model through one fail-stop
/// crash and one message loss to a quiescent state, seed that state's
/// hash, and the backward pass recovers a witness schedule that replays
/// through both faults to exactly that state.
#[test]
fn backward_search_finds_a_crash_plus_loss_interleaving() {
    let params = SystematicParams {
        crashes: 1,
        losses: 1,
        ..teardown_params(EngineMutation::None)
    };
    let model = SystematicModel::new(&params);

    // Drive a deterministic walk that spends both fault budgets: take a
    // crash as soon as one is enabled, then a loss, then drain.
    let mut state = model.initial();
    let mut keys = Vec::new();
    let (mut crashed, mut lost) = (false, false);
    loop {
        let enabled = model.enabled(&state);
        if enabled.is_empty() {
            break;
        }
        let pick = enabled
            .iter()
            .position(|a| !crashed && matches!(a, SysAction::Crash(_)))
            .or_else(|| {
                enabled
                    .iter()
                    .position(|a| !lost && matches!(a, SysAction::Lose(_)))
            })
            .unwrap_or(0);
        match enabled[pick] {
            SysAction::Crash(_) => crashed = true,
            SysAction::Lose(_) => lost = true,
            _ => {}
        }
        keys.push(model.action_key(&state, &enabled[pick]));
        state = model.apply(&state, &enabled[pick]).state;
    }
    assert!(crashed && lost, "walk must spend both fault budgets");
    let target = model.state_hash(&state);

    let bounds = mc::BackwardConfig::default();
    let report = systematic::run_backward(&jobs(2), &params, &bounds, &[target]);
    assert!(report.found(), "{}", report.summary());

    // The witness replays through both faults to exactly the seeded state.
    let witness = mc::replay(&model, &report.witness_keys, false, bounds.max_levels)
        .expect("witness keys resolve");
    assert!(
        witness
            .trace
            .iter()
            .any(|a| matches!(a, SysAction::Crash(_))),
        "witness must include the crash"
    );
    assert!(
        witness
            .trace
            .iter()
            .any(|a| matches!(a, SysAction::Lose(_))),
        "witness must include the loss"
    );
    assert_eq!(
        systematic::violation_state_hash(&params, &report.witness_keys),
        Some(target),
        "witness must land on the seeded state"
    );
}

/// Message loss, by contrast, is *outside* the protocol's fault model:
/// D-GMC floods ride the link-state layer's reliable flooding, and a
/// hard-dropped LSA leaves the receivers' `R` permanently short of `E`.
/// The checker makes that premise explicit — granting the scheduler one
/// loss produces a minimized, replayable stamps counterexample even on
/// the repaired engine.
#[test]
fn lost_floods_break_the_reliable_flooding_premise() {
    let params = SystematicParams {
        losses: 1,
        ..teardown_params(EngineMutation::None)
    };
    let run = systematic::run_systematic(&jobs(2), &params);
    assert!(!run.report.passed(), "loss must be visible to the oracles");
    let min = run.minimized.expect("loss counterexample must minimize");
    assert!(
        min.replay
            .violations
            .iter()
            .any(|v| v.invariant == "stamps" || v.invariant == "agreement"),
        "expected a stamps/agreement violation, got {:?}",
        min.replay.violations
    );
    let again = systematic::replay_trace(&params, &min.keys).expect("keys resolve");
    assert_eq!(again.violations, min.replay.violations);
}
