//! End-to-end tests of systematic exploration (DESIGN.md §11).
//!
//! Covers the PR's acceptance criteria — the 4-node/2-join scenario is
//! explored *exhaustively* (far beyond what seed sweeps sample), the
//! report is byte-identical for every `--jobs` value, and a seeded engine
//! mutation yields a minimized, bit-for-bit replayable repro bundle — plus
//! two regression pins for real protocol corners the checker discovered
//! on its first runs (see DESIGN.md §11 for the full discussion):
//!
//! * **teardown/resurrection race**: a leave that empties the member list
//!   deletes the MC state; a concurrently flooded join resurrects it with
//!   a zeroed `R` while merged stamps keep the forgotten events in `E`,
//!   leaving `R != E` at quiescence forever;
//! * **deferred-event flood inversion**: a second local event during the
//!   first event's `Tc` computation floods immediately (Fig. 4 lines
//!   15-17) while the first's announcement waits for the withdrawal
//!   (lines 11-13), so same-origin events flood out of local order and
//!   receivers converge on a different member list than the origin.

use dgmc_core::EngineMutation;
use dgmc_des::explorer::ExploreConfig;
use dgmc_des::mc::{self, McConfig};
use dgmc_experiments::systematic::{
    self, ScriptEvent, SystematicModel, SystematicParams, TopologyKind,
};
use dgmc_topology::{generate, NodeId};
use std::path::PathBuf;

fn jobs(n: usize) -> ExploreConfig {
    ExploreConfig {
        jobs: n,
        ..ExploreConfig::default()
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dgmc-sys-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The flagship acceptance scenario: a 4-switch ring with two concurrent
/// joins is explored to exhaustion with zero violations, and visits far
/// more distinct schedules than the default 100-seed sweep samples.
#[test]
fn four_node_two_join_explores_exhaustively_and_clean() {
    let params = SystematicParams::default();
    assert_eq!((params.nodes, params.joins), (4, 2));
    assert_eq!(params.topology, TopologyKind::Ring);
    let run = systematic::run_systematic(&jobs(1), &params);
    assert!(run.report.passed(), "{}", run.report.summary());
    assert!(run.report.complete, "state space must be exhausted");
    assert!(run.minimized.is_none());
    assert!(
        run.report.stats.states > 100,
        "only {} states — fewer schedules than a seed sweep samples",
        run.report.stats.states
    );
    assert!(run.report.stats.pruned > 0, "canonical pruning never fired");
    assert_eq!(
        run.metrics.counter_value(mc::metric_names::STATES),
        run.report.stats.states
    );
    assert_eq!(
        run.metrics.counter_value(mc::metric_names::MAX_DEPTH),
        run.report.stats.max_depth as u64
    );
}

/// Determinism across sharding: the full report (stats, completeness,
/// counterexample) serializes byte-identically for every worker count.
#[test]
fn report_is_byte_identical_across_job_counts() {
    let params = SystematicParams::default();
    let baseline = systematic::run_systematic(&jobs(1), &params)
        .report
        .to_json();
    for n in [2, 4] {
        let report = systematic::run_systematic(&jobs(n), &params)
            .report
            .to_json();
        assert_eq!(baseline, report, "jobs=1 vs jobs={n} reports differ");
    }
}

/// A seeded engine defect (the skipped Fig. 4 line 6 / Fig. 5 line 22
/// freshness check) is caught, minimized, written as a repro bundle, and
/// the bundle's trace replays bit-for-bit.
#[test]
fn seeded_withdrawal_bug_yields_a_minimized_replayable_bundle() {
    let params = SystematicParams {
        mutation: EngineMutation::SkipWithdrawal,
        ..SystematicParams::default()
    };
    let run = systematic::run_systematic(&jobs(2), &params);
    assert!(!run.report.passed());
    let cx = run.report.counterexample.as_ref().expect("counterexample");
    let min = run.minimized.expect("minimized failure");
    assert!(
        min.keys.len() <= cx.keys.len(),
        "minimization grew the trace"
    );
    assert!(min.replay.failed());

    // The bundle is self-contained: plan, timeline, replay command.
    let dir = scratch_dir("mutation");
    let path = min.bundle.write_replacing(dir.to_str().unwrap()).unwrap();
    let raw = std::fs::read_to_string(&path).unwrap();
    assert!(raw.contains("\"systematic\""));
    assert!(raw.contains("skip-withdrawal"));
    assert!(min.bundle.replay.contains("--trace"));

    // Bit-for-bit replay: same keys, same violations, same failure.
    let again = systematic::replay_trace(&params, &min.keys).expect("keys resolve");
    assert_eq!(again.keys, min.replay.keys);
    assert_eq!(again.violations, min.replay.violations);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Pin: the checker detects the teardown/resurrection race. With one warm
/// member leaving while another switch joins, some interleaving deletes
/// the MC state everywhere and resurrects it with a zeroed `R`; the
/// stamps invariant (`R == E` at quiescence) must flag it and the
/// counterexample must survive minimization as a replayable bundle.
#[test]
fn teardown_resurrection_race_is_detected() {
    let params = SystematicParams {
        nodes: 3,
        joins: 1,
        leaves: 1,
        ..SystematicParams::default()
    };
    let run = systematic::run_systematic(&jobs(1), &params);
    assert!(!run.report.passed(), "{}", run.report.summary());
    let min = run.minimized.expect("race must minimize to a bundle");
    assert!(
        min.replay
            .violations
            .iter()
            .any(|v| v.invariant == "stamps"),
        "expected a stamps (R != E) violation, got {:?}",
        min.replay.violations
    );
    let again = systematic::replay_trace(&params, &min.keys).expect("keys resolve");
    assert_eq!(again.violations, min.replay.violations);
}

/// Pin: the checker detects the deferred-event flood inversion. A leave
/// and a re-join at the same (warm) switch can flood in the opposite of
/// their local order, so receivers end with a member list that differs
/// from the origin's — an agreement violation at quiescence.
#[test]
fn deferred_event_flood_inversion_is_detected() {
    let model = SystematicModel::with_scenario(
        generate::ring(3),
        vec![
            ScriptEvent::Leave { at: NodeId(2) },
            ScriptEvent::Join { at: NodeId(2) },
        ],
        // The anchor keeps membership non-empty so only the inversion —
        // not the teardown race — can fire.
        vec![NodeId(0), NodeId(2)],
        EngineMutation::None,
    );
    let config = McConfig::default();
    let report = mc::explore_sharded(&model, &config, 1);
    assert!(!report.passed(), "{}", report.summary());
    let cx = report.counterexample.expect("counterexample");
    let (keys, replay) = mc::minimize(&model, &cx.keys, config.max_depth);
    assert!(replay.failed());
    assert!(
        replay.violations.iter().any(|v| v.invariant == "agreement"),
        "expected an agreement (member list) violation, got {:?}",
        replay.violations
    );
    // The minimized schedule still resolves and reproduces identically.
    let again = mc::replay(&model, &keys, true, config.max_depth).expect("keys resolve");
    assert_eq!(again.violations, replay.violations);
}
