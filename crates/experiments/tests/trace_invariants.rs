//! Property tests of the causal tracing subsystem (DESIGN.md §12).
//!
//! Random seeds drive real traced runs and assert the structural
//! invariants the rest of the tooling relies on: every trace is a
//! well-formed span forest (dense ids, parents precede children, child
//! spans start at their parent's delivery instant), the per-operation
//! convergence histogram is *exactly* the critical-path durations of the
//! trace, and the Chrome trace-event export is byte-identical for every
//! `--jobs` value. Two deterministic pins at the end render the DESIGN.md
//! §11 races as causal timelines.

use dgmc_core::switch::{histograms, DgmcConfig};
use dgmc_core::EngineMutation;
use dgmc_des::explorer::ExploreConfig;
use dgmc_des::mc::{self, McConfig};
use dgmc_experiments::presets::{self, ExperimentSpec, WorkloadKind};
use dgmc_experiments::runner::{run_dgmc_traced, RunMetrics, TraceMode};
use dgmc_experiments::systematic::{self, ScriptEvent, SystematicModel, SystematicParams};
use dgmc_experiments::workload::{self, BurstParams};
use dgmc_obs::{chrome_trace_json, critical_paths, Histogram};
use dgmc_topology::{generate, NodeId, SpfCache};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::rc::Rc;

fn traced_run(seed: u64) -> RunMetrics {
    let mut rng = StdRng::seed_from_u64(seed);
    let net = generate::waxman(&mut rng, 25, &generate::WaxmanParams::default());
    let wl = workload::bursty(&mut rng, &net, &BurstParams::default());
    run_dgmc_traced(
        &net,
        DgmcConfig::computation_dominated(),
        &wl,
        Rc::new(dgmc_mctree::SphStrategy::new()),
        SpfCache::new(),
        TraceMode::Full,
    )
    .expect("traced runs converge")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every traced run yields a well-formed span forest with one root per
    /// injected operation, and every child span starts at the instant its
    /// parent was delivered (message causality has no gaps).
    #[test]
    fn traces_are_well_formed_span_forests(seed in 0u64..1_000) {
        let m = traced_run(seed);
        let trace = m.trace.as_ref().expect("Full mode keeps spans");
        prop_assert!(trace.validate().is_ok(), "{:?}", trace.validate());
        prop_assert_eq!(trace.roots().count() as u64, m.events);
        for span in &trace.spans {
            if span.parent != 0 {
                let parent = &trace.spans[span.parent as usize - 1];
                prop_assert_eq!(span.start_ns, parent.end_ns);
                prop_assert!(span.depth == parent.depth + 1);
            }
        }
    }

    /// The per-operation convergence histogram is exactly the multiset of
    /// critical-path durations: re-observing the paths extracted from the
    /// trace reproduces the registry histogram bit for bit, so for every
    /// join/leave the recorded sample IS its critical-path duration.
    #[test]
    fn critical_paths_are_the_per_op_convergence_samples(seed in 0u64..1_000) {
        let m = traced_run(seed);
        let trace = m.trace.as_ref().unwrap();
        let paths = critical_paths(trace);
        prop_assert_eq!(paths.len() as u64, m.events, "one path per operation");
        let mut expected = Histogram::new();
        for path in &paths {
            expected.record(path.duration_ns() / 1_000);
        }
        let recorded = m
            .registry
            .histogram_get(histograms::OP_CONVERGENCE_US)
            .expect("traced runs record per-op samples");
        prop_assert_eq!(recorded, &expected);
        // Every path is a real causal chain: hop count matches its span
        // walk and it never outlives the trace.
        for path in &paths {
            prop_assert_eq!(path.hops as usize + 1, path.path.len());
            prop_assert!(path.end_ns >= path.start_ns);
        }
    }

    /// The exported Chrome trace-event JSON is a pure function of the
    /// spec: sweeping serially and with 4 workers yields byte-identical
    /// trace files (the ci.sh `cmp` gate, as a property).
    #[test]
    fn trace_export_is_byte_identical_across_jobs(seed in 0u64..100) {
        let spec = ExperimentSpec {
            name: "trace-determinism",
            config: DgmcConfig::computation_dominated(),
            sizes: vec![20],
            graphs_per_size: 3,
            workload: WorkloadKind::Bursty(BurstParams {
                burst_events: 6,
                ..BurstParams::default()
            }),
            seed,
        };
        let serial = presets::run_experiment_jobs(&spec, 1);
        let parallel = presets::run_experiment_jobs(&spec, 4);
        let a = serial.trace.as_ref().expect("exemplar trace");
        let b = parallel.trace.as_ref().expect("exemplar trace");
        prop_assert_eq!(chrome_trace_json(a), chrome_trace_json(b));
        prop_assert_eq!(&serial.metrics, &parallel.metrics);
    }
}

/// Pin: the DESIGN.md §11 teardown/resurrection race — re-introduced via
/// the `UnfencedTeardown` mutation now that the engine itself is fixed —
/// minimizes to a bundle whose timeline is a *causal* tree: the delivery
/// that trips the stamps invariant renders indented under the step that
/// flooded it.
#[test]
fn teardown_resurrection_race_renders_as_a_causal_timeline() {
    let params = SystematicParams {
        nodes: 3,
        joins: 1,
        leaves: 1,
        mutation: EngineMutation::UnfencedTeardown,
        ..SystematicParams::default()
    };
    let run = systematic::run_systematic(&ExploreConfig::default(), &params);
    assert!(!run.report.passed(), "{}", run.report.summary());
    let min = run.minimized.expect("race minimizes to a bundle");
    assert!(
        min.bundle.timeline.iter().any(|l| l.contains('↳')),
        "no causal indentation in {:?}",
        min.bundle.timeline
    );
    assert!(
        min.bundle.timeline.iter().any(|l| l.contains("!!")),
        "violation markers survive the causal rendering"
    );
}

/// Pin: the DESIGN.md §11 deferred-event flood inversion (re-introduced
/// via the `EagerDeferredFlood` mutation) also renders causally — the two
/// opposite-order floods show up as two chains, and the agreement
/// violation is attributed to a delivery line.
#[test]
fn deferred_event_flood_inversion_renders_as_a_causal_timeline() {
    let model = SystematicModel::with_scenario(
        generate::ring(3),
        vec![
            ScriptEvent::Leave { at: NodeId(2) },
            ScriptEvent::Join { at: NodeId(2) },
        ],
        vec![NodeId(0), NodeId(2)],
        EngineMutation::EagerDeferredFlood,
    );
    let config = McConfig::default();
    let report = mc::explore_sharded(&model, &config, 1);
    let cx = report.counterexample.expect("inversion counterexample");
    let (keys, replay) = mc::minimize(&model, &cx.keys, config.max_depth);
    assert!(replay.failed());
    let timeline = systematic::describe_trace(&model, &replay.trace);
    assert!(
        timeline.iter().any(|l| l.contains('↳')),
        "no causal indentation in {timeline:?}"
    );
    let roots = timeline
        .iter()
        .filter(|l| !l.contains('↳') && !l.trim_start().starts_with("!!"))
        .count();
    assert!(
        roots >= 2,
        "the inverted leave and join are independent roots: {timeline:?}"
    );
    // Replays stay bit-for-bit after the rendering change.
    let again = mc::replay(&model, &keys, true, config.max_depth).expect("keys resolve");
    assert_eq!(again.violations, replay.violations);
}
