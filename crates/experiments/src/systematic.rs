//! Bounded systematic exploration of D-GMC schedules (DESIGN.md §11).
//!
//! Where the seed sweep ([`crate::explore`]) *samples* schedules, this
//! module *enumerates* them: a [`SystematicModel`] exposes every message
//! delivery, computation completion and scripted host/link event of a small
//! scenario as an explicit scheduler choice point for the
//! [`dgmc_des::mc`] model checker, which walks all interleavings with
//! sleep-set partial-order reduction and canonical-state pruning.
//!
//! Two oracles run on every trace:
//!
//! * the protocol invariant suite ([`dgmc_core::invariants::check_engines`])
//!   at every quiescent leaf, and
//! * lockstep conformance against the executable Fig. 4/5 specification
//!   ([`dgmc_core::spec`]): after every transition the engine's emitted
//!   actions and full per-MC state must match the spec's — divergence is
//!   itself a counterexample, even when no invariant breaks.
//!
//! Counterexamples are shrunk with [`mc::minimize`] (trace truncation plus
//! choice-point bisection) and packaged as [`ReproBundle`]s whose
//! `--trace` key list replays the schedule bit-for-bit.

use dgmc_core::invariants::check_engines;
use dgmc_core::spec::{self, SpecSwitch};
use dgmc_core::{DgmcAction, DgmcEngine, EngineMutation, McId, McLsa};
use dgmc_des::explorer::{ExploreConfig, ReproBundle, Violation};
use dgmc_des::mc::{self, McConfig, McReport, Replay, StableHasher, Step};
use dgmc_mctree::{McAlgorithm, McTopology, McType, Role, SphStrategy};
use dgmc_obs::{render_causal, CausalItem, JsonValue, MetricsRegistry};
use dgmc_topology::{generate, LinkState, Network, NodeId, SpfCache};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::rc::Rc;

/// Topology family of the explored network.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TopologyKind {
    /// A cycle (every switch has degree 2; survives one link flap).
    #[default]
    Ring,
    /// A path (a link flap partitions the network).
    Line,
    /// A complete graph.
    Complete,
}

impl fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyKind::Ring => write!(f, "ring"),
            TopologyKind::Line => write!(f, "line"),
            TopologyKind::Complete => write!(f, "complete"),
        }
    }
}

impl std::str::FromStr for TopologyKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "ring" => Ok(TopologyKind::Ring),
            "line" => Ok(TopologyKind::Line),
            "complete" => Ok(TopologyKind::Complete),
            other => Err(format!("unknown topology {other:?} (ring|line|complete)")),
        }
    }
}

/// Scenario shape and exploration bounds for one systematic run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystematicParams {
    /// Switches in the network (the paper's small-verification regime:
    /// 4-8).
    pub nodes: usize,
    /// Network shape.
    pub topology: TopologyKind,
    /// Concurrent host joins in the script.
    pub joins: usize,
    /// Concurrent host leaves (the leaving members join during the
    /// deterministic warm-up).
    pub leaves: usize,
    /// Link flaps: each contributes a down event and an up event that is
    /// only enabled after its down fired.
    pub flaps: usize,
    /// Maximum trace depth before the search cuts (marks the run
    /// incomplete).
    pub max_depth: usize,
    /// Maximum states expanded before the search stops (marks the run
    /// incomplete).
    pub max_states: u64,
    /// Deliberate engine defect under test ([`EngineMutation::None`] for
    /// the faithful protocol).
    pub mutation: EngineMutation,
    /// Fail-stop fault budget: up to this many switches may crash (losing
    /// all MC soft state, tombstones included) at scheduler-chosen points.
    pub crashes: usize,
    /// Message-loss budget: up to this many in-flight LSAs may be dropped
    /// at scheduler-chosen points (flooding is reliable when 0).
    pub losses: usize,
}

impl Default for SystematicParams {
    fn default() -> Self {
        SystematicParams {
            nodes: 4,
            topology: TopologyKind::Ring,
            joins: 2,
            leaves: 0,
            flaps: 0,
            max_depth: 96,
            max_states: 500_000,
            mutation: EngineMutation::None,
            crashes: 0,
            losses: 0,
        }
    }
}

/// One scripted external event, all concurrently enabled from the initial
/// state (except a [`ScriptEvent::LinkUp`], which waits for its down).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScriptEvent {
    /// A host joins the connection at this switch.
    Join {
        /// The joining switch.
        at: NodeId,
    },
    /// A host leaves the connection at this switch (a warm member).
    Leave {
        /// The leaving switch.
        at: NodeId,
    },
    /// The link `(a, b)` goes down; the lower endpoint detects it.
    LinkDown {
        /// Lower endpoint (the detector).
        a: NodeId,
        /// Higher endpoint.
        b: NodeId,
    },
    /// The link `(a, b)` comes back up, only after script entry `after`
    /// (its down) has fired.
    LinkUp {
        /// Lower endpoint (the detector).
        a: NodeId,
        /// Higher endpoint.
        b: NodeId,
        /// Script index of the matching [`ScriptEvent::LinkDown`].
        after: usize,
    },
}

impl fmt::Display for ScriptEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScriptEvent::Join { at } => write!(f, "join at {at}"),
            ScriptEvent::Leave { at } => write!(f, "leave at {at}"),
            ScriptEvent::LinkDown { a, b } => write!(f, "link {a}-{b} down"),
            ScriptEvent::LinkUp { a, b, .. } => write!(f, "link {a}-{b} up"),
        }
    }
}

/// One scheduler choice point: fire a scripted event, complete an
/// in-flight topology computation, or deliver one flooded LSA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SysAction {
    /// Fire script entry `.0`.
    Script(usize),
    /// The `Tc` computation timer fires at `switch` for `mc`.
    Complete {
        /// The computing switch.
        switch: NodeId,
        /// The connection being recomputed.
        mc: McId,
    },
    /// Deliver the pending flooded LSA with this (path-local) id.
    Deliver(u64),
    /// Fail-stop the switch: all MC soft state (states, tombstones,
    /// in-flight computations) is lost. Consumes one unit of the crash
    /// budget ([`SystematicParams::crashes`]).
    Crash(NodeId),
    /// Drop the pending flooded LSA with this (path-local) id instead of
    /// delivering it. Consumes one unit of the loss budget
    /// ([`SystematicParams::losses`]).
    Lose(u64),
}

/// One switch under test: the engine and its lockstep specification twin.
#[derive(Debug, Clone)]
pub struct SwitchPair {
    /// The production protocol engine.
    pub engine: DgmcEngine,
    /// The pure Fig. 4/5 specification mirror.
    pub spec: SpecSwitch,
}

/// A full system state: every switch (engine + spec), the link-state
/// image, and the multiset of in-flight flooded LSAs.
#[derive(Debug, Clone)]
pub struct SysState {
    /// All switches, indexed by node id.
    pub switches: Vec<SwitchPair>,
    /// The current link-state image (mutated by link script events).
    pub net: Network,
    /// In-flight messages: path-local id -> (destination, LSA). Ids are
    /// allocation order along the current path; identity for pruning and
    /// replay is the *content* (see [`SystematicModel::action_key`]).
    ///
    /// Delivery honors per-(origin, destination) FIFO: only the oldest
    /// pending message of each channel is enabled, mirroring the DES net
    /// model's guarantee that same-origin LSAs never overtake each other
    /// along a path (`dgmc_des::net`). Cross-channel order is the free
    /// scheduler choice the checker enumerates.
    pub pending: BTreeMap<u64, (NodeId, McLsa)>,
    next_msg: u64,
    /// Which script entries have fired.
    pub script_done: Vec<bool>,
    /// Remaining fail-stop crashes the scheduler may inject.
    pub crash_budget: usize,
    /// Remaining message losses the scheduler may inject.
    pub loss_budget: usize,
    /// Which switches have crashed (fail-stop, soft state lost). Crashed
    /// switches are excluded from the quiescence oracle: losing MC tables
    /// is exactly what fail-stop means, and until the link-state layer
    /// re-syncs them (outside this model) they cannot agree. The checked
    /// property is that a crash never corrupts the *survivors*.
    pub crashed: Vec<bool>,
}

/// The FIFO channel a pending message travels on: `(origin, destination)`.
fn channel(msg: &(NodeId, McLsa)) -> (NodeId, NodeId) {
    (msg.1.source, msg.0)
}

/// The D-GMC scenario as a [`mc::Model`]: holds only plain data (network,
/// script, parameters) so sharded exploration can share it across workers;
/// engines and spec switches are built afresh inside [`Model::initial`].
#[derive(Debug, Clone)]
pub struct SystematicModel {
    net: Network,
    script: Vec<ScriptEvent>,
    warm: Vec<NodeId>,
    mc: McId,
    mc_type: McType,
    role: Role,
    mutation: EngineMutation,
    crashes: usize,
    losses: usize,
}

use mc::Model;

/// What an action touches, for the independence relation: the switches
/// whose state it reads or writes, and whether it reads/writes the shared
/// link-state image.
struct Footprint {
    switches: Vec<NodeId>,
    net_read: bool,
    net_write: bool,
}

impl SystematicModel {
    /// Builds the scenario for `params`: `joins` spread evenly over the
    /// non-warm switches, `leaves` warm members at the highest switch ids,
    /// and `flaps` down/up pairs over the first links of the generated
    /// network.
    pub fn new(params: &SystematicParams) -> SystematicModel {
        let n = params.nodes;
        assert!(n >= 2, "systematic scenarios need at least two switches");
        let net = match params.topology {
            TopologyKind::Ring => generate::ring(n),
            TopologyKind::Line => generate::path(n),
            TopologyKind::Complete => generate::complete(n),
        };
        let warm: Vec<NodeId> = (0..params.leaves.min(n))
            .map(|i| NodeId((n - 1 - i) as u32))
            .collect();
        let candidates: Vec<NodeId> = (0..n as u32)
            .map(NodeId)
            .filter(|id| !warm.contains(id))
            .collect();
        let mut script = Vec::new();
        for i in 0..params.joins {
            let at = candidates[(i * candidates.len() / params.joins.max(1)) % candidates.len()];
            script.push(ScriptEvent::Join { at });
        }
        for &at in &warm {
            script.push(ScriptEvent::Leave { at });
        }
        let flapped: Vec<(NodeId, NodeId)> = net
            .links()
            .take(params.flaps)
            .map(dgmc_topology::Link::endpoints)
            .collect();
        for (a, b) in flapped {
            let (a, b) = (a.min(b), a.max(b));
            let after = script.len();
            script.push(ScriptEvent::LinkDown { a, b });
            script.push(ScriptEvent::LinkUp { a, b, after });
        }
        SystematicModel {
            net,
            script,
            warm,
            mc: McId(1),
            mc_type: McType::Symmetric,
            role: Role::SenderReceiver,
            mutation: params.mutation,
            crashes: params.crashes,
            losses: params.losses,
        }
    }

    /// Builds a model over an explicit network and script instead of the
    /// parameter-derived shapes of [`SystematicModel::new`] — the entry
    /// point for property tests exploring random graphs and scripts. `warm`
    /// members join (and drain to quiescence) before the script starts;
    /// a [`ScriptEvent::Leave`] only does anything at a warm member.
    pub fn with_scenario(
        net: Network,
        script: Vec<ScriptEvent>,
        warm: Vec<NodeId>,
        mutation: EngineMutation,
    ) -> SystematicModel {
        SystematicModel {
            net,
            script,
            warm,
            mc: McId(1),
            mc_type: McType::Symmetric,
            role: Role::SenderReceiver,
            mutation,
            crashes: 0,
            losses: 0,
        }
    }

    /// Grants the scheduler fault budgets on top of the scenario: up to
    /// `crashes` fail-stop switch crashes and `losses` dropped LSAs.
    #[must_use]
    pub fn with_faults(mut self, crashes: usize, losses: usize) -> SystematicModel {
        self.crashes = crashes;
        self.losses = losses;
        self
    }

    /// The scripted external events, in script-index order.
    pub fn script(&self) -> &[ScriptEvent] {
        &self.script
    }

    fn enabled_of(&self, state: &SysState, include_scripts: bool) -> Vec<SysAction> {
        let mut out = Vec::new();
        if include_scripts {
            for (i, ev) in self.script.iter().enumerate() {
                if state.script_done[i] {
                    continue;
                }
                if let ScriptEvent::LinkUp { after, .. } = ev {
                    if !state.script_done[*after] {
                        continue;
                    }
                }
                out.push(SysAction::Script(i));
            }
        }
        for pair in &state.switches {
            for mc in pair.engine.mc_ids() {
                if pair
                    .engine
                    .state(mc)
                    .is_some_and(|st| st.computing.is_some())
                {
                    out.push(SysAction::Complete {
                        switch: pair.engine.id(),
                        mc,
                    });
                }
            }
        }
        // Per-channel FIFO: only the head (smallest id) of each
        // (origin, destination) channel is deliverable.
        let mut heads: BTreeMap<(NodeId, NodeId), u64> = BTreeMap::new();
        for (&id, msg) in &state.pending {
            heads.entry(channel(msg)).or_insert(id);
        }
        let heads: Vec<u64> = heads.into_values().collect();
        out.extend(heads.iter().copied().map(SysAction::Deliver));
        // Fault injection is an adversarial top-level choice (never taken
        // during the deterministic warm-up drain): any channel head can be
        // lost instead of delivered, and any switch still holding MC soft
        // state can fail-stop, while the budgets last.
        if include_scripts {
            if state.loss_budget > 0 {
                out.extend(heads.into_iter().map(SysAction::Lose));
            }
            if state.crash_budget > 0 {
                for pair in &state.switches {
                    if !pair.engine.mc_ids().is_empty() || pair.engine.tombstones().next().is_some()
                    {
                        out.push(SysAction::Crash(pair.engine.id()));
                    }
                }
            }
        }
        out
    }

    fn footprint(&self, state: &SysState, action: &SysAction) -> Footprint {
        match action {
            SysAction::Script(i) => match self.script[*i] {
                ScriptEvent::Join { at } | ScriptEvent::Leave { at } => Footprint {
                    switches: vec![at],
                    net_read: false,
                    net_write: false,
                },
                ScriptEvent::LinkDown { a, b } | ScriptEvent::LinkUp { a, b, .. } => Footprint {
                    // The lower endpoint is the detector that runs
                    // EventHandler(); the link-state write touches the
                    // shared image.
                    switches: vec![a.min(b)],
                    net_read: false,
                    net_write: true,
                },
            },
            SysAction::Complete { switch, .. } => Footprint {
                switches: vec![*switch],
                net_read: true,
                net_write: false,
            },
            SysAction::Deliver(id) | SysAction::Lose(id) => Footprint {
                // Lose shares Deliver's footprint: both consume the same
                // channel head, so the two orders of the same message are
                // dependent and both get explored.
                switches: vec![state.pending[id].0],
                net_read: false,
                net_write: false,
            },
            SysAction::Crash(switch) => Footprint {
                switches: vec![*switch],
                net_read: false,
                net_write: false,
            },
        }
    }

    /// Floods `actions`' LSAs from `source` to every other switch
    /// (link-state flooding is modeled reliable and source-excluding).
    fn dispatch(&self, state: &mut SysState, source: NodeId, actions: &[DgmcAction]) {
        for action in actions {
            if let DgmcAction::Flood(lsa) = action {
                for i in 0..state.switches.len() as u32 {
                    if NodeId(i) == source {
                        continue;
                    }
                    let id = state.next_msg;
                    state.next_msg += 1;
                    state.pending.insert(id, (NodeId(i), lsa.clone()));
                }
            }
        }
    }

    /// The per-step conformance oracle: the engine must have emitted
    /// exactly the actions the spec requires and landed in exactly the
    /// spec's state.
    fn divergence(
        pair: &SwitchPair,
        spec_actions: &[spec::SpecAction],
        engine_actions: &[DgmcAction],
    ) -> Vec<Violation> {
        let mut out = Vec::new();
        if !spec::actions_match(spec_actions, engine_actions) {
            out.push(Violation {
                invariant: "spec".into(),
                detail: format!(
                    "{}: engine actions {:?} diverge from spec {:?}",
                    pair.engine.id(),
                    engine_actions
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>(),
                    spec_actions
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>(),
                ),
            });
        }
        if let Some(diff) = spec::diff_engine(&pair.spec, &pair.engine) {
            out.push(Violation {
                invariant: "spec".into(),
                detail: format!("{}: state divergence: {diff}", pair.engine.id()),
            });
        }
        out
    }

    fn render_actions(actions: &[DgmcAction]) -> String {
        if actions.is_empty() {
            return "no actions".into();
        }
        actions
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// Applies one action, returning the successor, any divergence
    /// violations, and a human-readable line for repro timelines.
    fn transition(
        &self,
        state: &SysState,
        action: &SysAction,
    ) -> (SysState, Vec<Violation>, String) {
        let mut next = state.clone();
        let (violations, desc) = match action {
            SysAction::Script(i) => {
                next.script_done[*i] = true;
                let ev = self.script[*i];
                self.fire_script(&mut next, &ev)
            }
            SysAction::Complete { switch, mc } => {
                let SysState { switches, net, .. } = &mut next;
                let pair = &mut switches[switch.0 as usize];
                let engine_actions = pair.engine.on_computation_done(*mc, net);
                let algo = SphStrategy::new();
                let cache = SpfCache::disabled();
                let mut compute = |terminals: &BTreeSet<NodeId>, previous: Option<&McTopology>| {
                    algo.compute_with(net, terminals, previous, &cache)
                };
                let (spec_next, spec_actions) = pair.spec.computation_done(*mc, &mut compute);
                pair.spec = spec_next;
                let violations = Self::divergence(pair, &spec_actions, &engine_actions);
                let desc = format!(
                    "computation done at {switch} for {mc} -> {}",
                    Self::render_actions(&engine_actions)
                );
                self.dispatch(&mut next, *switch, &engine_actions);
                (violations, desc)
            }
            SysAction::Deliver(id) => {
                let (to, lsa) = next
                    .pending
                    .remove(id)
                    .expect("delivering a pending message");
                let pair = &mut next.switches[to.0 as usize];
                let engine_actions = pair.engine.on_mc_lsa(lsa.clone());
                let (spec_next, spec_actions) = pair.spec.receive_lsa(lsa.clone());
                pair.spec = spec_next;
                let violations = Self::divergence(pair, &spec_actions, &engine_actions);
                let desc = format!(
                    "deliver {lsa} to {to} -> {}",
                    Self::render_actions(&engine_actions)
                );
                self.dispatch(&mut next, to, &engine_actions);
                (violations, desc)
            }
            SysAction::Crash(switch) => {
                // Fail-stop: the switch restarts with empty MC tables —
                // engine and spec together, so the lockstep oracle keeps
                // holding on the survivor.
                let n = next.switches.len();
                let algo: Rc<dyn McAlgorithm> = Rc::new(SphStrategy::new());
                let mut engine = DgmcEngine::new(*switch, n, algo);
                engine.set_mutation(self.mutation);
                let mut spec = SpecSwitch::new(*switch, n);
                spec.set_mutation(self.mutation);
                next.switches[switch.0 as usize] = SwitchPair { engine, spec };
                next.crashed[switch.0 as usize] = true;
                next.crash_budget -= 1;
                (
                    Vec::new(),
                    format!("crash at {switch} (MC soft state lost)"),
                )
            }
            SysAction::Lose(id) => {
                let (to, lsa) = next.pending.remove(id).expect("losing a pending message");
                next.loss_budget -= 1;
                (Vec::new(), format!("lose {lsa} to {to}"))
            }
        };
        (next, violations, desc)
    }

    fn fire_script(&self, next: &mut SysState, ev: &ScriptEvent) -> (Vec<Violation>, String) {
        match *ev {
            ScriptEvent::Join { at } => {
                let pair = &mut next.switches[at.0 as usize];
                let engine_actions = pair.engine.local_join(self.mc, self.mc_type, self.role);
                let (spec_next, spec_actions) =
                    pair.spec.host_join(self.mc, self.mc_type, self.role);
                pair.spec = spec_next;
                let violations = Self::divergence(pair, &spec_actions, &engine_actions);
                let desc = format!("{ev} -> {}", Self::render_actions(&engine_actions));
                self.dispatch(next, at, &engine_actions);
                (violations, desc)
            }
            ScriptEvent::Leave { at } => {
                let pair = &mut next.switches[at.0 as usize];
                let engine_actions = pair.engine.local_leave(self.mc);
                let (spec_next, spec_actions) = pair.spec.host_leave(self.mc);
                pair.spec = spec_next;
                let violations = Self::divergence(pair, &spec_actions, &engine_actions);
                let desc = format!("{ev} -> {}", Self::render_actions(&engine_actions));
                self.dispatch(next, at, &engine_actions);
                (violations, desc)
            }
            ScriptEvent::LinkDown { a, b } | ScriptEvent::LinkUp { a, b, .. } => {
                let target = if matches!(ev, ScriptEvent::LinkDown { .. }) {
                    LinkState::Down
                } else {
                    LinkState::Up
                };
                let link = next
                    .net
                    .link_between(a, b)
                    .expect("scripted link exists")
                    .id;
                next.net
                    .set_link_state(link, target)
                    .expect("link state change");
                let detector = a.min(b);
                let SysState {
                    switches, net: _, ..
                } = next;
                let pair = &mut switches[detector.0 as usize];
                let engine_actions = pair.engine.local_link_event(a, b);
                let (spec_next, spec_actions) = pair.spec.link_event(a, b);
                pair.spec = spec_next;
                let violations = Self::divergence(pair, &spec_actions, &engine_actions);
                let desc = format!("{ev} -> {}", Self::render_actions(&engine_actions));
                self.dispatch(next, detector, &engine_actions);
                (violations, desc)
            }
        }
    }
}

impl Model for SystematicModel {
    type State = SysState;
    type Action = SysAction;

    /// Builds all switches and runs the deterministic warm-up: each warm
    /// member joins and the system is drained to quiescence (always the
    /// first enabled non-script action) before the scripted concurrency
    /// starts.
    fn initial(&self) -> SysState {
        let n = self.net.len();
        let algo: Rc<dyn McAlgorithm> = Rc::new(SphStrategy::new());
        let switches = (0..n as u32)
            .map(|i| {
                let mut engine = DgmcEngine::new(NodeId(i), n, Rc::clone(&algo));
                engine.set_mutation(self.mutation);
                let mut spec = SpecSwitch::new(NodeId(i), n);
                spec.set_mutation(self.mutation);
                SwitchPair { engine, spec }
            })
            .collect();
        let mut state = SysState {
            switches,
            net: self.net.clone(),
            pending: BTreeMap::new(),
            next_msg: 0,
            script_done: vec![false; self.script.len()],
            crash_budget: self.crashes,
            loss_budget: self.losses,
            crashed: vec![false; n],
        };
        for &at in &self.warm {
            let (violations, desc) = self.fire_script(&mut state, &ScriptEvent::Join { at });
            assert!(
                violations.is_empty(),
                "warm-up diverged at '{desc}': {violations:?}"
            );
            loop {
                let enabled = self.enabled_of(&state, false);
                let Some(action) = enabled.first() else { break };
                let (next, violations, desc) = self.transition(&state, action);
                assert!(
                    violations.is_empty(),
                    "warm-up diverged at '{desc}': {violations:?}"
                );
                state = next;
            }
        }
        state
    }

    fn enabled(&self, state: &SysState) -> Vec<SysAction> {
        self.enabled_of(state, true)
    }

    fn action_key(&self, state: &SysState, action: &SysAction) -> u64 {
        let mut h = StableHasher::new();
        match action {
            SysAction::Script(i) => {
                0u8.hash(&mut h);
                i.hash(&mut h);
            }
            SysAction::Complete { switch, mc } => {
                1u8.hash(&mut h);
                switch.hash(&mut h);
                mc.hash(&mut h);
            }
            SysAction::Deliver(id) => {
                // Content identity, not the path-local allocation id: the
                // same undelivered LSA must key identically on every path
                // that can deliver it.
                let (to, lsa) = &state.pending[id];
                2u8.hash(&mut h);
                to.hash(&mut h);
                lsa.hash(&mut h);
            }
            SysAction::Crash(switch) => {
                3u8.hash(&mut h);
                switch.hash(&mut h);
            }
            SysAction::Lose(id) => {
                let (to, lsa) = &state.pending[id];
                4u8.hash(&mut h);
                to.hash(&mut h);
                lsa.hash(&mut h);
            }
        }
        h.finish()
    }

    fn commutes(&self, state: &SysState, a: &SysAction, b: &SysAction) -> bool {
        let fa = self.footprint(state, a);
        let fb = self.footprint(state, b);
        let disjoint = fa.switches.iter().all(|s| !fb.switches.contains(s));
        disjoint
            && !(fa.net_write && (fb.net_read || fb.net_write))
            && !(fb.net_write && (fa.net_read || fa.net_write))
    }

    fn apply(&self, state: &SysState, action: &SysAction) -> Step<SysState> {
        let (next, violations, _) = self.transition(state, action);
        Step {
            state: next,
            violations,
        }
    }

    /// Canonical digest: per-switch engine and spec state, the link-state
    /// image digest, the script progress, and the pending messages hashed
    /// as per-channel ordered sequences — invariant under allocation-id
    /// differences between interleavings of commuting actions (channel
    /// order is preserved by the FIFO rule; cross-channel order is not
    /// state), so such interleavings converge to one search node.
    fn state_hash(&self, state: &SysState) -> u64 {
        let mut h = StableHasher::new();
        for pair in &state.switches {
            for mc in pair.engine.mc_ids() {
                mc.hash(&mut h);
                pair.engine.state(mc).hash(&mut h);
            }
            // Tombstones shape future behavior (they fence or revive later
            // LSAs), so they are part of the canonical state.
            for (mc, tomb) in pair.engine.tombstones() {
                mc.hash(&mut h);
                tomb.hash(&mut h);
            }
            for mc in pair.spec.mc_ids() {
                mc.hash(&mut h);
                pair.spec.state(mc).hash(&mut h);
            }
            for (mc, tomb) in pair.spec.tombstones() {
                mc.hash(&mut h);
                tomb.hash(&mut h);
            }
        }
        state.net.digest().hash(&mut h);
        state.script_done.hash(&mut h);
        state.crash_budget.hash(&mut h);
        state.loss_budget.hash(&mut h);
        state.crashed.hash(&mut h);
        let mut channels: BTreeMap<(NodeId, NodeId), Vec<u64>> = BTreeMap::new();
        for msg in state.pending.values() {
            channels
                .entry(channel(msg))
                .or_default()
                .push(mc::stable_hash_of(&msg.1));
        }
        channels.hash(&mut h);
        h.finish()
    }

    fn check_quiescent(&self, state: &SysState) -> Vec<Violation> {
        // Crashed switches lost their soft state by definition; the suite
        // checks the survivors (see [`SysState::crashed`]).
        let engines: Vec<&DgmcEngine> = state
            .switches
            .iter()
            .filter(|p| !state.crashed[p.engine.id().0 as usize])
            .map(|p| &p.engine)
            .collect();
        check_engines(&engines, &state.net)
            .into_iter()
            .map(|v| Violation {
                invariant: v.invariant.into(),
                detail: v.to_string(),
            })
            .collect()
    }
}

/// A shrunk counterexample, ready to ship: the minimized choice-point keys,
/// their full replay, and the self-contained repro bundle.
#[derive(Debug, Clone)]
pub struct MinimizedFailure {
    /// The minimized schedule (content keys, replayable with `--trace`).
    pub keys: Vec<u64>,
    /// The minimized trace replayed start-to-violation.
    pub replay: Replay<SysAction>,
    /// The PR-2-style repro bundle.
    pub bundle: ReproBundle,
}

/// The outcome of one systematic exploration.
#[derive(Debug, Clone)]
pub struct SystematicRun {
    /// The checker's report (stats, completeness, first counterexample).
    pub report: McReport<SysAction>,
    /// `mc.*` metrics counters for the run.
    pub metrics: MetricsRegistry,
    /// The minimized failure, when a counterexample was found.
    pub minimized: Option<MinimizedFailure>,
}

/// Explores every interleaving of the scenario within the configured
/// bounds, honoring `config.jobs` via deterministic DFS-prefix sharding.
/// The report is byte-identical for every worker count. A counterexample is
/// minimized and packaged before returning.
pub fn run_systematic(config: &ExploreConfig, params: &SystematicParams) -> SystematicRun {
    let model = SystematicModel::new(params);
    let mc_config = McConfig {
        max_depth: params.max_depth,
        max_states: params.max_states,
        fail_fast: true,
    };
    let report = mc::explore_sharded(&model, &mc_config, config.jobs.max(1));
    let mut metrics = MetricsRegistry::new();
    report.stats.publish(&mut metrics);
    let minimized = report.counterexample.as_ref().map(|cx| {
        let (keys, replay) = mc::minimize(&model, &cx.keys, params.max_depth);
        let bundle = make_bundle(params, &model, &keys, &replay);
        MinimizedFailure {
            keys,
            replay,
            bundle,
        }
    });
    SystematicRun {
        report,
        metrics,
        minimized,
    }
}

/// Replays a `--trace` key sequence against the scenario, completing
/// deterministically to quiescence. `None` if the keys do not resolve (a
/// stale bundle against a changed scenario).
pub fn replay_trace(params: &SystematicParams, keys: &[u64]) -> Option<Replay<SysAction>> {
    let model = SystematicModel::new(params);
    mc::replay(&model, keys, true, params.max_depth)
}

/// Replays `keys` and returns the canonical hash of the state the
/// schedule ends in — the seed for [`run_backward`]. Violations along the
/// way are expected (the whole point is to capture a violation state);
/// `None` if some key does not resolve.
pub fn violation_state_hash(params: &SystematicParams, keys: &[u64]) -> Option<u64> {
    let model = SystematicModel::new(params);
    let mut state = model.initial();
    for key in keys {
        let action = model
            .enabled(&state)
            .into_iter()
            .find(|a| model.action_key(&state, a) == *key)?;
        state = model.apply(&state, &action).state;
    }
    Some(model.state_hash(&state))
}

/// Backward search over the scenario (DESIGN.md §11): given canonical
/// state hashes captured from a forward counterexample (see
/// [`violation_state_hash`]), [`mc::backward_search`] builds the
/// predecessor graph breadth-first across `config.jobs` workers and walks
/// it backward from the first target reached, yielding a shortest witness
/// schedule replayable with [`replay_trace`]. The rendered report is
/// byte-identical for every worker count.
pub fn run_backward(
    config: &ExploreConfig,
    params: &SystematicParams,
    bounds: &mc::BackwardConfig,
    targets: &[u64],
) -> mc::BackwardReport {
    let model = SystematicModel::new(params);
    mc::backward_search(&model, bounds, targets, config.jobs.max(1))
}

/// Renders the minimized trace as a human-readable *causal* timeline: one
/// line per choice point with the engine actions it triggered, indented
/// under the step that caused it (the step that flooded a delivered LSA, or
/// the step that started a completing computation; scripted events are
/// roots). Steps stay in schedule order and keep their schedule numbers, so
/// the interleaving and the causality are both visible at once.
pub fn describe_trace(model: &SystematicModel, trace: &[SysAction]) -> Vec<String> {
    let mut state = model.initial();
    // Message id -> creating step; (switch, mc) -> step that started the
    // in-flight computation. Warm-up drains to quiescence, so every pending
    // message and computation is created by a traced step.
    let mut msg_creator: BTreeMap<u64, u64> = BTreeMap::new();
    let mut computing: BTreeMap<(NodeId, McId), u64> = BTreeMap::new();
    let mut items = Vec::new();
    let mut notes_at: Vec<Vec<String>> = Vec::new();
    for (i, action) in trace.iter().enumerate() {
        let step = i as u64 + 1;
        let parent = match action {
            SysAction::Script(_) | SysAction::Crash(_) => 0,
            SysAction::Deliver(id) | SysAction::Lose(id) => {
                msg_creator.get(id).copied().unwrap_or(0)
            }
            SysAction::Complete { switch, mc } => {
                computing.get(&(*switch, *mc)).copied().unwrap_or(0)
            }
        };
        if let SysAction::Complete { switch, mc } = action {
            computing.remove(&(*switch, *mc));
        }
        let before: BTreeSet<u64> = state.pending.keys().copied().collect();
        let (next, violations, desc) = model.transition(&state, action);
        for &id in next.pending.keys() {
            if !before.contains(&id) {
                msg_creator.insert(id, step);
            }
        }
        for pair in &next.switches {
            for mc in pair.engine.mc_ids() {
                if pair
                    .engine
                    .state(mc)
                    .is_some_and(|st| st.computing.is_some())
                {
                    computing.entry((pair.engine.id(), mc)).or_insert(step);
                }
            }
        }
        items.push(CausalItem {
            id: step,
            parent,
            label: format!("{step:>3}. {desc}"),
        });
        notes_at.push(violations.iter().map(|v| format!("     !! {v}")).collect());
        state = next;
    }
    let mut lines = Vec::new();
    for (line, notes) in render_causal(&items).into_iter().zip(notes_at) {
        lines.push(line);
        lines.extend(notes);
    }
    if model.enabled(&state).is_empty() {
        for v in model.check_quiescent(&state) {
            lines.push(format!("     !! at quiescence: {v}"));
        }
    }
    lines
}

/// The one-command replay hint embedded in bundles.
fn replay_command(params: &SystematicParams, keys: &[u64]) -> String {
    let mutate = match params.mutation {
        EngineMutation::None => String::new(),
        EngineMutation::SkipWithdrawal => " --mutate skip-withdrawal".to_owned(),
        EngineMutation::UnfencedTeardown => " --mutate unfenced-teardown".to_owned(),
        EngineMutation::EagerDeferredFlood => " --mutate eager-deferred-flood".to_owned(),
    };
    format!(
        "cargo run -p dgmc-experiments --bin explore -- --systematic --topology {} \
         --nodes {} --joins {} --leaves {} --flaps {}{mutate} --trace {}",
        params.topology,
        params.nodes,
        params.joins,
        params.leaves,
        params.flaps,
        keys.iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(","),
    )
}

fn make_bundle(
    params: &SystematicParams,
    model: &SystematicModel,
    keys: &[u64],
    replay: &Replay<SysAction>,
) -> ReproBundle {
    let plan = JsonValue::obj(vec![
        ("mode", JsonValue::Str("systematic".into())),
        ("nodes", JsonValue::U64(params.nodes as u64)),
        ("topology", JsonValue::Str(params.topology.to_string())),
        ("joins", JsonValue::U64(params.joins as u64)),
        ("leaves", JsonValue::U64(params.leaves as u64)),
        ("flaps", JsonValue::U64(params.flaps as u64)),
        ("mutation", JsonValue::Str(format!("{:?}", params.mutation))),
        (
            "script",
            JsonValue::Arr(
                model
                    .script()
                    .iter()
                    .map(|ev| JsonValue::Str(ev.to_string()))
                    .collect(),
            ),
        ),
        (
            "trace_keys",
            JsonValue::Arr(keys.iter().map(|&k| JsonValue::U64(k)).collect()),
        ),
    ]);
    ReproBundle {
        // The schedule *is* the key list; its stable hash names the bundle
        // uniquely and deterministically (there is no seed in this mode).
        seed: mc::stable_hash_of(&keys),
        scenario: "systematic".into(),
        plan,
        violations: replay.violations.clone(),
        timeline: describe_trace(model, &replay.trace),
        replay: replay_command(params, keys),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> SystematicParams {
        SystematicParams {
            nodes: 3,
            joins: 2,
            ..SystematicParams::default()
        }
    }

    #[test]
    fn three_node_two_join_scenario_fully_explores_clean() {
        let run = run_systematic(&ExploreConfig::default(), &quick());
        assert!(run.report.passed(), "{}", run.report.summary());
        assert!(run.report.complete, "{}", run.report.summary());
        assert!(run.report.stats.states > 10, "{}", run.report.summary());
        assert_eq!(
            run.metrics.counter_value(mc::metric_names::STATES),
            run.report.stats.states
        );
    }

    #[test]
    fn warm_members_join_before_the_script_starts() {
        let params = SystematicParams {
            nodes: 4,
            joins: 1,
            leaves: 1,
            ..SystematicParams::default()
        };
        let model = SystematicModel::new(&params);
        let state = model.initial();
        // The warm member (highest id) is installed and quiet before any
        // scripted action fires.
        assert!(state.pending.is_empty());
        assert!(state.switches[3].engine.is_member(McId(1)));
        assert!(state.switches[3].engine.installed(McId(1)).is_some());
        assert!(state.script_done.iter().all(|done| !done));
        assert_eq!(
            model.script(),
            &[
                ScriptEvent::Join { at: NodeId(0) },
                ScriptEvent::Leave { at: NodeId(3) },
            ]
        );
    }

    #[test]
    fn deliveries_to_different_switches_commute_but_same_switch_conflicts() {
        let params = quick();
        let model = SystematicModel::new(&params);
        let mut state = model.initial();
        // Fire the first join, then its computation, to get a flood in
        // flight (enabled() lists scripts first, so pick explicitly).
        state = model.apply(&state, &SysAction::Script(0)).state;
        let complete = model
            .enabled(&state)
            .into_iter()
            .find(|a| matches!(a, SysAction::Complete { .. }))
            .expect("the join started a computation");
        state = model.apply(&state, &complete).state;
        let delivers: Vec<SysAction> = model
            .enabled(&state)
            .into_iter()
            .filter(|a| matches!(a, SysAction::Deliver(_)))
            .collect();
        assert_eq!(delivers.len(), 2, "flood to both other switches");
        assert!(model.commutes(&state, &delivers[0], &delivers[1]));
        assert!(!model.commutes(&state, &delivers[0], &delivers[0]));
        // Content keys are distinct (different destinations).
        assert_ne!(
            model.action_key(&state, &delivers[0]),
            model.action_key(&state, &delivers[1])
        );
    }

    #[test]
    fn link_flap_script_orders_up_after_down() {
        let params = SystematicParams {
            nodes: 4,
            joins: 1,
            flaps: 1,
            ..SystematicParams::default()
        };
        let model = SystematicModel::new(&params);
        let state = model.initial();
        let enabled = model.enabled(&state);
        // The up event waits for its down: only join + down are enabled.
        assert!(enabled.contains(&SysAction::Script(0)));
        assert!(enabled.contains(&SysAction::Script(1)));
        assert!(!enabled.contains(&SysAction::Script(2)));
        let down = model.script()[1];
        let up = model.script()[2];
        assert!(matches!(down, ScriptEvent::LinkDown { .. }));
        assert!(matches!(up, ScriptEvent::LinkUp { after: 1, .. }));
    }

    #[test]
    fn describe_trace_renders_causal_indentation() {
        let params = quick();
        let model = SystematicModel::new(&params);
        let mut state = model.initial();
        let mut trace = vec![SysAction::Script(0)];
        state = model.apply(&state, &trace[0]).state;
        let complete = model
            .enabled(&state)
            .into_iter()
            .find(|a| matches!(a, SysAction::Complete { .. }))
            .expect("the join started a computation");
        state = model.apply(&state, &complete).state;
        trace.push(complete);
        let deliver = model
            .enabled(&state)
            .into_iter()
            .find(|a| matches!(a, SysAction::Deliver(_)))
            .expect("the computation flooded an LSA");
        trace.push(deliver);
        let lines = describe_trace(&model, &trace);
        assert_eq!(lines.len(), 3);
        // Root at indent 0, its computation one hop in, the LSA that
        // computation flooded two hops in — causality *and* schedule order.
        assert!(lines[0].starts_with("  1. join"), "{}", lines[0]);
        assert!(
            lines[1].starts_with("  ↳   2. computation done"),
            "{}",
            lines[1]
        );
        assert!(lines[2].starts_with("    ↳   3. deliver"), "{}", lines[2]);
    }

    #[test]
    fn skip_withdrawal_mutation_is_caught_and_minimized() {
        let params = SystematicParams {
            mutation: EngineMutation::SkipWithdrawal,
            ..quick()
        };
        let run = run_systematic(&ExploreConfig::default(), &params);
        let minimized = run.minimized.expect("mutated engine must diverge");
        assert!(!run.report.passed());
        assert!(minimized.replay.failed());
        assert!(
            minimized
                .replay
                .violations
                .iter()
                .any(|v| v.invariant == "spec" || v.invariant == "agreement"),
            "{:?}",
            minimized.replay.violations
        );
        // The bundle replays bit-for-bit.
        let again = replay_trace(&params, &minimized.keys).expect("trace resolves");
        assert_eq!(again.keys, minimized.replay.keys);
        assert_eq!(again.violations, minimized.replay.violations);
        assert!(minimized.bundle.to_json().contains("systematic"));
        assert!(minimized.bundle.replay.contains("--trace"));
    }
}
