//! Fault-tolerance study (paper Section 6): "the protocol handles faulty
//! components in the network through topology computations triggered by
//! link/nodal events". This module measures how quickly a multipoint
//! connection recovers from the failure of a link its tree uses.

use dgmc_core::switch::{
    build_dgmc_sim, inject_link_event, inject_node_event, DgmcConfig, SwitchMsg,
};
use dgmc_core::{convergence, McId, McType, Role};
use dgmc_des::stats::Tally;
use dgmc_des::{ActorId, RunOutcome, SimDuration};
use dgmc_mctree::SphStrategy;
use dgmc_topology::{generate, LinkState};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::rc::Rc;

const MC: McId = McId(1);

/// Aggregated recovery behavior at one network size.
#[derive(Debug, Clone, Default)]
pub struct RecoveryRow {
    /// Network size.
    pub n: usize,
    /// Time from a tree-link failure to the last repaired-topology install,
    /// in rounds (`Tf + Tc`).
    pub link_recovery_rounds: Tally,
    /// Same for the failure of an on-tree transit switch.
    pub node_recovery_rounds: Tally,
    /// Runs skipped (no failable on-tree component) or failed.
    pub skipped: usize,
}

/// Sweeps recovery time over network sizes.
///
/// Each run: establish a 6-member symmetric MC, quiesce, then fail a link
/// the installed tree uses (and, in a second arm, an on-tree non-member
/// transit switch); recovery is complete when the survivors install a valid
/// tree on the degraded network.
pub fn recovery_sweep(sizes: &[usize], graphs: usize, seed: u64) -> Vec<RecoveryRow> {
    let mut rows = Vec::new();
    for &n in sizes {
        let mut row = RecoveryRow {
            n,
            ..RecoveryRow::default()
        };
        for g in 0..graphs {
            let run_seed = seed
                .wrapping_mul(26_041)
                .wrapping_add((n as u64) << 22)
                .wrapping_add(g as u64);
            if let Some(rounds) = one_link_recovery(n, run_seed) {
                row.link_recovery_rounds.record(rounds);
            } else {
                row.skipped += 1;
            }
            if let Some(rounds) = one_node_recovery(n, run_seed ^ 0x5A5A) {
                row.node_recovery_rounds.record(rounds);
            } else {
                row.skipped += 1;
            }
        }
        rows.push(row);
    }
    rows
}

fn setup(
    n: usize,
    seed: u64,
) -> Option<(
    dgmc_topology::Network,
    dgmc_des::Simulation<SwitchMsg>,
    dgmc_mctree::McTopology,
    DgmcConfig,
)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let net = generate::waxman(&mut rng, n, &generate::WaxmanParams::default());
    let config = DgmcConfig::computation_dominated();
    let mut sim = build_dgmc_sim(&net, config, Rc::new(SphStrategy::new()));
    sim.set_event_budget(200_000_000);
    let members = generate::sample_nodes(&mut rng, &net, 6);
    for (i, m) in members.iter().enumerate() {
        sim.inject(
            ActorId(m.0),
            SimDuration::millis(10 * i as u64),
            SwitchMsg::HostJoin {
                mc: MC,
                mc_type: McType::Symmetric,
                role: Role::SenderReceiver,
            },
        );
    }
    if sim.run_to_quiescence() != RunOutcome::Quiescent {
        return None;
    }
    let tree = convergence::check_consensus(&sim, MC).ok()?.topology?;
    Some((net, sim, tree, config))
}

fn rounds_since(
    sim: &dgmc_des::Simulation<SwitchMsg>,
    net: &dgmc_topology::Network,
    config: DgmcConfig,
    start: dgmc_des::SimTime,
) -> Option<f64> {
    let tf = config.per_hop * u64::from(dgmc_topology::metrics::flooding_diameter_hops(net));
    let round = tf + config.tc;
    let last = convergence::last_install_time(sim);
    if last < start || round.is_zero() {
        return None;
    }
    Some((last - start).ratio(round))
}

fn one_link_recovery(n: usize, seed: u64) -> Option<f64> {
    let (net, mut sim, tree, config) = setup(n, seed)?;
    // Fail the first tree edge whose loss keeps the network connected.
    let victim = tree.edges().find_map(|(a, b)| {
        let link = net.link_between(a, b)?.id;
        let mut degraded = net.clone();
        degraded.set_link_state(link, LinkState::Down).ok()?;
        degraded.is_connected().then_some(link)
    })?;
    let start = sim.now();
    inject_link_event(&mut sim, &net, victim, false, SimDuration::millis(1));
    if sim.run_to_quiescence() != RunOutcome::Quiescent {
        return None;
    }
    let mut degraded = net.clone();
    degraded.set_link_state(victim, LinkState::Down).ok()?;
    let repaired = convergence::check_consensus(&sim, MC).ok()?.topology?;
    repaired.validate(&degraded, repaired.terminals()).ok()?;
    rounds_since(&sim, &net, config, start)
}

fn one_node_recovery(n: usize, seed: u64) -> Option<f64> {
    let (net, mut sim, tree, config) = setup(n, seed)?;
    // Fail an on-tree switch that is not a member and not a cut vertex.
    let members = tree.terminals().clone();
    let victim = tree.nodes().into_iter().find(|&v| {
        if members.contains(&v) {
            return false;
        }
        let mut degraded = net.clone();
        for l in net.links().filter(|l| l.a == v || l.b == v) {
            let _ = degraded.set_link_state(l.id, LinkState::Down);
        }
        // Survivors (everyone but v) must stay mutually reachable.
        let labels = dgmc_topology::unionfind::component_labels(&degraded);
        let mut survivor_labels: Vec<usize> = degraded
            .nodes()
            .filter(|&x| x != v)
            .map(|x| labels[x.index()])
            .collect();
        survivor_labels.dedup();
        survivor_labels.len() == 1
    })?;
    let start = sim.now();
    inject_node_event(&mut sim, &net, victim, false, SimDuration::millis(1));
    if sim.run_to_quiescence() != RunOutcome::Quiescent {
        return None;
    }
    // Survivors must share a tree avoiding the dead switch.
    let reference = sim
        .actor_as::<dgmc_core::switch::DgmcSwitch>(ActorId(
            members.iter().next().expect("has members").0,
        ))?
        .engine()
        .installed(MC)?
        .clone();
    if reference.touches(victim) {
        return None;
    }
    rounds_since(&sim, &net, config, start)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_recovery_takes_a_few_rounds() {
        let rows = recovery_sweep(&[25], 3, 5);
        let row = &rows[0];
        assert!(
            !row.link_recovery_rounds.is_empty(),
            "skipped {}",
            row.skipped
        );
        let mean = row.link_recovery_rounds.mean();
        assert!(mean > 0.0 && mean < 20.0, "recovery {mean} rounds");
    }

    #[test]
    fn node_recovery_also_converges() {
        let rows = recovery_sweep(&[25], 3, 8);
        let row = &rows[0];
        // Some draws have no failable transit switch; at least one should.
        if !row.node_recovery_rounds.is_empty() {
            assert!(row.node_recovery_rounds.mean() < 30.0);
        }
    }
}
