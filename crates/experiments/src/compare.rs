//! Protocol comparison harness: D-GMC versus the brute-force LSR protocol
//! and MOSPF on identical workloads, plus CBT tree-quality comparisons.
//!
//! Backs the paper's Section 4 claim that one computation/flooding per event
//! "compares very favorably with the MOSPF protocol, which requires a
//! topology computation at every switch involved in the MC", and Section 2's
//! brute-force cost of n redundant computations per event.

use crate::workload::{self, SparseParams};
use dgmc_baselines::brute_force::{self, BfMsg};
use dgmc_baselines::cbt;
use dgmc_baselines::mospf::{self, MospfMsg};
use dgmc_core::switch::{build_dgmc_sim, counters as dgmc_counters, DgmcConfig, SwitchMsg};
use dgmc_core::{McId, McType, Role};
use dgmc_des::stats::Tally;
use dgmc_des::{ActorId, SimDuration};
use dgmc_mctree::{algorithms, metrics as tree_metrics, SphStrategy};
use dgmc_topology::{generate, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;
use std::rc::Rc;

const MC: McId = McId(1);

/// Per-event overhead of the three signaling protocols at one network size.
#[derive(Debug, Clone, Default)]
pub struct ProtocolRow {
    /// Network size.
    pub n: usize,
    /// D-GMC computations per event.
    pub dgmc_computations: Tally,
    /// Brute-force computations per event (≈ n).
    pub bf_computations: Tally,
    /// MOSPF computations per event (≈ on-tree routers).
    pub mospf_computations: Tally,
    /// D-GMC floodings per event.
    pub dgmc_floodings: Tally,
    /// Brute-force floodings per event.
    pub bf_floodings: Tally,
    /// MOSPF floodings per event.
    pub mospf_floodings: Tally,
}

/// Runs the three protocols over the same sparse workloads.
///
/// Sparse events give the cleanest per-event accounting (each event is fully
/// handled before the next).
pub fn compare_protocols(sizes: &[usize], graphs_per_size: usize, seed: u64) -> Vec<ProtocolRow> {
    let mut rows = Vec::new();
    for &n in sizes {
        let mut row = ProtocolRow {
            n,
            ..ProtocolRow::default()
        };
        for g in 0..graphs_per_size {
            let run_seed = seed
                .wrapping_mul(7_778_777)
                .wrapping_add((n as u64) << 20)
                .wrapping_add(g as u64);
            let mut rng = StdRng::seed_from_u64(run_seed);
            let net = generate::waxman(&mut rng, n, &generate::WaxmanParams::default());
            let params = SparseParams::default();
            let wl = workload::sparse(&mut rng, &net, &params);
            if wl.events.is_empty() {
                continue;
            }
            let events = wl.events.len() as f64;

            // --- D-GMC ---
            let mut sim = build_dgmc_sim(
                &net,
                DgmcConfig::computation_dominated(),
                Rc::new(SphStrategy::new()),
            );
            for (i, m) in wl.initial_members.iter().enumerate() {
                sim.inject(
                    ActorId(m.0),
                    SimDuration::millis(200) * i as u64,
                    SwitchMsg::HostJoin {
                        mc: MC,
                        mc_type: McType::Symmetric,
                        role: Role::SenderReceiver,
                    },
                );
            }
            sim.run_to_quiescence();
            sim.reset_counters();
            for e in &wl.events {
                let msg = if e.join {
                    SwitchMsg::HostJoin {
                        mc: MC,
                        mc_type: McType::Symmetric,
                        role: Role::SenderReceiver,
                    }
                } else {
                    SwitchMsg::HostLeave { mc: MC }
                };
                sim.inject(ActorId(e.node.0), e.at, msg);
            }
            sim.run_to_quiescence();
            row.dgmc_computations
                .record(sim.counter_value(dgmc_counters::COMPUTATIONS) as f64 / events);
            row.dgmc_floodings
                .record(sim.counter_value(dgmc_counters::FLOODINGS) as f64 / events);

            // --- Brute force ---
            let mut bf = brute_force::build_bf_sim(
                &net,
                DgmcConfig::computation_dominated().tc,
                DgmcConfig::computation_dominated().per_hop,
                Rc::new(SphStrategy::new()),
            );
            for (i, m) in wl.initial_members.iter().enumerate() {
                bf.inject(
                    ActorId(m.0),
                    SimDuration::millis(200) * i as u64,
                    BfMsg::HostJoin {
                        mc: MC,
                        role: Role::SenderReceiver,
                    },
                );
            }
            bf.run_to_quiescence();
            bf.reset_counters();
            for e in &wl.events {
                let msg = if e.join {
                    BfMsg::HostJoin {
                        mc: MC,
                        role: Role::SenderReceiver,
                    }
                } else {
                    BfMsg::HostLeave { mc: MC }
                };
                bf.inject(ActorId(e.node.0), e.at, msg);
            }
            bf.run_to_quiescence();
            row.bf_computations
                .record(bf.counter_value(brute_force::counters::COMPUTATIONS) as f64 / events);
            row.bf_floodings
                .record(bf.counter_value(brute_force::counters::FLOODINGS) as f64 / events);

            // --- MOSPF: after every membership event a datagram flows and
            // retriggers computation at every on-tree router. ---
            let mut mo = mospf::build_mospf_sim(&net, DgmcConfig::computation_dominated().per_hop);
            for (i, m) in wl.initial_members.iter().enumerate() {
                mo.inject(
                    ActorId(m.0),
                    SimDuration::millis(200) * i as u64,
                    MospfMsg::HostJoin { group: MC },
                );
            }
            mo.run_to_quiescence();
            mo.reset_counters();
            let source = wl.initial_members[0];
            for (k, e) in wl.events.iter().enumerate() {
                let msg = if e.join {
                    MospfMsg::HostJoin { group: MC }
                } else {
                    MospfMsg::HostLeave { group: MC }
                };
                mo.inject(ActorId(e.node.0), SimDuration::ZERO, msg);
                mo.run_to_quiescence();
                mo.inject(
                    ActorId(source.0),
                    SimDuration::ZERO,
                    MospfMsg::Data {
                        group: MC,
                        source,
                        via: None,
                        packet_id: k as u64,
                    },
                );
                mo.run_to_quiescence();
            }
            row.mospf_computations
                .record(mo.counter_value(mospf::counters::COMPUTATIONS) as f64 / events);
            row.mospf_floodings
                .record(mo.counter_value(mospf::counters::FLOODINGS) as f64 / events);
        }
        rows.push(row);
    }
    rows
}

/// Tree-quality comparison of CBT shared trees against D-GMC Steiner trees.
#[derive(Debug, Clone, Default)]
pub struct CbtRow {
    /// Network size.
    pub n: usize,
    /// Join-request hops per member (CBT signaling cost).
    pub cbt_join_hops: Tally,
    /// CBT shared-tree cost / Steiner-heuristic tree cost.
    pub cost_ratio: Tally,
    /// CBT traffic concentration / Steiner traffic concentration.
    pub concentration_ratio: Tally,
    /// Worst-core / best-core member-delay ratio (core placement
    /// sensitivity).
    pub core_delay_ratio: Tally,
}

/// Compares CBT trees (best core) with the Steiner heuristic trees D-GMC
/// installs, over random graphs and member sets.
pub fn compare_cbt(sizes: &[usize], graphs_per_size: usize, seed: u64) -> Vec<CbtRow> {
    let mut rows = Vec::new();
    for &n in sizes {
        let mut row = CbtRow {
            n,
            ..CbtRow::default()
        };
        for g in 0..graphs_per_size {
            let run_seed = seed
                .wrapping_mul(31_337)
                .wrapping_add((n as u64) << 18)
                .wrapping_add(g as u64);
            let mut rng = StdRng::seed_from_u64(run_seed);
            let net = generate::waxman(&mut rng, n, &generate::WaxmanParams::default());
            let members: BTreeSet<NodeId> = generate::sample_nodes(&mut rng, &net, (n / 5).max(3))
                .into_iter()
                .collect();
            let Some(best) = cbt::best_core(&net, &members) else {
                continue;
            };
            let (tree, hops) = cbt::build_cbt(&net, best, &members);
            let steiner = algorithms::takahashi_matsuyama(&net, &members);
            row.cbt_join_hops.record(hops as f64 / members.len() as f64);
            if let (Some(cc), Some(sc)) = (tree.cost(&net), steiner.total_cost(&net)) {
                if sc > 0 {
                    row.cost_ratio.record(cc as f64 / sc as f64);
                }
            }
            let sconc = tree_metrics::max_link_load(&steiner);
            if sconc > 0 {
                row.concentration_ratio
                    .record(tree.traffic_concentration() as f64 / sconc as f64);
            }
            if let (Some(worst), Some(best)) = (
                cbt::worst_core(&net, &members),
                cbt::best_core(&net, &members),
            ) {
                let ecc = |c: NodeId| -> f64 {
                    let spt = dgmc_topology::spf::shortest_path_tree(&net, c);
                    members
                        .iter()
                        .filter_map(|&m| spt.cost_to(m))
                        .max()
                        .unwrap_or(0) as f64
                };
                let (be, we) = (ecc(best), ecc(worst));
                if be > 0.0 {
                    row.core_delay_ratio.record(we / be);
                }
            }
        }
        rows.push(row);
    }
    rows
}

/// Runs D-GMC and CBT over the *same* membership sequences and returns one
/// [`MetricsRegistry`] holding both protocols' signaling costs: D-GMC's
/// `dgmc.*` flood counters and histograms merged from the simulation, CBT's
/// `cbt.join_*` metrics recorded by [`CbtTree::join_recorded`]. Having both
/// in one registry makes the flood-vs-join-hops comparison a single snapshot
/// (written by the `compare` bin as `results/compare.metrics.json`).
///
/// [`CbtTree::join_recorded`]: cbt::CbtTree::join_recorded
pub fn signaling_registry(
    sizes: &[usize],
    graphs_per_size: usize,
    seed: u64,
) -> dgmc_obs::MetricsRegistry {
    let mut registry = dgmc_obs::MetricsRegistry::new();
    for &n in sizes {
        for g in 0..graphs_per_size {
            let run_seed = seed
                .wrapping_mul(424_243)
                .wrapping_add((n as u64) << 19)
                .wrapping_add(g as u64);
            let mut rng = StdRng::seed_from_u64(run_seed);
            let net = generate::waxman(&mut rng, n, &generate::WaxmanParams::default());
            let wl = workload::sparse(&mut rng, &net, &SparseParams::default());
            if wl.events.is_empty() {
                continue;
            }

            // D-GMC: measured-phase counters straight from the simulation's
            // registry.
            let mut sim = build_dgmc_sim(
                &net,
                DgmcConfig::computation_dominated(),
                Rc::new(SphStrategy::new()),
            );
            for (i, m) in wl.initial_members.iter().enumerate() {
                sim.inject(
                    ActorId(m.0),
                    SimDuration::millis(200) * i as u64,
                    SwitchMsg::HostJoin {
                        mc: MC,
                        mc_type: McType::Symmetric,
                        role: Role::SenderReceiver,
                    },
                );
            }
            sim.run_to_quiescence();
            sim.reset_counters();
            for e in &wl.events {
                let msg = if e.join {
                    SwitchMsg::HostJoin {
                        mc: MC,
                        mc_type: McType::Symmetric,
                        role: Role::SenderReceiver,
                    }
                } else {
                    SwitchMsg::HostLeave { mc: MC }
                };
                sim.inject(ActorId(e.node.0), e.at, msg);
            }
            sim.run_to_quiescence();
            registry.merge(sim.metrics());

            // CBT: replay the same membership sequence as join requests
            // toward the best core; only the measured-phase joins count.
            let warm: BTreeSet<NodeId> = wl.initial_members.iter().copied().collect();
            let Some(core) = cbt::best_core(&net, &warm) else {
                continue;
            };
            let mut tree = cbt::CbtTree::new(core);
            for &m in &warm {
                tree.join(&net, m);
            }
            for e in &wl.events {
                if e.join {
                    tree.join_recorded(&net, e.node, &mut registry);
                } else {
                    tree.leave(e.node);
                }
            }
        }
    }
    registry
}

/// Renders a protocol comparison table.
pub fn protocol_table(rows: &[ProtocolRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>6}  {:>16} {:>16} {:>16}  {:>14} {:>14} {:>14}",
        "n",
        "dgmc comp/ev",
        "brute comp/ev",
        "mospf comp/ev",
        "dgmc fl/ev",
        "brute fl/ev",
        "mospf fl/ev"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>6}  {:>16.2} {:>16.2} {:>16.2}  {:>14.2} {:>14.2} {:>14.2}",
            r.n,
            r.dgmc_computations.mean(),
            r.bf_computations.mean(),
            r.mospf_computations.mean(),
            r.dgmc_floodings.mean(),
            r.bf_floodings.mean(),
            r.mospf_floodings.mean()
        );
    }
    out
}

/// Renders the shared-registry signaling comparison produced by
/// [`signaling_registry`].
pub fn signaling_summary(registry: &dgmc_obs::MetricsRegistry) -> String {
    use dgmc_core::switch::histograms;
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "D-GMC: {} floods, {} computations",
        registry.counter_value(dgmc_counters::FLOODINGS),
        registry.counter_value(dgmc_counters::COMPUTATIONS),
    );
    if let Some(fanout) = registry.histogram_get(histograms::FLOOD_FANOUT) {
        let _ = writeln!(
            out,
            "       flood fan-out p50 {} p90 {} (of {} floods measured)",
            fanout.quantile(0.5),
            fanout.quantile(0.9),
            fanout.count()
        );
    }
    let _ = writeln!(
        out,
        "CBT:   {} join requests, {} hops total",
        registry.counter_value(cbt::metric_names::JOIN_REQUESTS),
        registry.counter_value(cbt::metric_names::JOIN_HOPS_TOTAL),
    );
    if let Some(hops) = registry.histogram_get(cbt::metric_names::JOIN_HOPS) {
        let _ = writeln!(
            out,
            "       join hops p50 {} p90 {} max {}",
            hops.quantile(0.5),
            hops.quantile(0.9),
            hops.max()
        );
    }
    out
}

/// Renders a CBT comparison table.
pub fn cbt_table(rows: &[CbtRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>6}  {:>14} {:>12} {:>18} {:>16}",
        "n", "join hops/mem", "cost ratio", "concentration rat.", "core delay rat."
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>6}  {:>14.2} {:>12.2} {:>18.2} {:>16.2}",
            r.n,
            r.cbt_join_hops.mean(),
            r.cost_ratio.mean(),
            r.concentration_ratio.mean(),
            r.core_delay_ratio.mean()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dgmc_beats_brute_force_and_mospf_on_computations() {
        let rows = compare_protocols(&[25], 3, 1);
        let r = &rows[0];
        assert!(r.dgmc_computations.mean() < r.bf_computations.mean());
        assert!(r.dgmc_computations.mean() < r.mospf_computations.mean());
        // Brute force computes at every switch: ~n per event.
        assert!(r.bf_computations.mean() > 20.0);
        // D-GMC: exactly one per isolated event.
        assert!((r.dgmc_computations.mean() - 1.0).abs() < 0.2);
    }

    #[test]
    fn floodings_are_one_per_event_for_flooding_protocols() {
        let rows = compare_protocols(&[25], 2, 2);
        let r = &rows[0];
        assert!((r.bf_floodings.mean() - 1.0).abs() < 1e-9);
        assert!((r.mospf_floodings.mean() - 1.0).abs() < 1e-9);
        assert!((r.dgmc_floodings.mean() - 1.0).abs() < 0.2);
    }

    #[test]
    fn cbt_comparison_produces_sane_ratios() {
        let rows = compare_cbt(&[30], 3, 3);
        let r = &rows[0];
        assert!(r.cbt_join_hops.mean() > 0.0);
        assert!(
            r.cost_ratio.mean() >= 0.9,
            "shared tree can't be much cheaper"
        );
        assert!(r.core_delay_ratio.mean() >= 1.0);
        let table = cbt_table(&rows);
        assert!(table.contains("30"));
    }

    #[test]
    fn signaling_registry_holds_both_protocols() {
        let reg = signaling_registry(&[20], 2, 5);
        assert!(reg.counter_value(dgmc_counters::FLOODINGS) > 0);
        assert!(reg.counter_value(cbt::metric_names::JOIN_REQUESTS) > 0);
        let summary = signaling_summary(&reg);
        assert!(summary.contains("D-GMC:"), "{summary}");
        assert!(summary.contains("CBT:"), "{summary}");
        assert!(summary.contains("join hops p50"), "{summary}");
    }

    #[test]
    fn tables_render_all_rows() {
        let rows = compare_protocols(&[20], 1, 4);
        let t = protocol_table(&rows);
        assert!(t.contains("dgmc comp/ev"));
        assert!(t.contains("    20"));
    }
}
