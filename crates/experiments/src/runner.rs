//! Executes one simulation scenario and extracts the paper's metrics.

use crate::workload::Workload;
use dgmc_core::switch::{
    self, build_dgmc_sim_with_cache, counters, histograms, DgmcConfig, SwitchMsg,
};
use dgmc_core::{convergence, invariants, McId, McType, Role};
use dgmc_des::{ActorId, FaultPlan, FaultyNet, RunOutcome, SimDuration};
use dgmc_mctree::McAlgorithm;
use dgmc_obs::{critical_paths, MetricsRegistry, Trace};
use dgmc_topology::{metrics, Network, SpfCache};
use std::rc::Rc;

/// The connection id used by all experiment runs.
pub const EXPERIMENT_MC: McId = McId(1);

/// Gauge names published by traced runs (point-in-time levels; sweep merges
/// keep the worst case across runs).
pub mod gauges {
    use dgmc_core::McId;

    /// Total link cost of the consensus tree installed for `mc`.
    pub fn tree_cost(mc: McId) -> String {
        format!("mc.{}.tree_cost", mc.0)
    }

    /// Maximum leaf (member) delay of the consensus tree installed for `mc`.
    pub fn max_leaf_delay(mc: McId) -> String {
        format!("mc.{}.max_leaf_delay", mc.0)
    }

    /// Tree edges torn down by re-installations during the measured phase
    /// (service disruption proxy; mirrors the `dgmc.disrupted_edges`
    /// counter).
    pub fn disruption(mc: McId) -> String {
        format!("mc.{}.disruption", mc.0)
    }

    /// Per-phase simulated time attributed by the causal trace profile,
    /// in µs (phases come from [`dgmc_core::switch::trace_phase`]).
    pub fn phase_us(phase: &str) -> String {
        format!("trace.phase.{phase}_us")
    }
}

/// How much causal tracing a measured run performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// No tracing: zero overhead on the hot path (one branch per send).
    #[default]
    Off,
    /// Trace the measured phase, extract per-operation critical paths,
    /// the per-phase profile and the tree-quality gauges into the
    /// registry, then drop the spans (memory stays bounded — suitable for
    /// every run of a sweep).
    Metrics,
    /// As [`TraceMode::Metrics`], but also keep the raw span tree on
    /// [`RunMetrics::trace`] for export and timeline rendering.
    Full,
}

/// Metrics extracted from one measured run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Membership events actually injected and accepted.
    pub events: u64,
    /// Topology computations started during the measured phase.
    pub computations: u64,
    /// MC LSA flooding operations during the measured phase.
    pub floodings: u64,
    /// Completed-but-stale computations withdrawn.
    pub withdrawn: u64,
    /// Convergence time of the measured phase in *rounds* (`Tf + Tc`);
    /// `None` when the round length is degenerate.
    pub convergence_rounds: Option<f64>,
    /// The flooding diameter `Tf` used for the round conversion.
    pub tf: SimDuration,
    /// Full metrics snapshot of the measured phase (all protocol counters
    /// plus the flood fan-out, install latency, withdrawals-per-event and
    /// convergence histograms).
    pub registry: MetricsRegistry,
    /// The causal span tree of the measured phase; `Some` only under
    /// [`TraceMode::Full`].
    pub trace: Option<Trace>,
}

impl RunMetrics {
    /// Computations per event (the paper's Fig. 6(a)/7(a)/8(a) y-axis).
    pub fn proposals_per_event(&self) -> f64 {
        ratio(self.computations, self.events)
    }

    /// Floodings per event (Fig. 6(b)/7(b)/8(b)).
    pub fn floodings_per_event(&self) -> f64 {
        ratio(self.floodings, self.events)
    }

    /// Excess computations per event beyond the one mandatory computation.
    pub fn excess_proposals_per_event(&self) -> f64 {
        (self.proposals_per_event() - 1.0).max(0.0)
    }

    /// Excess floodings per event beyond the one mandatory flood.
    pub fn excess_floodings_per_event(&self) -> f64 {
        (self.floodings_per_event() - 1.0).max(0.0)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Errors from a measured run.
#[derive(Debug)]
pub enum RunError {
    /// The simulation did not drain (event budget exhausted — livelock).
    Diverged,
    /// Switches disagreed after quiescence.
    NoConsensus(convergence::ConsensusError),
    /// A fault-injected run broke the protocol invariant suite.
    InvariantViolated(Vec<String>),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Diverged => f.write_str("simulation exhausted its event budget"),
            RunError::NoConsensus(e) => write!(f, "no consensus after quiescence: {e}"),
            RunError::InvariantViolated(v) => {
                write!(f, "invariant violations after quiescence: {}", v.join("; "))
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Runs one measured D-GMC scenario: warm up the initial membership, inject
/// the workload events, run to quiescence, verify consensus and extract the
/// metrics.
///
/// # Errors
///
/// [`RunError::Diverged`] if the event budget is exhausted;
/// [`RunError::NoConsensus`] if switches disagree afterwards.
pub fn run_dgmc(
    net: &Network,
    config: DgmcConfig,
    workload: &Workload,
    algorithm: Rc<dyn McAlgorithm>,
) -> Result<RunMetrics, RunError> {
    run_dgmc_inner(
        net,
        config,
        workload,
        algorithm,
        None,
        SpfCache::new(),
        TraceMode::Off,
    )
}

/// [`run_dgmc`] with causal tracing of the measured phase (see
/// [`TraceMode`]). Tracing changes no protocol behaviour: the span tree is
/// built on the side of the ordinary delivery path.
///
/// # Errors
///
/// As [`run_dgmc`].
pub fn run_dgmc_traced(
    net: &Network,
    config: DgmcConfig,
    workload: &Workload,
    algorithm: Rc<dyn McAlgorithm>,
    cache: SpfCache,
    mode: TraceMode,
) -> Result<RunMetrics, RunError> {
    run_dgmc_inner(net, config, workload, algorithm, None, cache, mode)
}

/// [`run_dgmc_faulty`] with causal tracing of the measured phase; fault
/// outcomes (drops, retransmissions, duplicates, jitter) appear as span
/// annotations in the resulting trace.
///
/// # Errors
///
/// As [`run_dgmc_faulty`].
pub fn run_dgmc_faulty_traced(
    net: &Network,
    config: DgmcConfig,
    workload: &Workload,
    algorithm: Rc<dyn McAlgorithm>,
    plan: &FaultPlan,
    fault_seed: u64,
    mode: TraceMode,
) -> Result<RunMetrics, RunError> {
    run_dgmc_inner(
        net,
        config,
        workload,
        algorithm,
        Some((plan, fault_seed)),
        SpfCache::new(),
        mode,
    )
}

/// [`run_dgmc`] with an explicit shared [`SpfCache`] — pass
/// [`SpfCache::disabled`] to measure the uncached from-scratch baseline
/// (metrics are identical either way; only wall-clock differs).
///
/// # Errors
///
/// As [`run_dgmc`].
pub fn run_dgmc_with_cache(
    net: &Network,
    config: DgmcConfig,
    workload: &Workload,
    algorithm: Rc<dyn McAlgorithm>,
    cache: SpfCache,
) -> Result<RunMetrics, RunError> {
    run_dgmc_inner(
        net,
        config,
        workload,
        algorithm,
        None,
        cache,
        TraceMode::Off,
    )
}

/// [`run_dgmc`] with seeded fault injection on the delivery path: every
/// message is routed through a [`FaultyNet`] built from `(plan, fault_seed)`,
/// and after the measured phase the full protocol invariant suite
/// ([`invariants::check_invariants`]) is verified on top of the consensus
/// check.
///
/// # Errors
///
/// As [`run_dgmc`], plus [`RunError::InvariantViolated`] if the faults broke
/// the protocol.
pub fn run_dgmc_faulty(
    net: &Network,
    config: DgmcConfig,
    workload: &Workload,
    algorithm: Rc<dyn McAlgorithm>,
    plan: &FaultPlan,
    fault_seed: u64,
) -> Result<RunMetrics, RunError> {
    run_dgmc_inner(
        net,
        config,
        workload,
        algorithm,
        Some((plan, fault_seed)),
        SpfCache::new(),
        TraceMode::Off,
    )
}

fn run_dgmc_inner(
    net: &Network,
    config: DgmcConfig,
    workload: &Workload,
    algorithm: Rc<dyn McAlgorithm>,
    faults: Option<(&FaultPlan, u64)>,
    cache: SpfCache,
    trace_mode: TraceMode,
) -> Result<RunMetrics, RunError> {
    let mut sim = build_dgmc_sim_with_cache(net, config, algorithm, cache);
    sim.set_event_budget(200_000_000);
    if let Some((plan, fault_seed)) = faults {
        sim.set_net_model(FaultyNet::new(plan.clone(), fault_seed));
    }
    // Warm-up: initial members join well separated.
    let settle = SimDuration::millis(200);
    for (i, &m) in workload.initial_members.iter().enumerate() {
        sim.inject(
            ActorId(m.0),
            settle * i as u64,
            SwitchMsg::HostJoin {
                mc: EXPERIMENT_MC,
                mc_type: McType::Symmetric,
                role: Role::SenderReceiver,
            },
        );
    }
    if sim.run_to_quiescence() != RunOutcome::Quiescent {
        return Err(RunError::Diverged);
    }
    convergence::check_consensus(&sim, EXPERIMENT_MC).map_err(RunError::NoConsensus)?;
    sim.reset_counters();
    if trace_mode != TraceMode::Off {
        // The queue is empty here (quiescence), so every span recorded from
        // now on descends from a measured-phase injection: one root span per
        // operation. The tracer doubles as the decision-event sink so
        // protocol decisions annotate the span they happened under.
        sim.enable_causal_trace(switch::trace_label);
        sim.observer().attach(sim.causal_tracer().clone());
    }

    // Measured phase.
    let start = sim.now();
    let mut injected = 0u64;
    for e in &workload.events {
        let msg = if e.join {
            SwitchMsg::HostJoin {
                mc: EXPERIMENT_MC,
                mc_type: McType::Symmetric,
                role: Role::SenderReceiver,
            }
        } else {
            SwitchMsg::HostLeave { mc: EXPERIMENT_MC }
        };
        sim.inject(ActorId(e.node.0), e.at, msg);
        injected += 1;
    }
    if sim.run_to_quiescence() != RunOutcome::Quiescent {
        return Err(RunError::Diverged);
    }
    let consensus =
        convergence::check_consensus(&sim, EXPERIMENT_MC).map_err(RunError::NoConsensus)?;
    if faults.is_some() {
        let violations = invariants::check_invariants(&sim, net);
        if !violations.is_empty() {
            return Err(RunError::InvariantViolated(
                violations.iter().map(|v| v.to_string()).collect(),
            ));
        }
    }

    let tf = config.per_hop * u64::from(metrics::flooding_diameter_hops(net));
    let round = tf + config.tc;
    let last = convergence::last_install_time(&sim);
    let convergence_rounds = if round.is_zero() || last < start {
        None
    } else {
        Some((last - start).ratio(round))
    };
    if last >= start {
        sim.metrics_mut().observe_named(
            histograms::CONVERGENCE_US,
            (last - start).as_nanos() / 1_000,
        );
    }

    let mut kept_trace = None;
    if trace_mode != TraceMode::Off {
        sim.observer().detach();
        let trace = sim.take_causal_trace().unwrap_or_default();
        trace
            .validate()
            .expect("traced run produced a well-formed span tree");
        // One convergence sample per operation: the duration of its
        // critical (longest causal) path. The whole-phase sample above
        // stays a single observation so both scales remain readable.
        let paths = critical_paths(&trace);
        for path in &paths {
            sim.metrics_mut()
                .observe_named(histograms::OP_CONVERGENCE_US, path.duration_ns() / 1_000);
        }
        // The slowest operation must explain the measured phase: no install
        // can land after every causal chain has ended.
        if let Some(longest_end) = paths.iter().map(|p| p.end_ns).max() {
            debug_assert!(
                last.as_nanos() <= longest_end,
                "install at {last:?} outlives every causal chain"
            );
        }
        for (phase, ns) in dgmc_obs::phase_durations_ns(&trace, switch::trace_phase) {
            sim.metrics_mut()
                .gauge_set_named(&gauges::phase_us(phase), ns / 1_000);
        }
        // Tree-quality gauges for the consensus topology of the measured MC.
        if let Some(tree) = &consensus.topology {
            if let Some(cost) = dgmc_mctree::metrics::tree_cost(tree, net) {
                sim.metrics_mut()
                    .gauge_set_named(&gauges::tree_cost(EXPERIMENT_MC), cost);
            }
            if let Some(delay) = dgmc_mctree::metrics::max_member_delay(tree, net) {
                sim.metrics_mut()
                    .gauge_set_named(&gauges::max_leaf_delay(EXPERIMENT_MC), delay);
            }
        }
        let disrupted = sim.counter_value(counters::DISRUPTED_EDGES);
        sim.metrics_mut()
            .gauge_set_named(&gauges::disruption(EXPERIMENT_MC), disrupted);
        if trace_mode == TraceMode::Full {
            kept_trace = Some(trace);
        }
    }

    Ok(RunMetrics {
        events: injected,
        computations: sim.counter_value(counters::COMPUTATIONS),
        floodings: sim.counter_value(counters::FLOODINGS),
        withdrawn: sim.counter_value(counters::WITHDRAWN),
        convergence_rounds,
        tf,
        registry: sim.metrics().clone(),
        trace: kept_trace,
    })
}

/// Convenience wrapper used by benches and tests: seed → graph → workload →
/// metrics, with the default SPH strategy.
pub fn run_seeded(
    n: usize,
    seed: u64,
    config: DgmcConfig,
    make_workload: impl Fn(&mut rand::rngs::StdRng, &Network) -> Workload,
) -> Result<RunMetrics, RunError> {
    run_seeded_with_cache(n, seed, config, make_workload, SpfCache::new())
}

/// [`run_seeded`] with an explicit shared [`SpfCache`]; the
/// cached-versus-uncached benchmark drives both arms through this.
pub fn run_seeded_with_cache(
    n: usize,
    seed: u64,
    config: DgmcConfig,
    make_workload: impl Fn(&mut rand::rngs::StdRng, &Network) -> Workload,
    cache: SpfCache,
) -> Result<RunMetrics, RunError> {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let net = dgmc_topology::generate::waxman(
        &mut rng,
        n,
        &dgmc_topology::generate::WaxmanParams::default(),
    );
    let workload = make_workload(&mut rng, &net);
    run_dgmc_with_cache(
        &net,
        config,
        &workload,
        Rc::new(dgmc_mctree::SphStrategy::new()),
        cache,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{self, BurstParams, SparseParams};

    #[test]
    fn sparse_run_has_unit_overhead() {
        let m = run_seeded(30, 1, DgmcConfig::computation_dominated(), |rng, net| {
            workload::sparse(rng, net, &SparseParams::default())
        })
        .unwrap();
        assert!(m.events > 0);
        assert!((m.proposals_per_event() - 1.0).abs() < 1e-9);
        assert!((m.floodings_per_event() - 1.0).abs() < 1e-9);
        assert_eq!(m.excess_proposals_per_event(), 0.0);
        assert_eq!(m.withdrawn, 0);
    }

    #[test]
    fn bursty_run_converges_with_bounded_overhead() {
        let m = run_seeded(30, 2, DgmcConfig::computation_dominated(), |rng, net| {
            workload::bursty(rng, net, &BurstParams::default())
        })
        .unwrap();
        assert!(m.events > 0);
        // The paper's headline: computational overhead stays small even in
        // very busy periods (< 5 computations per event).
        assert!(m.proposals_per_event() < 5.0, "{}", m.proposals_per_event());
        assert!(m.floodings_per_event() < 6.0, "{}", m.floodings_per_event());
        assert!(m.convergence_rounds.is_some());
    }

    #[test]
    fn wan_timing_also_converges() {
        let m = run_seeded(30, 3, DgmcConfig::communication_dominated(), |rng, net| {
            workload::bursty(rng, net, &BurstParams::default())
        })
        .unwrap();
        assert!(m.events > 0);
        assert!(m.proposals_per_event() >= 1.0);
    }

    #[test]
    fn run_metrics_carry_a_metrics_snapshot() {
        let m = run_seeded(30, 2, DgmcConfig::computation_dominated(), |rng, net| {
            workload::bursty(rng, net, &BurstParams::default())
        })
        .unwrap();
        assert_eq!(
            m.registry.counter_value(counters::COMPUTATIONS),
            m.computations
        );
        assert_eq!(m.registry.counter_value(counters::FLOODINGS), m.floodings);
        let fanout = m.registry.histogram_get(histograms::FLOOD_FANOUT).unwrap();
        assert!(fanout.count() > 0, "floods were measured");
        let latency = m
            .registry
            .histogram_get(histograms::INSTALL_LATENCY_US)
            .unwrap();
        assert!(latency.count() > 0, "installs were measured");
        let convergence = m
            .registry
            .histogram_get(histograms::CONVERGENCE_US)
            .unwrap();
        assert_eq!(convergence.count(), 1, "one measured phase, one sample");
    }

    #[test]
    fn faulty_runs_converge_and_reproduce_bit_for_bit() {
        use dgmc_des::{net_counters, FaultPlan, LinkFaults};
        use rand::SeedableRng;
        let faulty = |seed: u64| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let net = dgmc_topology::generate::waxman(
                &mut rng,
                25,
                &dgmc_topology::generate::WaxmanParams::default(),
            );
            let wl = workload::bursty(&mut rng, &net, &BurstParams::default());
            let plan = FaultPlan::uniform(LinkFaults {
                loss: 0.1,
                hard_loss: 0.0,
                duplicate: 0.1,
                jitter: SimDuration::micros(20),
            });
            run_dgmc_faulty(
                &net,
                DgmcConfig::computation_dominated(),
                &wl,
                Rc::new(dgmc_mctree::SphStrategy::new()),
                &plan,
                seed ^ 0x55,
            )
            .unwrap()
        };
        let a = faulty(4);
        let b = faulty(4);
        assert_eq!(a, b, "same seed, same metrics, same registry");
        assert!(a.registry.counter_value(net_counters::SENT) > 0);
    }

    #[test]
    fn shared_cache_is_hit_but_protocol_neutral() {
        let run = |cache| {
            run_seeded_with_cache(
                30,
                2,
                DgmcConfig::computation_dominated(),
                |rng, net| workload::bursty(rng, net, &BurstParams::default()),
                cache,
            )
            .unwrap()
        };
        let cached = run(SpfCache::new());
        let uncached = run(SpfCache::disabled());
        // The cache serves real lookups during the measured phase...
        assert!(cached.registry.counter_value(counters::SPF_CACHE_HITS) > 0);
        assert_eq!(uncached.registry.counter_value(counters::SPF_CACHE_HITS), 0);
        // ...without perturbing a single protocol-level quantity.
        assert_eq!(cached.events, uncached.events);
        assert_eq!(cached.computations, uncached.computations);
        assert_eq!(cached.floodings, uncached.floodings);
        assert_eq!(cached.withdrawn, uncached.withdrawn);
        assert_eq!(cached.convergence_rounds, uncached.convergence_rounds);
        for name in [
            counters::COMPUTATIONS,
            counters::FLOODINGS,
            counters::INSTALLS,
            counters::WITHDRAWN,
            counters::MEMBER_EVENTS,
            counters::MC_LSAS,
            counters::DUPLICATES,
        ] {
            assert_eq!(
                cached.registry.counter_value(name),
                uncached.registry.counter_value(name),
                "{name} diverged under caching"
            );
        }
    }

    #[test]
    fn run_metrics_ratios_handle_zero_events() {
        let m = RunMetrics {
            events: 0,
            computations: 0,
            floodings: 0,
            withdrawn: 0,
            convergence_rounds: None,
            tf: SimDuration::ZERO,
            registry: MetricsRegistry::new(),
            trace: None,
        };
        assert_eq!(m.proposals_per_event(), 0.0);
        assert_eq!(m.floodings_per_event(), 0.0);
    }

    fn traced_seeded(seed: u64, mode: TraceMode) -> RunMetrics {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let net = dgmc_topology::generate::waxman(
            &mut rng,
            30,
            &dgmc_topology::generate::WaxmanParams::default(),
        );
        let wl = workload::bursty(&mut rng, &net, &BurstParams::default());
        run_dgmc_traced(
            &net,
            DgmcConfig::computation_dominated(),
            &wl,
            Rc::new(dgmc_mctree::SphStrategy::new()),
            SpfCache::new(),
            mode,
        )
        .unwrap()
    }

    #[test]
    fn traced_run_extracts_per_op_convergence_and_gauges() {
        let m = traced_seeded(2, TraceMode::Full);
        let trace = m.trace.as_ref().expect("Full mode keeps the spans");
        assert!(!trace.is_empty());
        trace.validate().unwrap();
        // One root span and one critical-path convergence sample per event.
        assert_eq!(trace.roots().count() as u64, m.events);
        let per_op = m
            .registry
            .histogram_get(histograms::OP_CONVERGENCE_US)
            .unwrap();
        assert_eq!(per_op.count(), m.events);
        // The whole-phase sample stays a single observation.
        let whole = m
            .registry
            .histogram_get(histograms::CONVERGENCE_US)
            .unwrap();
        assert_eq!(whole.count(), 1);
        // The consensus tree has a cost and a leaf delay, and the profile
        // attributes time to at least the flood phase.
        assert!(m.registry.gauge_value(&gauges::tree_cost(EXPERIMENT_MC)) > 0);
        assert!(
            m.registry
                .gauge_value(&gauges::max_leaf_delay(EXPERIMENT_MC))
                > 0
        );
        assert!(m.registry.gauge_value(&gauges::phase_us("flood")) > 0);
    }

    #[test]
    fn trace_modes_agree_on_metrics_and_off_records_nothing() {
        let full = traced_seeded(2, TraceMode::Full);
        let metrics_only = traced_seeded(2, TraceMode::Metrics);
        let off = traced_seeded(2, TraceMode::Off);
        // Metrics mode drops the spans but keeps an identical registry.
        assert!(metrics_only.trace.is_none());
        assert_eq!(full.registry, metrics_only.registry);
        // Off mode records no trace-derived metrics and no spans.
        assert!(off.trace.is_none());
        assert!(off
            .registry
            .histogram_get(histograms::OP_CONVERGENCE_US)
            .is_none());
        assert!(off.registry.gauges_map().is_empty());
        // Tracing never perturbs the protocol itself.
        assert_eq!(full.events, off.events);
        assert_eq!(full.computations, off.computations);
        assert_eq!(full.floodings, off.floodings);
        assert_eq!(full.withdrawn, off.withdrawn);
        assert_eq!(full.convergence_rounds, off.convergence_rounds);
    }

    #[test]
    fn loss_sweep_retransmit_spans_appear_iff_faults_fired() {
        use dgmc_des::{net_counters, LinkFaults};
        use rand::SeedableRng;
        let run = |loss: f64| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(7);
            let net = dgmc_topology::generate::waxman(
                &mut rng,
                25,
                &dgmc_topology::generate::WaxmanParams::default(),
            );
            let wl = workload::bursty(&mut rng, &net, &BurstParams::default());
            let plan = FaultPlan::uniform(LinkFaults {
                loss,
                hard_loss: 0.0,
                duplicate: 0.0,
                jitter: SimDuration::ZERO,
            });
            run_dgmc_faulty_traced(
                &net,
                DgmcConfig::computation_dominated(),
                &wl,
                Rc::new(dgmc_mctree::SphStrategy::new()),
                &plan,
                7 ^ 0x55,
                TraceMode::Full,
            )
            .unwrap()
        };
        for loss in [0.0, 0.15] {
            let m = run(loss);
            let trace = m.trace.as_ref().unwrap();
            let retransmit_spans = trace
                .spans
                .iter()
                .filter(|s| s.notes.iter().any(|n| n.starts_with("fault:retransmit")))
                .count() as u64;
            let retransmits = m.registry.counter_value(net_counters::RETRANSMITS);
            if loss == 0.0 {
                assert_eq!(retransmits, 0, "lossless sweep point fired no faults");
                assert_eq!(retransmit_spans, 0, "no faults, no retransmit spans");
            } else {
                assert!(retransmits > 0, "lossy sweep point recovered losses");
                assert!(
                    retransmit_spans > 0,
                    "recovered losses must surface as retransmit-annotated spans"
                );
            }
        }
    }
}
