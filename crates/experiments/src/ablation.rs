//! Ablation studies for the design choices called out in DESIGN.md §5:
//!
//! * incremental (SPH) versus from-scratch (KMB) topology strategies —
//!   signaling behavior is unchanged (the protocol is algorithm-agnostic)
//!   while tree cost and maintenance behavior differ,
//! * burst-size sweep — how overhead and convergence scale with the number
//!   of conflicting events,
//! * `Tf/Tc` ratio sweep — how the timing regime shifts the overhead
//!   between computations and floodings.

use crate::runner::{run_dgmc, RunMetrics};
use crate::workload::{self, BurstParams};
use dgmc_core::switch::DgmcConfig;
use dgmc_des::stats::Tally;
use dgmc_des::SimDuration;
use dgmc_mctree::{algorithms, KmbStrategy, McAlgorithm, SphStrategy};
use dgmc_topology::generate;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;
use std::rc::Rc;

/// Outcome of one strategy arm in the strategy ablation.
#[derive(Debug, Clone, Default)]
pub struct StrategyArm {
    /// Proposals per event.
    pub proposals: Tally,
    /// Convergence in rounds.
    pub convergence: Tally,
    /// Final tree cost relative to a from-scratch SPH tree (competitiveness).
    pub competitiveness: Tally,
}

/// SPH-incremental versus KMB-from-scratch under identical bursty
/// workloads.
pub fn strategy_ablation(n: usize, graphs: usize, seed: u64) -> (StrategyArm, StrategyArm) {
    let mut sph_arm = StrategyArm::default();
    let mut kmb_arm = StrategyArm::default();
    for g in 0..graphs {
        let s = seed.wrapping_add(g as u64);
        for (arm, alg) in [
            (
                &mut sph_arm,
                Rc::new(SphStrategy::new()) as Rc<dyn McAlgorithm>,
            ),
            (
                &mut kmb_arm,
                Rc::new(KmbStrategy::new()) as Rc<dyn McAlgorithm>,
            ),
        ] {
            let mut rng = StdRng::seed_from_u64(s);
            let net = generate::waxman(&mut rng, n, &generate::WaxmanParams::default());
            let wl = workload::bursty(&mut rng, &net, &BurstParams::default());
            if let Ok(m) = run_dgmc(&net, DgmcConfig::computation_dominated(), &wl, alg) {
                arm.proposals.record(m.proposals_per_event());
                if let Some(r) = m.convergence_rounds {
                    arm.convergence.record(r);
                }
            }
        }
    }
    (sph_arm, kmb_arm)
}

/// Quality of dynamically maintained trees: applies a long random
/// join/leave trace incrementally (greedy) and reports the competitiveness
/// of the maintained tree versus from-scratch rebuilds at each step.
pub fn incremental_quality(n: usize, steps: usize, seed: u64) -> Tally {
    let mut rng = StdRng::seed_from_u64(seed);
    let net = generate::waxman(&mut rng, n, &generate::WaxmanParams::default());
    let initial: BTreeSet<_> = generate::sample_nodes(&mut rng, &net, 5)
        .into_iter()
        .collect();
    let mut tree = algorithms::takahashi_matsuyama(&net, &initial);
    let mut members = initial;
    let mut tally = Tally::new();
    use rand::seq::SliceRandom;
    use rand::Rng;
    for _ in 0..steps {
        if members.len() > 2 && rng.gen_bool(0.5) {
            let all: Vec<_> = members.iter().copied().collect();
            let &gone = all.choose(&mut rng).expect("non-empty");
            members.remove(&gone);
            tree = algorithms::greedy_leave(&tree, gone);
        } else {
            let candidates: Vec<_> = net.nodes().filter(|x| !members.contains(x)).collect();
            let Some(&new) = candidates.as_slice().choose(&mut rng) else {
                continue;
            };
            members.insert(new);
            tree = algorithms::greedy_join(&net, &tree, new);
        }
        if let Some(c) = dgmc_mctree::metrics::competitiveness(&tree, &net) {
            tally.record(c);
        }
    }
    tally
}

/// One row of the burst-size sweep.
#[derive(Debug, Clone, Default)]
pub struct BurstRow {
    /// Number of clustered events.
    pub burst: usize,
    /// Proposals per event.
    pub proposals: Tally,
    /// Floodings per event.
    pub floodings: Tally,
    /// Convergence in rounds.
    pub convergence: Tally,
}

/// Sweeps the burst size at a fixed network size.
pub fn burst_sweep(n: usize, bursts: &[usize], graphs: usize, seed: u64) -> Vec<BurstRow> {
    let mut rows = Vec::new();
    for &burst in bursts {
        let mut row = BurstRow {
            burst,
            ..BurstRow::default()
        };
        for g in 0..graphs {
            let s = seed
                .wrapping_mul(131)
                .wrapping_add((burst as u64) << 24)
                .wrapping_add(g as u64);
            let mut rng = StdRng::seed_from_u64(s);
            let net = generate::waxman(&mut rng, n, &generate::WaxmanParams::default());
            let params = BurstParams {
                burst_events: burst,
                ..BurstParams::default()
            };
            let wl = workload::bursty(&mut rng, &net, &params);
            if wl.events.is_empty() {
                continue;
            }
            if let Ok(m) = run_dgmc(
                &net,
                DgmcConfig::computation_dominated(),
                &wl,
                Rc::new(SphStrategy::new()),
            ) {
                record(
                    &mut row.proposals,
                    &mut row.floodings,
                    &mut row.convergence,
                    &m,
                );
            }
        }
        rows.push(row);
    }
    rows
}

/// One row of the timing-regime sweep.
#[derive(Debug, Clone, Default)]
pub struct TimingRow {
    /// The `Tc` used (per-hop fixed at 10 µs).
    pub tc_micros: u64,
    /// Proposals per event.
    pub proposals: Tally,
    /// Floodings per event.
    pub floodings: Tally,
    /// Convergence in rounds (note: the round itself scales with `Tc`).
    pub convergence: Tally,
}

/// Sweeps `Tc` at fixed per-hop delay, moving between the paper's two
/// regimes.
pub fn timing_sweep(n: usize, tcs_micros: &[u64], graphs: usize, seed: u64) -> Vec<TimingRow> {
    let mut rows = Vec::new();
    for &tc in tcs_micros {
        let mut row = TimingRow {
            tc_micros: tc,
            ..TimingRow::default()
        };
        let config = DgmcConfig {
            tc: SimDuration::micros(tc),
            per_hop: SimDuration::micros(10),
        };
        for g in 0..graphs {
            let s = seed
                .wrapping_mul(733)
                .wrapping_add(tc << 18)
                .wrapping_add(g as u64);
            let mut rng = StdRng::seed_from_u64(s);
            let net = generate::waxman(&mut rng, n, &generate::WaxmanParams::default());
            let wl = workload::bursty(&mut rng, &net, &BurstParams::default());
            if let Ok(m) = run_dgmc(&net, config, &wl, Rc::new(SphStrategy::new())) {
                record(
                    &mut row.proposals,
                    &mut row.floodings,
                    &mut row.convergence,
                    &m,
                );
            }
        }
        rows.push(row);
    }
    rows
}

/// One row of the connection-size sweep.
#[derive(Debug, Clone, Default)]
pub struct McSizeRow {
    /// Initial member count before the burst.
    pub members: usize,
    /// Proposals per event.
    pub proposals: Tally,
    /// Floodings per event.
    pub floodings: Tally,
}

/// Sweeps the connection size (initial members) at a fixed network size —
/// D-GMC's per-event cost must not grow with MC size (only the tree
/// computation inside `Tc` does, which the metric deliberately excludes).
pub fn mc_size_sweep(n: usize, sizes: &[usize], graphs: usize, seed: u64) -> Vec<McSizeRow> {
    let mut rows = Vec::new();
    for &members in sizes {
        let mut row = McSizeRow {
            members,
            ..McSizeRow::default()
        };
        for g in 0..graphs {
            let s = seed
                .wrapping_mul(911)
                .wrapping_add((members as u64) << 20)
                .wrapping_add(g as u64);
            let mut rng = StdRng::seed_from_u64(s);
            let net = generate::waxman(&mut rng, n, &generate::WaxmanParams::default());
            let params = BurstParams {
                initial_members: members,
                ..BurstParams::default()
            };
            let wl = workload::bursty(&mut rng, &net, &params);
            if let Ok(m) = run_dgmc(
                &net,
                DgmcConfig::computation_dominated(),
                &wl,
                Rc::new(SphStrategy::new()),
            ) {
                row.proposals.record(m.proposals_per_event());
                row.floodings.record(m.floodings_per_event());
            }
        }
        rows.push(row);
    }
    rows
}

/// Distribution of convergence times (in rounds) over many bursty runs,
/// for tail analysis beyond the mean ± CI the paper reports.
pub fn convergence_distribution(n: usize, runs: usize, seed: u64) -> dgmc_des::stats::Histogram {
    let mut hist = dgmc_des::stats::Histogram::new(0.5, 16);
    for r in 0..runs {
        let s = seed.wrapping_mul(613).wrapping_add(r as u64);
        let mut rng = StdRng::seed_from_u64(s);
        let net = generate::waxman(&mut rng, n, &generate::WaxmanParams::default());
        let wl = workload::bursty(&mut rng, &net, &BurstParams::default());
        if let Ok(m) = run_dgmc(
            &net,
            DgmcConfig::computation_dominated(),
            &wl,
            Rc::new(SphStrategy::new()),
        ) {
            if let Some(rounds) = m.convergence_rounds {
                hist.record(rounds);
            }
        }
    }
    hist
}

fn record(proposals: &mut Tally, floodings: &mut Tally, convergence: &mut Tally, m: &RunMetrics) {
    proposals.record(m.proposals_per_event());
    floodings.record(m.floodings_per_event());
    if let Some(r) = m.convergence_rounds {
        convergence.record(r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_arms_both_converge() {
        let (sph, kmb) = strategy_ablation(20, 2, 5);
        assert_eq!(sph.proposals.len(), 2);
        assert_eq!(kmb.proposals.len(), 2);
        // The protocol is algorithm-agnostic: overhead within the same
        // ballpark for both strategies.
        assert!(sph.proposals.mean() < 6.0);
        assert!(kmb.proposals.mean() < 6.0);
    }

    #[test]
    fn incremental_trees_stay_competitive() {
        let tally = incremental_quality(40, 30, 7);
        assert!(!tally.is_empty());
        // Greedy-maintained trees are known to stay within a small factor.
        assert!(tally.mean() >= 0.99, "{}", tally.mean());
        assert!(tally.mean() < 1.8, "{}", tally.mean());
    }

    #[test]
    fn burst_sweep_scales_with_conflicts() {
        let rows = burst_sweep(20, &[1, 8], 2, 9);
        assert_eq!(rows.len(), 2);
        assert!(
            (rows[0].proposals.mean() - 1.0).abs() < 0.01,
            "single event is conflict-free"
        );
        assert!(rows[1].proposals.mean() >= rows[0].proposals.mean());
    }

    #[test]
    fn mc_size_does_not_change_per_event_cost() {
        let rows = mc_size_sweep(25, &[3, 10], 2, 21);
        assert_eq!(rows.len(), 2);
        let small = rows[0].proposals.mean();
        let large = rows[1].proposals.mean();
        assert!((small - large).abs() < 1.0, "{small} vs {large}");
    }

    #[test]
    fn convergence_distribution_has_bounded_tail() {
        let hist = convergence_distribution(25, 6, 33);
        assert_eq!(hist.len(), 6);
        assert!(hist.percentile(1.0) <= 16.0, "no pathological tails");
        assert!(hist.percentile(0.5) >= 0.5);
    }

    #[test]
    fn timing_sweep_produces_rows() {
        let rows = timing_sweep(20, &[50, 300], 2, 13);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(!r.proposals.is_empty());
            assert!(r.proposals.mean() >= 1.0);
        }
    }
}
