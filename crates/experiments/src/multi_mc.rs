//! Multi-connection independence study.
//!
//! "Consequently, an MC receives its own set of LSAs regarding relevant
//! events, and protocol activities associated with different MCs proceed
//! independently." This module verifies that claim operationally: with `k`
//! connections active at once and identical per-connection workloads, the
//! per-event overhead must not grow with `k`.

use crate::workload::BurstParams;
use dgmc_core::switch::{build_dgmc_sim_sharded, counters, DgmcConfig, SwitchMsg};
use dgmc_core::{convergence, McId, McType, Role};
use dgmc_des::stats::Tally;
use dgmc_des::{ActorId, RunOutcome, SimDuration};
use dgmc_mctree::SphStrategy;
use dgmc_topology::generate;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::rc::Rc;

/// Aggregated overhead at one concurrent-connection count.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MultiMcRow {
    /// Number of simultaneously active connections.
    pub connections: usize,
    /// Topology computations per membership event (all MCs pooled).
    pub proposals: Tally,
    /// Floodings per membership event.
    pub floodings: Tally,
    /// Runs that failed to reach consensus on every MC.
    pub failures: usize,
}

/// Sweeps the number of concurrent connections on `n`-switch networks.
///
/// Each connection gets its own members and its own burst; all bursts fire
/// in the same window, maximizing cross-MC interleaving at the switches.
pub fn multi_mc_sweep(
    n: usize,
    connection_counts: &[usize],
    graphs: usize,
    seed: u64,
) -> Vec<MultiMcRow> {
    multi_mc_sweep_jobs(n, connection_counts, graphs, seed, 1)
}

/// [`multi_mc_sweep`] with an explicit per-switch shard worker count for
/// many-MC link events (DESIGN.md §13). Results are byte-identical for
/// every `jobs` value — the knob only changes wall-clock at high `k`.
pub fn multi_mc_sweep_jobs(
    n: usize,
    connection_counts: &[usize],
    graphs: usize,
    seed: u64,
    jobs: usize,
) -> Vec<MultiMcRow> {
    let mut rows = Vec::new();
    for &k in connection_counts {
        let mut row = MultiMcRow {
            connections: k,
            ..MultiMcRow::default()
        };
        for g in 0..graphs {
            let run_seed = seed
                .wrapping_mul(48_271)
                .wrapping_add((k as u64) << 24)
                .wrapping_add(g as u64);
            let mut rng = StdRng::seed_from_u64(run_seed);
            let net = generate::waxman(&mut rng, n, &generate::WaxmanParams::default());
            let mut sim = build_dgmc_sim_sharded(
                &net,
                DgmcConfig::computation_dominated(),
                Rc::new(SphStrategy::new()),
                dgmc_topology::SpfCache::new(),
                jobs,
            );
            sim.set_event_budget(200_000_000);
            let params = BurstParams {
                burst_events: 4,
                ..BurstParams::default()
            };
            // Warm-up: every MC gets its own initial members, well apart.
            let mut workloads = Vec::new();
            for c in 0..k {
                let wl = crate::workload::bursty(&mut rng, &net, &params);
                for (i, m) in wl.initial_members.iter().enumerate() {
                    sim.inject(
                        ActorId(m.0),
                        SimDuration::millis((c * 50 + i * 5) as u64),
                        SwitchMsg::HostJoin {
                            mc: McId(c as u32 + 1),
                            mc_type: McType::Symmetric,
                            role: Role::SenderReceiver,
                        },
                    );
                }
                workloads.push(wl);
            }
            if sim.run_to_quiescence() != RunOutcome::Quiescent {
                row.failures += 1;
                continue;
            }
            sim.reset_counters();
            // Measured phase: all bursts fire in the same 100us window.
            let mut events = 0u64;
            for (c, wl) in workloads.iter().enumerate() {
                let mc = McId(c as u32 + 1);
                for e in &wl.events {
                    let msg = if e.join {
                        SwitchMsg::HostJoin {
                            mc,
                            mc_type: McType::Symmetric,
                            role: Role::SenderReceiver,
                        }
                    } else {
                        SwitchMsg::HostLeave { mc }
                    };
                    sim.inject(ActorId(e.node.0), e.at, msg);
                    events += 1;
                }
            }
            if sim.run_to_quiescence() != RunOutcome::Quiescent || events == 0 {
                row.failures += 1;
                continue;
            }
            let mut all_ok = true;
            for c in 0..k {
                if convergence::check_consensus(&sim, McId(c as u32 + 1)).is_err() {
                    all_ok = false;
                }
            }
            if !all_ok {
                row.failures += 1;
                continue;
            }
            row.proposals
                .record(sim.counter_value(counters::COMPUTATIONS) as f64 / events as f64);
            row.floodings
                .record(sim.counter_value(counters::FLOODINGS) as f64 / events as f64);
        }
        rows.push(row);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_independent_of_connection_count() {
        let rows = multi_mc_sweep(25, &[1, 4], 3, 7);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.failures, 0, "k={}", row.connections);
        }
        let single = rows[0].proposals.mean();
        let multi = rows[1].proposals.mean();
        // Per-event cost must not grow with connection count (allow noise).
        assert!(
            multi <= single * 1.3 + 0.2,
            "k=4 costs {multi} vs k=1 {single}"
        );
    }

    #[test]
    fn all_connections_reach_independent_consensus() {
        let rows = multi_mc_sweep(20, &[3], 2, 9);
        assert_eq!(rows[0].failures, 0);
        assert!(rows[0].proposals.mean() >= 1.0);
    }

    #[test]
    fn sweep_results_are_identical_for_every_jobs_value() {
        let serial = multi_mc_sweep_jobs(20, &[2], 2, 11, 1);
        let sharded = multi_mc_sweep_jobs(20, &[2], 2, 11, 4);
        assert_eq!(serial, sharded, "jobs must not change any result");
    }
}
