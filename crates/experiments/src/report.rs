//! Plain-text and CSV rendering of experiment results, in the same
//! rows/series the paper's figures report.

use crate::presets::{ExperimentResults, SizeRow};
use dgmc_des::stats::Tally;
use dgmc_obs::{chrome_trace_json, JsonValue, MetricsRegistry, Trace};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

fn cell(t: &Tally) -> String {
    if t.is_empty() {
        "-".to_owned()
    } else {
        format!("{:.3} ±{:.3}", t.mean(), t.ci95_half_width())
    }
}

/// Renders the three-metric table of one experiment (mean ± 95% CI).
pub fn text_table(results: &ExperimentResults) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", results.name);
    let _ = writeln!(
        out,
        "{:>6}  {:>18}  {:>18}  {:>18}  {:>8}",
        "n", "proposals/event", "floodings/event", "convergence(rounds)", "failures"
    );
    for row in &results.rows {
        let _ = writeln!(
            out,
            "{:>6}  {:>18}  {:>18}  {:>18}  {:>8}",
            row.n,
            cell(&row.proposals),
            cell(&row.floodings),
            cell(&row.convergence),
            row.failures
        );
    }
    out
}

/// Renders the results as CSV (`n,metric,mean,ci95`).
pub fn csv(results: &ExperimentResults) -> String {
    let mut out = String::from("n,metric,mean,ci95,samples\n");
    for row in &results.rows {
        push_csv(&mut out, row, "proposals_per_event", &row.proposals);
        push_csv(&mut out, row, "floodings_per_event", &row.floodings);
        push_csv(&mut out, row, "convergence_rounds", &row.convergence);
    }
    out
}

fn push_csv(out: &mut String, row: &SizeRow, metric: &str, t: &Tally) {
    if t.is_empty() {
        return;
    }
    let _ = writeln!(
        out,
        "{},{},{:.6},{:.6},{}",
        row.n,
        metric,
        t.mean(),
        t.ci95_half_width(),
        t.len()
    );
}

/// Stable-schema JSON snapshot of an experiment's merged metrics registry.
///
/// Schema (`dgmc.metrics/2`): a single object with `schema`, `experiment`
/// and `metrics` keys, where `metrics` is the registry snapshot
/// (`{"counters": {...}, "gauges": {...}, "histograms": {...}}`, keys
/// sorted). Consumers can key on `schema` to detect breaking changes; `/2`
/// added the `gauges` map.
pub fn metrics_snapshot(name: &str, metrics: &MetricsRegistry) -> String {
    let mut line = JsonValue::obj(vec![
        ("schema", JsonValue::Str("dgmc.metrics/2".to_owned())),
        ("experiment", JsonValue::Str(name.to_owned())),
        ("metrics", metrics.to_json()),
    ])
    .to_json();
    line.push('\n');
    line
}

/// Writes a [`metrics_snapshot`] to `<dir>/<slug>.metrics.json` (creating
/// `dir` if needed) and returns the path written.
///
/// # Errors
///
/// Propagates any I/O error from creating the directory or writing the file.
pub fn write_metrics_snapshot(
    dir: impl AsRef<Path>,
    slug: &str,
    name: &str,
    metrics: &MetricsRegistry,
) -> std::io::Result<PathBuf> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{slug}.metrics.json"));
    std::fs::write(&path, metrics_snapshot(name, metrics))?;
    Ok(path)
}

/// Writes the exemplar causal trace as Chrome trace-event JSON to
/// `<dir>/<slug>.trace.json` (creating `dir` if needed) and returns the
/// path written. The file loads directly in Perfetto
/// (<https://ui.perfetto.dev>) or `chrome://tracing`, and — like the
/// metrics snapshot — contains only simulated time, so it is byte-identical
/// for every `--jobs` value.
///
/// # Errors
///
/// Propagates any I/O error from creating the directory or writing the file.
pub fn write_trace_snapshot(
    dir: impl AsRef<Path>,
    slug: &str,
    trace: &Trace,
) -> std::io::Result<PathBuf> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{slug}.trace.json"));
    std::fs::write(&path, chrome_trace_json(trace))?;
    Ok(path)
}

/// Renders one metric of the results as an ASCII chart (one bar per network
/// size), the terminal stand-in for the paper's figures.
///
/// `metric` selects the series: `"proposals"`, `"floodings"` or
/// `"convergence"`.
///
/// # Panics
///
/// Panics on an unknown metric name.
pub fn ascii_chart(results: &ExperimentResults, metric: &str, width: usize) -> String {
    let select = |row: &SizeRow| -> Tally {
        match metric {
            "proposals" => row.proposals.clone(),
            "floodings" => row.floodings.clone(),
            "convergence" => row.convergence.clone(),
            other => panic!("unknown metric {other:?}"),
        }
    };
    let max = results
        .rows
        .iter()
        .map(|r| select(r).mean())
        .fold(0.0f64, f64::max)
        .max(1e-9);
    let mut out = String::new();
    let _ = writeln!(out, "{} — {metric}/event vs n", results.name);
    for row in &results.rows {
        let mean = select(row).mean();
        let bars = ((mean / max) * width as f64).round() as usize;
        let _ = writeln!(out, "{:>5} | {:<width$} {mean:.3}", row.n, "#".repeat(bars));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_results() -> ExperimentResults {
        let mut row = SizeRow {
            n: 40,
            ..SizeRow::default()
        };
        row.proposals.extend([1.0, 2.0, 3.0]);
        row.floodings.extend([2.0, 2.0]);
        let mut metrics = MetricsRegistry::new();
        *metrics.counter_slot("dgmc.computations") += 6;
        metrics.observe_named("dgmc.convergence_us", 1500);
        ExperimentResults {
            name: "demo".into(),
            rows: vec![row],
            metrics,
            trace: None,
        }
    }

    #[test]
    fn text_table_contains_means_and_cis() {
        let t = text_table(&sample_results());
        assert!(t.contains("demo"));
        assert!(t.contains("2.000 ±"));
        assert!(t.contains("proposals/event"));
        assert!(t.contains("    40"));
    }

    #[test]
    fn ascii_chart_scales_bars() {
        let mut low = SizeRow {
            n: 20,
            ..SizeRow::default()
        };
        low.proposals.record(1.0);
        let mut high = SizeRow {
            n: 40,
            ..SizeRow::default()
        };
        high.proposals.record(4.0);
        let results = ExperimentResults {
            name: "demo".into(),
            rows: vec![low, high],
            metrics: MetricsRegistry::new(),
            trace: None,
        };
        let chart = ascii_chart(&results, "proposals", 20);
        let lines: Vec<&str> = chart.lines().collect();
        assert!(lines[1].starts_with("   20 |"));
        let bars20 = lines[1].matches('#').count();
        let bars40 = lines[2].matches('#').count();
        assert_eq!(bars40, 20, "max value fills the width");
        assert_eq!(bars20, 5, "proportional bar");
    }

    #[test]
    #[should_panic(expected = "unknown metric")]
    fn ascii_chart_rejects_unknown_metric() {
        ascii_chart(&sample_results(), "nope", 10);
    }

    #[test]
    fn metrics_snapshot_has_stable_schema() {
        let results = sample_results();
        let snap = metrics_snapshot(&results.name, &results.metrics);
        assert!(snap.starts_with(
            r#"{"schema":"dgmc.metrics/2","experiment":"demo","metrics":{"counters":{"dgmc.computations":6},"gauges":{},"histograms":{"dgmc.convergence_us":"#
        ));
        assert!(snap.ends_with("}\n"));
    }

    #[test]
    fn write_trace_snapshot_emits_loadable_chrome_json() {
        let dir = std::env::temp_dir().join("dgmc-trace-report-test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut trace = Trace::default();
        trace.spans.push(dgmc_obs::Span {
            id: 1,
            trace: 1,
            parent: 0,
            depth: 0,
            from: None,
            to: 3,
            start_ns: 0,
            end_ns: 1_000,
            label: "join mc1".into(),
            notes: vec![],
        });
        let path = write_trace_snapshot(&dir, "demo", &trace).unwrap();
        assert_eq!(path, dir.join("demo.trace.json"));
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, chrome_trace_json(&trace));
        let parsed = JsonValue::parse(&body).unwrap();
        let events = parsed
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .unwrap();
        assert!(!events.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_metrics_snapshot_creates_dir_and_file() {
        let dir = std::env::temp_dir().join("dgmc-report-test");
        let _ = std::fs::remove_dir_all(&dir);
        let results = sample_results();
        let path = write_metrics_snapshot(&dir, "demo", &results.name, &results.metrics).unwrap();
        assert_eq!(path, dir.join("demo.metrics.json"));
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, metrics_snapshot(&results.name, &results.metrics));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn csv_skips_empty_tallies() {
        let c = csv(&sample_results());
        assert!(c.contains("40,proposals_per_event,2.0"));
        assert!(c.contains("40,floodings_per_event,2.0"));
        assert!(!c.contains("convergence_rounds"), "empty tally omitted");
        assert!(c.starts_with("n,metric,mean,ci95,samples\n"));
    }
}
