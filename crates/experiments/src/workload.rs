//! Membership-event workload generators.
//!
//! "Two event-generating methods are used. In the first, events are
//! clustered in a short period of time and conflict with each other ...
//! In the second, events are relatively evenly distributed over long
//! periods of time." Only membership-change events are generated, exactly
//! as in the paper's experiments.

use dgmc_des::SimDuration;
use dgmc_topology::{generate, Network, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::BTreeSet;

/// One scheduled membership event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledEvent {
    /// Offset from the start of the measured phase.
    pub at: SimDuration,
    /// The switch whose membership changes.
    pub node: NodeId,
    /// `true` for join, `false` for leave.
    pub join: bool,
}

/// A generated workload: warm-up membership plus measured events.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Members joined (well separated) before measurement starts.
    pub initial_members: Vec<NodeId>,
    /// The measured events.
    pub events: Vec<ScheduledEvent>,
}

/// Parameters of the bursty generator (Experiments 1 and 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstParams {
    /// Connection size before the burst.
    pub initial_members: usize,
    /// Number of clustered, conflicting events.
    pub burst_events: usize,
    /// All burst events fall within this window ("such very busy periods
    /// may be found at the beginning period of a multi-party conversation").
    pub window: SimDuration,
    /// Fraction of events that are leaves (the rest are joins).
    pub leave_fraction: f64,
}

impl Default for BurstParams {
    fn default() -> Self {
        BurstParams {
            initial_members: 5,
            burst_events: 10,
            window: SimDuration::micros(100),
            leave_fraction: 0.4,
        }
    }
}

/// Parameters of the sparse generator (Experiment 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparseParams {
    /// Connection size before measurement.
    pub initial_members: usize,
    /// Number of measured events.
    pub events: usize,
    /// Gap between consecutive events; must exceed a round for events to be
    /// "sufficiently separated that they are handled individually".
    pub gap: SimDuration,
    /// Fraction of events that are leaves.
    pub leave_fraction: f64,
}

impl Default for SparseParams {
    fn default() -> Self {
        SparseParams {
            initial_members: 5,
            events: 10,
            gap: SimDuration::millis(100),
            leave_fraction: 0.4,
        }
    }
}

/// Generates a bursty workload on `net`.
///
/// Each switch is touched by at most one event (burst delays are random, so
/// two events at one switch could be delivered out of order); joins pick
/// non-members, leaves pick initial members.
pub fn bursty<R: Rng + ?Sized>(rng: &mut R, net: &Network, params: &BurstParams) -> Workload {
    let initial = generate::sample_nodes(rng, net, params.initial_members.min(net.len()));
    let mut events = Vec::new();
    let mut members: BTreeSet<NodeId> = initial.iter().copied().collect();
    let mut touched: BTreeSet<NodeId> = BTreeSet::new();
    let window_ns = params.window.as_nanos().max(1);
    let mut attempts = 0usize;
    while events.len() < params.burst_events {
        attempts += 1;
        if attempts > 20 * params.burst_events + net.len() {
            break; // Tiny network: every switch already touched.
        }
        let at = SimDuration::nanos(rng.gen_range(0..window_ns));
        let is_leave = rng.gen_bool(params.leave_fraction);
        if is_leave {
            let candidates: Vec<NodeId> = members
                .iter()
                .copied()
                .filter(|n| !touched.contains(n))
                .collect();
            let Some(&node) = candidates.as_slice().choose(rng) else {
                // No leavable member left; fall through to a join below.
                continue;
            };
            members.remove(&node);
            touched.insert(node);
            events.push(ScheduledEvent {
                at,
                node,
                join: false,
            });
        } else {
            let candidates: Vec<NodeId> = net
                .nodes()
                .filter(|n| !members.contains(n) && !touched.contains(n))
                .collect();
            let Some(&node) = candidates.as_slice().choose(rng) else {
                continue;
            };
            members.insert(node);
            touched.insert(node);
            events.push(ScheduledEvent {
                at,
                node,
                join: true,
            });
        }
    }
    events.sort_by_key(|e| e.at);
    Workload {
        initial_members: initial,
        events,
    }
}

/// Generates a sparse workload on `net`: one event per `gap`.
pub fn sparse<R: Rng + ?Sized>(rng: &mut R, net: &Network, params: &SparseParams) -> Workload {
    let initial = generate::sample_nodes(rng, net, params.initial_members.min(net.len()));
    let mut members: BTreeSet<NodeId> = initial.iter().copied().collect();
    let mut events = Vec::new();
    for k in 0..params.events {
        let at = params.gap * (k as u64 + 1);
        let is_leave = rng.gen_bool(params.leave_fraction) && members.len() > 1;
        if is_leave {
            let candidates: Vec<NodeId> = members.iter().copied().collect();
            let &node = candidates.as_slice().choose(rng).expect("non-empty");
            members.remove(&node);
            events.push(ScheduledEvent {
                at,
                node,
                join: false,
            });
        } else {
            let candidates: Vec<NodeId> = net.nodes().filter(|n| !members.contains(n)).collect();
            let Some(&node) = candidates.as_slice().choose(rng) else {
                continue;
            };
            members.insert(node);
            events.push(ScheduledEvent {
                at,
                node,
                join: true,
            });
        }
    }
    Workload {
        initial_members: initial,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net() -> Network {
        generate::grid(5, 5)
    }

    #[test]
    fn bursty_respects_window_and_uniqueness() {
        let mut rng = StdRng::seed_from_u64(1);
        let params = BurstParams::default();
        let w = bursty(&mut rng, &net(), &params);
        assert_eq!(w.events.len(), params.burst_events);
        assert_eq!(w.initial_members.len(), params.initial_members);
        let mut nodes: Vec<NodeId> = w.events.iter().map(|e| e.node).collect();
        nodes.sort();
        nodes.dedup();
        assert_eq!(nodes.len(), w.events.len(), "one event per switch");
        assert!(w.events.iter().all(|e| e.at < params.window));
        assert!(w.events.windows(2).all(|p| p[0].at <= p[1].at));
    }

    #[test]
    fn bursty_leaves_come_from_initial_members() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = bursty(&mut rng, &net(), &BurstParams::default());
        let initial: BTreeSet<NodeId> = w.initial_members.iter().copied().collect();
        for e in w.events.iter().filter(|e| !e.join) {
            assert!(initial.contains(&e.node));
        }
        for e in w.events.iter().filter(|e| e.join) {
            assert!(!initial.contains(&e.node));
        }
    }

    #[test]
    fn sparse_events_are_spaced_by_gap() {
        let mut rng = StdRng::seed_from_u64(3);
        let params = SparseParams::default();
        let w = sparse(&mut rng, &net(), &params);
        assert!(!w.events.is_empty());
        for pair in w.events.windows(2) {
            assert!(pair[1].at - pair[0].at >= params.gap);
        }
    }

    #[test]
    fn sparse_membership_stays_consistent() {
        // Replaying the events against the initial member set never leaves
        // a non-member or joins a member.
        let mut rng = StdRng::seed_from_u64(4);
        let w = sparse(&mut rng, &net(), &SparseParams::default());
        let mut members: BTreeSet<NodeId> = w.initial_members.iter().copied().collect();
        for e in &w.events {
            if e.join {
                assert!(members.insert(e.node), "join of existing member");
            } else {
                assert!(members.remove(&e.node), "leave of non-member");
            }
        }
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let w1 = bursty(
            &mut StdRng::seed_from_u64(7),
            &net(),
            &BurstParams::default(),
        );
        let w2 = bursty(
            &mut StdRng::seed_from_u64(7),
            &net(),
            &BurstParams::default(),
        );
        assert_eq!(w1.events, w2.events);
        assert_eq!(w1.initial_members, w2.initial_members);
    }

    #[test]
    fn tiny_network_burst_saturates_gracefully() {
        // On a 4-node network a 10-event burst can't find 10 distinct
        // switches... the generator must not loop forever. Use fewer events.
        let small = generate::ring(4);
        let mut rng = StdRng::seed_from_u64(5);
        let params = BurstParams {
            initial_members: 2,
            burst_events: 2,
            ..BurstParams::default()
        };
        let w = bursty(&mut rng, &small, &params);
        assert_eq!(w.events.len(), 2);
    }
}
