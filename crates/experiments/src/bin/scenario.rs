//! Scenario runner: drive a D-GMC simulation from a text script.
//!
//! Usage: `cargo run --release -p dgmc-experiments --bin scenario <file>`
//! (or pipe the script on stdin). See `dgmc_experiments::scenario` for the
//! directive language.

use dgmc_experiments::scenario;
use std::io::Read;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let text = match args.get(1) {
        Some(path) => std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }),
        None => {
            let mut buf = String::new();
            std::io::stdin().read_to_string(&mut buf).expect("stdin");
            buf
        }
    };
    let parsed = match scenario::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("parse error: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "network: {} switches, {} links; {} directives",
        parsed.net.len(),
        parsed.net.link_count(),
        parsed.steps.len()
    );
    let report = scenario::run(&parsed);
    println!("quiescent: {}", report.quiescent);
    for (mc, consensus) in &report.consensus {
        match consensus {
            Ok(c) => {
                let members: Vec<String> = c.members.keys().map(|n| n.to_string()).collect();
                println!(
                    "{mc}: consensus OK, members [{}], tree edges {}",
                    members.join(", "),
                    c.topology.as_ref().map(|t| t.edge_count()).unwrap_or(0)
                );
            }
            Err(e) => println!("{mc}: NO CONSENSUS ({e})"),
        }
    }
    for (mc, pid, node, copies) in &report.deliveries {
        println!("data {mc}/packet {pid}: delivered to {node} x{copies}");
    }
    let mut names: Vec<&String> = report.counters.keys().collect();
    names.sort();
    for name in names {
        println!("counter {name} = {}", report.counters[name]);
    }
}
