//! Multi-connection independence study: per-event overhead versus the
//! number of simultaneously active MCs ("protocol activities associated
//! with different MCs proceed independently").
//!
//! Usage: `cargo run --release -p dgmc-experiments --bin multimc [--quick]`

use dgmc_experiments::multi_mc;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n, graphs) = if quick { (30, 3) } else { (100, 10) };
    let counts = [1usize, 2, 4, 8];
    println!("== Per-event overhead vs concurrent connections (n={n}) ==");
    println!(
        "{:>6}  {:>18}  {:>18}  {:>8}",
        "MCs", "proposals/event", "floodings/event", "failures"
    );
    for row in multi_mc::multi_mc_sweep(n, &counts, graphs, 0x31C) {
        println!(
            "{:>6}  {:>9.2} ±{:>6.2}  {:>9.2} ±{:>6.2}  {:>8}",
            row.connections,
            row.proposals.mean(),
            row.proposals.ci95_half_width(),
            row.floodings.mean(),
            row.floodings.ci95_half_width(),
            row.failures
        );
    }
}
