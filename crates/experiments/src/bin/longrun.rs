//! Long-run churn stability study: hundreds of membership events, consensus
//! checkpoints, overhead drift and state-leak checks.
//!
//! Usage: `cargo run --release -p dgmc-experiments --bin longrun [--quick]`

use dgmc_experiments::longrun;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n, events) = if quick { (30, 100) } else { (100, 500) };
    println!("== Long-run churn: n={n}, {events} membership events ==");
    for (label, gap) in [
        ("sparse (50ms mean gap)", 50u64),
        ("tight (2ms mean gap)", 2),
    ] {
        match longrun::churn_run(n, events, gap, events / 10, 0x10E6) {
            Ok(r) => println!(
                "{label}: {} checkpoints OK, {:.2} proposals/event, {:.2} floodings/event, final tree competitiveness {:.3}, max MC states/switch {}",
                r.checkpoints,
                r.proposals_per_event,
                r.floodings_per_event,
                r.final_competitiveness.unwrap_or(f64::NAN),
                r.max_states_per_switch
            ),
            Err(e) => println!("{label}: FAILED ({e})"),
        }
    }
}
