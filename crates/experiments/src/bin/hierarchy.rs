//! Hierarchical extension study: flood-scope reduction and tree-cost
//! overhead of the two-level D-GMC the paper lists as ongoing work.
//!
//! Usage: `cargo run --release -p dgmc-experiments --bin hierarchy [--quick]`

use dgmc_core::switch::DgmcConfig;
use dgmc_core::{McId, McType, Role};
use dgmc_des::stats::Tally;
use dgmc_des::{ActorId, SimDuration};
use dgmc_hierarchy::backbone::Backbone;
use dgmc_hierarchy::switch::{build_hier_sim, counters, HierMsg};
use dgmc_hierarchy::{scope, AreaMap, HierarchicalMc};
use dgmc_mctree::algorithms;
use dgmc_topology::{generate, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;
use std::rc::Rc;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n, graphs) = if quick { (64, 3) } else { (196, 10) };
    let area_counts = [1usize, 2, 4, 8, 16];

    println!("== Flood scope per membership event (n = {n}) ==");
    println!(
        "{:>6}  {:>12} {:>12} {:>12} {:>14}",
        "areas", "intra scope", "cross scope", "flat scope", "state/switch"
    );
    let mut rng = StdRng::seed_from_u64(0x47AE);
    let net = generate::waxman(&mut rng, n, &generate::WaxmanParams::default());
    for row in scope::scope_sweep(&net, &area_counts) {
        println!(
            "{:>6}  {:>12} {:>12} {:>12} {:>14.1}",
            row.areas, row.intra_scope, row.cross_scope, row.flat_scope, row.avg_state
        );
    }

    println!();
    println!("== Signaling-level flood scope (DES packet counts, grid networks) ==");
    println!(
        "{:>6}  {:>8}  {:>22}  {:>22}",
        "n", "areas", "area LSA receptions", "flat-equivalent (2(n-1))"
    );
    for &(rows, areas) in &[(6usize, 4usize), (8, 4), (10, 4)] {
        let net = dgmc_topology::generate::grid(rows, rows);
        let map = dgmc_hierarchy::AreaMap::partition(&net, areas);
        let mut sim = build_hier_sim(
            &net,
            &map,
            DgmcConfig::computation_dominated(),
            Rc::new(dgmc_mctree::SphStrategy::new()),
        );
        // Two same-area joins: the second is a pure intra-area event.
        let in_area = map.switches_in(dgmc_hierarchy::AreaId(0));
        for (i, &m) in in_area.iter().take(2).enumerate() {
            sim.inject(
                ActorId(m.0),
                SimDuration::millis(50 * i as u64),
                HierMsg::HostJoin {
                    mc: McId(1),
                    mc_type: McType::Symmetric,
                    role: Role::SenderReceiver,
                },
            );
        }
        sim.run_to_quiescence();
        println!(
            "{:>6}  {:>8}  {:>22}  {:>22}",
            net.len(),
            areas,
            sim.counter_value(counters::AREA_LSAS),
            2 * (net.len() - 1)
        );
    }

    println!();
    println!("== Hierarchical vs flat tree cost (10 members, {graphs} graphs) ==");
    println!("{:>6}  {:>12} {:>12}", "areas", "cost ratio", "ci95");
    for &k in &area_counts[1..] {
        let mut ratio = Tally::new();
        for g in 0..graphs {
            let mut rng = StdRng::seed_from_u64(0x47AF + g as u64);
            let net = generate::waxman(&mut rng, n, &generate::WaxmanParams::default());
            let map = AreaMap::partition(&net, k);
            if !map.areas_connected(&net) {
                continue; // Waxman areas can split; skip those draws.
            }
            let backbone = Backbone::build(&net, &map);
            let members: BTreeSet<NodeId> = generate::sample_nodes(&mut rng, &net, 10)
                .into_iter()
                .collect();
            let Ok(hier) = HierarchicalMc::compute(&net, &map, &backbone, &members) else {
                continue;
            };
            let flat = algorithms::takahashi_matsuyama(&net, &members);
            if let (Some(hc), Some(fc)) = (hier.topology().total_cost(&net), flat.total_cost(&net))
            {
                if fc > 0 {
                    ratio.record(hc as f64 / fc as f64);
                }
            }
        }
        println!(
            "{:>6}  {:>12.3} {:>12.3}",
            k,
            ratio.mean(),
            ratio.ci95_half_width()
        );
    }
}
