//! Fault-tolerance study: recovery time of multipoint connections after
//! on-tree link and transit-switch failures (paper Section 6).
//!
//! Usage: `cargo run --release -p dgmc-experiments --bin recovery [--quick]`

use dgmc_experiments::recovery;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (sizes, graphs): (Vec<usize>, usize) = if quick {
        (vec![20, 60], 5)
    } else {
        (vec![20, 60, 100, 140, 200], 15)
    };
    println!("== Recovery time after on-tree failures (rounds = Tf + Tc) ==");
    println!(
        "{:>6}  {:>22}  {:>22}  {:>8}",
        "n", "link failure (rounds)", "node failure (rounds)", "skipped"
    );
    for row in recovery::recovery_sweep(&sizes, graphs, 0xFA11) {
        println!(
            "{:>6}  {:>11.2} ±{:>8.2}  {:>11.2} ±{:>8.2}  {:>8}",
            row.n,
            row.link_recovery_rounds.mean(),
            row.link_recovery_rounds.ci95_half_width(),
            row.node_recovery_rounds.mean(),
            row.node_recovery_rounds.ci95_half_width(),
            row.skipped
        );
    }
}
