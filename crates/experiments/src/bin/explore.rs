//! Seeded schedule explorer: runs the chaos scenario (loss, duplication,
//! jitter, link flaps, node crashes) across a range of seeds and checks the
//! protocol invariant suite at quiescence. Any failing seed is re-run with
//! the decision log attached and written out as a self-contained repro
//! bundle.
//!
//! Usage:
//!   cargo run -p dgmc-experiments --bin explore -- --seeds 100
//!   cargo run -p dgmc-experiments --bin explore -- --seeds 25 --fail-fast
//!   cargo run -p dgmc-experiments --bin explore -- --seed 42   # replay one
//!
//! Flags: `--seeds N` (default 100), `--start N`, `--fail-fast`, `--seed X`
//! (replay one seed verbosely instead of sweeping), `--nodes N`,
//! `--loss P`, `--hard-loss P`, `--duplicate P`, `--jitter-us N`,
//! `--flaps N`, `--crashes N`, `--timeline N`, `--out DIR` (default
//! `results`). Exits non-zero if any checked seed fails.

use dgmc_des::explorer::ExploreConfig;
use dgmc_des::SimDuration;
use dgmc_experiments::explore::{self, ExploreParams};

fn parse<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> T {
    let Some(raw) = value else {
        eprintln!("missing value for {flag}");
        std::process::exit(2);
    };
    match raw.parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("invalid value {raw:?} for {flag}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ExploreConfig::default();
    let mut params = ExploreParams::default();
    let mut replay_seed: Option<u64> = None;
    let mut out_dir = "results".to_owned();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args.get(i + 1);
        match flag {
            "--fail-fast" => {
                config.fail_fast = true;
                i += 1;
                continue;
            }
            "--seeds" => config.seeds = parse(flag, value),
            "--start" => config.start_seed = parse(flag, value),
            "--seed" => replay_seed = Some(parse(flag, value)),
            "--nodes" => params.nodes = parse(flag, value),
            "--loss" => params.loss = parse(flag, value),
            "--hard-loss" => params.hard_loss = parse(flag, value),
            "--duplicate" => params.duplicate = parse(flag, value),
            "--jitter-us" => params.jitter = SimDuration::micros(parse(flag, value)),
            "--flaps" => params.flaps = parse(flag, value),
            "--crashes" => params.crashes = parse(flag, value),
            "--timeline" => params.timeline = parse(flag, value),
            "--out" => out_dir = parse(flag, value),
            _ => {
                eprintln!("unknown flag {flag}");
                std::process::exit(2);
            }
        }
        i += 2;
    }

    if let Some(seed) = replay_seed {
        // Verbose single-seed replay: the diagnosis path of a repro bundle.
        let run = explore::run_scenario(seed, &params, Some(params.timeline));
        if run.outcome.passed() {
            println!(
                "seed {seed} passed: all invariants held ({})",
                run.net_stats
            );
            return;
        }
        let bundle = explore::repro_bundle(seed, &params);
        print!("{}", bundle.render());
        match bundle.write(&out_dir) {
            Ok(path) => eprintln!("repro bundle: {}", path.display()),
            Err(e) => eprintln!("failed to write repro bundle: {e}"),
        }
        std::process::exit(1);
    }

    eprintln!(
        "exploring {} seed(s) from {} on {}-node networks \
         (loss {}, hard-loss {}, duplicate {}, jitter {}us, {} flap(s), {} crash(es))",
        config.seeds,
        config.start_seed,
        params.nodes,
        params.loss,
        params.hard_loss,
        params.duplicate,
        params.jitter.as_nanos() / 1_000,
        params.flaps,
        params.crashes,
    );
    let report = explore::explore_run(&config, &params);
    for failure in &report.failures {
        let bundle = explore::repro_bundle(failure.seed, &params);
        eprint!("{}", bundle.render());
        match bundle.write(&out_dir) {
            Ok(path) => eprintln!("repro bundle: {}", path.display()),
            Err(e) => eprintln!("failed to write repro bundle: {e}"),
        }
    }
    println!("{}", report.summary());
    if !report.passed() {
        std::process::exit(1);
    }
}
