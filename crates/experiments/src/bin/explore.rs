//! Schedule explorer with two modes.
//!
//! **Sweep** (default): runs the chaos scenario (loss, duplication, jitter,
//! link flaps, node crashes) across a range of seeds and checks the
//! protocol invariant suite at quiescence. Any failing seed is re-run with
//! the decision log attached and written out as a self-contained repro
//! bundle.
//!
//! **Systematic** (`--systematic`, DESIGN.md §11): bounded model checking —
//! enumerates *every* message-delivery interleaving of a small scripted
//! scenario with sleep-set partial-order reduction, checking the invariant
//! suite plus lockstep conformance against the executable Fig. 4/5 spec.
//! Counterexamples are minimized and written as replayable bundles.
//!
//! **Backward** (`--systematic --backward`, DESIGN.md §11): backward
//! search — captures the violation state of the forward counterexample
//! (or takes explicit `--backward-target` hashes), builds the predecessor
//! graph breadth-first and walks it backward to a shortest witness
//! schedule. Exits 0 iff a seeded target was reached.
//!
//! Usage:
//!   cargo run -p dgmc-experiments --bin explore -- --seeds 100
//!   cargo run -p dgmc-experiments --bin explore -- --seeds 100 --jobs 8
//!   cargo run -p dgmc-experiments --bin explore -- --seed 42   # replay one
//!   cargo run -p dgmc-experiments --bin explore -- --systematic
//!   cargo run -p dgmc-experiments --bin explore -- --systematic --nodes 4 \
//!       --joins 2 --topology ring
//!   cargo run -p dgmc-experiments --bin explore -- --systematic \
//!       --mutate unfenced-teardown          # prove the oracles bite
//!   cargo run -p dgmc-experiments --bin explore -- --systematic --nodes 3 \
//!       --joins 1 --leaves 1 --mutate unfenced-teardown --backward
//!
//! Sweep flags: `--seeds N` (default 100), `--start N`, `--fail-fast`,
//! `--seed X` (replay one seed verbosely instead of sweeping), `--loss P`,
//! `--hard-loss P`, `--duplicate P`, `--jitter-us N`, `--timeline N`.
//!
//! Systematic flags: `--joins N`, `--leaves N`, `--topology
//! ring|line|complete`, `--max-depth N`, `--max-states N`, `--mutate
//! none|skip-withdrawal|unfenced-teardown|eager-deferred-flood`,
//! `--losses N` (scheduler-injected LSA drops), `--trace K1,K2,...`
//! (replay a bundle's minimized schedule bit-for-bit), `--backward`,
//! `--backward-target H1,H2,...` (seed explicit state hashes instead of
//! the forward counterexample's). `--crashes N` is shared with the sweep:
//! fail-stop switch crashes there, scheduler-chosen crash points here.
//!
//! Shared flags: `--jobs N` (worker threads, default `min(cores, 8)`; the
//! report is byte-identical for every value), `--nodes N`, `--flaps N`,
//! `--out DIR` (default `results`), `--report FILE` (write the report
//! JSON). Exits non-zero if any checked schedule fails.

use dgmc_des::explorer::{ExploreConfig, ExploreMode};
use dgmc_des::{par, SimDuration};
use dgmc_experiments::explore::{self, ExploreParams};
use dgmc_experiments::systematic::{self, SystematicParams};

fn parse<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> T {
    let Some(raw) = value else {
        eprintln!("missing value for {flag}");
        std::process::exit(2);
    };
    match raw.parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("invalid value {raw:?} for {flag}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ExploreConfig {
        jobs: par::default_jobs(),
        ..ExploreConfig::default()
    };
    let mut params = ExploreParams::default();
    let mut sys = SystematicParams::default();
    let mut replay_seed: Option<u64> = None;
    let mut trace_keys: Option<Vec<u64>> = None;
    let mut backward = false;
    let mut backward_targets: Option<Vec<u64>> = None;
    let mut out_dir = "results".to_owned();
    let mut report_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args.get(i + 1);
        match flag {
            "--fail-fast" => {
                config.fail_fast = true;
                i += 1;
                continue;
            }
            "--systematic" => {
                config.mode = ExploreMode::Systematic;
                i += 1;
                continue;
            }
            "--backward" => {
                backward = true;
                i += 1;
                continue;
            }
            "--backward-target" => {
                let raw: String = parse(flag, value);
                let hashes: Result<Vec<u64>, _> =
                    raw.split(',').map(str::trim).map(str::parse).collect();
                match hashes {
                    Ok(hashes) => backward_targets = Some(hashes),
                    Err(_) => {
                        eprintln!(
                            "invalid value {raw:?} for --backward-target \
                             (comma-separated u64 state hashes)"
                        );
                        std::process::exit(2);
                    }
                }
            }
            "--seeds" => config.seeds = parse(flag, value),
            "--start" => config.start_seed = parse(flag, value),
            "--jobs" => config.jobs = parse(flag, value),
            "--seed" => replay_seed = Some(parse(flag, value)),
            "--report" => report_path = Some(parse(flag, value)),
            "--nodes" => {
                params.nodes = parse(flag, value);
                sys.nodes = params.nodes;
            }
            "--loss" => params.loss = parse(flag, value),
            "--hard-loss" => params.hard_loss = parse(flag, value),
            "--duplicate" => params.duplicate = parse(flag, value),
            "--jitter-us" => params.jitter = SimDuration::micros(parse(flag, value)),
            "--flaps" => {
                params.flaps = parse(flag, value);
                sys.flaps = params.flaps;
            }
            "--crashes" => {
                params.crashes = parse(flag, value);
                sys.crashes = params.crashes;
            }
            "--losses" => sys.losses = parse(flag, value),
            "--timeline" => params.timeline = parse(flag, value),
            "--out" => out_dir = parse(flag, value),
            "--topology" => sys.topology = parse(flag, value),
            "--joins" => sys.joins = parse(flag, value),
            "--leaves" => sys.leaves = parse(flag, value),
            "--max-depth" => sys.max_depth = parse(flag, value),
            "--max-states" => sys.max_states = parse(flag, value),
            "--mutate" => {
                let raw: String = parse(flag, value);
                sys.mutation = match raw.as_str() {
                    "none" => dgmc_core::EngineMutation::None,
                    "skip-withdrawal" => dgmc_core::EngineMutation::SkipWithdrawal,
                    "unfenced-teardown" => dgmc_core::EngineMutation::UnfencedTeardown,
                    "eager-deferred-flood" => dgmc_core::EngineMutation::EagerDeferredFlood,
                    other => {
                        eprintln!(
                            "unknown mutation {other:?} \
                             (none|skip-withdrawal|unfenced-teardown|eager-deferred-flood)"
                        );
                        std::process::exit(2);
                    }
                };
            }
            "--trace" => {
                let raw: String = parse(flag, value);
                let keys: Result<Vec<u64>, _> =
                    raw.split(',').map(str::trim).map(str::parse).collect();
                match keys {
                    Ok(keys) => trace_keys = Some(keys),
                    Err(_) => {
                        eprintln!("invalid value {raw:?} for --trace (comma-separated u64 keys)");
                        std::process::exit(2);
                    }
                }
            }
            _ => {
                eprintln!("unknown flag {flag}");
                std::process::exit(2);
            }
        }
        i += 2;
    }

    if backward {
        if config.mode != ExploreMode::Systematic {
            eprintln!("--backward requires --systematic");
            std::process::exit(2);
        }
        run_backward_mode(&config, &sys, backward_targets.as_deref(), report_path);
        return;
    }

    if config.mode == ExploreMode::Systematic {
        run_systematic_mode(&config, &sys, trace_keys.as_deref(), &out_dir, report_path);
        return;
    }

    if let Some(seed) = replay_seed {
        // Verbose single-seed replay: the diagnosis path of a repro bundle.
        let run = explore::run_scenario(seed, &params, Some(params.timeline));
        if run.outcome.passed() {
            println!(
                "seed {seed} passed: all invariants held ({})",
                run.net_stats
            );
            return;
        }
        let bundle = explore::repro_bundle(seed, &params);
        print!("{}", bundle.render());
        // Replays deliberately refresh any stale bundle for this seed.
        match bundle.write_replacing(&out_dir) {
            Ok(path) => eprintln!("repro bundle: {}", path.display()),
            Err(e) => eprintln!("failed to write repro bundle: {e}"),
        }
        std::process::exit(1);
    }

    eprintln!(
        "exploring {} seed(s) from {} on {}-node networks with {} worker(s) \
         (loss {}, hard-loss {}, duplicate {}, jitter {}us, {} flap(s), {} crash(es))",
        config.seeds,
        config.start_seed,
        params.nodes,
        config.jobs.max(1),
        params.loss,
        params.hard_loss,
        params.duplicate,
        params.jitter.as_nanos() / 1_000,
        params.flaps,
        params.crashes,
    );
    let (report, bundles) = explore::explore_and_bundle(&config, &params, &out_dir);
    for (bundle, path) in &bundles {
        eprint!("{}", bundle.render());
        eprintln!("repro bundle: {}", path.display());
    }
    if let Some(path) = report_path {
        match write_report(&path, &report.to_json()) {
            Ok(()) => eprintln!("report: {path}"),
            Err(e) => {
                eprintln!("failed to write report {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    println!("{}", report.summary());
    if !report.passed() {
        std::process::exit(1);
    }
}

/// The `--systematic` mode: either replay a `--trace` key list bit-for-bit
/// or exhaustively explore the scripted scenario, minimizing and bundling
/// any counterexample.
fn run_systematic_mode(
    config: &ExploreConfig,
    sys: &SystematicParams,
    trace: Option<&[u64]>,
    out_dir: &str,
    report_path: Option<String>,
) {
    if let Some(keys) = trace {
        let Some(replay) = systematic::replay_trace(sys, keys) else {
            eprintln!("trace does not resolve against this scenario (stale bundle?)");
            std::process::exit(2);
        };
        let model = systematic::SystematicModel::new(sys);
        for line in systematic::describe_trace(&model, &replay.trace) {
            println!("{line}");
        }
        if replay.failed() {
            for v in &replay.violations {
                eprintln!("violated {v}");
            }
            std::process::exit(1);
        }
        println!("trace replayed clean ({} step(s))", replay.trace.len());
        return;
    }

    eprintln!(
        "systematically exploring a {}-node {} with {} join(s), {} leave(s), {} flap(s) \
         on {} worker(s) (mutation {:?}, depth <= {}, states <= {})",
        sys.nodes,
        sys.topology,
        sys.joins,
        sys.leaves,
        sys.flaps,
        config.jobs.max(1),
        sys.mutation,
        sys.max_depth,
        sys.max_states,
    );
    let run = systematic::run_systematic(config, sys);
    for name in [
        dgmc_des::mc::metric_names::STATES,
        dgmc_des::mc::metric_names::TRANSITIONS,
        dgmc_des::mc::metric_names::PRUNED,
        dgmc_des::mc::metric_names::MAX_DEPTH,
    ] {
        eprintln!("{name}={}", run.metrics.counter_value(name));
    }
    if let Some(min) = &run.minimized {
        eprint!("{}", min.bundle.render());
        match min.bundle.write_replacing(out_dir) {
            Ok(path) => eprintln!("repro bundle: {}", path.display()),
            Err(e) => eprintln!("failed to write repro bundle: {e}"),
        }
    }
    if let Some(path) = report_path {
        match write_report(&path, &run.report.to_json()) {
            Ok(()) => eprintln!("report: {path}"),
            Err(e) => {
                eprintln!("failed to write report {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    println!("{}", run.report.summary());
    if !run.report.passed() {
        std::process::exit(1);
    }
}

/// The `--systematic --backward` mode: seed target state hashes — either
/// given explicitly via `--backward-target` or captured from the forward
/// counterexample's violation state — then search backward from them over
/// the predecessor graph. Exits 0 iff a target was reached (the witness
/// schedule is printed and replayable with `--trace`).
fn run_backward_mode(
    config: &ExploreConfig,
    sys: &SystematicParams,
    explicit_targets: Option<&[u64]>,
    report_path: Option<String>,
) {
    let targets: Vec<u64> = match explicit_targets {
        Some(hashes) => hashes.to_vec(),
        None => {
            eprintln!("no --backward-target given: seeding from the forward counterexample");
            let run = systematic::run_systematic(config, sys);
            let Some(min) = &run.minimized else {
                eprintln!(
                    "forward exploration found no violation to seed \
                     ({}); pass --backward-target or a bug-reintroducing --mutate",
                    run.report.summary()
                );
                std::process::exit(2);
            };
            // min.replay.keys is the full start-to-violation schedule
            // (prescribed keys plus deterministic completion), so its end
            // state is the state the oracle actually rejected.
            let Some(hash) = systematic::violation_state_hash(sys, &min.replay.keys) else {
                eprintln!("minimized counterexample did not replay (checker bug?)");
                std::process::exit(2);
            };
            eprintln!(
                "seeded violation state {hash:#018x} from a {}-step counterexample",
                min.replay.keys.len()
            );
            vec![hash]
        }
    };

    let bounds = dgmc_des::mc::BackwardConfig {
        max_levels: sys.max_depth,
        max_states: sys.max_states,
    };
    eprintln!(
        "backward-searching toward {} seeded state(s) on {} worker(s) \
         (levels <= {}, states <= {})",
        targets.len(),
        config.jobs.max(1),
        bounds.max_levels,
        bounds.max_states,
    );
    let report = systematic::run_backward(config, sys, &bounds, &targets);
    if let Some(path) = report_path {
        match write_report(&path, &report.to_json()) {
            Ok(()) => eprintln!("report: {path}"),
            Err(e) => {
                eprintln!("failed to write report {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    println!("{}", report.summary());
    if report.found() {
        let keys: Vec<String> = report.witness_keys.iter().map(u64::to_string).collect();
        println!("witness schedule: --trace {}", keys.join(","));
        return;
    }
    std::process::exit(1);
}

fn write_report(path: &str, json: &str) -> std::io::Result<()> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, format!("{json}\n"))
}
