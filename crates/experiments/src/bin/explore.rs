//! Seeded schedule explorer: runs the chaos scenario (loss, duplication,
//! jitter, link flaps, node crashes) across a range of seeds and checks the
//! protocol invariant suite at quiescence. Any failing seed is re-run with
//! the decision log attached and written out as a self-contained repro
//! bundle.
//!
//! Usage:
//!   cargo run -p dgmc-experiments --bin explore -- --seeds 100
//!   cargo run -p dgmc-experiments --bin explore -- --seeds 100 --jobs 8
//!   cargo run -p dgmc-experiments --bin explore -- --seeds 25 --fail-fast
//!   cargo run -p dgmc-experiments --bin explore -- --seed 42   # replay one
//!
//! Flags: `--seeds N` (default 100), `--start N`, `--fail-fast`, `--jobs N`
//! (worker threads, default `min(cores, 8)`; the report is byte-identical
//! for every value), `--seed X` (replay one seed verbosely instead of
//! sweeping), `--nodes N`, `--loss P`, `--hard-loss P`, `--duplicate P`,
//! `--jitter-us N`, `--flaps N`, `--crashes N`, `--timeline N`, `--out DIR`
//! (default `results`), `--report FILE` (write the report JSON). Exits
//! non-zero if any checked seed fails.

use dgmc_des::explorer::ExploreConfig;
use dgmc_des::{par, SimDuration};
use dgmc_experiments::explore::{self, ExploreParams};

fn parse<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> T {
    let Some(raw) = value else {
        eprintln!("missing value for {flag}");
        std::process::exit(2);
    };
    match raw.parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("invalid value {raw:?} for {flag}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ExploreConfig {
        jobs: par::default_jobs(),
        ..ExploreConfig::default()
    };
    let mut params = ExploreParams::default();
    let mut replay_seed: Option<u64> = None;
    let mut out_dir = "results".to_owned();
    let mut report_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args.get(i + 1);
        match flag {
            "--fail-fast" => {
                config.fail_fast = true;
                i += 1;
                continue;
            }
            "--seeds" => config.seeds = parse(flag, value),
            "--start" => config.start_seed = parse(flag, value),
            "--jobs" => config.jobs = parse(flag, value),
            "--seed" => replay_seed = Some(parse(flag, value)),
            "--report" => report_path = Some(parse(flag, value)),
            "--nodes" => params.nodes = parse(flag, value),
            "--loss" => params.loss = parse(flag, value),
            "--hard-loss" => params.hard_loss = parse(flag, value),
            "--duplicate" => params.duplicate = parse(flag, value),
            "--jitter-us" => params.jitter = SimDuration::micros(parse(flag, value)),
            "--flaps" => params.flaps = parse(flag, value),
            "--crashes" => params.crashes = parse(flag, value),
            "--timeline" => params.timeline = parse(flag, value),
            "--out" => out_dir = parse(flag, value),
            _ => {
                eprintln!("unknown flag {flag}");
                std::process::exit(2);
            }
        }
        i += 2;
    }

    if let Some(seed) = replay_seed {
        // Verbose single-seed replay: the diagnosis path of a repro bundle.
        let run = explore::run_scenario(seed, &params, Some(params.timeline));
        if run.outcome.passed() {
            println!(
                "seed {seed} passed: all invariants held ({})",
                run.net_stats
            );
            return;
        }
        let bundle = explore::repro_bundle(seed, &params);
        print!("{}", bundle.render());
        // Replays deliberately refresh any stale bundle for this seed.
        match bundle.write_replacing(&out_dir) {
            Ok(path) => eprintln!("repro bundle: {}", path.display()),
            Err(e) => eprintln!("failed to write repro bundle: {e}"),
        }
        std::process::exit(1);
    }

    eprintln!(
        "exploring {} seed(s) from {} on {}-node networks with {} worker(s) \
         (loss {}, hard-loss {}, duplicate {}, jitter {}us, {} flap(s), {} crash(es))",
        config.seeds,
        config.start_seed,
        params.nodes,
        config.jobs.max(1),
        params.loss,
        params.hard_loss,
        params.duplicate,
        params.jitter.as_nanos() / 1_000,
        params.flaps,
        params.crashes,
    );
    let (report, bundles) = explore::explore_and_bundle(&config, &params, &out_dir);
    for (bundle, path) in &bundles {
        eprint!("{}", bundle.render());
        eprintln!("repro bundle: {}", path.display());
    }
    if let Some(path) = report_path {
        match write_report(&path, &report.to_json()) {
            Ok(()) => eprintln!("report: {path}"),
            Err(e) => {
                eprintln!("failed to write report {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    println!("{}", report.summary());
    if !report.passed() {
        std::process::exit(1);
    }
}

fn write_report(path: &str, json: &str) -> std::io::Result<()> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, format!("{json}\n"))
}
