//! Reproduces Experiment 2 (Figure 7): bursty event generation with high
//! communication time (WAN timing, `Tf >> Tc`).
//!
//! Usage: `cargo run --release -p dgmc-experiments --bin exp2 [--quick] [--csv] [--jobs N]`

use dgmc_experiments::{presets, report};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut spec = presets::experiment2();
    if args.iter().any(|a| a == "--quick") {
        spec = presets::quick(spec);
    }
    let jobs = presets::jobs_from_args(&args);
    let results = presets::run_experiment_with(&spec, jobs, |row| {
        eprintln!(
            "n={:>3}: proposals/event {:.2}, floodings/event {:.2}, convergence {:.1} rounds",
            row.n,
            row.proposals.mean(),
            row.floodings.mean(),
            row.convergence.mean()
        );
    });
    match report::write_metrics_snapshot("results", "exp2", &results.name, &results.metrics) {
        Ok(path) => eprintln!("metrics snapshot: {}", path.display()),
        Err(e) => eprintln!("failed to write metrics snapshot: {e}"),
    }
    if let Some(trace) = &results.trace {
        match report::write_trace_snapshot("results", "exp2", trace) {
            Ok(path) => eprintln!("causal trace (Perfetto): {}", path.display()),
            Err(e) => eprintln!("failed to write trace snapshot: {e}"),
        }
    }
    if args.iter().any(|a| a == "--csv") {
        print!("{}", report::csv(&results));
    } else {
        print!("{}", report::text_table(&results));
    }
    if args.iter().any(|a| a == "--chart") {
        println!();
        print!("{}", report::ascii_chart(&results, "proposals", 40));
        println!();
        print!("{}", report::ascii_chart(&results, "floodings", 40));
    }
}
