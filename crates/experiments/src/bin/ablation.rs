//! Ablation studies (DESIGN.md §5): strategy choice, burst size and timing
//! regime.
//!
//! Usage: `cargo run --release -p dgmc-experiments --bin ablation [--quick]`

use dgmc_experiments::ablation;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n, graphs) = if quick { (30, 3) } else { (100, 10) };

    println!("== (a) Topology strategy: SPH-incremental vs KMB-from-scratch (n={n}) ==");
    let (sph, kmb) = ablation::strategy_ablation(n, graphs, 0xAB1);
    println!(
        "sph : proposals/event {:.2} ±{:.2}, convergence {:.1} rounds",
        sph.proposals.mean(),
        sph.proposals.ci95_half_width(),
        sph.convergence.mean()
    );
    println!(
        "kmb : proposals/event {:.2} ±{:.2}, convergence {:.1} rounds",
        kmb.proposals.mean(),
        kmb.proposals.ci95_half_width(),
        kmb.convergence.mean()
    );

    println!();
    println!("== (b) Incremental tree quality over a long join/leave trace ==");
    let quality = ablation::incremental_quality(n, if quick { 50 } else { 200 }, 0xAB2);
    println!(
        "competitiveness vs from-scratch SPH: mean {:.3}, max implied by CI {:.3}",
        quality.mean(),
        quality.mean() + quality.ci95_half_width()
    );

    println!();
    println!("== (c) Burst-size sweep (n={n}) ==");
    let bursts: &[usize] = if quick {
        &[1, 5, 10]
    } else {
        &[1, 5, 10, 20, 30]
    };
    for row in ablation::burst_sweep(n, bursts, graphs, 0xAB3) {
        println!(
            "burst {:>3}: proposals/event {:.2} ±{:.2}, floodings/event {:.2}, convergence {:.1} rounds",
            row.burst,
            row.proposals.mean(),
            row.proposals.ci95_half_width(),
            row.floodings.mean(),
            row.convergence.mean()
        );
    }

    println!();
    println!("== (d) Connection-size sweep: per-event cost vs MC size (n={n}) ==");
    let sizes: &[usize] = if quick { &[3, 10] } else { &[3, 10, 20, 40] };
    for row in ablation::mc_size_sweep(n, sizes, graphs, 0xAB5) {
        println!(
            "members {:>3}: proposals/event {:.2} ±{:.2}, floodings/event {:.2}",
            row.members,
            row.proposals.mean(),
            row.proposals.ci95_half_width(),
            row.floodings.mean()
        );
    }

    println!();
    println!("== (e) Convergence-time distribution (bursty, n={n}) ==");
    let runs = if quick { 10 } else { 50 };
    let hist = ablation::convergence_distribution(n, runs, 0xAB6);
    println!(
        "{} runs: p50 <= {:.1} rounds, p95 <= {:.1} rounds, max {:.2} rounds",
        hist.len(),
        hist.percentile(0.5),
        hist.percentile(0.95),
        hist.max()
    );

    println!();
    println!("== (f) Topology-family robustness (bursty, n={n}) ==");
    for row in dgmc_experiments::robustness::family_sweep(n, graphs, 0xAB7) {
        println!(
            "{:>16}: proposals/event {:.2} ±{:.2}, floodings/event {:.2}, convergence {:.1} rounds ({} failures)",
            row.family.name(),
            row.proposals.mean(),
            row.proposals.ci95_half_width(),
            row.floodings.mean(),
            row.convergence.mean(),
            row.failures
        );
    }

    println!();
    println!("== (g) Timing regime sweep: Tc at fixed 10us per-hop (n={n}) ==");
    let tcs: &[u64] = if quick {
        &[10, 300]
    } else {
        &[10, 50, 100, 300, 1000]
    };
    for row in ablation::timing_sweep(n, tcs, graphs, 0xAB4) {
        println!(
            "Tc {:>5}us: proposals/event {:.2}, floodings/event {:.2}, convergence {:.1} rounds",
            row.tc_micros,
            row.proposals.mean(),
            row.floodings.mean(),
            row.convergence.mean()
        );
    }
}
