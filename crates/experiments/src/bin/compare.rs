//! Protocol comparison: D-GMC vs brute-force LSR multicast vs MOSPF on
//! identical workloads, plus CBT tree-quality comparison (Section 4 prose +
//! Section 5 related-work claims).
//!
//! Usage: `cargo run --release -p dgmc-experiments --bin compare [--quick]`

use dgmc_experiments::{compare, report};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (sizes, graphs): (Vec<usize>, usize) = if quick {
        (vec![20, 60], 3)
    } else {
        (vec![20, 60, 100, 140, 200], 10)
    };
    println!("== Signaling overhead per membership event ==");
    let rows = compare::compare_protocols(&sizes, graphs, 0xC0FFEE);
    print!("{}", compare::protocol_table(&rows));
    println!();
    println!("== CBT shared trees vs D-GMC Steiner trees ==");
    let cbt_rows = compare::compare_cbt(&sizes, graphs, 0xBEEF);
    print!("{}", compare::cbt_table(&cbt_rows));
    println!();
    println!("== D-GMC floods vs CBT join signaling (shared metrics registry) ==");
    let registry = compare::signaling_registry(&sizes, graphs, 0xCB7);
    print!("{}", compare::signaling_summary(&registry));
    match report::write_metrics_snapshot("results", "compare", "D-GMC vs CBT signaling", &registry)
    {
        Ok(path) => eprintln!("metrics snapshot: {}", path.display()),
        Err(e) => eprintln!("failed to write metrics snapshot: {e}"),
    }
}
