//! Offline schema validator for exported Chrome trace-event files.
//!
//! Usage: `trace_check <file.trace.json>...`
//!
//! Exits 0 when every file parses as Chrome trace-event JSON with a
//! non-empty `traceEvents` array whose events carry the required keys
//! (`name`, `ph`, `pid`, `tid`, plus `ts`/`dur` for `ph == "X"` complete
//! events); exits 1 with a diagnostic otherwise. Used by `ci.sh` to gate
//! the exp1 trace export without any external tooling.

use dgmc_obs::JsonValue;
use std::process::ExitCode;

fn check(text: &str) -> Result<usize, String> {
    let root = JsonValue::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let events = root
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .ok_or_else(|| "missing traceEvents array".to_owned())?;
    if events.is_empty() {
        return Err("traceEvents is empty".to_owned());
    }
    for (i, event) in events.iter().enumerate() {
        for key in ["name", "ph", "pid", "tid"] {
            if event.get(key).is_none() {
                return Err(format!("event {i} missing {key:?}"));
            }
        }
        let ph = event.get("ph").and_then(|p| p.as_str());
        if ph.is_none() {
            return Err(format!("event {i} has a non-string \"ph\""));
        }
        if ph == Some("X") {
            for key in ["ts", "dur"] {
                if event.get(key).is_none() {
                    return Err(format!("complete event {i} missing {key:?}"));
                }
            }
        }
    }
    Ok(events.len())
}

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: trace_check <file.trace.json>...");
        return ExitCode::from(2);
    }
    let mut ok = true;
    for path in &paths {
        let outcome = std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| check(&text));
        match outcome {
            Ok(n) => eprintln!("{path}: ok ({n} events)"),
            Err(e) => {
                eprintln!("{path}: INVALID — {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_real_export() {
        let mut trace = dgmc_obs::Trace::default();
        trace.spans.push(dgmc_obs::Span {
            id: 1,
            trace: 1,
            parent: 0,
            depth: 0,
            from: None,
            to: 2,
            start_ns: 0,
            end_ns: 500,
            label: "join mc1".into(),
            notes: vec![],
        });
        let json = dgmc_obs::chrome_trace_json(&trace);
        assert_eq!(check(&json).unwrap(), 2, "one metadata + one span event");
    }

    #[test]
    fn rejects_empty_and_malformed_inputs() {
        assert!(check("").is_err());
        assert!(check("{}").is_err());
        assert!(check(r#"{"traceEvents":[]}"#).is_err());
        assert!(check(r#"{"traceEvents":[{"name":"x"}]}"#).is_err());
        assert!(check(r#"{"traceEvents":[{"name":"x","ph":"X","pid":1,"tid":2}]}"#).is_err());
    }

    #[test]
    fn accepts_minimal_complete_events() {
        let ok = r#"{"traceEvents":[{"name":"x","ph":"X","pid":1,"tid":2,"ts":0.5,"dur":1.0}]}"#;
        assert_eq!(check(ok).unwrap(), 1);
    }
}
