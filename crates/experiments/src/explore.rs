//! D-GMC scenario assembly for the seeded schedule explorer.
//!
//! One *chaos scenario* is a pure function of a seed: the seed derives the
//! Waxman network, the bursty membership workload, the fault plan (loss,
//! duplication, jitter, plus connectivity-safe link flaps and node
//! crash/restart windows) and every coin flip of the network model. Running
//! the scenario to quiescence and applying
//! [`dgmc_core::invariants::check_invariants`] turns each seed into a
//! pass/fail verdict; [`explore_run`] sweeps seed ranges and
//! [`repro_bundle`] re-runs a failing seed with the decision log attached
//! to produce a self-contained repro file (DESIGN.md §8).

use crate::runner::EXPERIMENT_MC;
use crate::workload::{self, BurstParams, Workload};
use dgmc_core::invariants;
use dgmc_core::switch::{
    build_dgmc_sim_with_cache, inject_link_event, inject_node_event, trace_label, DgmcConfig,
    SwitchMsg,
};
use dgmc_core::{McType, Role};
use dgmc_des::explorer::{self, ExploreConfig, ExploreReport, ReproBundle, SeedOutcome, Violation};
use dgmc_des::{
    ActorId, FaultPlan, FaultyNet, LinkFaults, LinkFlap, NetStats, NodeOutage, RunOutcome,
    SimDuration, Simulation,
};
use dgmc_mctree::SphStrategy;
use dgmc_obs::render_trace_timeline;
use dgmc_topology::{generate, LinkState, Network, NodeId, SpfCache};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};
use std::rc::Rc;
use std::sync::Mutex;

/// Decorrelates the network-model RNG stream from the scenario RNG stream
/// (same seed, different golden-ratio-xored domain).
const NET_SEED_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Event budget per seed: far above any converging run on explorer-sized
/// networks, so exhaustion means livelock, not a tight limit.
const EVENT_BUDGET: u64 = 50_000_000;

/// Knobs of the chaos scenario (everything *except* the seed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExploreParams {
    /// Network size.
    pub nodes: usize,
    /// Protocol timing regime.
    pub config: DgmcConfig,
    /// Recovered per-attempt loss probability on every link.
    pub loss: f64,
    /// Genuine drop probability (0 for correctness sweeps; non-zero values
    /// violate D-GMC's reliable-flooding assumption and are the mutation
    /// check proving the invariant suite detects real divergence).
    pub hard_loss: f64,
    /// Duplication probability on every link.
    pub duplicate: f64,
    /// Maximum per-message jitter.
    pub jitter: SimDuration,
    /// Connectivity-safe link flaps injected per run.
    pub flaps: usize,
    /// Safe node crash/restart windows injected per run.
    pub crashes: usize,
    /// Decision-timeline tail length carried into repro bundles.
    pub timeline: usize,
}

impl Default for ExploreParams {
    fn default() -> Self {
        ExploreParams {
            nodes: 16,
            config: DgmcConfig::computation_dominated(),
            loss: 0.05,
            hard_loss: 0.0,
            duplicate: 0.05,
            jitter: SimDuration::micros(40),
            flaps: 1,
            crashes: 1,
            timeline: 48,
        }
    }
}

impl ExploreParams {
    /// The replay command reproducing seed `seed` under these parameters.
    pub fn replay_command(&self, seed: u64) -> String {
        format!(
            "cargo run -p dgmc-experiments --bin explore -- --seed {seed} --nodes {} \
             --loss {} --hard-loss {} --duplicate {} --jitter-us {} --flaps {} --crashes {}",
            self.nodes,
            self.loss,
            self.hard_loss,
            self.duplicate,
            self.jitter.as_nanos() / 1_000,
            self.flaps,
            self.crashes,
        )
    }
}

/// Everything a seed derives before the simulation starts.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The network under test.
    pub net: Network,
    /// The membership workload.
    pub workload: Workload,
    /// The derived fault plan.
    pub plan: FaultPlan,
}

/// The full result of one scenario run (the explorer itself only needs the
/// outcome; replays also want the plan, the timeline and the traffic stats).
#[derive(Debug, Clone)]
pub struct ScenarioRun {
    /// Pass/fail verdict with violations.
    pub outcome: SeedOutcome,
    /// The fault plan the seed derived.
    pub plan: FaultPlan,
    /// Rendered decision-timeline tail (empty unless a log was requested).
    pub timeline: Vec<String>,
    /// Rendered causal span timeline of the measured phase (empty unless a
    /// log was requested; same tail length as `timeline`).
    pub causal: Vec<String>,
    /// Delivery-path accounting of the run.
    pub net_stats: NetStats,
}

/// Derives the scenario (network, workload, fault plan) from a seed.
pub fn build_scenario(seed: u64, params: &ExploreParams) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let net = generate::waxman(&mut rng, params.nodes, &generate::WaxmanParams::default());
    let workload = workload::bursty(&mut rng, &net, &BurstParams::default());
    let plan = build_plan(&mut rng, &net, &workload, params);
    Scenario {
        net,
        workload,
        plan,
    }
}

/// Picks connectivity-safe flaps and crashes and staggers them over
/// disjoint windows, so no two injected outages overlap and each one was
/// individually checked to keep the (remaining) network connected — the
/// protocol is entitled to diverge on a partitioned network, and the
/// explorer must not report that as a protocol bug.
fn build_plan(
    rng: &mut StdRng,
    net: &Network,
    workload: &Workload,
    params: &ExploreParams,
) -> FaultPlan {
    let mut plan = FaultPlan::uniform(LinkFaults {
        loss: params.loss,
        hard_loss: params.hard_loss,
        duplicate: params.duplicate,
        jitter: params.jitter,
    });
    let mut window = 0u64;
    let mut next_window = || {
        let w = window;
        window += 1;
        (
            SimDuration::millis(1 + 4 * w),
            SimDuration::millis(3 + 4 * w),
        )
    };

    // Flap only links whose loss keeps the network connected.
    let mut links: Vec<_> = net.links().map(|l| (l.id, l.a, l.b)).collect();
    links.shuffle(rng);
    for &(id, a, b) in links.iter() {
        if plan.flaps.len() >= params.flaps {
            break;
        }
        let mut degraded = net.clone();
        if degraded.set_link_state(id, LinkState::Down).is_err() || !degraded.is_connected() {
            continue;
        }
        let (down_at, up_at) = next_window();
        plan.flaps.push(LinkFlap {
            a: a.0,
            b: b.0,
            down_at,
            up_at,
        });
    }

    // Crash only switches that host no membership (neither warm-up members
    // nor workload events touch them) and whose loss keeps the survivors
    // connected.
    let mut hosts: BTreeSet<NodeId> = workload.initial_members.iter().copied().collect();
    hosts.extend(workload.events.iter().map(|e| e.node));
    let mut nodes: Vec<NodeId> = net.nodes().filter(|n| !hosts.contains(n)).collect();
    nodes.shuffle(rng);
    for &node in nodes.iter() {
        if plan.outages.len() >= params.crashes {
            break;
        }
        let mut degraded = net.clone();
        for l in net.links().filter(|l| l.a == node || l.b == node) {
            let _ = degraded.set_link_state(l.id, LinkState::Down);
        }
        let labels = dgmc_topology::unionfind::component_labels(&degraded);
        let mut survivor_labels: Vec<usize> = degraded
            .nodes()
            .filter(|&x| x != node)
            .map(|x| labels[x.index()])
            .collect();
        survivor_labels.dedup();
        if survivor_labels.len() != 1 {
            continue;
        }
        let (down_at, up_at) = next_window();
        plan.outages.push(NodeOutage {
            node: node.0,
            down_at,
            up_at,
        });
    }
    plan
}

fn liveness_violation(stage: &str) -> Violation {
    Violation {
        invariant: "liveness".into(),
        detail: format!("event budget exhausted during the {stage} phase (livelock)"),
    }
}

fn inject_measured_phase(sim: &mut Simulation<SwitchMsg>, scenario: &Scenario) {
    for e in &scenario.workload.events {
        let msg = if e.join {
            SwitchMsg::HostJoin {
                mc: EXPERIMENT_MC,
                mc_type: McType::Symmetric,
                role: Role::SenderReceiver,
            }
        } else {
            SwitchMsg::HostLeave { mc: EXPERIMENT_MC }
        };
        sim.inject(ActorId(e.node.0), e.at, msg);
    }
    for flap in &scenario.plan.flaps {
        let link = scenario
            .net
            .link_between(NodeId(flap.a), NodeId(flap.b))
            .expect("flapped link exists")
            .id;
        inject_link_event(sim, &scenario.net, link, false, flap.down_at);
        inject_link_event(sim, &scenario.net, link, true, flap.up_at);
    }
    for outage in &scenario.plan.outages {
        inject_node_event(
            sim,
            &scenario.net,
            NodeId(outage.node),
            false,
            outage.down_at,
        );
        inject_node_event(sim, &scenario.net, NodeId(outage.node), true, outage.up_at);
    }
}

/// Runs one seed to quiescence and checks the invariant suite.
///
/// `timeline` asks for the decision log: `Some(n)` attaches a ring of `n`
/// decisions and returns its rendered tail (used by replays; the sweep path
/// passes `None` and pays nothing for observability).
pub fn run_scenario(seed: u64, params: &ExploreParams, timeline: Option<usize>) -> ScenarioRun {
    run_scenario_with_cache(seed, params, timeline, &SpfCache::new())
}

/// [`run_scenario`] reusing a caller-owned [`SpfCache`].
///
/// The cache is the per-*worker* scratch state of the parallel sweep: each
/// worker builds one inside its own thread (the cache is `Rc`-based and must
/// not cross threads) and threads it through every seed it claims. Networks
/// are content-addressed, so reuse is protocol-neutral and the verdict is
/// identical with a fresh, shared or disabled cache.
pub fn run_scenario_with_cache(
    seed: u64,
    params: &ExploreParams,
    timeline: Option<usize>,
    cache: &SpfCache,
) -> ScenarioRun {
    let scenario = build_scenario(seed, params);
    let mut sim = build_dgmc_sim_with_cache(
        &scenario.net,
        params.config,
        Rc::new(SphStrategy::new()),
        cache.clone(),
    );
    sim.set_event_budget(EVENT_BUDGET);
    let log = timeline.map(|cap| sim.observer().attach_log(cap.max(1)));
    sim.set_net_model(FaultyNet::new(scenario.plan.clone(), seed ^ NET_SEED_SALT));

    let mut violations = Vec::new();
    // Warm-up: initial members join, well separated.
    for (i, m) in scenario.workload.initial_members.iter().enumerate() {
        sim.inject(
            ActorId(m.0),
            SimDuration::millis(10) * i as u64,
            SwitchMsg::HostJoin {
                mc: EXPERIMENT_MC,
                mc_type: McType::Symmetric,
                role: Role::SenderReceiver,
            },
        );
    }
    if sim.run_to_quiescence() != RunOutcome::Quiescent {
        violations.push(liveness_violation("warm-up"));
    } else {
        // Measured phase: the membership burst plus the scheduled flaps and
        // crash windows, all injected up front; every outage is restored
        // before quiescence, so the pristine network is the end state.
        if timeline.is_some() {
            // Replay path: also collect the causal span tree of the
            // measured phase (the queue is empty at this quiescent instant,
            // so every span descends from a measured-phase injection).
            sim.enable_causal_trace(trace_label);
        }
        inject_measured_phase(&mut sim, &scenario);
        if sim.run_to_quiescence() != RunOutcome::Quiescent {
            violations.push(liveness_violation("measured"));
        } else {
            violations.extend(
                invariants::check_invariants(&sim, &scenario.net)
                    .into_iter()
                    .map(|v| Violation {
                        invariant: v.invariant.into(),
                        detail: v.to_string(),
                    }),
            );
        }
    }
    let causal = sim.take_causal_trace().map_or_else(Vec::new, |trace| {
        render_trace_timeline(&trace, params.timeline)
    });
    let timeline = log.map_or_else(Vec::new, |log| {
        let log = log.borrow();
        log.publish_dropped(sim.metrics_mut());
        let mut lines = Vec::new();
        if log.dropped() > 0 {
            lines.push(format!(
                "... {} decision(s) dropped by the bounded ring ({})",
                log.dropped(),
                dgmc_obs::DROPPED_EVENTS_COUNTER
            ));
        }
        let skip = log.len().saturating_sub(params.timeline);
        if skip > 0 {
            lines.push(format!("... {skip} earlier decision(s) omitted"));
        }
        lines.extend(log.iter().skip(skip).map(ToString::to_string));
        lines
    });
    ScenarioRun {
        outcome: SeedOutcome { seed, violations },
        plan: scenario.plan,
        timeline,
        causal,
        net_stats: *sim.net_stats(),
    }
}

/// The sweep-path entry: seed in, verdict out, no observability overhead.
pub fn run_seed(seed: u64, params: &ExploreParams) -> SeedOutcome {
    run_scenario(seed, params, None).outcome
}

/// Sweeps the configured seed range across `config.jobs` workers.
///
/// Each worker owns its own `Rc`-based simulation stack and a private
/// scratch [`SpfCache`]; outcomes are merged deterministically in seed
/// order, so the report is byte-identical for every `jobs` value (see
/// [`explorer::explore_sharded`]).
pub fn explore_run(config: &ExploreConfig, params: &ExploreParams) -> ExploreReport {
    explorer::explore_sharded(
        config,
        |_worker| SpfCache::new(),
        |cache, seed| run_scenario_with_cache(seed, params, None, cache).outcome,
    )
}

/// [`explore_run`] that additionally writes a repro bundle for every failing
/// seed into `out_dir`, from inside the worker that found it.
///
/// Bundle filenames derive from the seed, so two workers failing
/// simultaneously can never collide on a path; a bundle left over from an
/// *earlier* sweep of the same seed is replaced (with a note on stderr),
/// which [`ReproBundle::write`]'s create-new semantics make an explicit
/// decision rather than a silent overwrite. Returns the report plus the
/// written bundles in seed order.
pub fn explore_and_bundle(
    config: &ExploreConfig,
    params: &ExploreParams,
    out_dir: impl AsRef<Path>,
) -> (ExploreReport, Vec<(ReproBundle, PathBuf)>) {
    let out_dir = out_dir.as_ref();
    let written: Mutex<Vec<(ReproBundle, PathBuf)>> = Mutex::new(Vec::new());
    let report = explorer::explore_sharded(
        config,
        |_worker| SpfCache::new(),
        |cache, seed| {
            let outcome = run_scenario_with_cache(seed, params, None, cache).outcome;
            if !outcome.passed() {
                let bundle = repro_bundle_with_cache(seed, params, cache);
                match write_bundle_fresh(&bundle, out_dir) {
                    Ok(path) => written
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push((bundle, path)),
                    Err(e) => eprintln!("failed to write repro bundle for seed {seed}: {e}"),
                }
            }
            outcome
        },
    );
    let mut written = written.into_inner().unwrap_or_else(|e| e.into_inner());
    written.sort_by_key(|(bundle, _)| bundle.seed);
    (report, written)
}

/// Create-new bundle write with one deliberate fallback: a stale bundle from
/// a previous sweep of the same seed is refreshed in place.
fn write_bundle_fresh(bundle: &ReproBundle, out_dir: &Path) -> io::Result<PathBuf> {
    match bundle.write(out_dir) {
        Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
            eprintln!(
                "replacing stale repro bundle {} from an earlier sweep",
                bundle.file_name()
            );
            bundle.write_replacing(out_dir)
        }
        other => other,
    }
}

/// Re-runs a failing seed with the decision log attached and packages the
/// minimized repro: seed, fault-plan JSON, violations, timeline tail and
/// the one-command replay line.
pub fn repro_bundle(seed: u64, params: &ExploreParams) -> ReproBundle {
    repro_bundle_with_cache(seed, params, &SpfCache::new())
}

/// [`repro_bundle`] reusing a worker's scratch [`SpfCache`].
pub fn repro_bundle_with_cache(seed: u64, params: &ExploreParams, cache: &SpfCache) -> ReproBundle {
    let run = run_scenario_with_cache(seed, params, Some(params.timeline), cache);
    let mut timeline = run.timeline;
    if !run.causal.is_empty() {
        timeline.push("-- causal span timeline (measured phase) --".into());
        timeline.extend(run.causal);
    }
    ReproBundle {
        seed,
        scenario: format!("chaos-n{}", params.nodes),
        plan: run.plan.to_json(),
        violations: run.outcome.violations,
        timeline,
        replay: params.replay_command(seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExploreParams {
        ExploreParams {
            nodes: 12,
            ..ExploreParams::default()
        }
    }

    #[test]
    fn scenarios_are_pure_functions_of_the_seed() {
        let params = quick();
        let a = build_scenario(11, &params);
        let b = build_scenario(11, &params);
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.workload.events, b.workload.events);
        assert_eq!(a.net.len(), b.net.len());
        let c = build_scenario(12, &params);
        assert!(c.plan != a.plan || c.workload.events != a.workload.events);
    }

    #[test]
    fn derived_plans_respect_the_requested_fault_counts() {
        let params = quick();
        for seed in 0..5 {
            let s = build_scenario(seed, &params);
            assert!(s.plan.flaps.len() <= params.flaps);
            assert!(s.plan.outages.len() <= params.crashes);
            assert_eq!(s.plan.default.loss, params.loss);
            // Crashed nodes never host membership.
            let hosts: BTreeSet<u32> = s
                .workload
                .initial_members
                .iter()
                .map(|n| n.0)
                .chain(s.workload.events.iter().map(|e| e.node.0))
                .collect();
            for o in &s.plan.outages {
                assert!(!hosts.contains(&o.node), "seed {seed} crashes a member");
            }
        }
    }

    #[test]
    fn default_chaos_passes_a_short_sweep() {
        let config = ExploreConfig {
            start_seed: 0,
            seeds: 5,
            ..ExploreConfig::default()
        };
        let report = explore_run(&config, &quick());
        assert!(
            report.passed(),
            "default plan must uphold invariants: {:?}",
            report.failures
        );
        assert_eq!(report.checked, 5);
    }

    #[test]
    fn chaos_runs_actually_exercise_the_fault_path() {
        let run = run_scenario(3, &quick(), None);
        assert!(run.outcome.passed(), "{:?}", run.outcome.violations);
        assert!(run.net_stats.sent > 0);
        assert!(
            run.net_stats.retransmits > 0 || run.net_stats.duplicated > 0,
            "faults configured but none fired: {}",
            run.net_stats
        );
        assert!(run.net_stats.reconciles(), "{}", run.net_stats);
    }

    #[test]
    fn parallel_sweep_reports_are_byte_identical_to_serial() {
        let params = quick();
        let serial = explore_run(
            &ExploreConfig {
                start_seed: 0,
                seeds: 6,
                ..ExploreConfig::default()
            },
            &params,
        );
        for jobs in [2, 4] {
            let parallel = explore_run(
                &ExploreConfig {
                    start_seed: 0,
                    seeds: 6,
                    fail_fast: false,
                    jobs,
                    ..ExploreConfig::default()
                },
                &params,
            );
            assert_eq!(serial, parallel, "jobs={jobs} changed the report");
            assert_eq!(
                serial.to_json(),
                parallel.to_json(),
                "jobs={jobs} changed the report bytes"
            );
        }
    }

    #[test]
    fn concurrent_failures_all_write_their_bundles() {
        // 30% hard loss breaks most seeds: with four workers sweeping
        // without fail-fast, several failures are in flight at once and every
        // one must land in its own seed-derived bundle file.
        let params = ExploreParams {
            hard_loss: 0.3,
            ..quick()
        };
        let config = ExploreConfig {
            start_seed: 0,
            seeds: 8,
            fail_fast: false,
            jobs: 4,
            ..ExploreConfig::default()
        };
        let dir = std::env::temp_dir().join(format!("dgmc-par-bundles-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (report, written) = explore_and_bundle(&config, &params, &dir);
        assert!(
            report.failures.len() >= 2,
            "need at least two concurrent failures to exercise the collision path: {}",
            report.summary()
        );
        assert_eq!(written.len(), report.failures.len());
        for (failure, (bundle, path)) in report.failures.iter().zip(&written) {
            assert_eq!(failure.seed, bundle.seed, "bundles come back in seed order");
            assert!(
                path.ends_with(format!("repro-seed-{}.json", failure.seed)),
                "bundle path must derive from the seed: {}",
                path.display()
            );
            let body = std::fs::read_to_string(path).unwrap();
            assert_eq!(body, bundle.to_json(), "bundle file is intact, not torn");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn worker_scratch_cache_does_not_change_verdicts() {
        // One cache reused across seeds (a worker's view) versus a fresh
        // cache per seed: the content-addressed cache must be invisible.
        let params = quick();
        let cache = SpfCache::new();
        for seed in 0..4 {
            let reused = run_scenario_with_cache(seed, &params, None, &cache);
            let fresh = run_scenario(seed, &params, None);
            assert_eq!(reused.outcome, fresh.outcome);
            assert_eq!(reused.plan, fresh.plan);
            assert_eq!(reused.net_stats, fresh.net_stats);
        }
    }

    #[test]
    fn hard_loss_mutation_is_caught_and_replays_deterministically() {
        let params = ExploreParams {
            hard_loss: 0.3,
            ..quick()
        };
        let config = ExploreConfig {
            start_seed: 0,
            seeds: 10,
            fail_fast: true,
            ..ExploreConfig::default()
        };
        let report = explore_run(&config, &params);
        let seed = report
            .first_failing_seed()
            .expect("30% hard loss must break an assumption within 10 seeds");
        let again = run_seed(seed, &params);
        assert_eq!(
            report.failures[0].violations, again.violations,
            "failing seed must reproduce identically"
        );
        let bundle = repro_bundle(seed, &params);
        assert_eq!(bundle.seed, seed);
        assert!(!bundle.violations.is_empty());
        assert!(!bundle.timeline.is_empty(), "replay carries a timeline");
        assert!(bundle.replay.contains(&format!("--seed {seed}")));
        // The bundle also carries the causal span timeline of the replay.
        assert!(
            bundle
                .timeline
                .iter()
                .any(|l| l.contains("causal span timeline")),
            "{:?}",
            bundle.timeline
        );
        assert!(
            bundle.timeline.iter().any(|l| l.contains('↳')),
            "spans render as a causal tree"
        );
    }

    #[test]
    fn replays_render_a_causal_span_timeline() {
        let params = quick();
        let run = run_scenario(3, &params, Some(params.timeline));
        assert!(!run.causal.is_empty(), "replay path collects spans");
        // A tail render of a busy run starts with the omission header and
        // contains causally indented children.
        assert!(
            run.causal[0].contains("earlier span(s) omitted"),
            "{}",
            run.causal[0]
        );
        assert!(run.causal.iter().any(|l| l.contains('↳')));
        // The sweep path pays nothing: no log, no spans.
        let sweep = run_scenario(3, &params, None);
        assert!(sweep.causal.is_empty());
        assert!(sweep.timeline.is_empty());
    }
}
