//! A small scenario language for driving D-GMC simulations from text.
//!
//! Lets users script membership churn, failures and data without writing
//! Rust — the `scenario` binary reads a file (or stdin) like:
//!
//! ```text
//! # a conference that survives a link cut
//! net ring 8
//! join 0 @0ms
//! join 3 @1ms
//! cut 1 2 @10ms
//! send 0 @20ms id=7
//! ```
//!
//! and reports consensus, counters and deliveries.

use dgmc_core::switch::{
    build_dgmc_sim, inject_link_event, inject_node_event, DgmcConfig, SwitchMsg,
};
use dgmc_core::{convergence, McId, McType, Role};
use dgmc_des::{ActorId, RunOutcome, SimDuration, Simulation};
use dgmc_mctree::SphStrategy;
use dgmc_topology::{generate, Network, NodeId};
use rand::SeedableRng;
use std::error::Error;
use std::fmt;
use std::rc::Rc;

/// A parsed scenario: the network plus timed directives.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The ground-truth network.
    pub net: Network,
    /// Timed directives in file order.
    pub steps: Vec<Step>,
}

/// One timed directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// `join <node> @<ms>ms [mc=<id>]`
    Join {
        /// Joining switch.
        node: NodeId,
        /// Offset.
        at_ms: u64,
        /// Connection id.
        mc: McId,
    },
    /// `leave <node> @<ms>ms [mc=<id>]`
    Leave {
        /// Leaving switch.
        node: NodeId,
        /// Offset.
        at_ms: u64,
        /// Connection id.
        mc: McId,
    },
    /// `cut <a> <b> @<ms>ms` / `repair <a> <b> @<ms>ms`
    Link {
        /// One endpoint.
        a: NodeId,
        /// Other endpoint.
        b: NodeId,
        /// `true` for repair.
        up: bool,
        /// Offset.
        at_ms: u64,
    },
    /// `fail-node <n> @<ms>ms` / `revive-node <n> @<ms>ms`
    Node {
        /// The switch.
        node: NodeId,
        /// `true` for revival.
        up: bool,
        /// Offset.
        at_ms: u64,
    },
    /// `send <node> @<ms>ms id=<packet>` `[mc=<id>]`
    Send {
        /// Injecting switch.
        node: NodeId,
        /// Offset.
        at_ms: u64,
        /// Packet id.
        packet_id: u64,
        /// Connection id.
        mc: McId,
    },
}

/// Parse or execution failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// 1-based line of the offending directive (0 for execution errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            f.write_str(&self.message)
        }
    }
}

impl Error for ScenarioError {}

fn err(line: usize, message: impl Into<String>) -> ScenarioError {
    ScenarioError {
        line,
        message: message.into(),
    }
}

fn parse_at(tok: &str, line: usize) -> Result<u64, ScenarioError> {
    let t = tok
        .strip_prefix('@')
        .ok_or_else(|| err(line, format!("expected @<ms>ms, got {tok:?}")))?;
    let t = t.strip_suffix("ms").unwrap_or(t);
    t.parse()
        .map_err(|_| err(line, format!("bad time value {tok:?}")))
}

fn parse_node(tok: &str, net: &Network, line: usize) -> Result<NodeId, ScenarioError> {
    let id: u32 = tok
        .parse()
        .map_err(|_| err(line, format!("bad node id {tok:?}")))?;
    let node = NodeId(id);
    if !net.contains_node(node) {
        return Err(err(line, format!("node {id} outside the network")));
    }
    Ok(node)
}

fn parse_kv(tokens: &[&str], key: &str, default: u64, line: usize) -> Result<u64, ScenarioError> {
    for t in tokens {
        if let Some(v) = t.strip_prefix(&format!("{key}=")) {
            return v
                .parse()
                .map_err(|_| err(line, format!("bad {key} value {t:?}")));
        }
    }
    Ok(default)
}

/// Parses a scenario document.
///
/// # Errors
///
/// Returns the first [`ScenarioError`] with its line number.
pub fn parse(text: &str) -> Result<Scenario, ScenarioError> {
    let mut net: Option<Network> = None;
    let mut steps = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let stripped = raw.split('#').next().unwrap_or("").trim();
        if stripped.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = stripped.split_whitespace().collect();
        match tokens[0] {
            "net" => {
                if net.is_some() {
                    return Err(err(line, "network already declared"));
                }
                net = Some(parse_net(&tokens[1..], line)?);
            }
            verb @ ("join" | "leave") => {
                let net_ref = net
                    .as_ref()
                    .ok_or_else(|| err(line, "declare `net` before directives"))?;
                if tokens.len() < 3 {
                    return Err(err(line, format!("usage: {verb} <node> @<ms>ms [mc=<id>]")));
                }
                let node = parse_node(tokens[1], net_ref, line)?;
                let at_ms = parse_at(tokens[2], line)?;
                let mc = McId(parse_kv(&tokens[3..], "mc", 1, line)? as u32);
                steps.push(if verb == "join" {
                    Step::Join { node, at_ms, mc }
                } else {
                    Step::Leave { node, at_ms, mc }
                });
            }
            verb @ ("cut" | "repair") => {
                let net_ref = net
                    .as_ref()
                    .ok_or_else(|| err(line, "declare `net` before directives"))?;
                if tokens.len() < 4 {
                    return Err(err(line, format!("usage: {verb} <a> <b> @<ms>ms")));
                }
                let a = parse_node(tokens[1], net_ref, line)?;
                let b = parse_node(tokens[2], net_ref, line)?;
                if net_ref.link_between(a, b).is_none() {
                    return Err(err(line, format!("no link between {a} and {b}")));
                }
                steps.push(Step::Link {
                    a,
                    b,
                    up: verb == "repair",
                    at_ms: parse_at(tokens[3], line)?,
                });
            }
            verb @ ("fail-node" | "revive-node") => {
                let net_ref = net
                    .as_ref()
                    .ok_or_else(|| err(line, "declare `net` before directives"))?;
                if tokens.len() < 3 {
                    return Err(err(line, format!("usage: {verb} <node> @<ms>ms")));
                }
                steps.push(Step::Node {
                    node: parse_node(tokens[1], net_ref, line)?,
                    up: verb == "revive-node",
                    at_ms: parse_at(tokens[2], line)?,
                });
            }
            "send" => {
                let net_ref = net
                    .as_ref()
                    .ok_or_else(|| err(line, "declare `net` before directives"))?;
                if tokens.len() < 3 {
                    return Err(err(line, "usage: send <node> @<ms>ms [id=<n>] [mc=<id>]"));
                }
                let node = parse_node(tokens[1], net_ref, line)?;
                let at_ms = parse_at(tokens[2], line)?;
                let packet_id = parse_kv(&tokens[3..], "id", 0, line)?;
                let mc = McId(parse_kv(&tokens[3..], "mc", 1, line)? as u32);
                steps.push(Step::Send {
                    node,
                    at_ms,
                    packet_id,
                    mc,
                });
            }
            other => return Err(err(line, format!("unknown directive {other:?}"))),
        }
    }
    let net = net.ok_or_else(|| err(0, "scenario declares no `net`"))?;
    Ok(Scenario { net, steps })
}

fn parse_net(args: &[&str], line: usize) -> Result<Network, ScenarioError> {
    match args {
        ["ring", n] => Ok(generate::ring(parse_usize(n, line)?)),
        ["path", n] => Ok(generate::path(parse_usize(n, line)?)),
        ["star", n] => Ok(generate::star(parse_usize(n, line)?)),
        ["grid", r, c] => Ok(generate::grid(parse_usize(r, line)?, parse_usize(c, line)?)),
        ["waxman", n, seed] => {
            let mut rng = rand::rngs::StdRng::seed_from_u64(parse_usize(seed, line)? as u64);
            Ok(generate::waxman(
                &mut rng,
                parse_usize(n, line)?,
                &generate::WaxmanParams::default(),
            ))
        }
        other => Err(err(
            line,
            format!("unknown network spec {other:?} (ring/path/star/grid/waxman)"),
        )),
    }
}

fn parse_usize(tok: &str, line: usize) -> Result<usize, ScenarioError> {
    tok.parse()
        .map_err(|_| err(line, format!("bad number {tok:?}")))
}

/// Outcome of a scenario run.
#[derive(Debug)]
pub struct ScenarioReport {
    /// Per-MC consensus results, in id order.
    pub consensus: Vec<(
        McId,
        Result<convergence::Consensus, convergence::ConsensusError>,
    )>,
    /// Simulation counters, sorted by name.
    pub counters: std::collections::BTreeMap<String, u64>,
    /// Delivery counts per (mc, packet, member).
    pub deliveries: Vec<(McId, u64, NodeId, u32)>,
    /// Whether the run fully drained.
    pub quiescent: bool,
}

/// Executes a scenario and gathers the report.
pub fn run(scenario: &Scenario) -> ScenarioReport {
    let mut sim: Simulation<SwitchMsg> = build_dgmc_sim(
        &scenario.net,
        DgmcConfig::computation_dominated(),
        Rc::new(SphStrategy::new()),
    );
    sim.set_event_budget(200_000_000);
    let mut mcs: Vec<McId> = Vec::new();
    let mut sends: Vec<(McId, u64)> = Vec::new();
    let mut net_state = scenario.net.clone();
    for step in &scenario.steps {
        match *step {
            Step::Join { node, at_ms, mc } => {
                if !mcs.contains(&mc) {
                    mcs.push(mc);
                }
                sim.inject(
                    ActorId(node.0),
                    SimDuration::millis(at_ms),
                    SwitchMsg::HostJoin {
                        mc,
                        mc_type: McType::Symmetric,
                        role: Role::SenderReceiver,
                    },
                );
            }
            Step::Leave { node, at_ms, mc } => {
                sim.inject(
                    ActorId(node.0),
                    SimDuration::millis(at_ms),
                    SwitchMsg::HostLeave { mc },
                );
            }
            Step::Link { a, b, up, at_ms } => {
                let link = net_state
                    .link_between(a, b)
                    .expect("validated at parse time")
                    .id;
                inject_link_event(&mut sim, &net_state, link, up, SimDuration::millis(at_ms));
                let state = if up {
                    dgmc_topology::LinkState::Up
                } else {
                    dgmc_topology::LinkState::Down
                };
                let _ = net_state.set_link_state(link, state);
            }
            Step::Node { node, up, at_ms } => {
                inject_node_event(&mut sim, &net_state, node, up, SimDuration::millis(at_ms));
            }
            Step::Send {
                node,
                at_ms,
                packet_id,
                mc,
            } => {
                sends.push((mc, packet_id));
                sim.inject(
                    ActorId(node.0),
                    SimDuration::millis(at_ms),
                    SwitchMsg::SendData { mc, packet_id },
                );
            }
        }
    }
    let quiescent = sim.run_to_quiescence() == RunOutcome::Quiescent;
    mcs.sort_unstable();
    let consensus = mcs
        .iter()
        .map(|&mc| (mc, convergence::check_consensus(&sim, mc)))
        .collect();
    let mut deliveries = Vec::new();
    for &(mc, pid) in &sends {
        for (node, copies) in convergence::delivery_map(&sim, mc, pid) {
            if copies > 0 {
                deliveries.push((mc, pid, node, copies));
            }
        }
    }
    ScenarioReport {
        consensus,
        counters: sim.counters(),
        deliveries,
        quiescent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEMO: &str = "
# conference surviving a cut
net ring 8
join 0 @0ms
join 3 @1ms
cut 1 2 @10ms
send 0 @20ms id=7
";

    #[test]
    fn parses_the_demo() {
        let s = parse(DEMO).unwrap();
        assert_eq!(s.net.len(), 8);
        assert_eq!(s.steps.len(), 4);
        assert_eq!(
            s.steps[0],
            Step::Join {
                node: NodeId(0),
                at_ms: 0,
                mc: McId(1)
            }
        );
        assert!(matches!(s.steps[2], Step::Link { up: false, .. }));
    }

    #[test]
    fn runs_the_demo_end_to_end() {
        let s = parse(DEMO).unwrap();
        let report = run(&s);
        assert!(report.quiescent);
        let (mc, consensus) = &report.consensus[0];
        assert_eq!(*mc, McId(1));
        let c = consensus.as_ref().expect("consensus reached");
        assert_eq!(c.members.len(), 2);
        // The packet reached member 3 exactly once despite the cut.
        assert!(report
            .deliveries
            .iter()
            .any(|&(_, pid, node, copies)| pid == 7 && node == NodeId(3) && copies == 1));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let bad = "net ring 5\njoin 99 @0ms";
        let e = parse(bad).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("outside the network"));

        let no_net = "join 0 @0ms";
        assert!(parse(no_net).unwrap_err().message.contains("declare `net`"));

        let dup = "net ring 5\nnet ring 6";
        assert!(parse(dup).unwrap_err().message.contains("already declared"));

        let unknown = "net ring 5\nfrob 1 @0ms";
        assert!(parse(unknown)
            .unwrap_err()
            .message
            .contains("unknown directive"));

        let no_link = "net path 4\ncut 0 3 @1ms";
        assert!(parse(no_link).unwrap_err().message.contains("no link"));
    }

    #[test]
    fn multiple_connections_and_kv_args() {
        let text = "
net grid 3 3
join 0 @0ms mc=5
join 8 @1ms mc=5
join 4 @2ms mc=9
send 0 @10ms id=3 mc=5
";
        let s = parse(text).unwrap();
        let report = run(&s);
        assert!(report.quiescent);
        assert_eq!(report.consensus.len(), 2, "two MCs tracked");
        let ok = report.consensus.iter().all(|(_, c)| c.is_ok());
        assert!(ok);
        assert!(report
            .deliveries
            .iter()
            .any(|&(mc, pid, node, _)| mc == McId(5) && pid == 3 && node == NodeId(8)));
    }

    #[test]
    fn node_failure_directives_run() {
        let text = "
net ring 6
join 0 @0ms
join 2 @1ms
fail-node 1 @10ms
revive-node 1 @50ms
send 0 @100ms id=1
";
        let s = parse(text).unwrap();
        let report = run(&s);
        assert!(report.quiescent);
        assert!(report
            .deliveries
            .iter()
            .any(|&(_, pid, node, copies)| pid == 1 && node == NodeId(2) && copies == 1));
    }
}
