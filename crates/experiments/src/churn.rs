//! Link-churn event paths: the Fig. 7 WAN regime distilled.
//!
//! The paper's Fig. 7 regime is dominated by link events: every cost change
//! or flap rotates the image digest, so before the incremental repair layer
//! the SPF cache missed on essentially every computation (BENCH_pr3's
//! `fig7_smoke` ran at 0.99×). This module builds that workload as a pure
//! event path — one deterministic link mutation per event, then a window of
//! switches recomputing their routing tables from the shared image — so the
//! bench can measure cached-vs-uncached throughput on exactly the pattern
//! that used to collapse, and CI can assert the cached path stays
//! bit-equivalent to the uncached one.

use dgmc_lsr::RoutingTable;
use dgmc_topology::generate::{self, WaxmanParams};
use dgmc_topology::{LinkId, LinkState, NodeId, SpfCache, SpfCacheStats};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parameters of one churn run. Everything is deterministic in `seed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnParams {
    /// Switch count of the generated Waxman graph.
    pub n: usize,
    /// Number of link events.
    pub events: usize,
    /// Seed for the topology draw.
    pub seed: u64,
    /// Every `flap_every`-th event toggles the link state instead of
    /// changing its cost (the Fig. 7 failure/repair component).
    pub flap_every: usize,
    /// How many switches recompute their routing table per event. The
    /// convergence model recomputes at every switch; a smaller fixed window
    /// keeps big-`n` runs affordable without changing the per-switch work
    /// being compared.
    pub switches_per_event: usize,
}

/// Result of a churn run: a route checksum (for cached-vs-uncached
/// equivalence and `--jobs` byte-identity) plus the cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnOutcome {
    /// Order-sensitive digest of every computed route cost.
    pub checksum: u64,
    /// Events executed.
    pub events: usize,
    /// Cache counters accumulated over the run (deterministic fields only
    /// are meaningful for comparisons; `miss_nanos` is wall clock).
    pub stats: SpfCacheStats,
}

/// Runs the churn event path over `cache` and returns the outcome.
///
/// Per event: one deterministic link mutation (cost cycle, with every
/// [`ChurnParams::flap_every`]-th event flapping the link instead), then
/// switches `0..switches_per_event` recompute [`RoutingTable`]s from the
/// mutated image through `cache`. The checksum folds every route cost, so
/// two runs agree iff every table agreed — the cached run must equal the
/// [`SpfCache::disabled`] run exactly.
///
/// # Panics
///
/// Panics if `n < 2` or `flap_every == 0`.
pub fn churn_event_path(params: &ChurnParams, cache: &SpfCache) -> ChurnOutcome {
    assert!(params.n >= 2, "churn needs at least two switches");
    assert!(params.flap_every > 0, "flap_every must be positive");
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut net = generate::waxman(&mut rng, params.n, &WaxmanParams::default());
    let links = net.link_count();
    let window = params.switches_per_event.clamp(1, params.n);
    let mut checksum = 0x9e37_79b9_7f4a_7c15u64;
    for k in 0..params.events {
        let link = LinkId((k % links) as u32);
        if k % params.flap_every == params.flap_every - 1 {
            let flip = if net.link(link).unwrap().is_up() {
                LinkState::Down
            } else {
                LinkState::Up
            };
            net.set_link_state(link, flip).unwrap();
        } else {
            let cost = 1 + ((k as u64).wrapping_mul(7919) % 97);
            net.set_link_cost(link, cost).unwrap();
        }
        for s in 0..window {
            let table = RoutingTable::compute_with(&net, NodeId(s as u32), cache);
            for dest in net.nodes() {
                let c = table.cost(dest).unwrap_or(u64::MAX);
                checksum = checksum
                    .rotate_left(7)
                    .wrapping_add(c.wrapping_mul(0x0100_0000_01b3));
            }
        }
    }
    ChurnOutcome {
        checksum,
        events: params.events,
        stats: cache.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMOKE: ChurnParams = ChurnParams {
        n: 60,
        events: 24,
        seed: 11,
        flap_every: 5,
        switches_per_event: 16,
    };

    #[test]
    fn cached_run_is_bit_equivalent_to_uncached() {
        let cached = churn_event_path(&SMOKE, &SpfCache::new());
        let uncached = churn_event_path(&SMOKE, &SpfCache::disabled());
        assert_eq!(cached.checksum, uncached.checksum);
        assert_eq!(cached.events, uncached.events);
    }

    #[test]
    fn churn_misses_are_answered_by_repairs() {
        let outcome = churn_event_path(&SMOKE, &SpfCache::new());
        assert!(
            outcome.stats.repairs > 0,
            "link churn should repair, got {:?}",
            outcome.stats
        );
        // After the first event, every digest rotation is one link away
        // from a live generation: repairs dominate misses.
        assert!(outcome.stats.repairs * 2 > outcome.stats.misses);
    }

    #[test]
    fn outcome_is_deterministic() {
        let a = churn_event_path(&SMOKE, &SpfCache::new());
        let b = churn_event_path(&SMOKE, &SpfCache::new());
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(
            (a.stats.hits, a.stats.misses, a.stats.repairs),
            (b.stats.hits, b.stats.misses, b.stats.repairs)
        );
    }
}
