//! Long-run stability: hundreds of membership events under continuous
//! Poisson-like churn.
//!
//! The paper's experiments cover one burst or a short sparse run; a
//! production protocol must also hold up under sustained churn — no state
//! leaks, no drift in per-event overhead, consensus at every checkpoint,
//! and trees that stay competitive despite being maintained incrementally
//! the whole time.

use dgmc_core::switch::{build_dgmc_sim, counters, DgmcConfig, DgmcSwitch, SwitchMsg};
use dgmc_core::{convergence, McId, McType, Role};
use dgmc_des::{ActorId, RunOutcome, SimDuration, Simulation};
use dgmc_mctree::SphStrategy;
use dgmc_topology::{generate, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::rc::Rc;

const MC: McId = McId(1);

/// Outcome of a long-run churn simulation.
#[derive(Debug, Clone)]
pub struct LongRunReport {
    /// Membership events applied.
    pub events: u64,
    /// Consensus checkpoints passed (one per `checkpoint_every` events).
    pub checkpoints: u64,
    /// Total computations / events (long-run average overhead).
    pub proposals_per_event: f64,
    /// Total floodings / events.
    pub floodings_per_event: f64,
    /// Competitiveness of the final tree vs a from-scratch rebuild.
    pub final_competitiveness: Option<f64>,
    /// Per-switch MC state count at the end (leak check: 0 or 1).
    pub max_states_per_switch: usize,
}

/// Errors from the long-run study.
#[derive(Debug)]
pub enum LongRunError {
    /// A checkpoint found the switches in disagreement.
    CheckpointFailed {
        /// Which event count the checkpoint was at.
        after_events: u64,
        /// The disagreement.
        error: convergence::ConsensusError,
    },
    /// The simulation did not drain.
    Diverged,
}

impl std::fmt::Display for LongRunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LongRunError::CheckpointFailed {
                after_events,
                error,
            } => write!(f, "checkpoint after {after_events} events failed: {error}"),
            LongRunError::Diverged => f.write_str("simulation exhausted its event budget"),
        }
    }
}

impl std::error::Error for LongRunError {}

/// Drives `total_events` membership changes with mean interarrival
/// `mean_gap_ms`, checking consensus every `checkpoint_every` events.
///
/// # Errors
///
/// See [`LongRunError`].
pub fn churn_run(
    n: usize,
    total_events: u64,
    mean_gap_ms: u64,
    checkpoint_every: u64,
    seed: u64,
) -> Result<LongRunReport, LongRunError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let net = generate::waxman(&mut rng, n, &generate::WaxmanParams::default());
    let mut sim = build_dgmc_sim(
        &net,
        DgmcConfig::computation_dominated(),
        Rc::new(SphStrategy::new()),
    );
    sim.set_event_budget(2_000_000_000);
    let mut members: Vec<NodeId> = Vec::new();
    // Seed three members.
    for (i, m) in generate::sample_nodes(&mut rng, &net, 3)
        .into_iter()
        .enumerate()
    {
        sim.inject(
            ActorId(m.0),
            SimDuration::millis(10 * i as u64),
            SwitchMsg::HostJoin {
                mc: MC,
                mc_type: McType::Symmetric,
                role: Role::SenderReceiver,
            },
        );
        members.push(m);
    }
    if sim.run_to_quiescence() != RunOutcome::Quiescent {
        return Err(LongRunError::Diverged);
    }
    sim.reset_counters();

    let mut events = 0u64;
    let mut checkpoints = 0u64;
    while events < total_events {
        // Exponential-ish gap: uniform in [1, 2*mean) keeps determinism
        // simple while exercising overlapping and isolated events alike.
        let gap = SimDuration::millis(rng.gen_range(1..mean_gap_ms.max(2) * 2));
        let leave = members.len() > 2 && rng.gen_bool(0.5);
        if leave {
            let idx = rng.gen_range(0..members.len());
            let node = members.swap_remove(idx);
            sim.inject(ActorId(node.0), gap, SwitchMsg::HostLeave { mc: MC });
        } else {
            let candidates: Vec<NodeId> = net.nodes().filter(|x| !members.contains(x)).collect();
            let Some(&node) = candidates.as_slice().choose(&mut rng) else {
                continue;
            };
            members.push(node);
            sim.inject(
                ActorId(node.0),
                gap,
                SwitchMsg::HostJoin {
                    mc: MC,
                    mc_type: McType::Symmetric,
                    role: Role::SenderReceiver,
                },
            );
        }
        events += 1;
        if sim.run_to_quiescence() != RunOutcome::Quiescent {
            return Err(LongRunError::Diverged);
        }
        if events.is_multiple_of(checkpoint_every) {
            convergence::check_consensus(&sim, MC).map_err(|error| {
                LongRunError::CheckpointFailed {
                    after_events: events,
                    error,
                }
            })?;
            checkpoints += 1;
        }
    }
    let final_competitiveness =
        consensus_tree(&sim).and_then(|tree| dgmc_mctree::metrics::competitiveness(&tree, &net));
    let max_states_per_switch = (0..n as u32)
        .map(|i| {
            sim.actor_as::<DgmcSwitch>(ActorId(i))
                .map(|sw| sw.engine().mc_ids().len())
                .unwrap_or(0)
        })
        .max()
        .unwrap_or(0);
    Ok(LongRunReport {
        events,
        checkpoints,
        proposals_per_event: sim.counter_value(counters::COMPUTATIONS) as f64 / events as f64,
        floodings_per_event: sim.counter_value(counters::FLOODINGS) as f64 / events as f64,
        final_competitiveness,
        max_states_per_switch,
    })
}

fn consensus_tree(sim: &Simulation<SwitchMsg>) -> Option<dgmc_mctree::McTopology> {
    convergence::check_consensus(sim, MC).ok()?.topology
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hundred_events_of_churn_stay_stable() {
        let report = churn_run(30, 100, 20, 10, 42).expect("stable");
        assert_eq!(report.events, 100);
        assert_eq!(report.checkpoints, 10);
        // Mostly isolated events: overhead stays near 1 per event.
        assert!(
            report.proposals_per_event < 2.0,
            "{}",
            report.proposals_per_event
        );
        assert!(report.max_states_per_switch <= 1, "no state leaks");
        if let Some(c) = report.final_competitiveness {
            assert!(c < 2.0, "incrementally maintained tree stays sane: {c}");
        }
    }

    #[test]
    fn tight_churn_also_stays_stable() {
        // 2ms mean gap: events overlap with computations regularly.
        let report = churn_run(25, 60, 2, 15, 7).expect("stable under overlap");
        assert_eq!(report.checkpoints, 4);
        assert!(report.proposals_per_event < 4.0);
    }
}
